//! Gene movement blocks: **Gene Split** and **Gene Merge** (Section IV-C4).
//!
//! Gene Split "sits between the PEs and the Genome Buffer to ensure that
//! the alignment is maintained and proper gene pairs are sent to the PEs
//! every cycle": both parents' gene streams are merged by key — node genes
//! first, then connection genes, each cluster in ascending key order — so
//! the crossover engine always sees the two versions of the *same* gene
//! together. Gene Merge re-assembles child genes into a well-formed genome
//! image and writes it back to the buffer.

use crate::codec::Gene;
use genesys_neat::gene::{ConnGene, NodeGene, NodeType};
use genesys_neat::{Genome, GenomeError};

/// One aligned slot of the parent gene streams: the same key as seen by
/// parent 1 (the fitter parent) and parent 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignedPair {
    /// The fitter parent's gene, if it has this key.
    pub fit: Option<Gene>,
    /// The other parent's gene, if it has this key.
    pub other: Option<Gene>,
}

impl AlignedPair {
    /// True when both parents carry the gene (a *matching* gene in NEAT
    /// terms; crossover cherry-picks attributes).
    pub fn is_matching(&self) -> bool {
        self.fit.is_some() && self.other.is_some()
    }
}

/// Aligns two parents' gene streams by key (the Gene Split function).
///
/// The output preserves the genome-buffer order: all node slots first,
/// then all connection slots. Keys present only in one parent produce a
/// half-empty pair (a *disjoint/excess* gene).
pub fn align_parents(fit: &Genome, other: &Genome) -> Vec<AlignedPair> {
    let mut out = Vec::with_capacity(fit.num_genes().max(other.num_genes()));
    // Node cluster: two sorted iterators merged by id.
    let mut a = fit.nodes().peekable();
    let mut b = other.nodes().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => {
                let pair = match x.id.cmp(&y.id) {
                    std::cmp::Ordering::Less => AlignedPair {
                        fit: Some(Gene::Node(*a.next().expect("peeked"))),
                        other: None,
                    },
                    std::cmp::Ordering::Greater => AlignedPair {
                        fit: None,
                        other: Some(Gene::Node(*b.next().expect("peeked"))),
                    },
                    std::cmp::Ordering::Equal => AlignedPair {
                        fit: Some(Gene::Node(*a.next().expect("peeked"))),
                        other: Some(Gene::Node(*b.next().expect("peeked"))),
                    },
                };
                out.push(pair);
            }
            (Some(_), None) => out.push(AlignedPair {
                fit: Some(Gene::Node(*a.next().expect("peeked"))),
                other: None,
            }),
            (None, Some(_)) => out.push(AlignedPair {
                fit: None,
                other: Some(Gene::Node(*b.next().expect("peeked"))),
            }),
            (None, None) => break,
        }
    }
    // Connection cluster.
    let mut a = fit.conns().peekable();
    let mut b = other.conns().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => {
                let pair = match x.key.cmp(&y.key) {
                    std::cmp::Ordering::Less => AlignedPair {
                        fit: Some(Gene::Conn(*a.next().expect("peeked"))),
                        other: None,
                    },
                    std::cmp::Ordering::Greater => AlignedPair {
                        fit: None,
                        other: Some(Gene::Conn(*b.next().expect("peeked"))),
                    },
                    std::cmp::Ordering::Equal => AlignedPair {
                        fit: Some(Gene::Conn(*a.next().expect("peeked"))),
                        other: Some(Gene::Conn(*b.next().expect("peeked"))),
                    },
                };
                out.push(pair);
            }
            (Some(_), None) => out.push(AlignedPair {
                fit: Some(Gene::Conn(*a.next().expect("peeked"))),
                other: None,
            }),
            (None, Some(_)) => out.push(AlignedPair {
                fit: None,
                other: Some(Gene::Conn(*b.next().expect("peeked"))),
            }),
            (None, None) => break,
        }
    }
    out
}

/// Outcome of assembling a child genome from PE output genes.
#[derive(Debug)]
pub struct MergeReport {
    /// The assembled, validated child genome.
    pub genome: Genome,
    /// Connection genes dropped because an endpoint was missing.
    pub dropped_dangling: usize,
    /// Connection genes dropped because they would have made the graph
    /// cyclic (feed-forward repair; see `DESIGN.md` §4).
    pub dropped_cyclic: usize,
    /// Genes dropped as duplicates of an earlier key.
    pub dropped_duplicates: usize,
}

/// Assembles child genes into a valid genome (the Gene Merge function).
///
/// "The gene merge logic organizes the child genes and produces the entire
/// genome"; for newly added genes it "ensures that they are sequenced in
/// the right order when put together in memory". On top of ordering, this
/// model performs the validity repairs the paper assigns to the
/// merge/CPU path: duplicate keys, dangling connections and — a deviation
/// documented in `DESIGN.md` — cycle-creating additions are dropped.
///
/// # Errors
///
/// Returns a [`GenomeError`] only if repairs cannot restore validity
/// (e.g. an interface node disappeared, which the PE never does).
pub fn merge_child(
    key: u64,
    num_inputs: usize,
    num_outputs: usize,
    genes: Vec<Gene>,
) -> Result<MergeReport, GenomeError> {
    let mut nodes: Vec<NodeGene> = Vec::new();
    let mut conns: Vec<ConnGene> = Vec::new();
    let mut dropped_duplicates = 0usize;
    for gene in genes {
        match gene {
            Gene::Node(n) => {
                if nodes.iter().any(|m| m.id == n.id) {
                    dropped_duplicates += 1;
                } else {
                    nodes.push(n);
                }
            }
            Gene::Conn(c) => {
                if conns.iter().any(|d| d.key == c.key) {
                    dropped_duplicates += 1;
                } else {
                    conns.push(c);
                }
            }
        }
    }
    nodes.sort_by_key(|n| n.id);
    conns.sort_by_key(|c| c.key);

    // Dangling / into-input repair.
    let mut dropped_dangling = 0usize;
    let node_ids: std::collections::BTreeSet<_> = nodes.iter().map(|n| n.id).collect();
    let input_ids: std::collections::BTreeSet<_> = nodes
        .iter()
        .filter(|n| n.node_type == NodeType::Input)
        .map(|n| n.id)
        .collect();
    conns.retain(|c| {
        let ok = node_ids.contains(&c.key.src)
            && node_ids.contains(&c.key.dst)
            && !input_ids.contains(&c.key.dst)
            && c.key.src != c.key.dst;
        if !ok {
            dropped_dangling += 1;
        }
        ok
    });

    // Cycle repair: admit connections one by one, skipping any whose
    // addition would close a cycle. Connections inherited from a valid
    // parent are admitted first and cannot conflict among themselves.
    let mut dropped_cyclic = 0usize;
    let mut adjacency: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    let mut admitted: Vec<ConnGene> = Vec::with_capacity(conns.len());
    for c in conns {
        if reaches(&adjacency, c.key.dst.0, c.key.src.0) {
            dropped_cyclic += 1;
            continue;
        }
        adjacency.entry(c.key.src.0).or_default().push(c.key.dst.0);
        admitted.push(c);
    }

    let genome = Genome::from_parts(key, num_inputs, num_outputs, nodes, admitted)?;
    Ok(MergeReport {
        genome,
        dropped_dangling,
        dropped_cyclic,
        dropped_duplicates,
    })
}

/// DFS reachability over the admitted-connection adjacency.
fn reaches(adjacency: &std::collections::HashMap<u32, Vec<u32>>, from: u32, to: u32) -> bool {
    if from == to {
        return true;
    }
    let mut stack = vec![from];
    let mut seen = std::collections::HashSet::new();
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if seen.insert(n) {
            if let Some(next) = adjacency.get(&n) {
                stack.extend(next.iter().copied());
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesys_neat::gene::{ConnKey, NodeId};
    use genesys_neat::trace::OpCounters;
    use genesys_neat::{InnovationTracker, NeatConfig, XorWow};

    fn cfg() -> NeatConfig {
        NeatConfig::builder(2, 1).build().unwrap()
    }

    #[test]
    fn identical_parents_align_fully_matching() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(1));
        let pairs = align_parents(&g, &g.clone());
        assert_eq!(pairs.len(), g.num_genes());
        assert!(pairs.iter().all(AlignedPair::is_matching));
    }

    #[test]
    fn alignment_orders_nodes_before_conns() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(1));
        let pairs = align_parents(&g, &g.clone());
        let kinds: Vec<bool> = pairs
            .iter()
            .map(|p| matches!(p.fit.or(p.other).unwrap(), Gene::Conn(_)))
            .collect();
        // once we see a conn, all following are conns
        let first_conn = kinds.iter().position(|&k| k).unwrap();
        assert!(kinds[first_conn..].iter().all(|&k| k));
    }

    #[test]
    fn disjoint_genes_appear_half_empty() {
        let c = cfg();
        let mut rng = XorWow::seed_from_u64_value(2);
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let base = Genome::initial(0, &c, &mut rng);
        let mut grown = base.clone();
        let mut ops = OpCounters::new();
        grown.mutate_add_node(&mut innov, &mut rng, &mut ops);
        let pairs = align_parents(&grown, &base);
        let disjoint = pairs.iter().filter(|p| !p.is_matching()).count();
        assert_eq!(disjoint, 3, "one new node + two new conns are unmatched");
        // and all disjoint slots belong to the fitter (grown) parent
        assert!(pairs
            .iter()
            .filter(|p| !p.is_matching())
            .all(|p| p.fit.is_some()));
    }

    #[test]
    fn alignment_is_key_sorted_in_each_cluster() {
        let c = cfg();
        let mut rng = XorWow::seed_from_u64_value(3);
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut a = Genome::initial(0, &c, &mut rng);
        let mut b = Genome::initial(1, &c, &mut rng);
        let mut ops = OpCounters::new();
        for _ in 0..5 {
            a.mutate(&c, &mut innov, &mut rng, &mut ops);
            b.mutate(&c, &mut innov, &mut rng, &mut ops);
        }
        let pairs = align_parents(&a, &b);
        let keys: Vec<_> = pairs
            .iter()
            .map(|p| p.fit.or(p.other).unwrap().sort_key())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn merge_rebuilds_a_valid_genome() {
        let g = Genome::initial(5, &cfg(), &mut XorWow::seed_from_u64_value(4));
        let genes: Vec<Gene> = g
            .nodes()
            .map(|n| Gene::Node(*n))
            .chain(g.conns().map(|c| Gene::Conn(*c)))
            .collect();
        let report = merge_child(5, 2, 1, genes).unwrap();
        assert_eq!(report.genome.num_genes(), g.num_genes());
        assert_eq!(report.dropped_dangling, 0);
        assert_eq!(report.dropped_cyclic, 0);
    }

    #[test]
    fn merge_drops_dangling_and_duplicate_genes() {
        let g = Genome::initial(5, &cfg(), &mut XorWow::seed_from_u64_value(4));
        let mut genes: Vec<Gene> = g
            .nodes()
            .map(|n| Gene::Node(*n))
            .chain(g.conns().map(|c| Gene::Conn(*c)))
            .collect();
        genes.push(Gene::Conn(ConnGene::new(NodeId(0), NodeId(99), 1.0))); // dangling
        genes.push(Gene::Node(NodeGene::hidden(NodeId(0)))); // duplicate id
        let report = merge_child(5, 2, 1, genes).unwrap();
        assert_eq!(report.dropped_dangling, 1);
        assert_eq!(report.dropped_duplicates, 1);
        assert!(report.genome.validate().is_ok());
    }

    #[test]
    fn merge_repairs_cycles() {
        let g = Genome::initial(5, &cfg(), &mut XorWow::seed_from_u64_value(4));
        let mut genes: Vec<Gene> = g.nodes().map(|n| Gene::Node(*n)).collect();
        genes.push(Gene::Node(NodeGene::hidden(NodeId(10))));
        genes.push(Gene::Node(NodeGene::hidden(NodeId(11))));
        genes.push(Gene::Conn(ConnGene::new(NodeId(10), NodeId(11), 1.0)));
        genes.push(Gene::Conn(ConnGene::new(NodeId(11), NodeId(10), 1.0))); // closes cycle
        let report = merge_child(5, 2, 1, genes).unwrap();
        assert_eq!(report.dropped_cyclic, 1);
        assert!(report.genome.validate().is_ok());
    }

    #[test]
    fn merge_drops_connection_into_input() {
        let g = Genome::initial(5, &cfg(), &mut XorWow::seed_from_u64_value(4));
        let mut genes: Vec<Gene> = g
            .nodes()
            .map(|n| Gene::Node(*n))
            .chain(g.conns().map(|c| Gene::Conn(*c)))
            .collect();
        genes.push(Gene::Conn(ConnGene {
            key: ConnKey::new(NodeId(2), NodeId(0)),
            weight: 1.0,
            enabled: true,
        }));
        let report = merge_child(5, 2, 1, genes).unwrap();
        assert_eq!(report.dropped_dangling, 1);
    }
}
