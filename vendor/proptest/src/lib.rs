//! Offline shim for the `proptest` 1.x API surface used by this
//! workspace's property tests.
//!
//! Supports: the [`Strategy`] trait with [`Strategy::prop_map`], range and
//! tuple strategies, [`any`], [`ProptestConfig`], and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!` macros. Case generation is
//! deterministic (SplitMix64 seeded by case index) so failures reproduce;
//! there is no shrinking — a failing case panics with its inputs as-is.
//! Swap for crates.io proptest to get shrinking and persistence.

#![deny(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic RNG driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for one test case.
    pub fn deterministic(case: u64) -> Self {
        TestRng {
            state: case.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Creates the RNG for one case of a named test, mixing the test name
    /// into the seed so distinct tests explore distinct input streams
    /// (plain `deterministic(case)` would give every test in the workspace
    /// the same cases).
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, folded into the case index.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::deterministic(hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration (`proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Generates values of an output type from a deterministic RNG.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(offset) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        // Lerp form: `start + (end - start) * u` overflows to ±inf when the
        // span exceeds f64::MAX (e.g. -1e308..1e308); the convex combination
        // keeps every intermediate within the operands' magnitudes.
        let u = rng.unit_f64();
        let v = self.start * (1.0 - u) + self.end * u;
        // Floating rounding can land on or past `end`; keep it half-open.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let u = rng.unit_f64() as f32;
        let v = self.start * (1.0 - u) + self.end * u;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy (`proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Keep arbitrary floats finite: uniform over a wide symmetric range.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// Strategy for the whole domain of `T` (`proptest::prelude::any`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr;) => {};
    ($config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::ProptestConfig = $config;
            for __pt_case in 0..u64::from(__pt_config.cases) {
                let mut __pt_rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __pt_case,
                );
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __pt_rng);)*
                $body
            }
        }
        $crate::__proptest_items! { $config; $($rest)* }
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Any, Arbitrary, ProptestConfig, Strategy,
        TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let strategy = (1u32..5, 0.0f64..1.0).prop_map(|(a, b)| a as f64 + b);
        let mut rng = TestRng::deterministic(9);
        for _ in 0..100 {
            let v = strategy.sample(&mut rng);
            assert!((1.0..5.0).contains(&v));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::deterministic(4);
        let mut b = TestRng::deterministic(4);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn distinct_tests_get_distinct_streams() {
        let mut a = TestRng::for_case("test_a", 0);
        let mut b = TestRng::for_case("test_b", 0);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_cases(x in 0u32..10, flag in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert_eq!(flag as u32 <= 1, true);
        }
    }
}
