//! The Gene Selector: fitness sharing, thresholding and parent selection
//! (Section IV-C4), "handled by a software thread on the CPU".
//!
//! Three steps, per the paper: (1) fitness values "are read and adjusted to
//! implement fitness sharing", (2) "the threshold is calculated using the
//! adjusted fitness values", (3) "the parents for the next generation are
//! chosen and the list of parents for the children is forwarded to the
//! gene splitting logic". The selector also performs the **greedy PE
//! allocation** "such that maximum number of children can be created from
//! the parents currently in the SRAM" — the genome-level-reuse (GLR)
//! optimization Fig 11(c) quantifies.

use genesys_neat::reproduction::allocate_offspring;
use genesys_neat::{Genome, NeatConfig, SpeciesSet, XorWow};

/// One planned mating: which parents produce which child.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatingPlan {
    /// Child index in the next generation.
    pub child_index: usize,
    /// Index of the fitter parent in the current generation.
    pub fit_parent: usize,
    /// Index of the other parent (== `fit_parent` for asexual children).
    pub other_parent: usize,
    /// Elite copies bypass the PEs.
    pub is_elite: bool,
}

impl MatingPlan {
    /// Canonical parent-pair key (order-independent), used to group
    /// children that can share multicast reads.
    pub fn pair_key(&self) -> (usize, usize) {
        if self.fit_parent <= self.other_parent {
            (self.fit_parent, self.other_parent)
        } else {
            (self.other_parent, self.fit_parent)
        }
    }
}

/// Runs the three selector steps and returns the child list forwarded to
/// Gene Split. Mirrors the software algorithm's selection exactly
/// (speciation, fitness sharing, survival threshold, elitism) so that the
/// hardware loop and `genesys-neat` see the same selection pressure.
pub fn select_parents(
    genomes: &[Genome],
    species: &mut SpeciesSet,
    config: &NeatConfig,
    generation: usize,
    rng: &mut XorWow,
) -> Vec<MatingPlan> {
    species.speciate(genomes, config, generation);
    species.remove_stagnant(genomes, config, generation);
    species.share_fitness(genomes);

    let adjusted: Vec<f64> = species.iter().map(|s| s.adjusted_fitness).collect();
    let floor = config.min_species_size.max(config.elitism);
    let alloc = allocate_offspring(&adjusted, config.pop_size, floor);

    let mut plans: Vec<MatingPlan> = Vec::with_capacity(config.pop_size);
    for (s, &spawn) in species.iter().zip(alloc.iter()) {
        if spawn == 0 {
            continue;
        }
        let mut ranked: Vec<usize> = s.members.clone();
        ranked.sort_by(|&a, &b| {
            let fa = genomes[a].fitness().unwrap_or(f64::NEG_INFINITY);
            let fb = genomes[b].fitness().unwrap_or(f64::NEG_INFINITY);
            fb.partial_cmp(&fa).expect("finite fitness")
        });
        let elites = config.elitism.min(spawn);
        for &e in ranked.iter().take(elites) {
            plans.push(MatingPlan {
                child_index: plans.len(),
                fit_parent: e,
                other_parent: e,
                is_elite: true,
            });
        }
        let pool_size = ((ranked.len() as f64 * config.survival_threshold).ceil() as usize)
            .clamp(1, ranked.len());
        let pool = &ranked[..pool_size.max(2.min(ranked.len()))];
        for _ in elites..spawn {
            let p1 = pool[rng.below(pool.len())];
            let p2 = if pool.len() > 1 && rng.chance(config.crossover_prob) {
                pool[rng.below(pool.len())]
            } else {
                p1
            };
            let (fit, other) = if genomes[p1].fitness() >= genomes[p2].fitness() {
                (p1, p2)
            } else {
                (p2, p1)
            };
            plans.push(MatingPlan {
                child_index: plans.len(),
                fit_parent: fit,
                other_parent: other,
                is_elite: false,
            });
        }
    }
    // Top-up if rounding or extinction left the plan short.
    if plans.len() < config.pop_size {
        let best = (0..genomes.len())
            .max_by(|&a, &b| {
                genomes[a]
                    .fitness()
                    .unwrap_or(f64::NEG_INFINITY)
                    .partial_cmp(&genomes[b].fitness().unwrap_or(f64::NEG_INFINITY))
                    .expect("finite fitness")
            })
            .unwrap_or(0);
        while plans.len() < config.pop_size {
            plans.push(MatingPlan {
                child_index: plans.len(),
                fit_parent: best,
                other_parent: best,
                is_elite: false,
            });
        }
    }
    plans.truncate(config.pop_size);
    plans
}

/// PE assignment policy — an ablation axis (DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// The paper's policy: group children sharing parents into the same
    /// round so a multicast tree can service them with single reads.
    #[default]
    Greedy,
    /// Naive round-robin in child order (no reuse grouping).
    RoundRobin,
}

/// PE work schedule: `rounds[r]` holds the children processed concurrently
/// in round `r` ("we allocate only one PE per child genome").
#[derive(Debug, Clone, Default)]
pub struct PeSchedule {
    /// Per-round mating plans; each round's length is ≤ the PE count.
    pub rounds: Vec<Vec<MatingPlan>>,
}

impl PeSchedule {
    /// Number of non-elite children scheduled.
    pub fn num_children(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }
}

/// Schedules non-elite children onto `num_pes` PEs.
pub fn allocate_pes(plans: &[MatingPlan], num_pes: usize, policy: AllocPolicy) -> PeSchedule {
    assert!(num_pes > 0, "at least one PE required");
    let mut work: Vec<MatingPlan> = plans.iter().filter(|p| !p.is_elite).copied().collect();
    if policy == AllocPolicy::Greedy {
        // Children sharing a parent pair become adjacent, so each round
        // touches as few distinct parents as possible.
        work.sort_by_key(|p| p.pair_key());
    }
    let rounds = work.chunks(num_pes).map(<[MatingPlan]>::to_vec).collect();
    PeSchedule { rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesys_neat::NeatConfig;

    fn evaluated_population(n: usize) -> (Vec<Genome>, NeatConfig) {
        let c = NeatConfig::builder(3, 1).pop_size(n).build().unwrap();
        let mut rng = XorWow::seed_from_u64_value(8);
        let mut genomes: Vec<Genome> = (0..n as u64)
            .map(|k| Genome::initial(k, &c, &mut rng))
            .collect();
        for (i, g) in genomes.iter_mut().enumerate() {
            g.set_fitness(i as f64);
        }
        (genomes, c)
    }

    #[test]
    fn selector_produces_pop_size_plans() {
        let (genomes, c) = evaluated_population(30);
        let mut species = SpeciesSet::new();
        let mut rng = XorWow::seed_from_u64_value(1);
        let plans = select_parents(&genomes, &mut species, &c, 0, &mut rng);
        assert_eq!(plans.len(), 30);
        assert!(plans.iter().any(|p| p.is_elite));
    }

    #[test]
    fn parents_meet_the_survival_threshold() {
        let (genomes, c) = evaluated_population(50);
        let mut species = SpeciesSet::new();
        let mut rng = XorWow::seed_from_u64_value(2);
        let plans = select_parents(&genomes, &mut species, &c, 0, &mut rng);
        // One species of 50, survival 0.2: parents come from the top 10
        // (fitness >= 40).
        for p in plans.iter().filter(|p| !p.is_elite) {
            assert!(genomes[p.fit_parent].fitness().unwrap() >= 40.0);
            assert!(genomes[p.other_parent].fitness().unwrap() >= 40.0);
        }
    }

    #[test]
    fn fit_parent_is_the_fitter_one() {
        let (genomes, c) = evaluated_population(40);
        let mut species = SpeciesSet::new();
        let mut rng = XorWow::seed_from_u64_value(3);
        let plans = select_parents(&genomes, &mut species, &c, 0, &mut rng);
        for p in plans {
            assert!(genomes[p.fit_parent].fitness() >= genomes[p.other_parent].fitness());
        }
    }

    #[test]
    fn greedy_allocation_groups_shared_parents() {
        let plans: Vec<MatingPlan> = (0..8)
            .map(|i| MatingPlan {
                child_index: i,
                fit_parent: i % 2, // alternating pairs (0,?) (1,?)
                other_parent: 5,
                is_elite: false,
            })
            .collect();
        let sched = allocate_pes(&plans, 4, AllocPolicy::Greedy);
        assert_eq!(sched.rounds.len(), 2);
        // Each greedy round touches exactly 2 distinct parents.
        for round in &sched.rounds {
            let mut parents: Vec<usize> = round
                .iter()
                .flat_map(|p| [p.fit_parent, p.other_parent])
                .collect();
            parents.sort_unstable();
            parents.dedup();
            assert_eq!(parents.len(), 2, "{round:?}");
        }
        // Round-robin rounds touch 3 (both pair-keys interleaved).
        let rr = allocate_pes(&plans, 4, AllocPolicy::RoundRobin);
        let mut parents: Vec<usize> = rr.rounds[0]
            .iter()
            .flat_map(|p| [p.fit_parent, p.other_parent])
            .collect();
        parents.sort_unstable();
        parents.dedup();
        assert_eq!(parents.len(), 3);
    }

    #[test]
    fn elites_are_not_scheduled_on_pes() {
        let plans = vec![
            MatingPlan {
                child_index: 0,
                fit_parent: 0,
                other_parent: 0,
                is_elite: true,
            },
            MatingPlan {
                child_index: 1,
                fit_parent: 0,
                other_parent: 1,
                is_elite: false,
            },
        ];
        let sched = allocate_pes(&plans, 8, AllocPolicy::Greedy);
        assert_eq!(sched.num_children(), 1);
    }

    #[test]
    fn rounds_respect_pe_count() {
        let plans: Vec<MatingPlan> = (0..100)
            .map(|i| MatingPlan {
                child_index: i,
                fit_parent: 0,
                other_parent: 1,
                is_elite: false,
            })
            .collect();
        let sched = allocate_pes(&plans, 16, AllocPolicy::Greedy);
        assert_eq!(sched.rounds.len(), 7);
        assert!(sched.rounds.iter().all(|r| r.len() <= 16));
    }

    #[test]
    fn pair_key_is_order_independent() {
        let a = MatingPlan {
            child_index: 0,
            fit_parent: 9,
            other_parent: 3,
            is_elite: false,
        };
        assert_eq!(a.pair_key(), (3, 9));
    }
}
