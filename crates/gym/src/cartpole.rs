//! CartPole-v0: balance an inverted pendulum on a moving cart.
//!
//! Bit-faithful re-implementation of the classic control dynamics used by
//! OpenAI gym (Barto, Sutton & Anderson 1983): Euler integration with
//! `tau = 0.02 s`, force ±10 N, termination at |x| > 2.4 or |θ| > 12°.
//! Observation: four floats. Action: one binary value (Table I).

use crate::env::{binary_action, ActionKind, Environment};
use genesys_neat::XorWow;

const GRAVITY: f64 = 9.8;
const MASS_CART: f64 = 1.0;
const MASS_POLE: f64 = 0.1;
const TOTAL_MASS: f64 = MASS_CART + MASS_POLE;
const LENGTH: f64 = 0.5; // half pole length
const POLE_MASS_LENGTH: f64 = MASS_POLE * LENGTH;
const FORCE_MAG: f64 = 10.0;
const TAU: f64 = 0.02;
const THETA_LIMIT: f64 = 12.0 * std::f64::consts::PI / 180.0;
const X_LIMIT: f64 = 2.4;

/// The CartPole-v0 environment.
#[derive(Debug, Clone)]
pub struct CartPole {
    rng: XorWow,
    state: [f64; 4], // x, x_dot, theta, theta_dot
    steps: usize,
    done: bool,
}

impl CartPole {
    /// Episode length required for the v0 win criterion.
    pub const MAX_STEPS: usize = 200;

    /// Creates a CartPole whose initial-state randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut env = CartPole {
            rng: XorWow::seed_from_u64_value(seed ^ 0xCA57_0000),
            state: [0.0; 4],
            steps: 0,
            done: false,
        };
        env.reset();
        env
    }

    /// Current raw state `[x, x_dot, theta, theta_dot]`.
    pub fn state(&self) -> [f64; 4] {
        self.state
    }
}

impl Environment for CartPole {
    fn name(&self) -> &'static str {
        "CartPole_v0"
    }

    fn observation_dim(&self) -> usize {
        4
    }

    fn action_dim(&self) -> usize {
        1
    }

    fn action_kind(&self) -> ActionKind {
        ActionKind::Discrete(2)
    }

    fn reset_into(&mut self, obs: &mut [f64]) {
        for s in &mut self.state {
            *s = self.rng.uniform(-0.05, 0.05);
        }
        self.steps = 0;
        self.done = false;
        obs.copy_from_slice(&self.state);
    }

    fn step_into(&mut self, action: &[f64], obs: &mut [f64]) -> (f64, bool) {
        assert_eq!(action.len(), 1, "CartPole takes one binary output");
        if self.done {
            obs.copy_from_slice(&self.state);
            return (0.0, true);
        }
        let force = if binary_action(action[0]) {
            FORCE_MAG
        } else {
            -FORCE_MAG
        };
        let [x, x_dot, theta, theta_dot] = self.state;
        let cos_t = theta.cos();
        let sin_t = theta.sin();
        let temp = (force + POLE_MASS_LENGTH * theta_dot * theta_dot * sin_t) / TOTAL_MASS;
        let theta_acc = (GRAVITY * sin_t - cos_t * temp)
            / (LENGTH * (4.0 / 3.0 - MASS_POLE * cos_t * cos_t / TOTAL_MASS));
        let x_acc = temp - POLE_MASS_LENGTH * theta_acc * cos_t / TOTAL_MASS;
        self.state = [
            x + TAU * x_dot,
            x_dot + TAU * x_acc,
            theta + TAU * theta_dot,
            theta_dot + TAU * theta_acc,
        ];
        self.steps += 1;
        let fell = self.state[0].abs() > X_LIMIT || self.state[2].abs() > THETA_LIMIT;
        self.done = fell || self.steps >= Self::MAX_STEPS;
        obs.copy_from_slice(&self.state);
        (1.0, self.done)
    }

    fn max_steps(&self) -> usize {
        Self::MAX_STEPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_is_small_random_state() {
        let mut env = CartPole::new(1);
        let obs = env.reset();
        assert_eq!(obs.len(), 4);
        assert!(obs.iter().all(|v| v.abs() <= 0.05));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = CartPole::new(9);
        let mut b = CartPole::new(9);
        a.reset();
        b.reset();
        for _ in 0..50 {
            let sa = a.step(&[0.9]);
            let sb = b.step(&[0.9]);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn constant_push_fails_quickly() {
        let mut env = CartPole::new(3);
        env.reset();
        let mut steps = 0;
        loop {
            let s = env.step(&[1.0]); // always push right
            steps += 1;
            if s.done {
                break;
            }
        }
        assert!(steps < 200, "constant force should topple the pole");
    }

    #[test]
    fn alternating_policy_survives_longer_than_constant() {
        let run = |alternate: bool| {
            let mut env = CartPole::new(4);
            env.reset();
            let mut steps = 0usize;
            loop {
                // crude hand policy: push against pole lean
                let action = if alternate {
                    if env.state()[2] > 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    1.0
                };
                let s = env.step(&[action]);
                steps += 1;
                if s.done {
                    break;
                }
            }
            steps
        };
        assert!(run(true) > run(false));
    }

    #[test]
    fn episode_caps_at_200() {
        let mut env = CartPole::new(5);
        env.reset();
        let mut total = 0usize;
        for _ in 0..300 {
            // Near-perfect policy: push against lean.
            let a = if env.state()[2] > 0.0 { 1.0 } else { 0.0 };
            let s = env.step(&[a]);
            total += 1;
            if s.done {
                break;
            }
        }
        assert!(total <= 200);
    }

    #[test]
    fn step_after_done_is_inert() {
        let mut env = CartPole::new(6);
        env.reset();
        while !env.step(&[1.0]).done {}
        let s = env.step(&[1.0]);
        assert!(s.done);
        assert_eq!(s.reward, 0.0);
    }
}
