//! # genesys-gym — the GeneSys workload suite (Table I)
//!
//! Re-implementations of the environments the paper evaluates on:
//!
//! | Environment | Observation | Action (network outputs) |
//! |-------------|-------------|--------------------------|
//! | [`Acrobot`] | 6 floats | 1 float → torque ∈ {-1,0,1} |
//! | [`Bipedal`] | 24 floats | 4 continuous torques |
//! | [`CartPole`] | 4 floats | 1 binary value |
//! | [`MountainCar`] | 2 floats | 1 integer < 3 |
//! | [`LunarLander`] | 8 floats | 1 integer < 4 |
//! | Atari-RAM ([`atari_ram`]) | 128 bytes | 1 integer (button) |
//!
//! Classic-control dynamics are bit-faithful to OpenAI gym; the Box2D and
//! Atari workloads are reduced-order substitutes documented in
//! `DESIGN.md` §4.
//!
//! Every environment implements the buffer-writing primitives
//! [`Environment::reset_into`] / [`Environment::step_into`], and the
//! episode loops ([`rollout_with`], [`episode_rollout_with`], both built
//! on [`episode_into`]) reuse one [`RolloutScratch`] per worker — after
//! warm-up the steady-state rollout performs **zero heap allocations per
//! step** (proved by the workspace's counting-allocator test), with
//! fitness bit-identical to the allocating wrappers.
//!
//! For megapopulation throughput, [`episode_batch_into`] runs several
//! episode lanes of one policy in lockstep through the batched SoA
//! activation kernel (`Network::activate_batch_into`), reusing one
//! [`RolloutBatchScratch`] per worker; each lane's trajectory is
//! bit-identical to the scalar loop on the same environment.
//!
//! The [`evaluator`] module packages the suite as session workloads:
//! [`EpisodeEvaluator`] (one seeded episode per genome) and
//! [`DriftingEvaluator`] (the nonstationary continuous-learning scenario,
//! drift phase serialized across checkpoints) plug into
//! `genesys_neat::Session`.
//!
//! # Quickstart
//!
//! ```
//! use genesys_gym::{CartPole, Environment, rollout};
//! use genesys_neat::{Genome, NeatConfig, Network, XorWow};
//!
//! let config = NeatConfig::for_env("cartpole", 4, 1);
//! let genome = Genome::initial(0, &config, &mut XorWow::seed_from_u64_value(1));
//! let net = Network::from_genome(&genome)?;
//! let mut env = CartPole::new(42);
//! let fitness = rollout(&net, &mut env, 1);
//! assert!(fitness >= 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod acrobot;
pub mod atari_ram;
pub mod bipedal;
pub mod cartpole;
pub mod env;
pub mod evaluator;
pub mod lunar_lander;
pub mod mountain_car;
pub mod nonstationary;

pub use acrobot::Acrobot;
pub use atari_ram::{AirRaidRam, AlienRam, AmidarRam, AsterixRam, RamEnv, RamGame, RAM_SIZE};
pub use bipedal::Bipedal;
pub use cartpole::CartPole;
pub use env::{binary_action, quantize_action, ActionKind, Environment, Step};
pub use evaluator::{DriftingEvaluator, EpisodeEvaluator};
pub use lunar_lander::LunarLander;
pub use mountain_car::MountainCar;
pub use nonstationary::DriftingCartPole;

use genesys_neat::{BatchScratch, NeatConfig, Network, Scratch};

/// Reusable buffers for the steady-state rollout hot loop: one observation
/// slice, one action slice and one network [`Scratch`].
///
/// # Ownership rules
///
/// Like [`Scratch`], a `RolloutScratch` is pure workspace: reuse one
/// instance across steps, episodes, environments and networks of any size
/// (buffers grow to the largest interface seen and are retained), but
/// never share it between concurrent evaluations — give each worker its
/// own, e.g. through `genesys_neat::WorkerLocal`. Contents carry no
/// information between episodes; reuse changes performance only, never
/// results.
#[derive(Debug, Clone, Default)]
pub struct RolloutScratch {
    obs: Vec<f64>,
    action: Vec<f64>,
    net: Scratch,
}

impl RolloutScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> RolloutScratch {
        RolloutScratch::default()
    }
}

/// Runs one episode of `env` under the policy `net` using caller-owned
/// buffers, returning `(cumulative_reward, steps_taken)`.
///
/// This is **the** episode loop: [`rollout`], [`rollout_with`],
/// [`episode_rollout`] and [`episode_rollout_with`] (and the SoC
/// simulator's inference phase) all funnel through it, so the
/// reward/termination semantics cannot drift between entry points. After
/// the buffers have grown to the environment's interface (first call), the
/// loop performs **zero heap allocations per step**: observations are
/// written in place by [`Environment::step_into`] and the network
/// evaluates through [`Network::activate_into`].
pub fn episode_into(
    net: &Network,
    env: &mut dyn Environment,
    scratch: &mut RolloutScratch,
) -> (f64, u64) {
    scratch.obs.resize(env.observation_dim(), 0.0);
    scratch.action.resize(net.num_outputs(), 0.0);
    let obs = &mut scratch.obs[..env.observation_dim()];
    let action = &mut scratch.action[..net.num_outputs()];
    env.reset_into(obs);
    let mut fitness = 0.0;
    let mut steps = 0u64;
    loop {
        net.activate_into(&mut scratch.net, obs, action);
        let (reward, done) = env.step_into(action, obs);
        fitness += reward;
        steps += 1;
        if done {
            return (fitness, steps);
        }
    }
}

/// Reusable buffers for the batched rollout loop ([`episode_batch_into`]):
/// the SoA observation/action blocks (batch innermost, matching
/// [`genesys_neat::Network::activate_batch_into`]), per-lane bookkeeping,
/// one lane-staging pair for the [`Environment`] calls, and the network
/// [`BatchScratch`]. Same ownership rules as [`RolloutScratch`]: reuse one
/// per worker, never share concurrently.
#[derive(Debug, Clone, Default)]
pub struct RolloutBatchScratch {
    /// Observation block, `obs[i * batch + lane]`.
    obs: Vec<f64>,
    /// Action block, `action[o * batch + lane]`.
    action: Vec<f64>,
    /// One lane's observation, staged for `Environment::step_into`.
    lane_obs: Vec<f64>,
    /// One lane's action, gathered from the SoA action block.
    lane_action: Vec<f64>,
    fitness: Vec<f64>,
    steps: Vec<u64>,
    done: Vec<bool>,
    net: BatchScratch,
}

impl RolloutBatchScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> RolloutBatchScratch {
        RolloutBatchScratch::default()
    }

    /// Per-lane cumulative rewards of the most recent
    /// [`episode_batch_into`] call.
    pub fn lane_fitness(&self) -> &[f64] {
        &self.fitness
    }

    /// Per-lane step counts of the most recent [`episode_batch_into`] call.
    pub fn lane_steps(&self) -> &[u64] {
        &self.steps
    }
}

/// Runs one episode of **each** environment in `envs` under the policy
/// `net`, in lockstep through the batched SoA activation kernel
/// ([`genesys_neat::Network::activate_batch_into`]), returning
/// `(total_reward, total_steps)` summed over lanes in lane order.
/// Per-lane results stay readable via
/// [`RolloutBatchScratch::lane_fitness`] / [`RolloutBatchScratch::lane_steps`].
///
/// Each lane's trajectory is **bit-identical** to running
/// [`episode_into`] on the same `(net, env)` pair alone: the batched
/// kernel is per-lane bit-identical to the scalar one, and a lane stops
/// stepping its environment the moment its episode terminates (further
/// lockstep evaluations ignore finished lanes). After warm-up the loop
/// performs zero heap allocations per step.
///
/// # Panics
///
/// Panics if `envs` is empty or an environment's interface does not match
/// the network's.
pub fn episode_batch_into(
    net: &Network,
    envs: &mut [Box<dyn Environment>],
    scratch: &mut RolloutBatchScratch,
) -> (f64, u64) {
    let batch = envs.len();
    assert!(batch > 0, "at least one environment lane required");
    let obs_dim = envs[0].observation_dim();
    let act_dim = net.num_outputs();
    scratch.obs.resize(obs_dim * batch, 0.0);
    scratch.action.resize(act_dim * batch, 0.0);
    scratch.lane_obs.resize(obs_dim, 0.0);
    scratch.lane_action.resize(act_dim, 0.0);
    scratch.fitness.clear();
    scratch.fitness.resize(batch, 0.0);
    scratch.steps.clear();
    scratch.steps.resize(batch, 0);
    scratch.done.clear();
    scratch.done.resize(batch, false);
    let obs = &mut scratch.obs[..obs_dim * batch];
    let action = &mut scratch.action[..act_dim * batch];
    let lane_obs = &mut scratch.lane_obs[..obs_dim];
    let lane_action = &mut scratch.lane_action[..act_dim];
    for (b, env) in envs.iter_mut().enumerate() {
        assert_eq!(
            env.observation_dim(),
            obs_dim,
            "all lanes must share one observation dimension"
        );
        env.reset_into(lane_obs);
        for (i, &v) in lane_obs.iter().enumerate() {
            obs[i * batch + b] = v;
        }
    }
    let mut live = batch;
    while live > 0 {
        net.activate_batch_into(&mut scratch.net, batch, obs, action);
        for (b, env) in envs.iter_mut().enumerate() {
            if scratch.done[b] {
                continue;
            }
            for (o, slot) in lane_action.iter_mut().enumerate() {
                *slot = action[o * batch + b];
            }
            let (reward, done) = env.step_into(lane_action, lane_obs);
            scratch.fitness[b] += reward;
            scratch.steps[b] += 1;
            for (i, &v) in lane_obs.iter().enumerate() {
                obs[i * batch + b] = v;
            }
            if done {
                scratch.done[b] = true;
                live -= 1;
            }
        }
    }
    let total_fitness = scratch.fitness.iter().sum();
    let total_steps = scratch.steps.iter().sum();
    (total_fitness, total_steps)
}

/// Derives the environment seed for one genome's episode: a SplitMix64-style
/// mix of the run's base seed, the generation index, and the genome's index
/// within the generation.
///
/// This is the determinism half of the evaluation-engine contract (see
/// `genesys_neat::executor`): because the seed is a pure function of
/// `(base, generation, index)` — never of a worker id or a shared counter —
/// episode evaluation produces bit-identical fitness whether the population
/// is evaluated serially or spread over any number of work-stealing workers.
pub fn episode_seed(base: u64, generation: u64, index: u64) -> u64 {
    // Delegates to the session API's seed mix: the formulas are one and
    // the same, so episode seeds predating `Session` remain bit-valid.
    genesys_neat::EvalContext {
        base_seed: base,
        generation,
        index,
    }
    .seed()
}

/// Runs one episode of `kind` seeded with `env_seed` under the policy
/// `net`, returning `(cumulative_reward, steps_taken)`. This is the unit of
/// work the persistent evaluation engine schedules: self-contained (builds
/// its own environment), deterministic in `(kind, net, env_seed)`, and
/// step-counted so the harness can aggregate environment traffic without
/// order-sensitive shared state.
pub fn episode_rollout(kind: EnvKind, net: &Network, env_seed: u64) -> (f64, u64) {
    episode_rollout_with(kind, net, env_seed, &mut RolloutScratch::new())
}

/// [`episode_rollout`] with caller-owned buffers: the zero-allocation form
/// the evaluation engine's workers call, reusing one [`RolloutScratch`]
/// per worker across every episode and generation. Heap allocation happens
/// only at episode setup (environment construction) — never per step.
pub fn episode_rollout_with(
    kind: EnvKind,
    net: &Network,
    env_seed: u64,
    scratch: &mut RolloutScratch,
) -> (f64, u64) {
    let mut env = kind.make(env_seed);
    episode_into(net, env.as_mut(), scratch)
}

/// Runs `episodes` episodes of `env` under the policy `net`, returning the
/// mean cumulative reward — the fitness value step 6 of the SoC walkthrough
/// augments to the genome.
///
/// # Panics
///
/// Panics if `episodes == 0`.
pub fn rollout(net: &Network, env: &mut dyn Environment, episodes: usize) -> f64 {
    rollout_with(net, env, episodes, &mut RolloutScratch::new())
}

/// [`rollout`] with caller-owned buffers (see [`RolloutScratch`]); the
/// episode loop is shared with [`episode_rollout_with`] via
/// [`episode_into`].
///
/// # Panics
///
/// Panics if `episodes == 0`.
pub fn rollout_with(
    net: &Network,
    env: &mut dyn Environment,
    episodes: usize,
    scratch: &mut RolloutScratch,
) -> f64 {
    assert!(episodes > 0, "at least one episode required");
    let mut total = 0.0;
    for _ in 0..episodes {
        total += episode_into(net, env, scratch).0;
    }
    total / episodes as f64
}

/// The workload suite, by paper label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnvKind {
    /// CartPole-v0.
    CartPole,
    /// MountainCar-v0.
    MountainCar,
    /// Acrobot.
    Acrobot,
    /// LunarLander-v2.
    LunarLander,
    /// Bipedal walker.
    Bipedal,
    /// AirRaid-ram-v0.
    AirRaid,
    /// Alien-ram-v0.
    Alien,
    /// Amidar-ram-v0.
    Amidar,
    /// Asterix-ram-v0.
    Asterix,
}

impl EnvKind {
    /// The six workloads of the paper's Fig 9/10 evaluation.
    pub const FIG9_SUITE: [EnvKind; 6] = [
        EnvKind::CartPole,
        EnvKind::MountainCar,
        EnvKind::LunarLander,
        EnvKind::AirRaid,
        EnvKind::Amidar,
        EnvKind::Alien,
    ];

    /// Every implemented workload.
    pub const ALL: [EnvKind; 9] = [
        EnvKind::CartPole,
        EnvKind::MountainCar,
        EnvKind::Acrobot,
        EnvKind::LunarLander,
        EnvKind::Bipedal,
        EnvKind::AirRaid,
        EnvKind::Alien,
        EnvKind::Amidar,
        EnvKind::Asterix,
    ];

    /// Paper-style display label.
    pub fn label(self) -> &'static str {
        match self {
            EnvKind::CartPole => "CartPole_v0",
            EnvKind::MountainCar => "MountainCar_v0",
            EnvKind::Acrobot => "Acrobot",
            EnvKind::LunarLander => "LunarLander_v2",
            EnvKind::Bipedal => "BipedalWalker",
            EnvKind::AirRaid => "AirRaid-ram-v0",
            EnvKind::Alien => "Alien-ram-v0",
            EnvKind::Amidar => "Amidar-ram-v0",
            EnvKind::Asterix => "Asterix-ram-v0",
        }
    }

    /// `(observation_dim, action_dim)`: the NEAT interface sizes.
    pub fn interface(self) -> (usize, usize) {
        match self {
            EnvKind::CartPole => (4, 1),
            EnvKind::MountainCar => (2, 1),
            EnvKind::Acrobot => (6, 1),
            EnvKind::LunarLander => (8, 1),
            EnvKind::Bipedal => (24, 4),
            EnvKind::AirRaid | EnvKind::Alien | EnvKind::Amidar | EnvKind::Asterix => (128, 1),
        }
    }

    /// True for the 128-byte RAM workloads.
    pub fn is_atari(self) -> bool {
        matches!(
            self,
            EnvKind::AirRaid | EnvKind::Alien | EnvKind::Amidar | EnvKind::Asterix
        )
    }

    /// Instantiates the environment with a seed.
    pub fn make(self, seed: u64) -> Box<dyn Environment> {
        match self {
            EnvKind::CartPole => Box::new(CartPole::new(seed)),
            EnvKind::MountainCar => Box::new(MountainCar::new(seed)),
            EnvKind::Acrobot => Box::new(Acrobot::new(seed)),
            EnvKind::LunarLander => Box::new(LunarLander::new(seed)),
            EnvKind::Bipedal => Box::new(Bipedal::new(seed)),
            EnvKind::AirRaid => Box::new(AirRaidRam::from_seed(seed)),
            EnvKind::Alien => Box::new(AlienRam::from_seed(seed)),
            EnvKind::Amidar => Box::new(AmidarRam::from_seed(seed)),
            EnvKind::Asterix => Box::new(AsterixRam::from_seed(seed)),
        }
    }

    /// A [`NeatConfig`] preset tuned for this workload (paper defaults:
    /// population 150, initial zero-weight full connection).
    pub fn neat_config(self) -> NeatConfig {
        let (inputs, outputs) = self.interface();
        let family = match self {
            EnvKind::CartPole => "cartpole",
            EnvKind::MountainCar => "mountaincar",
            EnvKind::Acrobot => "acrobot",
            EnvKind::LunarLander => "lunarlander",
            EnvKind::Bipedal => "bipedal",
            _ => "atari",
        };
        NeatConfig::for_env(family, inputs, outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesys_neat::{Genome, XorWow};
    use std::collections::HashSet;

    #[test]
    fn every_env_matches_its_declared_interface() {
        for kind in EnvKind::ALL {
            let mut env = kind.make(5);
            let (obs_dim, act_dim) = kind.interface();
            assert_eq!(env.observation_dim(), obs_dim, "{}", kind.label());
            assert_eq!(env.action_dim(), act_dim, "{}", kind.label());
            let obs = env.reset();
            assert_eq!(obs.len(), obs_dim, "{}", kind.label());
            let step = env.step(&vec![0.5; act_dim]);
            assert_eq!(step.observation.len(), obs_dim, "{}", kind.label());
            assert!(step.reward.is_finite());
        }
    }

    #[test]
    fn rollout_runs_initial_genomes_on_all_envs() {
        for kind in EnvKind::ALL {
            let config = kind.neat_config();
            let genome = Genome::initial(0, &config, &mut XorWow::seed_from_u64_value(3));
            let net = genesys_neat::Network::from_genome(&genome).unwrap();
            let mut env = kind.make(11);
            let fit = rollout(&net, env.as_mut(), 1);
            assert!(fit.is_finite(), "{}: {fit}", kind.label());
        }
    }

    #[test]
    fn episodes_terminate_within_max_steps() {
        for kind in EnvKind::ALL {
            let mut env = kind.make(17);
            let act_dim = env.action_dim();
            env.reset();
            let mut steps = 0usize;
            loop {
                let s = env.step(&vec![0.61; act_dim]);
                steps += 1;
                if s.done {
                    break;
                }
                assert!(
                    steps <= env.max_steps() + 1,
                    "{} exceeded its step limit",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn neat_configs_are_valid_for_all_envs() {
        for kind in EnvKind::ALL {
            assert!(kind.neat_config().validate().is_ok(), "{}", kind.label());
        }
    }

    #[test]
    fn fig9_suite_is_subset_of_all() {
        for kind in EnvKind::FIG9_SUITE {
            assert!(EnvKind::ALL.contains(&kind));
        }
    }

    #[test]
    fn episode_seed_is_deterministic_and_index_sensitive() {
        assert_eq!(episode_seed(7, 3, 11), episode_seed(7, 3, 11));
        let mut seen = HashSet::new();
        for generation in 0..8u64 {
            for index in 0..64u64 {
                seen.insert(episode_seed(42, generation, index));
            }
        }
        assert_eq!(seen.len(), 8 * 64, "seeds must not collide across jobs");
    }

    #[test]
    fn shared_scratch_across_all_envs_matches_fresh_buffers() {
        // One RolloutScratch reused across every env kind (interfaces from
        // 2 to 128 observations) must be bit-identical to fresh buffers.
        let mut scratch = RolloutScratch::new();
        for kind in EnvKind::ALL {
            let config = kind.neat_config();
            let genome = Genome::initial(0, &config, &mut XorWow::seed_from_u64_value(3));
            let net = genesys_neat::Network::from_genome(&genome).unwrap();
            let reused = episode_rollout_with(kind, &net, 21, &mut scratch);
            let fresh = episode_rollout(kind, &net, 21);
            assert_eq!(reused, fresh, "{}", kind.label());
        }
    }

    #[test]
    fn rollout_with_matches_rollout() {
        let kind = EnvKind::MountainCar;
        let config = kind.neat_config();
        let genome = Genome::initial(0, &config, &mut XorWow::seed_from_u64_value(5));
        let net = genesys_neat::Network::from_genome(&genome).unwrap();
        let mut scratch = RolloutScratch::new();
        let a = rollout_with(&net, kind.make(33).as_mut(), 3, &mut scratch);
        let b = rollout(&net, kind.make(33).as_mut(), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn step_into_matches_allocating_step() {
        // The provided reset/step wrappers and the buffer-writing
        // primitives must produce bit-identical trajectories.
        for kind in EnvKind::ALL {
            let mut a = kind.make(7);
            let mut b = kind.make(7);
            let act_dim = a.action_dim();
            let action = vec![0.61; act_dim];
            let mut obs = vec![0.0; a.observation_dim()];
            a.reset_into(&mut obs);
            assert_eq!(obs, b.reset(), "{}", kind.label());
            for _ in 0..50 {
                let (reward, done) = a.step_into(&action, &mut obs);
                let step = b.step(&action);
                assert_eq!(obs, step.observation, "{}", kind.label());
                assert_eq!(reward, step.reward, "{}", kind.label());
                assert_eq!(done, step.done, "{}", kind.label());
                if done {
                    break;
                }
            }
        }
    }

    #[test]
    fn episode_rollout_matches_manual_loop() {
        let kind = EnvKind::CartPole;
        let config = kind.neat_config();
        let genome = Genome::initial(0, &config, &mut XorWow::seed_from_u64_value(3));
        let net = genesys_neat::Network::from_genome(&genome).unwrap();
        let (fit, steps) = episode_rollout(kind, &net, 99);
        assert!(steps > 0);
        let mut env = kind.make(99);
        assert_eq!(fit, rollout(&net, env.as_mut(), 1));
        // Same seed, same episode — bit-identical.
        assert_eq!((fit, steps), episode_rollout(kind, &net, 99));
    }

    /// A genome with a little evolved structure, so the batched kernel
    /// exercises hidden nodes and non-trivial fan-in.
    fn evolved_net(kind: EnvKind, seed: u64) -> genesys_neat::Network {
        let config = kind.neat_config();
        let mut rng = XorWow::seed_from_u64_value(seed);
        let mut innov = genesys_neat::InnovationTracker::new(config.first_hidden_id());
        let mut genome = Genome::initial(0, &config, &mut rng);
        let mut ops = genesys_neat::trace::OpCounters::new();
        for _ in 0..4 {
            genome.mutate_add_node(&mut innov, &mut rng, &mut ops);
            genome.mutate_add_conn(&mut rng, &mut ops);
            genome.mutate_attributes(&config, &mut rng, &mut ops);
        }
        genesys_neat::Network::from_genome(&genome).unwrap()
    }

    #[test]
    fn batched_episode_lanes_are_bit_identical_to_scalar_episodes() {
        for kind in [
            EnvKind::CartPole,
            EnvKind::MountainCar,
            EnvKind::LunarLander,
        ] {
            let net = evolved_net(kind, 13);
            let mut batch_scratch = RolloutBatchScratch::new();
            for batch in [1usize, 2, 5, 8] {
                let mut envs: Vec<Box<dyn Environment>> =
                    (0..batch).map(|b| kind.make(200 + b as u64)).collect();
                let (total_fit, total_steps) =
                    episode_batch_into(&net, &mut envs, &mut batch_scratch);
                let mut scratch = RolloutScratch::new();
                let mut want_fit = 0.0;
                let mut want_steps = 0u64;
                for b in 0..batch {
                    let mut env = kind.make(200 + b as u64);
                    let (fit, steps) = episode_into(&net, env.as_mut(), &mut scratch);
                    assert_eq!(
                        batch_scratch.lane_fitness()[b].to_bits(),
                        fit.to_bits(),
                        "{} lane {b} of batch {batch}",
                        kind.label()
                    );
                    assert_eq!(
                        batch_scratch.lane_steps()[b],
                        steps,
                        "{} lane {b} of batch {batch}",
                        kind.label()
                    );
                    want_fit += fit;
                    want_steps += steps;
                }
                assert_eq!(total_fit.to_bits(), want_fit.to_bits(), "{}", kind.label());
                assert_eq!(total_steps, want_steps, "{}", kind.label());
            }
        }
    }

    #[test]
    fn batch_scratch_reuse_matches_fresh_buffers() {
        let net = evolved_net(EnvKind::CartPole, 29);
        let mut reused = RolloutBatchScratch::new();
        // Vary the lane count (and therefore every buffer size) between
        // calls; a reused scratch must never leak state across calls.
        for round in 0..6u64 {
            let batch = 1 + (round as usize * 3) % 7;
            let mut envs: Vec<Box<dyn Environment>> = (0..batch)
                .map(|b| EnvKind::CartPole.make(round * 31 + b as u64))
                .collect();
            let with_reuse = episode_batch_into(&net, &mut envs, &mut reused);
            let mut envs: Vec<Box<dyn Environment>> = (0..batch)
                .map(|b| EnvKind::CartPole.make(round * 31 + b as u64))
                .collect();
            let fresh = episode_batch_into(&net, &mut envs, &mut RolloutBatchScratch::new());
            assert_eq!(with_reuse.0.to_bits(), fresh.0.to_bits());
            assert_eq!(with_reuse.1, fresh.1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one environment lane")]
    fn empty_batch_panics() {
        let net = evolved_net(EnvKind::CartPole, 1);
        episode_batch_into(&net, &mut [], &mut RolloutBatchScratch::new());
    }
}
