//! Proof of the zero-allocation steady state: once the rollout buffers
//! have grown (episode/plan setup), the inference hot loop — network
//! activation through the compiled SoA plan plus environment stepping via
//! `step_into` — performs **no heap allocation per step**, for every
//! environment kind in the suite. This is the software mirror of the
//! paper's premise that EvE/ADAM execute gene-level operations out of
//! fixed buffers with no dynamic memory.

use genesys::gym::{
    episode_batch_into, episode_into, EnvKind, Environment, RolloutBatchScratch, RolloutScratch,
};
use genesys::neat::trace::OpCounters;
use genesys::neat::{
    Activation, Aggregation, ConnGene, Genome, InnovationTracker, Network, NetworkPlan, NodeGene,
    NodeId, Scratch, XorWow,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts every allocation and reallocation
/// (frees are not counted: the contract is "no new heap traffic", and a
/// free implies a preceding allocation anyway).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// Builds a policy with hidden structure so the measured loop walks a
/// multi-wavefront plan, not just the initial input→output matrix.
fn evolved_net(kind: EnvKind) -> Network {
    let config = kind.neat_config();
    let mut rng = XorWow::seed_from_u64_value(11);
    let mut innov = InnovationTracker::new(config.first_hidden_id());
    let mut genome = Genome::initial(0, &config, &mut rng);
    let mut ops = OpCounters::new();
    for _ in 0..4 {
        genome.mutate_add_node(&mut innov, &mut rng, &mut ops);
        genome.mutate_add_conn(&mut rng, &mut ops);
        genome.mutate_attributes(&config, &mut rng, &mut ops);
    }
    Network::from_genome(&genome).expect("mutated genome stays acyclic")
}

// NOTE: the allocation counter is process-global, so everything that
// measures it lives in ONE #[test] — libtest runs separate tests on
// parallel threads, and a sibling test's setup allocations landing inside
// a measurement window would make the gate flaky.

/// Runs a measurement window up to three times and returns the last
/// attempt's allocation delta. Even with one test, the libtest harness
/// keeps bookkeeping threads in this process whose rare allocations can
/// land inside a window; such a blip does not repeat across attempts,
/// while a genuine hot-loop allocation is deterministic (every measured
/// trajectory is a pure function of its seed) and fails all three.
fn measured_delta(mut measure: impl FnMut() -> u64) -> u64 {
    let mut delta = 0;
    for _ in 0..3 {
        delta = measure();
        if delta == 0 {
            break;
        }
    }
    delta
}

#[test]
fn steady_state_rollout_does_not_allocate() {
    // ---- per-step granularity, every env kind --------------------------
    for kind in EnvKind::ALL {
        // Episode/plan setup: allocation is allowed here.
        let net = evolved_net(kind);
        let mut obs = vec![0.0f64; kind.make(42).observation_dim()];
        let mut action = vec![0.0f64; net.num_outputs()];
        let mut scratch = Scratch::new();
        let mut steps = 0u64;
        let leaked = measured_delta(|| {
            let mut env = kind.make(42);
            env.reset_into(&mut obs);
            // Warm the scratch buffers (they grow on first use); the
            // episode must survive warmup or the measured loop would only
            // cover the inert done-state early return.
            let mut warm_done = false;
            for _ in 0..3 {
                net.activate_into(&mut scratch, &obs, &mut action);
                warm_done = env.step_into(&action, &mut obs).1;
            }
            assert!(!warm_done, "{}: episode ended during warmup", kind.label());

            // Steady state: zero heap allocations per step.
            let before = allocations();
            steps = 0;
            loop {
                net.activate_into(&mut scratch, &obs, &mut action);
                let (reward, done) = env.step_into(&action, &mut obs);
                assert!(reward.is_finite());
                steps += 1;
                if done || steps >= 500 {
                    break;
                }
            }
            let after = allocations();
            assert!(steps > 1, "{}: no live steps were measured", kind.label());
            after - before
        });
        assert_eq!(
            leaked,
            0,
            "{}: {} heap allocations leaked into {} steady-state steps",
            kind.label(),
            leaked,
            steps
        );
    }

    // ---- full-episode granularity through the public entry point -------
    // With a warmed RolloutScratch, repeated episodes on a live env
    // allocate only for episode setup, independent of episode length.
    let kind = EnvKind::CartPole;
    let net = evolved_net(kind);
    let mut scratch = RolloutScratch::new();
    let mut env = kind.make(7);
    let (_, warm_steps) = episode_into(&net, env.as_mut(), &mut scratch);
    assert!(warm_steps > 0);

    let mut steps = 0u64;
    let leaked = measured_delta(|| {
        let before = allocations();
        let (_, episode_steps) = episode_into(&net, env.as_mut(), &mut scratch);
        let after = allocations();
        steps = episode_steps;
        assert!(steps > 1);
        after - before
    });
    assert_eq!(
        leaked, 0,
        "whole warmed episode ({steps} steps) must not allocate"
    );

    // ---- batched rollout lanes ------------------------------------------
    // With a warmed RolloutBatchScratch, a whole batched episode set (all
    // lanes stepped in lockstep through the SoA kernel) allocates nothing:
    // the env boxes are built before the window and `episode_batch_into`
    // reuses every block buffer across calls.
    const LANES: usize = 8;
    let kind = EnvKind::CartPole;
    let net = evolved_net(kind);
    let mut batch_scratch = RolloutBatchScratch::new();
    let mut envs: Vec<Box<dyn Environment>> =
        (0..LANES).map(|b| kind.make(300 + b as u64)).collect();
    let (_, warm_steps) = episode_batch_into(&net, &mut envs, &mut batch_scratch);
    assert!(warm_steps as usize >= LANES);

    let mut steps = 0u64;
    let leaked = measured_delta(|| {
        let before = allocations();
        let (_, batch_steps) = episode_batch_into(&net, &mut envs, &mut batch_scratch);
        let after = allocations();
        steps = batch_steps;
        assert!(steps as usize > LANES);
        after - before
    });
    assert_eq!(
        leaked, 0,
        "warmed batched rollout ({LANES} lanes, {steps} total steps) must not allocate"
    );

    // ---- median-heavy plan at high fan-in -------------------------------
    // A Median node with more incoming edges than the stdlib sort's
    // on-stack threshold used to allocate inside `sort_by` every step; the
    // in-place Scratch-backed sort must not. 48-wide fan-in is well past
    // the threshold (~20).
    const FAN_IN: usize = 48;
    let mut nodes: Vec<NodeGene> = (0..FAN_IN)
        .map(|i| NodeGene::input(NodeId(i as u32)))
        .collect();
    let mut out_node = NodeGene::output(NodeId(FAN_IN as u32));
    out_node.activation = Activation::Identity;
    out_node.aggregation = Aggregation::Median;
    nodes.push(out_node);
    let conns: Vec<ConnGene> = (0..FAN_IN)
        .map(|i| {
            ConnGene::new(
                NodeId(i as u32),
                NodeId(FAN_IN as u32),
                if i % 2 == 0 { 1.0 } else { -1.5 },
            )
        })
        .collect();
    let median_genome =
        Genome::from_parts(0, FAN_IN, 1, nodes, conns).expect("median genome is valid");
    let median_net = Network::from_genome(&median_genome).expect("compiles");
    let mut scratch = Scratch::new();
    let mut action = [0.0f64];
    let mut obs = vec![0.0f64; FAN_IN];
    // Warm the value/sort buffers, then demand zero steady-state traffic.
    median_net.activate_into(&mut scratch, &obs, &mut action);
    let leaked = measured_delta(|| {
        let before = allocations();
        for step in 0..200 {
            for (i, o) in obs.iter_mut().enumerate() {
                *o = ((step * 31 + i * 7) % 17) as f64 - 8.0;
            }
            median_net.activate_into(&mut scratch, &obs, &mut action);
            assert!(action[0].is_finite());
        }
        let after = allocations();
        after - before
    });
    assert_eq!(
        leaked, 0,
        "median fold at fan-in {FAN_IN} must not allocate in steady state"
    );

    // ---- elite recompilation through a warmed NetworkPlan ---------------
    // The evaluation fan-out recompiles every genome every generation.
    // Before plan reuse, each recompile was a fresh `Network::from_genome`
    // (HashMaps + a dozen Vecs per genome — including for unchanged
    // elites). Through a warm per-worker plan, recompiling the same
    // genome performs ZERO heap allocations, and the compiled plan is
    // bit-identical to the one-shot compiler's.
    let config = EnvKind::CartPole.neat_config();
    let mut rng = XorWow::seed_from_u64_value(23);
    let mut innov = InnovationTracker::new(config.first_hidden_id());
    let mut elite = Genome::initial(0, &config, &mut rng);
    let mut ops = OpCounters::new();
    for _ in 0..4 {
        elite.mutate_add_node(&mut innov, &mut rng, &mut ops);
        elite.mutate_add_conn(&mut rng, &mut ops);
        elite.mutate_attributes(&config, &mut rng, &mut ops);
    }
    let mut plan = NetworkPlan::new();
    Network::compile_into(&mut plan, &elite).expect("elite compiles"); // warm
    let reference = plan.network().clone();
    let leaked = measured_delta(|| {
        let before = allocations();
        for _ in 0..100 {
            Network::compile_into(&mut plan, &elite).expect("elite compiles");
        }
        let after = allocations();
        after - before
    });
    assert_eq!(
        leaked, 0,
        "recompiling an unchanged elite through a warm plan must not allocate"
    );
    assert_eq!(
        plan.network(),
        &reference,
        "plan reuse never changes the compiled network"
    );
    assert_eq!(
        plan.network(),
        &Network::from_genome(&elite).expect("compiles")
    );
}
