//! Offline shim for the `criterion` 0.5 API surface used by this
//! workspace's benches.
//!
//! The container building this repo has no registry access, so this crate
//! stands in for criterion: call-site compatible (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`), with a simple measurement loop
//! that warms up, times a batch of iterations, and prints the mean
//! wall-clock per iteration (plus throughput when declared). No statistics,
//! plots, or HTML reports — swap for crates.io criterion to get those.

#![deny(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput declaration for a benchmark (affects reporting only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A parameter-only id, for groups whose name carries the function.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then a measured batch. The batch
    /// is cut short once it exceeds the per-benchmark time budget so heavy
    /// routines (whole NEAT generations) stay tractable.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            black_box(routine());
            iters += 1;
            if start.elapsed() > budget {
                break;
            }
        }
        self.measured = Some((start.elapsed(), iters.max(1)));
    }
}

/// Top-level benchmark driver (a skeletal `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = group_name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_one(None, &id.into(), sample_size, None, f);
        self
    }
}

/// A group of benchmarks sharing a name and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            Some(&self.name),
            &id.into(),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            Some(&self.name),
            &id.into(),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (reporting is already flushed per benchmark).
    pub fn finish(self) {}
}

fn run_one<F>(
    group: Option<&str>,
    id: &BenchmarkId,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        measured: None,
    };
    f(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    match bencher.measured {
        Some((elapsed, iters)) => {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  ({:.3e} elem/s)", n as f64 / per_iter)
                }
                Some(Throughput::Bytes(n)) => format!("  ({:.3e} B/s)", n as f64 / per_iter),
                None => String::new(),
            };
            println!(
                "  {label:<40} {:.3e} s/iter over {iters} iters{rate}",
                per_iter
            );
        }
        None => println!("  {label:<40} (no measurement: Bencher::iter never called)"),
    }
}

/// Declares a function that runs the listed benchmark targets
/// (`criterion_group!(benches, bench_a, bench_b);`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` to run one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(1));
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // warm-up + up to sample_size measured iterations
        assert!(calls >= 2);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let data = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::from_parameter(3), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("Tree").to_string(), "Tree");
    }
}
