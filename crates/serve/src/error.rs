//! The unified error surface: one typed hierarchy covering frame parsing,
//! session construction, snapshot decoding, admission control and I/O,
//! with **stable numeric codes** on the wire.
//!
//! Before this crate, a caller juggling a server had three unrelated error
//! types: `genesys_neat::SessionError` (state validation),
//! `genesys_core::snapshot::SnapshotError` (image decoding) and whatever
//! ad-hoc I/O errors leaked through. [`ServeError`] unifies them — the
//! originals are embedded, not re-stated, so nothing is lost — and adds
//! the protocol-level failures a wire surface needs ([`FrameError`]).
//!
//! # Wire codes
//!
//! Every error maps to a stable `u32` via [`ServeError::code`]; the codes
//! are part of the wire format and never renumbered (new errors take new
//! codes). Ranges:
//!
//! | range | class                                         |
//! |-------|-----------------------------------------------|
//! | 1xx   | frame/protocol ([`FrameError`])               |
//! | 2xx   | admission & session-table                     |
//! | 3xx   | snapshot payloads (`SnapshotError`)           |
//! | 4xx   | evolution-state validation (`SessionError`)   |
//! | 5xx   | transport/server                              |
//!
//! An error that crosses the wire arrives on the client as
//! [`ServeError::Remote`], preserving the numeric code and rendered
//! message (the structured fields stay server-side; the code is the
//! machine-readable part of the contract, locked by
//! `tests/serve_protocol.rs`).

use genesys_core::snapshot::SnapshotError;
use genesys_neat::SessionError;
use std::error::Error;
use std::fmt;

/// A malformed or unparseable protocol frame. Adversarial bytes always
/// land here — never in a panic (proptested in `tests/serve_protocol.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The frame body ended before the structure it declares.
    Truncated {
        /// Byte offset at which more data was expected.
        offset: usize,
    },
    /// A frame declared a length beyond [`crate::protocol::MAX_FRAME_BYTES`].
    Oversize {
        /// The declared length.
        len: usize,
    },
    /// The frame's protocol-version byte is not
    /// [`crate::protocol::PROTOCOL_VERSION`].
    BadVersion(u8),
    /// The request verb code is not one this server knows.
    UnknownVerb(u16),
    /// The reply tag code is not one this client knows.
    UnknownTag(u16),
    /// A structurally well-formed frame carried an invalid value.
    BadPayload(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { offset } => write!(f, "frame truncated at byte {offset}"),
            FrameError::Oversize { len } => write!(f, "frame of {len} bytes exceeds the limit"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::UnknownVerb(v) => write!(f, "unknown request verb {v}"),
            FrameError::UnknownTag(t) => write!(f, "unknown reply tag {t}"),
            FrameError::BadPayload(what) => write!(f, "bad frame payload: {what}"),
        }
    }
}

/// The one error type of the serving layer; see the [module docs](self)
/// for the hierarchy and code ranges.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A protocol frame failed to parse.
    Frame(FrameError),
    /// The referenced session id is not in the session table.
    UnknownSession(u64),
    /// Admission control rejected a new session: the table is at
    /// `max_sessions`.
    ServerFull {
        /// Live sessions at rejection time.
        live: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The session has queued generations and cannot be evicted until
    /// they drain.
    SessionBusy(u64),
    /// A snapshot-image payload (submit config, resume/checkpoint state,
    /// observe event) failed to decode.
    Snapshot(SnapshotError),
    /// A decoded evolution state or configuration failed validation.
    Session(SessionError),
    /// Disk or socket I/O failed (spill write, rehydration read,
    /// transport). Carries the rendered `std::io::Error`.
    Io(String),
    /// The server/scheduler thread is gone (shut down or panicked).
    Disconnected,
    /// An error reported by the remote peer, preserving its wire code.
    Remote {
        /// The stable numeric code ([`ServeError::code`] of the original).
        code: u32,
        /// The rendered message.
        message: String,
    },
}

impl ServeError {
    /// The stable numeric wire code; see the [module docs](self) for the
    /// ranges. Locked by `tests/serve_protocol.rs` — codes are never
    /// renumbered.
    pub fn code(&self) -> u32 {
        match self {
            ServeError::Frame(FrameError::Truncated { .. }) => 100,
            ServeError::Frame(FrameError::Oversize { .. }) => 101,
            ServeError::Frame(FrameError::BadVersion(_)) => 102,
            ServeError::Frame(FrameError::UnknownVerb(_)) => 103,
            ServeError::Frame(FrameError::UnknownTag(_)) => 104,
            ServeError::Frame(FrameError::BadPayload(_)) => 105,
            ServeError::UnknownSession(_) => 200,
            ServeError::ServerFull { .. } => 201,
            ServeError::SessionBusy(_) => 202,
            ServeError::Snapshot(e) => match e {
                SnapshotError::BadMagic => 300,
                SnapshotError::UnsupportedVersion(_) => 301,
                SnapshotError::Truncated { .. } => 302,
                SnapshotError::ChecksumMismatch => 303,
                SnapshotError::LengthMismatch => 304,
                SnapshotError::Gene(_) => 305,
                SnapshotError::Malformed(_) => 306,
                SnapshotError::InvalidGenome(_) => 307,
                SnapshotError::InvalidState(_) => 308,
                SnapshotError::NodeIdOverflow { .. } => 309,
            },
            ServeError::Session(e) => match e {
                SessionError::Config(_) => 400,
                SessionError::EmptyState => 401,
                SessionError::PopulationSizeMismatch { .. } => 402,
                SessionError::InterfaceMismatch { .. } => 403,
                SessionError::MemberOutOfRange { .. } => 404,
                SessionError::BackendMismatch => 405,
            },
            ServeError::Io(_) => 500,
            ServeError::Disconnected => 501,
            ServeError::Remote { code, .. } => *code,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Frame(e) => write!(f, "protocol: {e}"),
            ServeError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServeError::ServerFull { live, cap } => {
                write!(f, "server full: {live} live sessions at cap {cap}")
            }
            ServeError::SessionBusy(id) => {
                write!(f, "session {id} has queued generations")
            }
            ServeError::Snapshot(e) => write!(f, "snapshot payload: {e}"),
            ServeError::Session(e) => write!(f, "session state: {e}"),
            ServeError::Io(e) => write!(f, "i/o: {e}"),
            ServeError::Disconnected => write!(f, "server disconnected"),
            ServeError::Remote { code, message } => {
                write!(f, "remote error {code}: {message}")
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Snapshot(e) => Some(e),
            ServeError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for ServeError {
    fn from(e: FrameError) -> Self {
        ServeError::Frame(e)
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

impl From<SessionError> for ServeError {
    fn from(e: SessionError) -> Self {
        ServeError::Session(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_fall_in_their_documented_ranges() {
        assert_eq!(
            ServeError::Frame(FrameError::Truncated { offset: 0 }).code(),
            100
        );
        assert_eq!(ServeError::UnknownSession(1).code(), 200);
        assert_eq!(ServeError::Snapshot(SnapshotError::BadMagic).code(), 300);
        assert_eq!(ServeError::Session(SessionError::EmptyState).code(), 401);
        assert_eq!(ServeError::Io(String::new()).code(), 500);
        let remote = ServeError::Remote {
            code: 303,
            message: "x".into(),
        };
        assert_eq!(remote.code(), 303, "remote errors preserve the code");
    }

    #[test]
    fn display_and_source_are_wired() {
        let e = ServeError::Snapshot(SnapshotError::ChecksumMismatch);
        assert!(e.to_string().contains("checksum"));
        assert!(e.source().is_some());
        assert!(ServeError::Disconnected.source().is_none());
    }
}
