//! NEAT hyper-parameter configuration.
//!
//! The paper's CPU thread "performs the configuration steps of the NEAT
//! algorithm (setting the various probabilities, population size, fitness
//! equation, and so on)". This module is that configuration surface; the
//! defaults follow `neat-python`'s canonical config, with the paper's
//! choices (population 150, initial fully-connected topology with zero
//! weights) baked in.

use crate::activation::Activation;
use crate::aggregation::Aggregation;
use crate::error::ConfigError;

/// How the weights of the initial fully-connected population are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitialWeights {
    /// All initial connection weights are zero — the paper's Section III-B
    /// setup ("fully-connected but the weight on each connection is set to
    /// zero").
    Zero,
    /// Initial weights drawn uniformly from `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Initial weights drawn from a Gaussian with the given standard
    /// deviation.
    Gaussian {
        /// Standard deviation.
        stdev: f64,
    },
}

/// Complete NEAT hyper-parameter set.
///
/// Construct via [`NeatConfig::builder`] (validated) or grab a tuned preset
/// with [`NeatConfig::for_env`].
#[derive(Debug, Clone, PartialEq)]
pub struct NeatConfig {
    /// Number of input (sensor) nodes; equals the environment observation
    /// dimension.
    pub num_inputs: usize,
    /// Number of output (actuator) nodes; equals the action dimension.
    pub num_outputs: usize,
    /// Individuals per generation (paper: 150).
    pub pop_size: usize,
    /// How initial connection weights are drawn.
    pub initial_weights: InitialWeights,

    // -- mutation: perturbation -------------------------------------------------
    /// Probability that a connection weight is mutated at all.
    pub weight_mutate_rate: f64,
    /// Probability that a mutated weight is *replaced* by a fresh random
    /// value rather than perturbed.
    pub weight_replace_rate: f64,
    /// Standard deviation of the Gaussian perturbation applied to weights.
    pub weight_perturb_power: f64,
    /// Clamp for weights.
    pub weight_min: f64,
    /// Clamp for weights.
    pub weight_max: f64,
    /// Probability that a node bias is mutated.
    pub bias_mutate_rate: f64,
    /// Probability that a mutated bias is replaced rather than perturbed.
    pub bias_replace_rate: f64,
    /// Standard deviation of bias perturbation.
    pub bias_perturb_power: f64,
    /// Clamp for biases.
    pub bias_min: f64,
    /// Clamp for biases.
    pub bias_max: f64,
    /// Probability that a node response is mutated.
    pub response_mutate_rate: f64,
    /// Probability that a mutated response is replaced rather than perturbed.
    pub response_replace_rate: f64,
    /// Standard deviation of response perturbation.
    pub response_perturb_power: f64,
    /// Clamp for responses.
    pub response_min: f64,
    /// Clamp for responses.
    pub response_max: f64,
    /// Probability that a node's activation function is re-drawn.
    pub activation_mutate_rate: f64,
    /// Activation functions available to mutation.
    pub activation_options: Vec<Activation>,
    /// Probability that a node's aggregation function is re-drawn.
    pub aggregation_mutate_rate: f64,
    /// Aggregation functions available to mutation.
    pub aggregation_options: Vec<Aggregation>,
    /// Probability that an enabled flag flips.
    pub enabled_mutate_rate: f64,

    // -- mutation: structural ---------------------------------------------------
    /// Probability of inserting a new connection gene.
    pub conn_add_prob: f64,
    /// Probability of deleting a connection gene.
    pub conn_delete_prob: f64,
    /// Probability of inserting a new node gene (splitting a connection).
    pub node_add_prob: f64,
    /// Probability of deleting a hidden node gene.
    pub node_delete_prob: f64,
    /// Ceiling on node deletions per genome per generation; the hardware
    /// Delete-Gene engine checks "the number of previously deleted nodes …
    /// to keep the genome alive".
    pub node_delete_limit: usize,

    // -- speciation ---------------------------------------------------------
    /// Compatibility distance above which two genomes belong to different
    /// species.
    pub compatibility_threshold: f64,
    /// Coefficient on the count of disjoint/excess genes.
    pub compatibility_disjoint_coefficient: f64,
    /// Coefficient on the attribute distance of matching genes.
    pub compatibility_weight_coefficient: f64,
    /// Generations without fitness improvement before a species is removed.
    pub max_stagnation: usize,
    /// Number of best species protected from stagnation removal.
    pub species_elitism: usize,
    /// Ceiling on the number of species representatives a genome is
    /// compared against during speciation, making `speciate_on` O(n·K)
    /// instead of O(n·species) at megapopulation scale.
    ///
    /// Only the first `species_representative_cap` species (in creation
    /// order) act as assignment candidates; once the cap is reached no new
    /// species are founded and unmatched genomes join the nearest capped
    /// candidate instead. **Determinism trade** (same shape as the
    /// reproduction pipeline's per-child seeds): runs whose species count
    /// stays below the cap are bit-identical to the uncapped
    /// implementation — true at paper scale with the default cap of 64 —
    /// while runs that hit the cap produce different (but still
    /// reproducible and worker-count-invariant) trajectories than an
    /// uncapped run would.
    pub species_representative_cap: usize,
    /// Disables the signature-pruned speciation fast path: every genome ×
    /// representative distance is computed exactly, with no lower-bound
    /// pruning, no columnar batching and no parent-species hints.
    ///
    /// The pruned path is **bit-identical** to the exact path by
    /// construction (pruning only skips candidates a provable lower bound
    /// rules out; see `docs/speciation.md`), so this knob exists for A/B
    /// verification and debugging, not for correctness. The environment
    /// variable `GENESYS_SPECIATE_EXACT` (any value other than `0`)
    /// forces exact mode regardless of this field.
    pub speciate_exact: bool,

    // -- reproduction ---------------------------------------------------------
    /// Per-species count of top genomes copied unchanged into the next
    /// generation.
    pub elitism: usize,
    /// Fraction of each species (by fitness rank) allowed to be a parent.
    pub survival_threshold: f64,
    /// Minimum genomes per surviving species.
    pub min_species_size: usize,
    /// Probability that reproduction is sexual (two distinct parents and a
    /// crossover) rather than asexual (clone + mutate).
    pub crossover_prob: f64,

    // -- evaluation -------------------------------------------------------
    /// Number of episodes evaluated in lockstep through the batched SoA
    /// activation kernel ([`crate::Network::activate_batch_into`]).
    ///
    /// `1` (the default) keeps the scalar `activate_into` path. Larger
    /// values let multi-episode evaluations walk the compiled plan once
    /// per step with the batch as the innermost dimension, which
    /// autovectorizes the edge walk. Per-lane results are bit-identical
    /// to the scalar path, so this knob trades nothing but memory.
    pub eval_batch: usize,

    // -- islands -----------------------------------------------------------
    /// Number of islands the population is sharded into by the
    /// [`Archipelago`](crate::island::Archipelago) backend.
    ///
    /// `1` (the default) keeps the monolithic single-population engine;
    /// larger values split `pop_size` into that many independently
    /// evolving islands (own species sets, innovation trackers and RNG
    /// streams) with periodic ring migration. See `docs/islands.md` for
    /// the topology and determinism contract.
    pub islands: usize,
    /// Generations between migration epochs: every `migration_interval`-th
    /// generation each island sends its top [`migration_k`](Self::migration_k)
    /// genomes to its ring successor.
    pub migration_interval: usize,
    /// Emigrants per island per migration epoch (selected by fitness via
    /// `total_cmp`; they replace the destination's worst genomes).
    pub migration_k: usize,

    // -- termination -------------------------------------------------------
    /// Evolution stops once the best raw fitness reaches this value (if set).
    pub target_fitness: Option<f64>,
}

impl NeatConfig {
    /// Starts building a config for a problem with the given interface
    /// size. All other fields start from the `neat-python`-style defaults.
    pub fn builder(num_inputs: usize, num_outputs: usize) -> NeatConfigBuilder {
        NeatConfigBuilder {
            config: NeatConfig::defaults(num_inputs, num_outputs),
        }
    }

    fn defaults(num_inputs: usize, num_outputs: usize) -> NeatConfig {
        NeatConfig {
            num_inputs,
            num_outputs,
            pop_size: 150,
            initial_weights: InitialWeights::Zero,
            weight_mutate_rate: 0.8,
            weight_replace_rate: 0.1,
            weight_perturb_power: 0.5,
            weight_min: -30.0,
            weight_max: 30.0,
            bias_mutate_rate: 0.7,
            bias_replace_rate: 0.1,
            bias_perturb_power: 0.5,
            bias_min: -30.0,
            bias_max: 30.0,
            response_mutate_rate: 0.0,
            response_replace_rate: 0.0,
            response_perturb_power: 0.0,
            response_min: -30.0,
            response_max: 30.0,
            activation_mutate_rate: 0.0,
            activation_options: vec![Activation::Sigmoid],
            aggregation_mutate_rate: 0.0,
            aggregation_options: vec![Aggregation::Sum],
            enabled_mutate_rate: 0.01,
            conn_add_prob: 0.5,
            conn_delete_prob: 0.5,
            node_add_prob: 0.2,
            node_delete_prob: 0.2,
            node_delete_limit: 8,
            compatibility_threshold: 3.0,
            compatibility_disjoint_coefficient: 1.0,
            compatibility_weight_coefficient: 0.5,
            max_stagnation: 15,
            species_elitism: 2,
            species_representative_cap: 64,
            speciate_exact: false,
            elitism: 2,
            survival_threshold: 0.2,
            min_species_size: 2,
            crossover_prob: 0.75,
            eval_batch: 1,
            islands: 1,
            migration_interval: 8,
            migration_k: 2,
            target_fitness: None,
        }
    }

    /// Returns a preset tuned for one of the paper's workloads, keyed by a
    /// lowercase environment family name (`"cartpole"`, `"mountaincar"`,
    /// `"acrobot"`, `"lunarlander"`, `"bipedal"`, `"atari"`). Unknown names
    /// fall back to the generic defaults.
    pub fn for_env(name: &str, num_inputs: usize, num_outputs: usize) -> NeatConfig {
        let mut c = NeatConfig::defaults(num_inputs, num_outputs);
        match name {
            "cartpole" => {
                c.target_fitness = Some(195.0);
            }
            "mountaincar" => {
                // Sparse-reward task: more aggressive structural search.
                c.conn_add_prob = 0.6;
                c.node_add_prob = 0.3;
                c.target_fitness = Some(-110.0);
            }
            "acrobot" => {
                c.target_fitness = Some(-100.0);
            }
            "lunarlander" => {
                c.activation_options =
                    vec![Activation::Tanh, Activation::Relu, Activation::Sigmoid];
                c.activation_mutate_rate = 0.1;
                c.target_fitness = Some(200.0);
            }
            "bipedal" => {
                c.activation_options = vec![Activation::Tanh];
                c.target_fitness = Some(100.0);
            }
            "atari" => {
                // 128-input genomes grow large; rein in deletion churn.
                c.node_delete_limit = 16;
                c.compatibility_threshold = 4.0;
            }
            _ => {}
        }
        c
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.pop_size == 0 {
            return Err(ConfigError::EmptyPopulation);
        }
        if self.num_inputs == 0 || self.num_outputs == 0 {
            return Err(ConfigError::EmptyInterface);
        }
        let probs: [(&'static str, f64); 13] = [
            ("weight_mutate_rate", self.weight_mutate_rate),
            ("weight_replace_rate", self.weight_replace_rate),
            ("bias_mutate_rate", self.bias_mutate_rate),
            ("bias_replace_rate", self.bias_replace_rate),
            ("response_mutate_rate", self.response_mutate_rate),
            ("response_replace_rate", self.response_replace_rate),
            ("activation_mutate_rate", self.activation_mutate_rate),
            ("aggregation_mutate_rate", self.aggregation_mutate_rate),
            ("enabled_mutate_rate", self.enabled_mutate_rate),
            ("conn_add_prob", self.conn_add_prob),
            ("conn_delete_prob", self.conn_delete_prob),
            ("node_add_prob", self.node_add_prob),
            ("node_delete_prob", self.node_delete_prob),
        ];
        for (field, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(ConfigError::ProbabilityOutOfRange { field });
            }
        }
        if !(0.0..=1.0).contains(&self.survival_threshold) {
            return Err(ConfigError::ProbabilityOutOfRange {
                field: "survival_threshold",
            });
        }
        if !(0.0..=1.0).contains(&self.crossover_prob) {
            return Err(ConfigError::ProbabilityOutOfRange {
                field: "crossover_prob",
            });
        }
        if self.weight_min > self.weight_max {
            return Err(ConfigError::InvalidBound { field: "weight" });
        }
        if self.bias_min > self.bias_max {
            return Err(ConfigError::InvalidBound { field: "bias" });
        }
        if self.response_min > self.response_max {
            return Err(ConfigError::InvalidBound { field: "response" });
        }
        if self.species_representative_cap == 0 {
            return Err(ConfigError::InvalidBound {
                field: "species_representative_cap",
            });
        }
        if self.eval_batch == 0 {
            return Err(ConfigError::InvalidBound {
                field: "eval_batch",
            });
        }
        if self.islands == 0 || self.islands > self.pop_size {
            return Err(ConfigError::InvalidBound { field: "islands" });
        }
        if self.migration_interval == 0 {
            return Err(ConfigError::InvalidBound {
                field: "migration_interval",
            });
        }
        // Every island must keep at least one resident genome after
        // receiving k migrants; the smallest island holds pop/islands.
        if self.islands > 1 && self.migration_k >= self.pop_size / self.islands {
            return Err(ConfigError::InvalidBound {
                field: "migration_k",
            });
        }
        Ok(())
    }

    /// Id of the first output node (outputs follow inputs in id space).
    pub fn first_output_id(&self) -> u32 {
        self.num_inputs as u32
    }

    /// Id of the first hidden node handed out by the innovation tracker.
    pub fn first_hidden_id(&self) -> u32 {
        (self.num_inputs + self.num_outputs) as u32
    }
}

/// Builder for [`NeatConfig`] (see [`NeatConfig::builder`]).
#[derive(Debug, Clone)]
pub struct NeatConfigBuilder {
    config: NeatConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, value: $ty) -> Self {
                self.config.$name = value;
                self
            }
        )*
    };
}

impl NeatConfigBuilder {
    builder_setters! {
        /// Sets the population size.
        pop_size: usize,
        /// Sets how initial connection weights are drawn.
        initial_weights: InitialWeights,
        /// Sets the weight mutation rate.
        weight_mutate_rate: f64,
        /// Sets the weight replacement rate.
        weight_replace_rate: f64,
        /// Sets the weight perturbation power.
        weight_perturb_power: f64,
        /// Sets the bias mutation rate.
        bias_mutate_rate: f64,
        /// Sets the bias perturbation power.
        bias_perturb_power: f64,
        /// Sets the response mutation rate.
        response_mutate_rate: f64,
        /// Sets the activation mutation rate.
        activation_mutate_rate: f64,
        /// Sets the available activation functions.
        activation_options: Vec<Activation>,
        /// Sets the aggregation mutation rate.
        aggregation_mutate_rate: f64,
        /// Sets the available aggregation functions.
        aggregation_options: Vec<Aggregation>,
        /// Sets the enabled-flag mutation rate.
        enabled_mutate_rate: f64,
        /// Sets the add-connection probability.
        conn_add_prob: f64,
        /// Sets the delete-connection probability.
        conn_delete_prob: f64,
        /// Sets the add-node probability.
        node_add_prob: f64,
        /// Sets the delete-node probability.
        node_delete_prob: f64,
        /// Sets the per-generation node deletion ceiling.
        node_delete_limit: usize,
        /// Sets the speciation compatibility threshold.
        compatibility_threshold: f64,
        /// Sets the disjoint/excess compatibility coefficient.
        compatibility_disjoint_coefficient: f64,
        /// Sets the matching-gene compatibility coefficient.
        compatibility_weight_coefficient: f64,
        /// Sets the stagnation limit.
        max_stagnation: usize,
        /// Sets the number of species protected from stagnation.
        species_elitism: usize,
        /// Sets the speciation representative-comparison ceiling.
        species_representative_cap: usize,
        /// Forces the exact (unpruned) speciation path.
        speciate_exact: bool,
        /// Sets per-species elitism.
        elitism: usize,
        /// Sets the parent survival threshold.
        survival_threshold: f64,
        /// Sets the minimum species size.
        min_species_size: usize,
        /// Sets the sexual-reproduction probability.
        crossover_prob: f64,
        /// Sets the batched-evaluation lane count.
        eval_batch: usize,
        /// Sets the island count for the archipelago backend.
        islands: usize,
        /// Sets the generations between migration epochs.
        migration_interval: usize,
        /// Sets the emigrants per island per migration epoch.
        migration_k: usize,
        /// Sets the target fitness for convergence.
        target_fitness: Option<f64>,
    }

    /// Finalizes the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any field is out of range.
    pub fn build(self) -> Result<NeatConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(NeatConfig::builder(4, 2).build().is_ok());
    }

    #[test]
    fn every_preset_is_valid() {
        for name in [
            "cartpole",
            "mountaincar",
            "acrobot",
            "lunarlander",
            "bipedal",
            "atari",
            "x",
        ] {
            assert!(NeatConfig::for_env(name, 8, 4).validate().is_ok(), "{name}");
        }
    }

    #[test]
    fn zero_population_rejected() {
        let err = NeatConfig::builder(2, 1).pop_size(0).build().unwrap_err();
        assert_eq!(err, ConfigError::EmptyPopulation);
    }

    #[test]
    fn empty_interface_rejected() {
        let err = NeatConfig::builder(0, 1).build().unwrap_err();
        assert_eq!(err, ConfigError::EmptyInterface);
    }

    #[test]
    fn bad_probability_rejected() {
        let err = NeatConfig::builder(2, 1)
            .conn_add_prob(1.5)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::ProbabilityOutOfRange {
                field: "conn_add_prob"
            }
        );
    }

    #[test]
    fn id_layout() {
        let c = NeatConfig::builder(6, 3).build().unwrap();
        assert_eq!(c.first_output_id(), 6);
        assert_eq!(c.first_hidden_id(), 9);
    }

    #[test]
    fn zero_representative_cap_rejected() {
        let err = NeatConfig::builder(2, 1)
            .species_representative_cap(0)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::InvalidBound {
                field: "species_representative_cap"
            }
        );
    }

    #[test]
    fn zero_eval_batch_rejected() {
        let err = NeatConfig::builder(2, 1).eval_batch(0).build().unwrap_err();
        assert_eq!(
            err,
            ConfigError::InvalidBound {
                field: "eval_batch"
            }
        );
    }

    #[test]
    fn megapop_knobs_have_scalar_safe_defaults() {
        let c = NeatConfig::builder(2, 1).build().unwrap();
        assert_eq!(c.species_representative_cap, 64);
        assert_eq!(c.eval_batch, 1);
    }

    #[test]
    fn island_knobs_default_to_monolithic() {
        let c = NeatConfig::builder(2, 1).build().unwrap();
        assert_eq!(c.islands, 1);
        assert_eq!(c.migration_interval, 8);
        assert_eq!(c.migration_k, 2);
    }

    #[test]
    fn bad_island_knobs_rejected() {
        let err = NeatConfig::builder(2, 1).islands(0).build().unwrap_err();
        assert_eq!(err, ConfigError::InvalidBound { field: "islands" });
        let err = NeatConfig::builder(2, 1)
            .pop_size(8)
            .islands(9)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::InvalidBound { field: "islands" });
        let err = NeatConfig::builder(2, 1)
            .migration_interval(0)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::InvalidBound {
                field: "migration_interval"
            }
        );
        // k must leave at least one resident on the smallest island.
        let err = NeatConfig::builder(2, 1)
            .pop_size(16)
            .islands(4)
            .migration_k(4)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::InvalidBound {
                field: "migration_k"
            }
        );
        // Monolithic runs ignore migration_k entirely.
        assert!(NeatConfig::builder(2, 1)
            .pop_size(16)
            .migration_k(99)
            .build()
            .is_ok());
    }

    #[test]
    fn builder_chains() {
        let c = NeatConfig::builder(2, 1)
            .pop_size(10)
            .elitism(1)
            .crossover_prob(0.5)
            .build()
            .unwrap();
        assert_eq!(c.pop_size, 10);
        assert_eq!(c.elitism, 1);
        assert!((c.crossover_prob - 0.5).abs() < 1e-12);
    }
}
