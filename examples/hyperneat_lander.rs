//! HyperNEAT extension: evolve compact CPPNs whose *expression* controls
//! the lunar lander — the indirect-encoding direction the paper's
//! Section III-D points at for scaling to larger networks.
//!
//! The substrate forward pass is a custom closure workload on the session
//! API; episode seeds derive from the evaluation context, so the run is
//! reproducible at any worker count.
//!
//! Run with: `cargo run --release --example hyperneat_lander`

use genesys::gym::{rollout, Environment, LunarLander};
use genesys::neat::{EvalContext, HyperNeat, Network, Session, Substrate};

fn main() {
    // An 8-16-4-1 substrate: ~200 candidate connections painted by a CPPN
    // that starts at 6 genes.
    let hyper = HyperNeat::new(Substrate::grid(8, &[16, 4], 1));
    println!(
        "substrate: {} nodes, {} candidate connections",
        hyper.substrate().num_nodes(),
        hyper.substrate().num_candidate_conns()
    );

    let hyper_ref = &hyper;
    let mut session = Session::builder(hyper.cppn_config(), 31)
        .expect("valid CPPN config")
        .workload(move |ctx: EvalContext, cppn_net: &Network| {
            let mut total = 0.0;
            let mut env = LunarLander::new(ctx.seed());
            // Express a closure-based controller: substrate forward pass.
            let layers = hyper_ref.substrate().layers();
            let obs_to_action = |obs: &[f64]| -> f64 {
                let mut values: Vec<f64> = obs.to_vec();
                for l in 0..layers.len() - 1 {
                    let mut next = vec![0.0; layers[l + 1].len()];
                    for (j, &(x2, y2)) in layers[l + 1].iter().enumerate() {
                        for (i, &(x1, y1)) in layers[l].iter().enumerate() {
                            let w = 2.0 * cppn_net.activate(&[x1, y1, x2, y2])[0] - 1.0;
                            if w.abs() > hyper_ref.weight_threshold {
                                next[j] += values[i] * w * hyper_ref.weight_scale;
                            }
                        }
                        next[j] = next[j].tanh() * 0.5 + 0.5;
                    }
                    values = next;
                }
                values[0]
            };
            let mut o = env.reset();
            for _ in 0..400 {
                let a = obs_to_action(&o);
                let step = env.step(&[a]);
                total += step.reward;
                o = step.observation;
                if step.done {
                    break;
                }
            }
            total
        })
        .threads(4)
        .build();

    println!("gen | best reward | mean | CPPN genes | expressed conns | compression");
    for gen in 0..8 {
        let stats = session.step();
        // Express the champion to inspect the phenotype it encodes.
        let champion = session.best_genome().expect("evaluated");
        let phenotype = hyper.express(champion, 0).expect("valid CPPN");
        println!(
            "{:>3} | {:>11.1} | {:>6.1} | {:>10} | {:>15} | {:>10.1}x",
            gen,
            stats.max_fitness,
            stats.mean_fitness,
            champion.num_genes(),
            phenotype.num_conns(),
            hyper.compression(champion),
        );
    }
    println!("\na ~10-gene CPPN paints a ~200-connection controller: that is the");
    println!("genome-buffer compression HyperNEAT offers the SoC for big substrates.");

    // Demo rollout of the expressed phenotype through the standard path.
    let champion = session.best_genome().expect("evaluated");
    let phenotype = hyper.express(champion, 0).expect("valid CPPN");
    let net = Network::from_genome(&phenotype).expect("valid phenotype");
    let mut env = LunarLander::new(9999);
    let reward = rollout(&net, &mut env, 1);
    println!("expressed-phenotype rollout reward: {reward:.1}");
}
