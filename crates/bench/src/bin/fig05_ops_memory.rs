//! Fig 5: distributions of (a) crossover+mutation operations and (b)
//! memory footprint per generation, across generations and runs.
//!
//! Usage: `fig05_ops_memory [--pop N] [--generations N] [--runs N] [--seed N]
//!                           [--islands N] [--migration-interval N]`

use genesys_bench::{print_table, run_workload_islands, ExperimentArgs};
use genesys_gym::EnvKind;

fn percentiles(mut xs: Vec<f64>) -> (f64, f64, f64, f64, f64) {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q = |p: f64| xs[((xs.len() - 1) as f64 * p).round() as usize];
    (q(0.0), q(0.25), q(0.5), q(0.75), q(1.0))
}

fn main() {
    let args = ExperimentArgs::parse();
    let (pop, generations, runs) = (args.pop_or(64), args.generations_or(8), args.runs_or(3));
    let seed = args.base_seed(0);
    let islands = args.islands_or(1);
    let migration_interval = args.migration_interval_or(0);

    let mut ops_rows = Vec::new();
    let mut mem_rows = Vec::new();
    for (i, kind) in EnvKind::FIG9_SUITE.iter().enumerate() {
        eprintln!(
            "profiling {} ({runs} runs × {generations} generations, pop {pop})...",
            kind.label()
        );
        let mut ops_samples: Vec<f64> = Vec::new();
        let mut mem_samples: Vec<f64> = Vec::new();
        for r in 0..runs {
            let run = run_workload_islands(
                *kind,
                generations,
                seed + (1000 * i + r) as u64,
                Some(pop),
                None,
                islands,
                migration_interval,
            );
            for s in &run.history {
                ops_samples.push(s.ops.total() as f64);
                mem_samples.push(s.memory_bytes as f64);
            }
        }
        let (min, q1, med, q3, max) = percentiles(ops_samples);
        ops_rows.push(vec![
            kind.label().to_string(),
            format!("{min:.0}"),
            format!("{q1:.0}"),
            format!("{med:.0}"),
            format!("{q3:.0}"),
            format!("{max:.0}"),
        ]);
        let (min, q1, med, q3, max) = percentiles(mem_samples);
        mem_rows.push(vec![
            kind.label().to_string(),
            format!("{:.1}", min / 1024.0),
            format!("{:.1}", q1 / 1024.0),
            format!("{:.1}", med / 1024.0),
            format!("{:.1}", q3 / 1024.0),
            format!("{:.1}", max / 1024.0),
        ]);
    }
    print_table(
        "Fig 5(a): crossover + mutation ops per generation (distribution)",
        &["Environment", "min", "p25", "median", "p75", "max"],
        &ops_rows,
    );
    print_table(
        "Fig 5(b): memory footprint per generation, KiB (distribution)",
        &["Environment", "min", "p25", "median", "p75", "max"],
        &mem_rows,
    );
    println!("\nPaper observations to check: ops in the thousands for the");
    println!("classic-control class and ~100x higher for the Atari class;");
    println!("footprint < 1 MB per generation for every workload.");
}
