//! Flat population arenas: the whole population's gene streams packed
//! into two contiguous buffers with per-genome offset/length tables.
//!
//! This is the paper's genome-buffer layout — "the genes are stored in two
//! logical clusters … sorted in ascending order of IDs" (Section IV-C5) —
//! extended across the *population*: every genome's node cluster lives
//! back-to-back in one `Vec<NodeGene>`, every conn cluster in one
//! `Vec<ConnGene>`, and a span table maps genome index → `(offset, len)`
//! into each. Population-scale sweeps (the speciation distance matrix,
//! compatibility scans, batched gene statistics) then walk contiguous
//! memory instead of chasing one heap allocation per genome, which is what
//! makes `--pop 10_000..100_000` practical.
//!
//! Distances computed through [`GenomeView::distance`] share one
//! implementation with [`Genome::distance`] ([`gene_distance`]), so arena
//! and per-genome paths are bit-identical by construction.

use crate::config::NeatConfig;
use crate::gene::{ConnGene, ConnKey, NodeGene, NodeId};
use crate::genome::{Genome, GENE_BYTES};

/// Borrowed view of one genome's two sorted gene clusters — either a slice
/// pair out of a [`PopulationArena`] or a [`Genome`]'s own buffers.
#[derive(Debug, Clone, Copy)]
pub struct GenomeView<'a> {
    /// Node genes in ascending id order.
    pub nodes: &'a [NodeGene],
    /// Connection genes in ascending key order.
    pub conns: &'a [ConnGene],
}

impl<'a> GenomeView<'a> {
    /// Views a genome's own gene buffers without copying.
    pub fn of(genome: &'a Genome) -> Self {
        GenomeView {
            nodes: genome.node_genes(),
            conns: genome.conn_genes(),
        }
    }

    /// Compatibility distance to `other`; bit-identical to
    /// [`Genome::distance`] (both delegate to [`gene_distance`]).
    pub fn distance(&self, other: GenomeView<'_>, config: &NeatConfig) -> f64 {
        gene_distance(self.nodes, self.conns, other.nodes, other.conns, config)
    }

    /// Total gene count of the viewed genome.
    pub fn num_genes(&self) -> usize {
        self.nodes.len() + self.conns.len()
    }
}

/// Per-genome offset/length record into the arena's two gene buffers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Span {
    node_offset: usize,
    node_len: usize,
    conn_offset: usize,
    conn_len: usize,
}

/// A population's gene streams packed contiguously (see module docs).
///
/// [`PopulationArena::pack`] reuses the backing buffers across calls, so a
/// generation-loop repack allocates nothing once capacity has grown to the
/// population's working-set size.
#[derive(Debug, Clone, Default)]
pub struct PopulationArena {
    nodes: Vec<NodeGene>,
    conns: Vec<ConnGene>,
    spans: Vec<Span>,
}

impl PopulationArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        PopulationArena::default()
    }

    /// Packs the gene streams of `genomes` into the arena, replacing any
    /// previous contents. Buffer capacity is retained across calls.
    pub fn pack<'a>(&mut self, genomes: impl IntoIterator<Item = &'a Genome>) {
        self.nodes.clear();
        self.conns.clear();
        self.spans.clear();
        for genome in genomes {
            let span = Span {
                node_offset: self.nodes.len(),
                node_len: genome.num_nodes(),
                conn_offset: self.conns.len(),
                conn_len: genome.num_conns(),
            };
            self.nodes.extend_from_slice(genome.node_genes());
            self.conns.extend_from_slice(genome.conn_genes());
            self.spans.push(span);
        }
    }

    /// Number of packed genomes.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no genomes are packed.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// View of the `i`-th packed genome's gene clusters.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn view(&self, i: usize) -> GenomeView<'_> {
        let span = self.spans[i];
        GenomeView {
            nodes: &self.nodes[span.node_offset..span.node_offset + span.node_len],
            conns: &self.conns[span.conn_offset..span.conn_offset + span.conn_len],
        }
    }

    /// Total genes across all packed genomes (the Fig 4(b) metric, summed).
    pub fn total_genes(&self) -> usize {
        self.nodes.len() + self.conns.len()
    }

    /// Total memory footprint in the 64-bit hardware gene encoding.
    pub fn memory_bytes(&self) -> usize {
        self.total_genes() * GENE_BYTES
    }
}

/// Lanes per [`RepColumns`] block: one genome is scanned against up to
/// this many representatives in a single merge-join pass.
pub const REP_BLOCK: usize = 16;

/// Columnar pack of up to [`REP_BLOCK`] representative genomes, laid out
/// for the one-genome-versus-K distance scan of the speciation fold.
///
/// The block stores each gene cluster as a CSR over the **sorted union**
/// of the representatives' gene keys: a distinct-key list, an offset
/// table, and `(lane, gene)` entries. [`RepColumns::scan`] then
/// merge-joins one genome's sorted genes against the union *once*,
/// touching each distinct key a single time instead of re-walking every
/// representative's stream — on converged populations whose
/// representatives share most structure this cuts the per-genome gene
/// traffic by roughly the representative count.
///
/// Bit-identity: per lane, entries appear in ascending key order (a
/// subsequence of the union order), each matched entry contributes
/// `genome_gene.attribute_distance(rep_gene) * weight_coeff` exactly as
/// the scalar [`gene_distance`] does with the representative on the `b`
/// side, and the closing `(acc + cd·disjoint) / max` uses the same
/// operations in the same order — so every lane's distance is
/// bit-identical to the scalar kernel, NaN patterns included.
#[derive(Debug, Clone, Default)]
pub struct RepColumns {
    lanes: usize,
    node_lens: [usize; REP_BLOCK],
    conn_lens: [usize; REP_BLOCK],
    node_keys: Vec<NodeId>,
    node_off: Vec<u32>,
    /// Owning lane of entry `i` — split from the attribute arrays so the
    /// disjoint (miss) path touches one byte per entry, not a whole gene.
    node_lane: Vec<u8>,
    /// Per-entry attributes, one array per field so the matched (hit)
    /// path is unit-stride f64 arithmetic the compiler can vectorize.
    /// Discrete attributes are stored as their integer codes widened to
    /// f64: the codes are small distinct integers, so f64 equality is
    /// exact and `|code_a - code_b|`-style compares stay branch-free.
    node_bias: Vec<f64>,
    node_resp: Vec<f64>,
    node_act: Vec<f64>,
    node_agg: Vec<f64>,
    conn_keys: Vec<ConnKey>,
    conn_off: Vec<u32>,
    conn_lane: Vec<u8>,
    conn_weight: Vec<f64>,
    /// Enabled flag as `0.0`/`1.0`: `|a - b|` is then exactly the
    /// `+1.0`-if-different term of [`ConnGene::attribute_distance`].
    conn_enabled: Vec<f64>,
}

impl RepColumns {
    /// Creates an empty block.
    pub fn new() -> Self {
        RepColumns::default()
    }

    /// Number of packed lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Packs `views` (at most [`REP_BLOCK`] of them) into the block,
    /// reusing buffer capacity across calls.
    ///
    /// # Panics
    ///
    /// Panics if `views.len() > REP_BLOCK`.
    pub fn build(&mut self, views: &[GenomeView<'_>]) {
        assert!(views.len() <= REP_BLOCK, "block overflow: {}", views.len());
        self.lanes = views.len();
        self.node_keys.clear();
        self.node_off.clear();
        self.node_lane.clear();
        self.node_bias.clear();
        self.node_resp.clear();
        self.node_act.clear();
        self.node_agg.clear();
        self.conn_keys.clear();
        self.conn_off.clear();
        self.conn_lane.clear();
        self.conn_weight.clear();
        self.conn_enabled.clear();
        let mut node_entries: Vec<(u8, NodeGene)> = Vec::new();
        let mut conn_entries: Vec<(u8, ConnGene)> = Vec::new();
        for (lane, v) in views.iter().enumerate() {
            self.node_lens[lane] = v.nodes.len();
            self.conn_lens[lane] = v.conns.len();
            node_entries.extend(v.nodes.iter().map(|n| (lane as u8, *n)));
            conn_entries.extend(v.conns.iter().map(|c| (lane as u8, *c)));
        }
        // (key, lane) pairs are unique, so unstable sort is deterministic.
        node_entries.sort_unstable_by_key(|&(lane, ref n)| (n.id, lane));
        conn_entries.sort_unstable_by_key(|&(lane, ref c)| (c.key, lane));
        for (i, &(lane, ref n)) in node_entries.iter().enumerate() {
            if self.node_keys.last() != Some(&n.id) {
                self.node_keys.push(n.id);
                self.node_off.push(i as u32);
            }
            self.node_lane.push(lane);
            self.node_bias.push(n.bias);
            self.node_resp.push(n.response);
            self.node_act.push(f64::from(n.activation as u8));
            self.node_agg.push(f64::from(n.aggregation as u8));
        }
        self.node_off.push(node_entries.len() as u32);
        for (i, &(lane, ref c)) in conn_entries.iter().enumerate() {
            if self.conn_keys.last() != Some(&c.key) {
                self.conn_keys.push(c.key);
                self.conn_off.push(i as u32);
            }
            self.conn_lane.push(lane);
            self.conn_weight.push(c.weight);
            self.conn_enabled.push(f64::from(u8::from(c.enabled)));
        }
        self.conn_off.push(conn_entries.len() as u32);
    }

    /// Computes the compatibility distance of `genome` to every packed
    /// lane whose bit is set in `active`, writing results into `out`
    /// (inactive lanes get `+inf`). Each active lane's value is
    /// bit-identical to `gene_distance(genome, lane)`.
    pub fn scan(
        &self,
        genome: GenomeView<'_>,
        active: u16,
        config: &NeatConfig,
        out: &mut [f64; REP_BLOCK],
    ) {
        // Runtime ISA dispatch: the scan is element-wise IEEE adds and
        // multiplies with no reassociation or contraction, so wider
        // vectors change throughput, never bits (detection is cached —
        // one atomic load per call).
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vl")
                && std::arch::is_x86_feature_detected!("avx512dq")
            {
                // SAFETY: AVX-512 F/VL/DQ support was just verified.
                unsafe { self.scan_avx512(genome, active, config, out) };
                return;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 support was just verified at runtime.
                unsafe { self.scan_avx2(genome, active, config, out) };
                return;
            }
        }
        self.scan_body(genome, active, config, out);
    }

    /// [`RepColumns::scan`] compiled with AVX2 enabled, so the dense-key
    /// per-field loops vectorize at 4 f64 lanes instead of 2.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn scan_avx2(
        &self,
        genome: GenomeView<'_>,
        active: u16,
        config: &NeatConfig,
        out: &mut [f64; REP_BLOCK],
    ) {
        self.scan_body(genome, active, config, out);
    }

    /// [`RepColumns::scan`] compiled with AVX-512 F/VL/DQ enabled —
    /// wider vectors and per-lane masks for the same element-wise IEEE
    /// operations.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512vl,avx512dq")]
    unsafe fn scan_avx512(
        &self,
        genome: GenomeView<'_>,
        active: u16,
        config: &NeatConfig,
        out: &mut [f64; REP_BLOCK],
    ) {
        self.scan_body(genome, active, config, out);
    }

    #[inline(always)]
    fn scan_body(
        &self,
        genome: GenomeView<'_>,
        active: u16,
        config: &NeatConfig,
        out: &mut [f64; REP_BLOCK],
    ) {
        let cd = config.compatibility_disjoint_coefficient;
        let cw = config.compatibility_weight_coefficient;
        out.fill(f64::INFINITY);
        if active == 0 || self.lanes == 0 {
            return;
        }

        // All lanes active? Then a key present in every lane ("dense") has
        // exactly one entry per lane in ascending lane order, so entry `i`
        // belongs to lane `i` — the hot loop is unit-stride f64 arithmetic
        // with no mask tests, no lane indirection, and no counter updates
        // (a scalar `dense_hits` stands in for every lane's `matched`
        // increment). `matched`/`disjoint` of *inactive* lanes are dead
        // values (their outputs stay +inf), so the masked paths only guard
        // the arithmetic, never the counters.
        //
        // Bit-identity of the branch-free attribute terms: the `+1.0` per
        // differing discrete attribute becomes `+ t` with `t ∈ {0.0, 1.0}`.
        // When `t == 1.0` it is the scalar op verbatim; when `t == 0.0`,
        // `d + 0.0` is bitwise `d` (d is non-negative or a quiet NaN —
        // never `-0.0` — and x86/LLVM addition preserves both).
        let full = active.count_ones() as usize == self.lanes;

        let mut acc = [0.0f64; REP_BLOCK];
        let mut matched = [0u32; REP_BLOCK];
        let mut disjoint = [0u32; REP_BLOCK];
        let mut dense_hits = 0u32;
        let mut gi = 0usize;
        for (k, &key) in self.node_keys.iter().enumerate() {
            while gi < genome.nodes.len() && genome.nodes[gi].id < key {
                gi += 1;
            }
            let hit = gi < genome.nodes.len() && genome.nodes[gi].id == key;
            let span = self.node_off[k] as usize..self.node_off[k + 1] as usize;
            if hit {
                let g = &genome.nodes[gi];
                let (gb, gr) = (g.bias, g.response);
                let ga = f64::from(g.activation as u8);
                let gg = f64::from(g.aggregation as u8);
                if full && span.len() == self.lanes {
                    dense_hits += 1;
                    if self.lanes == REP_BLOCK {
                        // Fixed trip count: full blocks (the common case at
                        // scale) get exact-length arrays, so the compiler
                        // unrolls and vectorizes without tail loops.
                        let bias: &[f64; REP_BLOCK] =
                            self.node_bias[span.clone()].try_into().unwrap();
                        let resp: &[f64; REP_BLOCK] =
                            self.node_resp[span.clone()].try_into().unwrap();
                        let act: &[f64; REP_BLOCK] =
                            self.node_act[span.clone()].try_into().unwrap();
                        let agg: &[f64; REP_BLOCK] = self.node_agg[span].try_into().unwrap();
                        for i in 0..REP_BLOCK {
                            let mut d = (gb - bias[i]).abs() + (gr - resp[i]).abs();
                            d += f64::from(u8::from(ga != act[i]));
                            d += f64::from(u8::from(gg != agg[i]));
                            acc[i] += d * cw;
                        }
                    } else {
                        let bias = &self.node_bias[span.clone()];
                        let resp = &self.node_resp[span.clone()];
                        let act = &self.node_act[span.clone()];
                        let agg = &self.node_agg[span];
                        for ((((a, &b), &r), &av), &gv) in acc[..bias.len()]
                            .iter_mut()
                            .zip(bias)
                            .zip(resp)
                            .zip(act)
                            .zip(agg)
                        {
                            let mut d = (gb - b).abs() + (gr - r).abs();
                            d += f64::from(u8::from(ga != av));
                            d += f64::from(u8::from(gg != gv));
                            *a += d * cw;
                        }
                    }
                } else {
                    for (j, &lane) in self.node_lane[span.clone()].iter().enumerate() {
                        let lane = lane as usize;
                        if active & (1u16 << lane) != 0 {
                            let e = span.start + j;
                            let mut d =
                                (gb - self.node_bias[e]).abs() + (gr - self.node_resp[e]).abs();
                            d += f64::from(u8::from(ga != self.node_act[e]));
                            d += f64::from(u8::from(gg != self.node_agg[e]));
                            acc[lane] += d * cw;
                        }
                        matched[lane] += 1;
                    }
                }
            } else {
                for &lane in &self.node_lane[span] {
                    disjoint[lane as usize] += 1;
                }
            }
        }
        // Finish loops run branch-free over every lane: the counters are
        // maintained unconditionally in all paths, so inactive lanes hold
        // valid counts (only `acc` is mask-guarded) — their results are
        // well-defined garbage that the final select discards for `+inf`.
        let mut node_dist = [0.0f64; REP_BLOCK];
        for lane in 0..self.lanes {
            let dis = disjoint[lane] + (genome.nodes.len() as u32 - matched[lane] - dense_hits);
            let max_nodes = genome.nodes.len().max(self.node_lens[lane]).max(1);
            node_dist[lane] = (acc[lane] + cd * f64::from(dis)) / max_nodes as f64;
        }

        acc = [0.0f64; REP_BLOCK];
        matched = [0u32; REP_BLOCK];
        disjoint = [0u32; REP_BLOCK];
        dense_hits = 0;
        let mut gi = 0usize;
        for (k, &key) in self.conn_keys.iter().enumerate() {
            while gi < genome.conns.len() && genome.conns[gi].key < key {
                gi += 1;
            }
            let hit = gi < genome.conns.len() && genome.conns[gi].key == key;
            let span = self.conn_off[k] as usize..self.conn_off[k + 1] as usize;
            if hit {
                let g = &genome.conns[gi];
                let gw = g.weight;
                let ge = f64::from(u8::from(g.enabled));
                if full && span.len() == self.lanes {
                    dense_hits += 1;
                    if self.lanes == REP_BLOCK {
                        let weight: &[f64; REP_BLOCK] =
                            self.conn_weight[span.clone()].try_into().unwrap();
                        let enabled: &[f64; REP_BLOCK] =
                            self.conn_enabled[span].try_into().unwrap();
                        for i in 0..REP_BLOCK {
                            let d = (gw - weight[i]).abs() + (ge - enabled[i]).abs();
                            acc[i] += d * cw;
                        }
                    } else {
                        let weight = &self.conn_weight[span.clone()];
                        let enabled = &self.conn_enabled[span];
                        for ((a, &w), &en) in
                            acc[..weight.len()].iter_mut().zip(weight).zip(enabled)
                        {
                            let d = (gw - w).abs() + (ge - en).abs();
                            *a += d * cw;
                        }
                    }
                } else {
                    for (j, &lane) in self.conn_lane[span.clone()].iter().enumerate() {
                        let lane = lane as usize;
                        if active & (1u16 << lane) != 0 {
                            let e = span.start + j;
                            let d = (gw - self.conn_weight[e]).abs()
                                + (ge - self.conn_enabled[e]).abs();
                            acc[lane] += d * cw;
                        }
                        matched[lane] += 1;
                    }
                }
            } else {
                for &lane in &self.conn_lane[span] {
                    disjoint[lane as usize] += 1;
                }
            }
        }
        for lane in 0..self.lanes {
            let dis = disjoint[lane] + (genome.conns.len() as u32 - matched[lane] - dense_hits);
            let max_conns = genome.conns.len().max(self.conn_lens[lane]).max(1);
            let d = node_dist[lane] + (acc[lane] + cd * f64::from(dis)) / max_conns as f64;
            out[lane] = if active & (1u16 << lane) != 0 {
                d
            } else {
                f64::INFINITY
            };
        }
    }
}

/// Compatibility distance between two sorted gene-slice pairs, following
/// the `neat-python` formulation (Section II-D): node distance plus
/// connection distance, each `(weight_coeff * Σ attribute distance of
/// matching genes + disjoint_coeff * #non-matching) / max gene count`.
///
/// This is *the* implementation — [`Genome::distance`] and
/// [`GenomeView::distance`] both call it — so every caller accumulates in
/// the same order (ascending key order of the `b` side) and produces
/// bit-identical results.
pub fn gene_distance(
    nodes_a: &[NodeGene],
    conns_a: &[ConnGene],
    nodes_b: &[NodeGene],
    conns_b: &[ConnGene],
    config: &NeatConfig,
) -> f64 {
    let cd = config.compatibility_disjoint_coefficient;
    let cw = config.compatibility_weight_coefficient;

    let mut node_dist = 0.0;
    let mut disjoint_nodes = 0usize;
    let mut matched = 0usize;
    let mut i = 0usize;
    for n2 in nodes_b {
        while i < nodes_a.len() && nodes_a[i].id < n2.id {
            i += 1;
        }
        if i < nodes_a.len() && nodes_a[i].id == n2.id {
            node_dist += nodes_a[i].attribute_distance(n2) * cw;
            matched += 1;
        } else {
            disjoint_nodes += 1;
        }
    }
    disjoint_nodes += nodes_a.len() - matched;
    let max_nodes = nodes_a.len().max(nodes_b.len()).max(1);
    node_dist = (node_dist + cd * disjoint_nodes as f64) / max_nodes as f64;

    let mut conn_dist = 0.0;
    let mut disjoint_conns = 0usize;
    let mut matched = 0usize;
    let mut i = 0usize;
    for c2 in conns_b {
        while i < conns_a.len() && conns_a[i].key < c2.key {
            i += 1;
        }
        if i < conns_a.len() && conns_a[i].key == c2.key {
            conn_dist += conns_a[i].attribute_distance(c2) * cw;
            matched += 1;
        } else {
            disjoint_conns += 1;
        }
    }
    disjoint_conns += conns_a.len() - matched;
    let max_conns = conns_a.len().max(conns_b.len()).max(1);
    conn_dist = (conn_dist + cd * disjoint_conns as f64) / max_conns as f64;

    node_dist + conn_dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::innovation::InnovationTracker;
    use crate::rng::XorWow;
    use crate::trace::OpCounters;

    fn evolved_population(n: usize) -> (Vec<Genome>, NeatConfig) {
        let c = NeatConfig::builder(3, 2).build().unwrap();
        let mut r = XorWow::seed_from_u64_value(314);
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let genomes = (0..n)
            .map(|k| {
                let mut g = Genome::initial(k as u64, &c, &mut r);
                let mut ops = OpCounters::new();
                for _ in 0..(k % 5) {
                    g.mutate_add_node(&mut innov, &mut r, &mut ops);
                    g.mutate_add_conn(&mut r, &mut ops);
                    g.mutate_attributes(&c, &mut r, &mut ops);
                }
                g
            })
            .collect();
        (genomes, c)
    }

    #[test]
    fn pack_preserves_every_gene_in_order() {
        let (genomes, _) = evolved_population(12);
        let mut arena = PopulationArena::new();
        arena.pack(&genomes);
        assert_eq!(arena.len(), genomes.len());
        for (i, g) in genomes.iter().enumerate() {
            let v = arena.view(i);
            assert_eq!(v.nodes, g.node_genes());
            assert_eq!(v.conns, g.conn_genes());
            assert_eq!(v.num_genes(), g.num_genes());
        }
        let genes: usize = genomes.iter().map(Genome::num_genes).sum();
        assert_eq!(arena.total_genes(), genes);
        assert_eq!(arena.memory_bytes(), genes * GENE_BYTES);
    }

    #[test]
    fn arena_distance_is_bit_identical_to_genome_distance() {
        let (genomes, c) = evolved_population(10);
        let mut arena = PopulationArena::new();
        arena.pack(&genomes);
        for i in 0..genomes.len() {
            for j in 0..genomes.len() {
                let direct = genomes[i].distance(&genomes[j], &c);
                let via_arena = arena.view(i).distance(arena.view(j), &c);
                let mixed = GenomeView::of(&genomes[i]).distance(arena.view(j), &c);
                assert_eq!(direct.to_bits(), via_arena.to_bits(), "{i} vs {j}");
                assert_eq!(direct.to_bits(), mixed.to_bits(), "{i} vs {j} mixed");
            }
        }
    }

    #[test]
    fn columnar_scan_is_bit_identical_to_scalar_distances() {
        let (mut genomes, c) = evolved_population(24);
        // Poison one representative and one probe with NaN/inf weights so
        // the lane-wise accumulation is checked under non-finite values.
        let nodes: Vec<NodeGene> = genomes[3].node_genes().to_vec();
        let mut conns: Vec<ConnGene> = genomes[3].conn_genes().to_vec();
        conns[0].weight = f64::NAN;
        conns[1].weight = f64::INFINITY;
        genomes[3] = Genome::from_parts(3, 3, 2, nodes, conns).unwrap();

        let mut arena = PopulationArena::new();
        arena.pack(genomes.iter().take(REP_BLOCK));
        let views: Vec<GenomeView<'_>> = (0..arena.len()).map(|i| arena.view(i)).collect();
        for lanes in [1usize, 2, 5, REP_BLOCK] {
            let mut cols = RepColumns::new();
            cols.build(&views[..lanes]);
            assert_eq!(cols.lanes(), lanes);
            let full: u16 = if lanes == 16 {
                u16::MAX
            } else {
                (1u16 << lanes) - 1
            };
            for g in &genomes {
                let mut out = [0.0f64; REP_BLOCK];
                cols.scan(GenomeView::of(g), full, &c, &mut out);
                for (lane, want) in genomes.iter().take(lanes).enumerate() {
                    let scalar = g.distance(want, &c);
                    assert_eq!(
                        out[lane].to_bits(),
                        scalar.to_bits(),
                        "genome {} lane {lane}",
                        g.key()
                    );
                }
            }
        }
        // Partial masks: inactive lanes report +inf, active lanes exact.
        let mut cols = RepColumns::new();
        cols.build(&views[..8]);
        let mask = 0b1010_0101u16;
        let mut out = [0.0f64; REP_BLOCK];
        cols.scan(GenomeView::of(&genomes[20]), mask, &c, &mut out);
        for lane in 0..8 {
            if mask & (1 << lane) != 0 {
                let scalar = genomes[20].distance(&genomes[lane], &c);
                assert_eq!(out[lane].to_bits(), scalar.to_bits(), "lane {lane}");
            } else {
                assert_eq!(out[lane], f64::INFINITY, "masked lane {lane}");
            }
        }
    }

    #[test]
    fn repack_reuses_capacity() {
        let (genomes, _) = evolved_population(16);
        let mut arena = PopulationArena::new();
        arena.pack(&genomes);
        let node_cap = arena.nodes.capacity();
        let conn_cap = arena.conns.capacity();
        // Repacking the same (or a smaller) population must not grow.
        arena.pack(&genomes[..8]);
        arena.pack(&genomes);
        assert_eq!(arena.nodes.capacity(), node_cap);
        assert_eq!(arena.conns.capacity(), conn_cap);
        assert_eq!(arena.len(), 16);
    }

    #[test]
    fn empty_arena_is_well_behaved() {
        let mut arena = PopulationArena::new();
        assert!(arena.is_empty());
        assert_eq!(arena.total_genes(), 0);
        arena.pack(&[]);
        assert_eq!(arena.len(), 0);
    }
}
