//! Offline shim for the `crossbeam` APIs used by this workspace.
//!
//! Call-site compatible with crossbeam 0.8 for the subset GeneSys uses:
//!
//! * [`thread`] — scoped threads, backed by `std::thread::scope` (stable
//!   since Rust 1.63): `crossbeam::thread::scope(|scope| { scope.spawn(|_|
//!   ...); ... })` returning a `Result` that is `Ok` when no spawned thread
//!   panicked.
//! * [`deque`] — the work-stealing deque primitives of `crossbeam-deque`
//!   ([`deque::Injector`], [`deque::Worker`], [`deque::Stealer`],
//!   [`deque::Steal`]) that back the persistent evaluation executor in
//!   `genesys_neat::executor`. [`deque::Worker`]/[`deque::Stealer`] are a
//!   **lock-free Chase–Lev deque** (atomic top/bottom indices over a
//!   growable circular buffer), so fine-grained jobs — per-child
//!   reproduction work, not just whole gym episodes — pop and steal
//!   without a lock on the hot path. The [`deque::Injector`] remains a
//!   mutex-guarded FIFO, which makes **concurrent multi-producer
//!   injection safe** (pushes are serialized and linearizable; the
//!   serving layer injects from its scheduler thread while workers
//!   drain). Quiescent seeding by the executor is a *throughput*
//!   pattern — the injector is not contended per job because workers
//!   drain it in amortized batches — not a safety precondition
//!   (crates.io crossbeam uses a lock-free block-linked queue there; the
//!   call sites are identical when swapped).

#![deny(missing_docs)]

pub mod deque {
    //! Work-stealing deques (crossbeam-deque 0.8 `crossbeam::deque`).
    //!
    //! A [`Worker`] is an owner-side deque handle: the owning thread pushes
    //! and pops work at one end, while any number of [`Stealer`] handles
    //! take work from the opposite end. An [`Injector`] is a shared FIFO
    //! queue that batches of new work are pushed into and that workers pull
    //! from when their local deque runs dry.
    //!
    //! # Algorithm
    //!
    //! [`Worker`]/[`Stealer`] implement the **Chase–Lev** lock-free deque
    //! (Chase & Lev, SPAA 2005; memory orderings after Lê et al., PPoPP
    //! 2013): `top` and `bottom` are atomic indices into a growable
    //! power-of-two circular buffer. The owner pushes/pops at `bottom`
    //! without synchronization in the common case; thieves race a CAS on
    //! `top` for the oldest task. When the buffer fills, the owner
    //! allocates a doubled buffer, copies the live logical range, and
    //! **retires** the old allocation until the deque drops — a stale
    //! thief may still read a retired buffer, but its `top` CAS then fails
    //! and the bitwise copy is forgotten, so retired memory only needs to
    //! stay *valid*, not current (retired space is bounded by the
    //! geometric growth at ~1× the live buffer).

    use std::cell::UnsafeCell;
    use std::collections::VecDeque;
    use std::fmt;
    use std::marker::PhantomData;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
    use std::sync::{Arc, Mutex};

    /// The result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty at the time of the attempt.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried. The mutex-backed
        /// shim never produces this, but callers written against
        /// crossbeam-deque handle it, so the variant is kept for
        /// call-site compatibility.
        Retry,
    }

    impl<T> Steal<T> {
        /// Converts into `Some(task)` on success.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }

        /// True when the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// True when a task was stolen.
        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        /// True when the attempt should be retried.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Flavor {
        Fifo,
        Lifo,
    }

    /// Smallest buffer allocated for a fresh deque (power of two).
    const MIN_CAP: usize = 32;
    /// Cap on the extra tasks a batch steal moves (mirrors crossbeam).
    const MAX_BATCH: usize = 32;

    /// Growable power-of-two circular buffer of task slots. Logical index
    /// `i` lives in slot `i & (cap - 1)`; growth copies the live logical
    /// range into a doubled buffer at the same logical indices.
    struct Buffer<T> {
        cap: usize,
        slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    }

    impl<T> Buffer<T> {
        fn alloc(cap: usize) -> *mut Buffer<T> {
            debug_assert!(cap.is_power_of_two());
            let slots = (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect();
            Box::into_raw(Box::new(Buffer { cap, slots }))
        }

        /// # Safety
        /// The slot for `index` must not be concurrently written.
        unsafe fn write(&self, index: isize, task: MaybeUninit<T>) {
            let slot = self.slots[index as usize & (self.cap - 1)].get();
            *slot = task;
        }

        /// Bitwise copy of the slot at `index`, still wrapped in
        /// `MaybeUninit`: a racing thief may copy a slot the owner never
        /// wrote in this buffer (e.g. a post-growth buffer whose copy
        /// excluded an already-stolen range), so the value must not be
        /// assumed initialized until the caller's `top` CAS proves
        /// ownership — only then is `assume_init` sound.
        ///
        /// # Safety
        /// `index` must be in the buffer's logical window (the copy itself
        /// never dereferences uninitialized *contents*).
        unsafe fn read(&self, index: isize) -> MaybeUninit<T> {
            let slot = self.slots[index as usize & (self.cap - 1)].get();
            std::ptr::read(slot)
        }
    }

    /// State shared by a [`Worker`] and its [`Stealer`]s.
    struct Inner<T> {
        /// Steal end: next logical index a thief takes.
        top: AtomicIsize,
        /// Owner end: next logical index the owner pushes at.
        bottom: AtomicIsize,
        /// Current buffer (owner-swapped on growth).
        buf: AtomicPtr<Buffer<T>>,
        /// Buffers replaced by growth, freed when the deque drops: a stale
        /// thief may still read one until its `top` CAS fails.
        retired: Mutex<Vec<*mut Buffer<T>>>,
    }

    unsafe impl<T: Send> Send for Inner<T> {}
    unsafe impl<T: Send> Sync for Inner<T> {}

    impl<T> Inner<T> {
        fn new() -> Self {
            Inner {
                top: AtomicIsize::new(0),
                bottom: AtomicIsize::new(0),
                buf: AtomicPtr::new(Buffer::alloc(MIN_CAP)),
                retired: Mutex::new(Vec::new()),
            }
        }

        /// The thief path: race a CAS on `top` for the oldest task.
        fn steal(&self) -> Steal<T> {
            let t = self.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return Steal::Empty;
            }
            let buf = self.buf.load(Ordering::Acquire);
            // Speculative bitwise copy, still `MaybeUninit`; ownership —
            // and initialized-ness — is only established by the CAS.
            let task = unsafe { (*buf).read(t) };
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Steal::Success(unsafe { task.assume_init() })
            } else {
                // Losing copy: maybe stale, maybe uninitialized — dropped
                // as `MaybeUninit`, i.e. forgotten.
                Steal::Retry
            }
        }

        fn len(&self) -> usize {
            let b = self.bottom.load(Ordering::Acquire);
            let t = self.top.load(Ordering::Acquire);
            (b - t).max(0) as usize
        }
    }

    impl<T> Drop for Inner<T> {
        fn drop(&mut self) {
            let t = *self.top.get_mut();
            let b = *self.bottom.get_mut();
            let buf = *self.buf.get_mut();
            unsafe {
                // Live elements all reside in the current buffer.
                for i in t..b {
                    drop((*buf).read(i).assume_init());
                }
                drop(Box::from_raw(buf));
            }
            let mut retired = self
                .retired
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for ptr in retired.drain(..) {
                // Retired buffers hold only bitwise copies of moved-out
                // slots; freeing the allocation drops no elements.
                drop(unsafe { Box::from_raw(ptr) });
            }
        }
    }

    /// Owner-side handle of a lock-free Chase–Lev work-stealing deque.
    ///
    /// `Send` but deliberately **not `Sync`** (like crossbeam's): only the
    /// owning thread may push/pop; everyone else goes through a
    /// [`Stealer`].
    pub struct Worker<T> {
        inner: Arc<Inner<T>>,
        flavor: Flavor,
        /// Makes the owner handle `!Sync` (single-owner protocol).
        _not_sync: PhantomData<std::cell::Cell<()>>,
    }

    impl<T> fmt::Debug for Worker<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Worker")
                .field("flavor", &self.flavor)
                .field("len", &self.inner.len())
                .finish()
        }
    }

    impl<T> Worker<T> {
        fn with_flavor(flavor: Flavor) -> Self {
            Worker {
                inner: Arc::new(Inner::new()),
                flavor,
                _not_sync: PhantomData,
            }
        }

        /// Creates a deque whose owner pops the most recently pushed task
        /// first (depth-first; the executor's default).
        pub fn new_lifo() -> Self {
            Worker::with_flavor(Flavor::Lifo)
        }

        /// Creates a deque whose owner pops the oldest task first.
        pub fn new_fifo() -> Self {
            Worker::with_flavor(Flavor::Fifo)
        }

        /// Doubles the buffer, copying the live logical range `t..b`; the
        /// old buffer is retired (not freed) because a stale thief may
        /// still be reading it.
        fn grow(&self, b: isize, t: isize) -> *mut Buffer<T> {
            let old = self.inner.buf.load(Ordering::Relaxed);
            let new = Buffer::alloc(unsafe { (*old).cap } * 2);
            unsafe {
                // Bitwise copy of the live logical range; no assume_init
                // needed, the elements just move buffers.
                for i in t..b {
                    let task = (*old).read(i);
                    (*new).write(i, task);
                }
            }
            self.inner.buf.store(new, Ordering::Release);
            self.inner
                .retired
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(old);
            new
        }

        /// Pushes a task onto the owner end. Lock-free; allocates only
        /// when the buffer must grow.
        pub fn push(&self, task: T) {
            let b = self.inner.bottom.load(Ordering::Relaxed);
            let t = self.inner.top.load(Ordering::Acquire);
            let mut buf = self.inner.buf.load(Ordering::Relaxed);
            if b - t >= unsafe { (*buf).cap } as isize {
                buf = self.grow(b, t);
            }
            unsafe { (*buf).write(b, MaybeUninit::new(task)) };
            self.inner.bottom.store(b + 1, Ordering::Release);
        }

        /// Pops a task from the owner end (newest first for LIFO deques,
        /// oldest first for FIFO ones). Lock-free.
        pub fn pop(&self) -> Option<T> {
            match self.flavor {
                Flavor::Lifo => self.pop_lifo(),
                // FIFO owners pop from the steal end, racing thieves.
                Flavor::Fifo => loop {
                    match self.inner.steal() {
                        Steal::Success(task) => return Some(task),
                        Steal::Empty => return None,
                        Steal::Retry => continue,
                    }
                },
            }
        }

        fn pop_lifo(&self) -> Option<T> {
            let inner = &*self.inner;
            let b = inner.bottom.load(Ordering::Relaxed) - 1;
            let buf = inner.buf.load(Ordering::Relaxed);
            inner.bottom.store(b, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            let t = inner.top.load(Ordering::Relaxed);
            if t > b {
                // Empty: restore bottom.
                inner.bottom.store(b + 1, Ordering::Relaxed);
                return None;
            }
            if t == b {
                // Last task: race the thieves for it via `top`.
                let won = inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                inner.bottom.store(b + 1, Ordering::Relaxed);
                // The owner wrote slot `b` itself, so it is initialized.
                return won.then(|| unsafe { (*buf).read(b).assume_init() });
            }
            Some(unsafe { (*buf).read(b).assume_init() })
        }

        /// Creates a new stealer handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }

        /// True when the deque holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.inner.len()
        }
    }

    /// Thief-side handle of a work-stealing deque. Cloneable; steals the
    /// oldest task (the end opposite the owner's LIFO end) with a
    /// lock-free CAS.
    pub struct Stealer<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> fmt::Debug for Stealer<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Stealer")
                .field("len", &self.inner.len())
                .finish()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the front (the oldest task). Returns
        /// [`Steal::Retry`] when the CAS loses a race with the owner or
        /// another thief.
        pub fn steal(&self) -> Steal<T> {
            self.inner.steal()
        }

        /// Steals a task to return, moving up to half the visible
        /// remainder (capped) into `dest` along the way.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let first = match self.steal() {
                Steal::Success(task) => task,
                other => return other,
            };
            let extra = (self.len() / 2).min(MAX_BATCH);
            for _ in 0..extra {
                match self.steal() {
                    Steal::Success(task) => dest.push(task),
                    _ => break,
                }
            }
            Steal::Success(first)
        }

        /// True when the deque holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Number of queued tasks (a racy snapshot).
        pub fn len(&self) -> usize {
            self.inner.len()
        }
    }

    /// A shared FIFO injector queue feeding a pool of workers.
    ///
    /// Backed by a `Mutex<VecDeque>`, so **any number of threads may
    /// push and steal concurrently**: every operation takes the lock,
    /// making the queue trivially linearizable. Quiescent seeding (the
    /// executor's pattern of filling the injector before waking the
    /// pool) is purely a contention optimization, not a requirement —
    /// live injection from e.g. a server scheduler thread while workers
    /// drain is exactly-once safe, which
    /// `concurrent_injection_is_linearizable_and_lossless` exercises.
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Steals one task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Steals a batch of tasks into `dest`, returning one directly.
        /// Batch size mirrors crossbeam: half the queue, capped so one
        /// greedy worker cannot drain the injector.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            const MAX_BATCH: usize = 32;
            let batch = {
                let mut q = self.queue.lock().expect("injector poisoned");
                let take = q.len().div_ceil(2).min(MAX_BATCH);
                q.drain(..take).collect::<Vec<T>>()
            };
            push_batch_and_pop(batch, dest)
        }

        /// True when the queue holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector poisoned").len()
        }
    }

    /// Moves `batch` into `dest` keeping FIFO order, returning the first
    /// task (what the thief runs immediately).
    fn push_batch_and_pop<T>(batch: Vec<T>, dest: &Worker<T>) -> Steal<T> {
        let mut iter = batch.into_iter();
        match iter.next() {
            None => Steal::Empty,
            Some(first) => {
                for task in iter {
                    dest.push(task);
                }
                Steal::Success(first)
            }
        }
    }
}

pub mod thread {
    //! Scoped threads (crossbeam 0.8 `crossbeam::thread`).

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope for spawning threads that may borrow from the enclosing stack
    /// frame. Mirrors `crossbeam::thread::Scope`.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives a
        /// reference to the scope so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Creates a scope, runs `f` inside it, and joins every spawned thread
    /// before returning. Matches crossbeam 0.8's contract: a panic in a
    /// *spawned thread* is returned as `Err` with its payload, while a panic
    /// in the scope closure itself propagates to the caller (`std`'s scope
    /// would re-raise both).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let mut closure_panic: Option<Box<dyn std::any::Any + Send>> = None;
        let result = catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                match catch_unwind(AssertUnwindSafe(|| f(&Scope { inner: s }))) {
                    Ok(value) => Some(value),
                    Err(payload) => {
                        closure_panic = Some(payload);
                        None
                    }
                }
            })
        }));
        // `std::thread::scope` re-raises a spawned thread's panic after
        // joining, which the outer catch_unwind turns into `Err`. A closure
        // panic takes precedence, as in crossbeam.
        if let Some(payload) = closure_panic {
            std::panic::resume_unwind(payload);
        }
        match result {
            Ok(Some(value)) => Ok(value),
            Ok(None) => unreachable!("closure panic handled above"),
            Err(thread_panic) => Err(thread_panic),
        }
    }
}

#[cfg(test)]
mod deque_tests {
    use crate::deque::{Injector, Steal, Stealer, Worker};
    use std::collections::HashSet;

    #[test]
    fn lifo_worker_pops_newest_first() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn fifo_worker_pops_oldest_first() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
    }

    #[test]
    fn stealer_takes_from_opposite_end() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_batch_steal_moves_half() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let local = Worker::new_lifo();
        let first = inj.steal_batch_and_pop(&local);
        assert_eq!(first, Steal::Success(0));
        assert_eq!(local.len(), 4, "half of 10 minus the popped one");
        assert_eq!(inj.len(), 5);
    }

    #[test]
    fn every_task_is_delivered_exactly_once_under_contention() {
        const N: usize = 10_000;
        const THIEVES: usize = 4;
        let inj = Injector::new();
        for i in 0..N {
            inj.push(i);
        }
        let mut all = Vec::new();
        crate::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..THIEVES {
                handles.push(scope.spawn(|_| {
                    let local = Worker::new_lifo();
                    let mut seen = Vec::new();
                    loop {
                        let task = local.pop().or_else(|| loop {
                            match inj.steal_batch_and_pop(&local) {
                                Steal::Success(t) => break Some(t),
                                Steal::Empty => break None,
                                Steal::Retry => continue,
                            }
                        });
                        match task {
                            Some(t) => seen.push(t),
                            None => break,
                        }
                    }
                    seen
                }));
            }
            for h in handles {
                all.extend(h.join().expect("thief panicked"));
            }
        })
        .expect("scope failed");
        assert_eq!(all.len(), N, "no task lost or duplicated");
        let unique: HashSet<usize> = all.into_iter().collect();
        assert_eq!(unique.len(), N);
    }

    #[test]
    fn concurrent_injection_is_linearizable_and_lossless() {
        // Producers push *while* thieves drain — the live-injection
        // pattern of the serving layer, not the executor's quiescent
        // seeding. Every task must come out exactly once.
        const PRODUCERS: usize = 3;
        const THIEVES: usize = 3;
        const PER_PRODUCER: usize = 5_000;
        let inj = Injector::new();
        let done = std::sync::atomic::AtomicUsize::new(0);
        let mut all: Vec<usize> = Vec::new();
        crate::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let inj = &inj;
                let done = &done;
                scope.spawn(move |_| {
                    for i in 0..PER_PRODUCER {
                        inj.push(p * PER_PRODUCER + i);
                        if i % 64 == 0 {
                            std::thread::yield_now();
                        }
                    }
                    done.fetch_add(1, std::sync::atomic::Ordering::Release);
                });
            }
            let mut handles = Vec::new();
            for _ in 0..THIEVES {
                let inj = &inj;
                let done = &done;
                handles.push(scope.spawn(move |_| {
                    let local = Worker::new_fifo();
                    let mut seen = Vec::new();
                    loop {
                        match inj.steal_batch_and_pop(&local) {
                            Steal::Success(t) => {
                                seen.push(t);
                                while let Some(t) = local.pop() {
                                    seen.push(t);
                                }
                            }
                            Steal::Retry => continue,
                            Steal::Empty => {
                                let drained = done.load(std::sync::atomic::Ordering::Acquire)
                                    == PRODUCERS
                                    && inj.is_empty();
                                if drained {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    seen
                }));
            }
            for h in handles {
                all.extend(h.join().expect("thief panicked"));
            }
        })
        .expect("scope failed");
        assert_eq!(all.len(), PRODUCERS * PER_PRODUCER, "exactly-once delivery");
        let unique: HashSet<usize> = all.into_iter().collect();
        assert_eq!(unique.len(), PRODUCERS * PER_PRODUCER);
    }

    #[test]
    fn buffer_growth_preserves_every_task() {
        // Push far past MIN_CAP to force several growth/retire cycles,
        // then drain LIFO and check exact contents.
        let w = Worker::new_lifo();
        for i in 0..1000 {
            w.push(i);
        }
        assert_eq!(w.len(), 1000);
        let mut drained = Vec::new();
        while let Some(task) = w.pop() {
            drained.push(task);
        }
        let expected: Vec<i32> = (0..1000).rev().collect();
        assert_eq!(drained, expected);
    }

    #[test]
    fn fifo_owner_races_thieves_without_loss() {
        let w = Worker::new_fifo();
        for i in 0..500usize {
            w.push(i);
        }
        let s = w.stealer();
        let mut all = Vec::new();
        crate::thread::scope(|scope| {
            let thief = scope.spawn(|_| {
                let mut seen = Vec::new();
                loop {
                    match s.steal() {
                        Steal::Success(t) => seen.push(t),
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                }
                seen
            });
            let mut owned = Vec::new();
            while let Some(t) = w.pop() {
                owned.push(t);
            }
            all.extend(owned);
            all.extend(thief.join().expect("thief panicked"));
        })
        .expect("scope failed");
        let unique: HashSet<usize> = all.iter().copied().collect();
        assert_eq!(all.len(), 500, "no task lost or duplicated");
        assert_eq!(unique.len(), 500);
    }

    #[test]
    fn concurrent_growth_and_stealing_conserves_tasks() {
        // The owner keeps pushing (forcing buffer growth mid-flight) and
        // popping while three thieves steal: every task must be delivered
        // exactly once across all participants.
        const N: usize = 20_000;
        const THIEVES: usize = 3;
        let w = Worker::new_lifo();
        let stealers: Vec<Stealer<usize>> = (0..THIEVES).map(|_| w.stealer()).collect();
        let done = std::sync::atomic::AtomicBool::new(false);
        let mut all: Vec<usize> = Vec::new();
        crate::thread::scope(|scope| {
            let mut handles = Vec::new();
            for s in &stealers {
                let done = &done;
                handles.push(scope.spawn(move |_| {
                    let mut seen = Vec::new();
                    loop {
                        match s.steal() {
                            Steal::Success(t) => seen.push(t),
                            Steal::Retry => continue,
                            Steal::Empty => {
                                if done.load(std::sync::atomic::Ordering::Acquire) && s.is_empty() {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    seen
                }));
            }
            let mut owned = Vec::new();
            for i in 0..N {
                w.push(i);
                // Interleave owner pops to exercise the t == b race.
                if i % 3 == 0 {
                    if let Some(t) = w.pop() {
                        owned.push(t);
                    }
                }
            }
            while let Some(t) = w.pop() {
                owned.push(t);
            }
            done.store(true, std::sync::atomic::Ordering::Release);
            all.extend(owned);
            for h in handles {
                all.extend(h.join().expect("thief panicked"));
            }
        })
        .expect("scope failed");
        assert_eq!(all.len(), N, "no task lost or duplicated");
        let unique: HashSet<usize> = all.into_iter().collect();
        assert_eq!(unique.len(), N);
    }

    #[test]
    fn stealer_batch_moves_tasks_into_dest() {
        let w = Worker::new_lifo();
        for i in 0..20 {
            w.push(i);
        }
        let s = w.stealer();
        let dest = Worker::new_lifo();
        let first = s.steal_batch_and_pop(&dest);
        assert_eq!(first, Steal::Success(0), "oldest task returned");
        assert!(!dest.is_empty(), "a batch moved over");
        assert_eq!(dest.len() + s.len() + 1, 20, "nothing lost");
    }

    #[test]
    fn steal_success_converts_to_option() {
        assert_eq!(Steal::Success(7).success(), Some(7));
        assert_eq!(Steal::<i32>::Empty.success(), None);
        assert!(Steal::<i32>::Retry.is_retry());
    }

    #[test]
    fn empty_len_reporting() {
        let w: Worker<u8> = Worker::new_lifo();
        let s = w.stealer();
        let inj: Injector<u8> = Injector::new();
        assert!(w.is_empty() && s.is_empty() && inj.is_empty());
        w.push(1);
        inj.push(2);
        assert_eq!((w.len(), s.len(), inj.len()), (1, 1, 1));
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        let result = crate::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn scoped_threads_can_write_disjoint_chunks() {
        let mut data = [0u32; 8];
        crate::thread::scope(|scope| {
            for chunk in data.chunks_mut(2) {
                scope.spawn(move |_| {
                    for v in chunk {
                        *v += 1;
                    }
                });
            }
        })
        .unwrap();
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn closure_panic_propagates_like_crossbeam() {
        let result = std::panic::catch_unwind(|| {
            let _ = crate::thread::scope(|_| panic!("in closure"));
        });
        assert!(result.is_err(), "closure panics must propagate, not Err");
    }

    #[test]
    fn panics_surface_as_err() {
        let result = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
