//! Session-server load test: `--clients` driver threads sustain
//! `--sessions` concurrent evolution sessions over one server whose
//! resident cap (`--resident`) sits **below** the session count, so the
//! run only completes by continuously evicting and rehydrating tenants.
//!
//! The bin is both a throughput probe and a correctness gate:
//!
//! * every server-mediated session's final checkpoint is compared
//!   **byte-for-byte** against a direct `Session` run of the same seed
//!   (a `step()` loop — the server's Step verb runs exactly n
//!   generations, with no target-fitness early exit), and any mismatch
//!   exits nonzero;
//! * the final `Stats` reply must report evictions (resident cap held)
//!   and exactly `sessions × generations` generations served;
//! * with `GENESYS_BENCH_JSON` set, one JSON line compatible with the
//!   criterion shim's format is appended so `bench_compare` tracks
//!   scheduler throughput. The id carries the `_threads/` parallel
//!   marker: wall-clock scales with core count, which the single-thread
//!   calibration probe cannot normalize.
//!
//! ```text
//! serve_loadtest [--sessions N] [--resident N] [--clients N]
//!                [--generations N] [--pop N] [--threads N] [--seed N]
//! ```
//!
//! Defaults: `--sessions 256 --resident 64 --clients 8 --generations 3
//! --pop 16 --threads 1`. CI runs the defaults as the serve smoke job.

use genesys_bench::ExperimentArgs;
use genesys_core::snapshot_to_bytes;
use genesys_neat::{NeatConfig, Session};
use genesys_serve::{Reply, Request, Server, ServerConfig, WorkloadSpec};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn temp_dir() -> PathBuf {
    std::env::temp_dir().join(format!("genesys-serve-loadtest-{}", std::process::id()))
}

/// Per-tenant seed: distinct streams so byte-parity failures cannot hide
/// behind identical trajectories.
fn tenant_seed(base: u64, index: usize) -> u64 {
    base.wrapping_add(1 + index as u64)
}

fn tenant_config(pop: usize) -> NeatConfig {
    NeatConfig::builder(3, 2)
        .pop_size(pop)
        .build()
        .expect("loadtest config is valid")
}

/// The uninterrupted single-session trajectory the server must reproduce.
fn direct_image(seed: u64, pop: usize, generations: u32) -> Vec<u8> {
    let mut session = Session::builder(tenant_config(pop), seed)
        .expect("loadtest config is valid")
        .workload(WorkloadSpec::Synthetic.build())
        .build();
    for _ in 0..generations {
        session.step();
    }
    snapshot_to_bytes(&session.export_state()).expect("snapshot encodes")
}

fn main() -> ExitCode {
    let args = ExperimentArgs::parse();
    let sessions = args.get_usize("--sessions", 256);
    let resident = args.get_usize("--resident", 64);
    let clients = args.get_usize("--clients", 8);
    let generations = args.generations_or(3) as u32;
    let pop = args.pop_or(16);
    let threads = args.threads_or(1);
    let seed = args.base_seed(42);

    assert!(
        resident < sessions,
        "the load test must oversubscribe the resident cap ({resident} >= {sessions})"
    );

    println!(
        "serve_loadtest: {sessions} sessions (resident cap {resident}) x {generations} \
         generations, pop {pop}, {clients} clients, {threads} worker thread(s), seed {seed}"
    );

    let spill = temp_dir();
    let _ = std::fs::remove_dir_all(&spill);
    let server = Server::start(
        ServerConfig::new(&spill)
            .max_sessions(sessions)
            .max_resident(resident)
            .threads(threads),
    )
    .expect("server starts");
    let client = server.client();

    let mut ids = Vec::with_capacity(sessions);
    for i in 0..sessions {
        match client
            .call(Request::Submit {
                seed: tenant_seed(seed, i),
                workload: WorkloadSpec::Synthetic,
                config: Box::new(tenant_config(pop)),
            })
            .expect("submit succeeds")
        {
            Reply::Submitted { session, .. } => ids.push(session),
            other => panic!("expected Submitted, got {other:?}"),
        }
    }

    // The sustained phase: each client thread owns a slice of the tenant
    // list and steps every tenant one generation per sweep, so all
    // sessions stay live simultaneously and the resident cap churns the
    // whole run — the scheduler never gets a quiescent subset to pin.
    let chunk = sessions.div_ceil(clients);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for slice in ids.chunks(chunk) {
            let client = client.clone();
            scope.spawn(move || {
                for _ in 0..generations {
                    for &session in slice {
                        match client
                            .call(Request::Step {
                                session,
                                generations: 1,
                            })
                            .expect("step succeeds")
                        {
                            Reply::Stepped { .. } => {}
                            other => panic!("expected Stepped, got {other:?}"),
                        }
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed();

    let stats = match client.call(Request::Stats).expect("stats succeeds") {
        Reply::Stats(stats) => stats,
        other => panic!("expected Stats, got {other:?}"),
    };
    let total_generations = sessions as u64 * u64::from(generations);
    assert_eq!(stats.sessions, sessions as u64);
    assert_eq!(stats.generations, total_generations);
    assert!(
        stats.evictions > 0,
        "resident cap {resident} under {sessions} sessions must evict"
    );
    let per_generation_ns = elapsed.as_nanos() as u64 / total_generations.max(1);
    println!(
        "sustained: {total_generations} generations in {:.2}s ({:.0} gen/s, {} ns/gen), \
         {} evictions, {} rehydrations",
        elapsed.as_secs_f64(),
        total_generations as f64 / elapsed.as_secs_f64(),
        per_generation_ns,
        stats.evictions,
        stats.rehydrations
    );

    // Byte-parity gate: every tenant, not a sample — the whole point of
    // the server is that multiplexing is invisible to the trajectory.
    let mut mismatches = 0usize;
    for (i, &session) in ids.iter().enumerate() {
        let image = match client
            .call(Request::Checkpoint { session })
            .expect("checkpoint succeeds")
        {
            Reply::Snapshot { image, .. } => image,
            other => panic!("expected Snapshot, got {other:?}"),
        };
        if image != direct_image(tenant_seed(seed, i), pop, generations) {
            eprintln!("tenant {i} (session {session}) diverged from its direct run");
            mismatches += 1;
        }
    }
    drop(server);
    let _ = std::fs::remove_dir_all(&spill);
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches}/{sessions} sessions diverged");
        return ExitCode::FAILURE;
    }
    println!("parity: all {sessions} server-mediated sessions match their direct runs");

    // One criterion-shim-compatible JSON line for the bench gate. The
    // `_threads/` marker exempts the entry when baseline and results
    // report different core counts (see bench_compare's PARALLEL_MARKERS).
    if let Ok(path) = std::env::var("GENESYS_BENCH_JSON") {
        if !path.is_empty() {
            let cores = std::thread::available_parallelism().map_or(1, usize::from);
            let line = format!(
                "{{\"id\":\"serve_loadtest/sustained_threads/{clients}x{sessions}\",\
                 \"min_ns\":{per_generation_ns},\"mean_ns\":{per_generation_ns},\
                 \"p95_ns\":{per_generation_ns},\"iters\":{total_generations},\
                 \"cores\":{cores}}}\n"
            );
            let written = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut file| file.write_all(line.as_bytes()));
            if let Err(err) = written {
                eprintln!("warning: could not append bench result to {path}: {err}");
            }
        }
    }
    ExitCode::SUCCESS
}
