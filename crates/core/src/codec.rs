//! The 64-bit hardware gene encoding (Fig 6 of the paper).
//!
//! "We use 64 bits to capture both types of genes." One SRAM word = one
//! gene. Node genes carry `{type, id, bias, response, activation,
//! aggregation}`; connection genes carry `{src, dst, weight, enabled}`.
//! Continuous attributes are stored in signed fixed point, so a genome that
//! round-trips through the genome buffer is *quantized* — the SoC evolves
//! fixed-point genomes, an effect the `quantization` ablation bench
//! measures.
//!
//! Bit layout (MSB first):
//!
//! ```text
//! node  [63]=0 [62:61]=type [60:47]=id   [46:35]=bias(Q5.6) [34:23]=response(Q5.6) [22:19]=act [18:16]=agg [15:0]=0
//! conn  [63]=1 [62:49]=src  [48:35]=dst  [34:19]=weight(Q6.9) [18]=enabled [17:0]=0
//! ```

use genesys_neat::gene::{ConnGene, ConnKey, NodeGene, NodeId, NodeType};
use genesys_neat::{Activation, Aggregation, Genome};
use std::error::Error;
use std::fmt;

/// Width of the node-id fields: 14 bits.
pub const NODE_ID_BITS: u32 = 14;
/// Largest encodable node id.
pub const MAX_NODE_ID: u32 = (1 << NODE_ID_BITS) - 1;
/// Fixed-point scale for bias/response (Q5.6: 6 fraction bits).
pub const ATTR_SCALE: f64 = 64.0;
/// Fixed-point scale for connection weights (Q6.9: 9 fraction bits).
pub const WEIGHT_SCALE: f64 = 512.0;

const ATTR_BITS: u32 = 12;
const WEIGHT_BITS: u32 = 16;

/// Error produced when decoding a malformed gene word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// A node gene used the reserved type pattern `11`.
    ReservedNodeType,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::ReservedNodeType => write!(f, "reserved node type pattern 0b11"),
        }
    }
}

impl Error for DecodeError {}

/// A decoded gene: either kind, as stored in the genome buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gene {
    /// A node (vertex) gene.
    Node(NodeGene),
    /// A connection (edge) gene.
    Conn(ConnGene),
}

impl Gene {
    /// The sort key used by the genome buffer layout: node genes first (by
    /// id), then connection genes (by `(src, dst)`).
    pub fn sort_key(&self) -> (u8, u32, u32) {
        match self {
            Gene::Node(n) => (0, n.id.0, 0),
            Gene::Conn(c) => (1, c.key.src.0, c.key.dst.0),
        }
    }
}

#[inline]
fn quantize(value: f64, scale: f64, bits: u32) -> u64 {
    let max = (1i64 << (bits - 1)) - 1;
    let min = -(1i64 << (bits - 1));
    let raw = (value * scale).round() as i64;
    let clamped = raw.clamp(min, max);
    (clamped as u64) & ((1u64 << bits) - 1)
}

#[inline]
fn dequantize(raw: u64, scale: f64, bits: u32) -> f64 {
    // Sign-extend the `bits`-wide field.
    let shift = 64 - bits;
    let signed = ((raw << shift) as i64) >> shift;
    signed as f64 / scale
}

/// Quantizes a bias/response value exactly as the gene word stores it.
pub fn quantize_attr(value: f64) -> f64 {
    dequantize(
        quantize(value, ATTR_SCALE, ATTR_BITS),
        ATTR_SCALE,
        ATTR_BITS,
    )
}

/// Quantizes a connection weight exactly as the gene word stores it.
pub fn quantize_weight(value: f64) -> f64 {
    dequantize(
        quantize(value, WEIGHT_SCALE, WEIGHT_BITS),
        WEIGHT_SCALE,
        WEIGHT_BITS,
    )
}

/// Encodes a node gene into its 64-bit word.
///
/// Node ids are truncated to [`NODE_ID_BITS`]; the SoC configuration keeps
/// genomes below that (Section IV gene encoding).
pub fn encode_node(node: &NodeGene) -> u64 {
    let mut w = 0u64;
    // bit 63 = 0 (node)
    w |= u64::from(node.node_type.to_code() & 0b11) << 61;
    w |= u64::from(node.id.0 & MAX_NODE_ID) << 47;
    w |= quantize(node.bias, ATTR_SCALE, ATTR_BITS) << 35;
    w |= quantize(node.response, ATTR_SCALE, ATTR_BITS) << 23;
    w |= u64::from(node.activation.to_code() & 0xF) << 19;
    w |= u64::from(node.aggregation.to_code() & 0x7) << 16;
    w
}

/// Encodes a connection gene into its 64-bit word.
pub fn encode_conn(conn: &ConnGene) -> u64 {
    let mut w = 1u64 << 63;
    w |= u64::from(conn.key.src.0 & MAX_NODE_ID) << 49;
    w |= u64::from(conn.key.dst.0 & MAX_NODE_ID) << 35;
    w |= quantize(conn.weight, WEIGHT_SCALE, WEIGHT_BITS) << 19;
    w |= u64::from(conn.enabled) << 18;
    w
}

/// Encodes either gene kind.
pub fn encode(gene: &Gene) -> u64 {
    match gene {
        Gene::Node(n) => encode_node(n),
        Gene::Conn(c) => encode_conn(c),
    }
}

/// Decodes a 64-bit gene word.
///
/// # Errors
///
/// Returns [`DecodeError::ReservedNodeType`] for the reserved node-type
/// pattern.
pub fn decode(word: u64) -> Result<Gene, DecodeError> {
    if word >> 63 == 0 {
        let type_code = ((word >> 61) & 0b11) as u8;
        if type_code == 0b11 {
            return Err(DecodeError::ReservedNodeType);
        }
        // Hardware type field: 00 hidden, 01 input, 10 output (Fig 6).
        let node_type = NodeType::from_code(type_code);
        Ok(Gene::Node(NodeGene {
            id: NodeId(((word >> 47) & u64::from(MAX_NODE_ID)) as u32),
            node_type,
            bias: dequantize((word >> 35) & 0xFFF, ATTR_SCALE, ATTR_BITS),
            response: dequantize((word >> 23) & 0xFFF, ATTR_SCALE, ATTR_BITS),
            activation: Activation::from_code(((word >> 19) & 0xF) as u8),
            aggregation: Aggregation::from_code(((word >> 16) & 0x7) as u8),
        }))
    } else {
        Ok(Gene::Conn(ConnGene {
            key: ConnKey::new(
                NodeId(((word >> 49) & u64::from(MAX_NODE_ID)) as u32),
                NodeId(((word >> 35) & u64::from(MAX_NODE_ID)) as u32),
            ),
            weight: dequantize((word >> 19) & 0xFFFF, WEIGHT_SCALE, WEIGHT_BITS),
            enabled: (word >> 18) & 1 == 1,
        }))
    }
}

/// Serializes a genome into its genome-buffer image: node genes in
/// ascending id order, then connection genes in ascending key order — the
/// "two logical clusters" layout of Section IV-C5.
pub fn encode_genome(genome: &Genome) -> Vec<u64> {
    let mut words = Vec::with_capacity(genome.num_genes());
    for node in genome.nodes() {
        words.push(encode_node(node));
    }
    for conn in genome.conns() {
        words.push(encode_conn(conn));
    }
    words
}

/// Deserializes a genome-buffer image back into a [`Genome`].
///
/// # Errors
///
/// Returns an error string if a word is malformed or the gene set violates
/// genome invariants (the Gene Merge validity checks).
pub fn decode_genome(
    key: u64,
    num_inputs: usize,
    num_outputs: usize,
    words: &[u64],
) -> Result<Genome, Box<dyn Error>> {
    let mut nodes = Vec::new();
    let mut conns = Vec::new();
    for &w in words {
        match decode(w)? {
            Gene::Node(n) => nodes.push(n),
            Gene::Conn(c) => conns.push(c),
        }
    }
    Ok(Genome::from_parts(
        key,
        num_inputs,
        num_outputs,
        nodes,
        conns,
    )?)
}

/// Quantizes every continuous attribute of a genome to the fixed-point
/// grid of the hardware encoding (what storing it in the genome buffer
/// does). Used by the quantization ablation.
pub fn quantize_genome(genome: &Genome) -> Genome {
    let nodes: Vec<NodeGene> = genome
        .nodes()
        .map(|n| NodeGene {
            bias: quantize_attr(n.bias),
            response: quantize_attr(n.response),
            ..*n
        })
        .collect();
    let conns: Vec<ConnGene> = genome
        .conns()
        .map(|c| ConnGene {
            weight: quantize_weight(c.weight),
            ..*c
        })
        .collect();
    Genome::from_parts(
        genome.key(),
        genome.num_inputs(),
        genome.num_outputs(),
        nodes,
        conns,
    )
    .expect("quantization preserves structure")
}

/// Marker placed before each genome in a population image. Uses the
/// reserved node-type pattern `0b11` (never produced by [`encode_node`]),
/// so a header can never be confused with a gene word.
const GENOME_HEADER_TAG: u64 = 0b011 << 61;

fn encode_header(key: u64, num_genes: usize) -> u64 {
    GENOME_HEADER_TAG | ((key & 0xFFFF_FFFF) << 24) | (num_genes as u64 & 0xFF_FFFF)
}

fn decode_header(word: u64) -> Option<(u64, usize)> {
    if word >> 61 != 0b011 {
        return None;
    }
    Some(((word >> 24) & 0xFFFF_FFFF, (word & 0xFF_FFFF) as usize))
}

/// Serializes a whole population into one genome-buffer image — the
/// checkpoint format of the SoC. Layout per genome: a header word
/// (key + gene count), a raw `f64`-bits fitness word, then the gene words
/// in buffer order.
pub fn encode_population(genomes: &[Genome]) -> Vec<u64> {
    let mut words = Vec::new();
    for g in genomes {
        words.push(encode_header(g.key(), g.num_genes()));
        words.push(g.fitness().unwrap_or(f64::NAN).to_bits());
        words.extend(encode_genome(g));
    }
    words
}

/// Deserializes a population image produced by [`encode_population`].
///
/// # Errors
///
/// Returns an error string if a header is missing/truncated or any genome
/// fails validation.
pub fn decode_population(
    num_inputs: usize,
    num_outputs: usize,
    words: &[u64],
) -> Result<Vec<Genome>, Box<dyn Error>> {
    let mut genomes = Vec::new();
    let mut i = 0usize;
    while i < words.len() {
        let (key, num_genes) =
            decode_header(words[i]).ok_or_else(|| format!("expected genome header at word {i}"))?;
        let fitness = f64::from_bits(*words.get(i + 1).ok_or("truncated fitness word")?);
        let body = words
            .get(i + 2..i + 2 + num_genes)
            .ok_or("truncated genome body")?;
        let mut genome = decode_genome(key, num_inputs, num_outputs, body)?;
        if fitness.is_finite() {
            genome.set_fitness(fitness);
        }
        genomes.push(genome);
        i += 2 + num_genes;
    }
    Ok(genomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesys_neat::{NeatConfig, XorWow};

    #[test]
    fn node_roundtrip_preserves_discrete_fields() {
        let mut node = NodeGene::hidden(NodeId(1234));
        node.activation = Activation::Tanh;
        node.aggregation = Aggregation::Max;
        node.bias = 1.5;
        node.response = -2.25;
        let decoded = decode(encode_node(&node)).unwrap();
        match decoded {
            Gene::Node(d) => {
                assert_eq!(d.id, node.id);
                assert_eq!(d.node_type, node.node_type);
                assert_eq!(d.activation, node.activation);
                assert_eq!(d.aggregation, node.aggregation);
                assert_eq!(d.bias, 1.5, "1.5 is exactly representable in Q5.6");
                assert_eq!(d.response, -2.25);
            }
            Gene::Conn(_) => panic!("decoded wrong kind"),
        }
    }

    #[test]
    fn conn_roundtrip() {
        let mut conn = ConnGene::new(NodeId(3), NodeId(9001), -0.5);
        conn.enabled = false;
        let decoded = decode(encode_conn(&conn)).unwrap();
        match decoded {
            Gene::Conn(d) => {
                assert_eq!(d.key, conn.key);
                assert_eq!(d.weight, -0.5);
                assert!(!d.enabled);
            }
            Gene::Node(_) => panic!("decoded wrong kind"),
        }
    }

    #[test]
    fn quantization_error_is_bounded() {
        let mut rng = XorWow::seed_from_u64_value(5);
        for _ in 0..10_000 {
            let v = rng.uniform(-30.0, 30.0);
            assert!((quantize_attr(v) - v).abs() <= 0.5 / ATTR_SCALE + 1e-12);
            assert!((quantize_weight(v) - v).abs() <= 0.5 / WEIGHT_SCALE + 1e-12);
        }
    }

    #[test]
    fn out_of_range_values_clamp() {
        let q = quantize_attr(1000.0);
        assert!(q <= 32.0, "Q5.6 clamps at +32, got {q}");
        let q = quantize_weight(-1000.0);
        assert!(q >= -64.0 - 1e-9, "Q6.9 clamps at -64, got {q}");
    }

    #[test]
    fn node_type_patterns_match_fig6() {
        // 00: hidden, 01: input, 10: output.
        let hidden = encode_node(&NodeGene::hidden(NodeId(0)));
        let input = encode_node(&NodeGene::input(NodeId(0)));
        let output = encode_node(&NodeGene::output(NodeId(0)));
        assert_eq!((hidden >> 61) & 0b11, 0b00);
        assert_eq!((input >> 61) & 0b11, 0b01);
        assert_eq!((output >> 61) & 0b11, 0b10);
    }

    #[test]
    fn reserved_type_rejected() {
        let word = 0b11u64 << 61;
        assert_eq!(decode(word).unwrap_err(), DecodeError::ReservedNodeType);
    }

    #[test]
    fn genome_image_roundtrips() {
        let config = NeatConfig::builder(4, 2).build().unwrap();
        let mut rng = XorWow::seed_from_u64_value(11);
        let genome = Genome::initial(7, &config, &mut rng);
        let words = encode_genome(&genome);
        assert_eq!(words.len(), genome.num_genes());
        let back = decode_genome(7, 4, 2, &words).unwrap();
        assert_eq!(back.num_nodes(), genome.num_nodes());
        assert_eq!(back.num_conns(), genome.num_conns());
        for (a, b) in genome.nodes().zip(back.nodes()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.node_type, b.node_type);
        }
    }

    #[test]
    fn genome_image_is_sorted_nodes_then_conns() {
        let config = NeatConfig::builder(3, 1).build().unwrap();
        let mut rng = XorWow::seed_from_u64_value(2);
        let genome = Genome::initial(0, &config, &mut rng);
        let words = encode_genome(&genome);
        let genes: Vec<Gene> = words.iter().map(|&w| decode(w).unwrap()).collect();
        let keys: Vec<_> = genes.iter().map(Gene::sort_key).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "buffer image must be in genome-buffer order");
    }

    #[test]
    fn population_image_roundtrips_with_fitness() {
        let config = NeatConfig::builder(3, 1).build().unwrap();
        let mut rng = XorWow::seed_from_u64_value(21);
        let genomes: Vec<Genome> = (0..5u64)
            .map(|k| {
                let mut g = Genome::initial(k, &config, &mut rng);
                g.set_fitness(k as f64 * 1.5);
                g
            })
            .collect();
        let words = encode_population(&genomes);
        let back = decode_population(3, 1, &words).unwrap();
        assert_eq!(back.len(), 5);
        for (a, b) in genomes.iter().zip(back.iter()) {
            assert_eq!(a.key(), b.key());
            assert_eq!(a.num_genes(), b.num_genes());
            assert_eq!(a.fitness(), b.fitness());
        }
    }

    #[test]
    fn unevaluated_fitness_survives_roundtrip_as_none() {
        let config = NeatConfig::builder(2, 1).build().unwrap();
        let mut rng = XorWow::seed_from_u64_value(22);
        let genomes = vec![Genome::initial(9, &config, &mut rng)];
        let back = decode_population(2, 1, &encode_population(&genomes)).unwrap();
        assert_eq!(back[0].fitness(), None);
    }

    #[test]
    fn header_tag_never_collides_with_genes() {
        let config = NeatConfig::builder(4, 2).build().unwrap();
        let mut rng = XorWow::seed_from_u64_value(23);
        let genome = Genome::initial(0, &config, &mut rng);
        for word in encode_genome(&genome) {
            assert!(decode_header(word).is_none(), "gene decoded as header");
        }
    }

    #[test]
    fn truncated_population_image_errors() {
        let config = NeatConfig::builder(2, 1).build().unwrap();
        let mut rng = XorWow::seed_from_u64_value(24);
        let genomes = vec![Genome::initial(0, &config, &mut rng)];
        let mut words = encode_population(&genomes);
        words.pop();
        assert!(decode_population(2, 1, &words).is_err());
    }

    #[test]
    fn garbage_header_errors() {
        let err = decode_population(2, 1, &[0u64, 0u64]).unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn quantize_genome_preserves_structure_and_grids_attributes() {
        let config = NeatConfig::builder(3, 2).build().unwrap();
        let mut rng = XorWow::seed_from_u64_value(13);
        let mut genome = Genome::initial(0, &config, &mut rng);
        let mut ops = genesys_neat::trace::OpCounters::new();
        genome.mutate_attributes(&config, &mut rng, &mut ops);
        let q = quantize_genome(&genome);
        assert_eq!(q.num_genes(), genome.num_genes());
        for conn in q.conns() {
            let snapped = quantize_weight(conn.weight);
            assert_eq!(conn.weight, snapped, "already on the grid");
        }
    }
}
