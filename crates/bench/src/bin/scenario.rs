//! Continual-learning scenario smoke run: a three-family curriculum
//! (CartPole → Acrobot with sudden drift → LunarLander) through
//! `genesys_scenario`, **asserting the subsystem's contracts** end to
//! end:
//!
//! * serial vs `--threads N`: bit-identical generation events (with
//!   population diagnostics), continual metrics and final genome bytes —
//!   worker count never leaks into the record;
//! * checkpoint mid-sequence through the binary snapshot wire and
//!   resume: bit-identical to the run that never stopped, with one
//!   metrics recorder spanning the power cycle;
//! * population-diagnostics overhead: `PopulationDiagnostics::collect`
//!   over a pop-10⁴ generation costs **< 5 % of that generation's
//!   evaluation time** (the observability budget pinned in
//!   `docs/scenarios.md`).
//!
//! ```text
//! scenario [--pop N] [--generations N] [--threads N] [--seed N]
//! ```
//!
//! Defaults: `--pop 1024 --generations 6 --threads 4 --seed 21`. CI runs
//! this as the scenario smoke job.

use genesys_bench::ExperimentArgs;
use genesys_core::{encode_population, snapshot_from_bytes, snapshot_to_bytes};
use genesys_gym::EnvKind;
use genesys_neat::{
    InitialWeights, NeatConfig, OwnedGenerationEvent, PopulationDiagnostics, Session,
};
use genesys_scenario::{
    ContinualMetrics, DriftSchedule, MetricsRecorder, RecoveryThreshold, Task, TaskPlan,
    TaskSequence,
};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Pinned population for the diagnostics-overhead budget check.
const DIAG_POP: usize = 10_000;
/// Diagnostics may cost at most this fraction of evaluation time.
const DIAG_BUDGET: f64 = 0.05;

fn plan(generations: usize) -> TaskPlan {
    let phase = (generations as u64 / 3).max(1);
    TaskPlan::new(
        77,
        vec![
            Task::new(EnvKind::CartPole, phase),
            Task::new(EnvKind::Acrobot, phase).with_drift(DriftSchedule::Sudden { at: phase / 2 }),
            Task::new(EnvKind::LunarLander, phase),
        ],
    )
}

fn config(plan: &TaskPlan, pop: usize) -> NeatConfig {
    let mut config = plan.neat_config();
    config.pop_size = pop;
    config.initial_weights = InitialWeights::Uniform { lo: -1.0, hi: 1.0 };
    config.target_fitness = None;
    config
}

/// The full observable record of one scenario run.
struct Record {
    events: Vec<OwnedGenerationEvent>,
    metrics: ContinualMetrics,
    genome_bytes: Vec<u64>,
}

fn run(plan: &TaskPlan, pop: usize, generations: usize, seed: u64, threads: usize) -> Record {
    let recorder =
        MetricsRecorder::new(plan.clone(), RecoveryThreshold::WithinFraction(0.5)).probe(2, 9);
    let events = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    let mut session = Session::builder(config(plan, pop), seed)
        .expect("valid scenario config")
        .workload(TaskSequence::new(plan.clone()))
        .threads(threads)
        .observe(move |event| sink.lock().unwrap().push(event.to_owned()))
        .observe(recorder.observer())
        .build();
    session.run(generations);
    let genome_bytes = encode_population(session.genomes());
    drop(session);
    Record {
        events: Arc::try_unwrap(events).unwrap().into_inner().unwrap(),
        metrics: recorder.snapshot(),
        genome_bytes,
    }
}

fn main() {
    let args = ExperimentArgs::parse();
    let pop = args.pop_or(1024);
    let generations = args.generations_or(6).max(3);
    let threads = args.threads_or(4);
    let seed = args.base_seed(21);
    let plan = plan(generations);

    println!(
        "scenario: CartPole -> Acrobot (drifting) -> LunarLander, pop {pop}, \
         {generations} generations, seed {seed}"
    );

    // ---- Worker invariance -------------------------------------------
    let t0 = Instant::now();
    let serial = run(&plan, pop, generations, seed, 1);
    let serial_s = t0.elapsed().as_secs_f64();
    println!(
        "serial: {serial_s:.2}s total, {} events, {} probe rows, {} drift events",
        serial.events.len(),
        serial.metrics.probes.len(),
        serial.metrics.drift_events.len()
    );
    assert_eq!(serial.events.len(), generations);
    assert!(
        serial
            .events
            .iter()
            .all(|e| e.stats.diagnostics.unique_genomes > 0),
        "population diagnostics must be populated on every event"
    );
    if threads > 1 {
        let t0 = Instant::now();
        let parallel = run(&plan, pop, generations, seed, threads);
        let parallel_s = t0.elapsed().as_secs_f64();
        assert_eq!(
            serial.events, parallel.events,
            "events diverged between serial and {threads}-worker runs"
        );
        assert_eq!(
            serial.metrics, parallel.metrics,
            "continual metrics diverged between serial and {threads}-worker runs"
        );
        assert_eq!(
            serial.genome_bytes, parallel.genome_bytes,
            "genome bytes diverged between serial and {threads}-worker runs"
        );
        println!(
            "determinism: {threads}-worker record is bit-identical to serial \
             ({parallel_s:.2}s, {:.2}x)",
            serial_s / parallel_s.max(1e-9)
        );
    }

    // ---- Checkpoint mid-sequence, resume, compare --------------------
    let checkpoint_at = generations / 2;
    let recorder =
        MetricsRecorder::new(plan.clone(), RecoveryThreshold::WithinFraction(0.5)).probe(2, 9);
    let events = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    let mut head = Session::builder(config(&plan, pop), seed)
        .expect("valid scenario config")
        .workload(TaskSequence::new(plan.clone()))
        .threads(threads)
        .observe(move |event| sink.lock().unwrap().push(event.to_owned()))
        .observe(recorder.observer())
        .build();
    head.run(checkpoint_at);
    let bytes = snapshot_to_bytes(&head.export_state()).expect("encodable state");
    drop(head);
    let sink = Arc::clone(&events);
    let mut tail = Session::resume(snapshot_from_bytes(&bytes).expect("valid checkpoint"))
        .expect("restorable state")
        .workload(TaskSequence::new(plan.clone()))
        .threads(1) // resume on a different worker count on purpose
        .observe(move |event| sink.lock().unwrap().push(event.to_owned()))
        .observe(recorder.observer())
        .build();
    tail.run(generations - checkpoint_at);
    let tail_genomes = encode_population(tail.genomes());
    drop(tail);
    let events = Arc::try_unwrap(events).unwrap().into_inner().unwrap();
    assert_eq!(serial.events, events, "resume event stream diverged");
    assert_eq!(
        serial.metrics,
        recorder.snapshot(),
        "continual metrics diverged across the power cycle"
    );
    assert_eq!(serial.genome_bytes, tail_genomes, "resume genomes diverged");
    println!(
        "resume: {} B checkpoint at generation {checkpoint_at} resumes bit-identically",
        bytes.len()
    );

    // ---- Diagnostics-overhead budget at pop 10⁴ ----------------------
    // One evaluated generation at the pinned population, at the suite's
    // 2-episode evaluation convention (the same count the metrics
    // probes use); the eval clock comes from the generation's own
    // stats, the diagnostics clock from re-running the collector on the
    // same genome buffer (min of a few passes, so one scheduler burst
    // cannot inflate it).
    let diag_plan = TaskPlan::new(77, vec![Task::new(EnvKind::LunarLander, 1_000_000)]);
    let mut session = Session::builder(config(&diag_plan, DIAG_POP), seed)
        .expect("valid scenario config")
        .workload(TaskSequence::new(diag_plan).with_episodes(2))
        .threads(1)
        .build();
    let stats = session.step();
    let eval_s = stats.eval_ns as f64 / 1e9;
    let diag_s = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(PopulationDiagnostics::collect(session.genomes()));
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    let ratio = diag_s / eval_s.max(1e-12);
    println!(
        "diagnostics overhead at pop {DIAG_POP}: {:.2}ms vs {:.0}ms eval \
         ({:.2}% of eval time, budget {:.0}%)",
        diag_s * 1e3,
        eval_s * 1e3,
        ratio * 1e2,
        DIAG_BUDGET * 1e2
    );
    assert!(
        ratio < DIAG_BUDGET,
        "population diagnostics cost {:.2}% of evaluation time at pop {DIAG_POP} \
         (budget {:.0}%)",
        ratio * 1e2,
        DIAG_BUDGET * 1e2
    );

    println!(
        "scenario smoke: worker invariance, mid-sequence resume and the \
         diagnostics budget all hold"
    );
}
