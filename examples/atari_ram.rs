//! Continuous learning on a 128-byte RAM game: the paper's Atari-class
//! workload. Genomes observe the raw RAM of the Asterix machine and learn
//! to chase tankards and dodge lyres — while we watch the gene count grow
//! (the Fig 4(b) effect that motivates gene-level parallelism).
//!
//! Run with: `cargo run --release --example atari_ram`

use genesys::gym::{rollout, AsterixRam, EnvKind};
use genesys::neat::Population;
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    let mut config = EnvKind::Asterix.neat_config();
    config.pop_size = 64; // paper uses 150; smaller here for a fast demo
    let mut population = Population::new(config, 99);
    population.set_parallelism(4);

    let seed = AtomicU64::new(0);
    println!("evolving Asterix-ram (128 RAM-byte observations, 5 buttons)...\n");
    println!("gen | best score | mean score | genes (pop) | species | evo ops");
    for _ in 0..10 {
        let stats = population.evolve_once(|net| {
            let s = seed.fetch_add(1, Ordering::Relaxed);
            let mut env = AsterixRam::from_seed(s).with_max_steps(600);
            rollout(net, &mut env, 1)
        });
        println!(
            "{:>3} | {:>10.0} | {:>10.1} | {:>11} | {:>7} | {:>7}",
            stats.generation,
            stats.max_fitness,
            stats.mean_fitness,
            stats.total_genes,
            stats.num_species,
            stats.ops.total(),
        );
    }
    let best = population.best_genome().expect("evaluated");
    println!(
        "\nbest genome: {} nodes, {} connections, {} bytes in the 64-bit gene encoding",
        best.num_nodes(),
        best.num_conns(),
        best.memory_bytes(),
    );
    println!("note the op counts: this is the workload class where the paper's");
    println!("gene-level parallelism (256 EvE PEs) pays off.");
}
