//! Desktop and embedded GPU cost models (GTX 1080 / Tegra on TX2).
//!
//! The paper's GPU deep dive (Section VI-B) describes two mappings:
//!
//! * **GPU_a** — BSP: input vectors are compacted *serially* on the host,
//!   then vertices of one genome are evaluated in parallel. Every
//!   genome × step needs its own kernel launch plus HtoD/DtoH transfers;
//!   the paper measures **≈70 % of runtime in memory transfers**.
//! * **GPU_b** — BSP+PLP: all genomes evaluated at once, but "the inputs
//!   and weights could no longer be compacted resulting in large sparse
//!   tensors": fewer launches, much larger transfers, **≈20 % of runtime
//!   in transfers**, and a far bigger device footprint (Fig 10(d)).
//!
//! Like the CPU model, this is trace-driven: measured op/byte counts ×
//! per-device constants from public spec sheets.

use crate::platform::WorkloadProfile;

/// Time split of one generation on a GPU configuration — the Fig 10 bars.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransferBreakdown {
    /// Host-to-device copy time, seconds.
    pub h2d_s: f64,
    /// Device-to-host copy time, seconds.
    pub d2h_s: f64,
    /// Kernel execution time, seconds.
    pub kernel_s: f64,
}

impl TransferBreakdown {
    /// Total runtime.
    pub fn total_s(&self) -> f64 {
        self.h2d_s + self.d2h_s + self.kernel_s
    }

    /// Fraction of runtime spent copying.
    pub fn memcpy_fraction(&self) -> f64 {
        let t = self.total_s();
        if t == 0.0 {
            0.0
        } else {
            (self.h2d_s + self.d2h_s) / t
        }
    }
}

/// A GPU device's cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Device name.
    pub name: &'static str,
    /// Kernel launch overhead, seconds.
    pub launch_overhead_s: f64,
    /// Sustained MAC throughput for these small irregular kernels, ops/s
    /// (far below peak: tiny matrices cannot fill the SMs).
    pub effective_macs_per_s: f64,
    /// PCIe/interconnect copy bandwidth, bytes/s.
    pub copy_bw_bytes_per_s: f64,
    /// Per-copy invocation overhead, seconds.
    pub copy_overhead_s: f64,
    /// Board power while busy, watts.
    pub power_w: f64,
    /// Evolution op throughput (ops/s) for the PLP evolution kernels.
    pub evo_ops_per_s: f64,
    /// Per-wave synchronization/reduction overhead of the BSP+PLP mapping
    /// (population lockstep barrier), seconds.
    pub bsp_wave_overhead_s: f64,
}

impl GpuModel {
    /// NVIDIA GTX 1080 (GPU_a / GPU_b rows).
    pub fn gtx_1080() -> Self {
        GpuModel {
            name: "Nvidia GTX 1080",
            launch_overhead_s: 8e-6,
            effective_macs_per_s: 5e10,
            copy_bw_bytes_per_s: 6e9,
            copy_overhead_s: 8e-6,
            power_w: 180.0,
            evo_ops_per_s: 2e8,
            bsp_wave_overhead_s: 40e-6,
        }
    }

    /// NVIDIA Tegra on the Jetson TX2 (GPU_c / GPU_d rows): lower clocks
    /// and bandwidth, far lower power.
    pub fn tegra() -> Self {
        GpuModel {
            name: "Nvidia Tegra",
            launch_overhead_s: 15e-6,
            effective_macs_per_s: 6e9,
            copy_bw_bytes_per_s: 1.5e9,
            copy_overhead_s: 15e-6,
            power_w: 10.0,
            evo_ops_per_s: 3e7,
            bsp_wave_overhead_s: 90e-6,
        }
    }

    /// Device-resident bytes for the GPU_a mapping: compact dense
    /// matrices for **one genome at a time** ("only compact matrices for
    /// one genome is required at a time").
    pub fn footprint_gpu_a_bytes(w: &WorkloadProfile) -> u64 {
        let n = w.max_nodes as u64;
        n * n * 4 + 2 * n * 4
    }

    /// Device-resident bytes for the GPU_b mapping: padded sparse weight
    /// and input tensors for the **whole population**.
    pub fn footprint_gpu_b_bytes(w: &WorkloadProfile) -> u64 {
        let n = w.max_nodes as u64;
        w.pop_size as u64 * (n * n * 4 + 2 * n * 4)
    }

    /// Inference time split for the GPU_a mapping: one launch + one
    /// input/output copy per genome per environment step; weights copied
    /// once per genome per generation.
    pub fn inference_gpu_a(&self, w: &WorkloadProfile) -> TransferBreakdown {
        let steps = w.env_steps as f64;
        let per_genome_weights = Self::footprint_gpu_a_bytes(w) as f64;
        let h2d_bytes = w.pop_size as f64 * per_genome_weights // weights, once per generation
            + steps * w.mean_nodes * 4.0; // input vectors, every step
        let d2h_bytes = steps * 8.0 * 4.0; // output vertices, every step
        let copies = w.pop_size as f64 + 2.0 * steps;
        let h2d_s = h2d_bytes / self.copy_bw_bytes_per_s + copies * 0.5 * self.copy_overhead_s;
        let d2h_s = d2h_bytes / self.copy_bw_bytes_per_s + copies * 0.5 * self.copy_overhead_s;
        // Serial host compaction throttles the kernel stream.
        let kernel_s = steps * self.launch_overhead_s
            + w.inference_macs as f64 / self.effective_macs_per_s
            + steps * w.mean_nodes * 10e-9; // host-side compaction
        TransferBreakdown {
            h2d_s,
            d2h_s,
            kernel_s,
        }
    }

    /// Inference time split for the GPU_b mapping: the population is
    /// batched (env steps proceed in lockstep waves), so launches drop by
    /// `pop_size` but the padded sparse tensors must move.
    pub fn inference_gpu_b(&self, w: &WorkloadProfile) -> TransferBreakdown {
        let waves = (w.env_steps as f64 / w.pop_size as f64).ceil();
        let sparse_bytes = Self::footprint_gpu_b_bytes(w) as f64;
        let h2d_bytes = sparse_bytes // padded tensors, once per generation
            + waves * w.pop_size as f64 * w.mean_nodes * 4.0;
        let d2h_bytes = waves * w.pop_size as f64 * 8.0 * 4.0;
        let copies = 2.0 * waves + 1.0;
        let h2d_s = h2d_bytes / self.copy_bw_bytes_per_s + copies * 0.5 * self.copy_overhead_s;
        let d2h_s = d2h_bytes / self.copy_bw_bytes_per_s + copies * 0.5 * self.copy_overhead_s;
        // Padded kernels do ~3× the useful MAC work, launch per wave, and
        // pay a population-lockstep barrier per wave.
        let kernel_s = waves * (self.launch_overhead_s + self.bsp_wave_overhead_s)
            + 3.0 * w.inference_macs as f64 / self.effective_macs_per_s;
        TransferBreakdown {
            h2d_s,
            d2h_s,
            kernel_s,
        }
    }

    /// Evolution runtime per generation, seconds (PLP mapping: one kernel
    /// over all children plus genome transfers both ways).
    pub fn evolution_time_s(&self, w: &WorkloadProfile) -> f64 {
        let genome_bytes = (w.total_genes * 8) as f64;
        let copy_s = 2.0 * genome_bytes / self.copy_bw_bytes_per_s + 4.0 * self.copy_overhead_s;
        let kernel_s = w.evolution_ops as f64 / self.evo_ops_per_s + self.launch_overhead_s;
        copy_s + kernel_s
    }

    /// Energy at busy board power, joules.
    pub fn energy_j(&self, time_s: f64) -> f64 {
        self.power_w * time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cartpole() -> WorkloadProfile {
        WorkloadProfile {
            label: "CartPole_v0".into(),
            pop_size: 150,
            env_steps: 15_000,
            inference_macs: 150_000,
            evolution_ops: 8_000,
            total_genes: 2_000,
            max_nodes: 12,
            mean_nodes: 7.0,
        }
    }

    fn atari() -> WorkloadProfile {
        WorkloadProfile {
            label: "Alien-ram-v0".into(),
            pop_size: 150,
            env_steps: 120_000,
            inference_macs: 25_000_000,
            evolution_ops: 140_000,
            total_genes: 110_000,
            max_nodes: 280,
            mean_nodes: 240.0,
        }
    }

    #[test]
    fn gpu_a_is_memcpy_dominated() {
        let gpu = GpuModel::gtx_1080();
        for w in [cartpole(), atari()] {
            let t = gpu.inference_gpu_a(&w);
            assert!(
                t.memcpy_fraction() > 0.5,
                "{}: GPU_a should be transfer-bound, got {:.2}",
                w.label,
                t.memcpy_fraction()
            );
        }
    }

    #[test]
    fn gpu_b_reduces_memcpy_fraction() {
        let gpu = GpuModel::gtx_1080();
        for w in [cartpole(), atari()] {
            let a = gpu.inference_gpu_a(&w).memcpy_fraction();
            let b = gpu.inference_gpu_b(&w).memcpy_fraction();
            assert!(b < a, "{}: {b:.2} !< {a:.2}", w.label);
        }
    }

    #[test]
    fn gpu_b_footprint_dwarfs_gpu_a() {
        let w = atari();
        let a = GpuModel::footprint_gpu_a_bytes(&w);
        let b = GpuModel::footprint_gpu_b_bytes(&w);
        assert_eq!(b, a * w.pop_size as u64);
        // And GeneSys sits between them (Fig 10(d)).
        let g = w.genesys_footprint_bytes();
        assert!(a < g && g < b, "a={a} g={g} b={b}");
    }

    #[test]
    fn gpu_b_is_faster_than_gpu_a_for_inference() {
        // Batching launches across the population wins despite bigger
        // transfers (that is why the paper builds GPU_b at all).
        let gpu = GpuModel::gtx_1080();
        let w = cartpole();
        assert!(gpu.inference_gpu_b(&w).total_s() < gpu.inference_gpu_a(&w).total_s());
    }

    #[test]
    fn tegra_is_slower_but_cheaper_than_gtx() {
        let big = GpuModel::gtx_1080();
        let small = GpuModel::tegra();
        let w = cartpole();
        assert!(small.inference_gpu_a(&w).total_s() > big.inference_gpu_a(&w).total_s());
        assert!(small.power_w < big.power_w);
    }

    #[test]
    fn evolution_time_scales_with_ops() {
        let gpu = GpuModel::gtx_1080();
        let mut w = cartpole();
        let t1 = gpu.evolution_time_s(&w);
        w.evolution_ops *= 100;
        w.total_genes *= 10;
        let t2 = gpu.evolution_time_s(&w);
        assert!(t2 > t1);
    }
}
