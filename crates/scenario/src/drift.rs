//! Drift schedules and the observation-space drift operator.
//!
//! A [`DriftSchedule`] maps a generation index to a **regime** label — a
//! pure function with no hidden state, so the regime an evaluation faces
//! depends only on *where* in the run it sits, never on evaluation order,
//! worker count, or checkpoint boundaries. [`DriftedEnv`] then turns a
//! regime label into a concrete nonstationarity that applies uniformly to
//! **any** environment family: a seed-derived per-dimension sensor
//! gain/polarity transform on the observation vector. The underlying
//! dynamics stay bit-faithful; what drifts is what the policy *sees*,
//! which is exactly the kind of distribution shift the continual-learning
//! literature studies and the cheapest one to make deterministic.

use genesys_gym::{ActionKind, Environment};
use std::fmt;

/// SplitMix64 finalizer — the same mix the session seed derivation uses,
/// so scenario randomness inherits the executor's determinism contract.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// When and how the world changes: a pure function from generation index
/// to a regime label.
///
/// Regime `0` is the **identity regime**: evaluations under it face the
/// unmodified environment, so fitness is directly comparable with
/// non-scenario runs of the same workload. Every variant returns regime
/// `0` at generation `0`.
///
/// Periods of `0` are treated as `1` (regimes cannot advance faster than
/// once per generation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriftSchedule {
    /// One abrupt change: regime `0` before generation `at`, regime `1`
    /// from `at` on. `at == 0` means the run starts already drifted.
    Sudden {
        /// First generation of the post-drift regime.
        at: u64,
    },
    /// Recurring environments: the regime cycles through
    /// `0, 1, .., regimes-1, 0, ..`, advancing every `period` generations.
    /// `regimes` is clamped to at least 1.
    Cyclic {
        /// Generations per regime dwell.
        period: u64,
        /// Number of distinct regimes in the cycle.
        regimes: u64,
    },
    /// Incremental drift: a fresh regime every `period` generations,
    /// never returning (`generation / period`).
    Linear {
        /// Generations per regime dwell.
        period: u64,
    },
    /// Superposition of schedules: the compound regime changes whenever
    /// any component regime changes. Component labels are folded with an
    /// order-sensitive FNV-style mix; the all-identity case maps back to
    /// regime `0`, so an un-drifted compound is still the identity
    /// regime. An empty compound never drifts.
    Compound(Vec<DriftSchedule>),
}

impl DriftSchedule {
    /// The regime in force at `generation`. Pure: same `(self,
    /// generation)` always yields the same label, which is what makes
    /// drift invariant under worker count and checkpoint/resume.
    pub fn regime(&self, generation: u64) -> u64 {
        match self {
            DriftSchedule::Sudden { at } => u64::from(generation >= *at),
            DriftSchedule::Cyclic { period, regimes } => {
                (generation / (*period).max(1)) % (*regimes).max(1)
            }
            DriftSchedule::Linear { period } => generation / (*period).max(1),
            DriftSchedule::Compound(parts) => {
                let mut acc = 0u64;
                let mut drifted = false;
                for part in parts {
                    let r = part.regime(generation);
                    drifted |= r != 0;
                    acc = (acc ^ r)
                        .wrapping_mul(0x0000_0100_0000_01b3)
                        .rotate_left(13);
                }
                if !drifted {
                    0
                } else {
                    // Guard the vanishingly unlikely fold-to-zero so a
                    // drifted compound can never alias the identity regime.
                    acc.max(1)
                }
            }
        }
    }

    /// True when the regime at `generation` differs from the regime at
    /// `generation - 1` — a **drift event** the metrics layer timestamps.
    /// Generation 0 is never a drift event (there is no predecessor).
    pub fn changes_at(&self, generation: u64) -> bool {
        generation > 0 && self.regime(generation) != self.regime(generation - 1)
    }
}

/// Per-dimension sensor gains for `(world_seed, regime)`: the pure
/// function behind [`DriftedEnv`].
///
/// Regime `0` returns all-ones (the identity transform). Any other
/// regime draws, per observation dimension, a gain in `[0.5, 1.5)` with a
/// 1-in-4 polarity flip, from a SplitMix64 stream keyed by
/// `world_seed ^ regime` — so every `(world_seed, regime)` pair names one
/// fixed world, reproducible at any worker count and across resumes.
pub fn regime_gains(world_seed: u64, regime: u64, dim: usize) -> Vec<f64> {
    let mut gains = vec![1.0; dim];
    if regime == 0 {
        return gains;
    }
    let mut state = world_seed ^ regime.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for gain in &mut gains {
        state = splitmix(state);
        let unit = (state >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let mut g = 0.5 + unit;
        if state & 3 == 0 {
            g = -g;
        }
        *gain = g;
    }
    gains
}

/// An environment whose observations pass through the regime's sensor
/// transform (see [`regime_gains`]).
///
/// Rewards, termination, dynamics and the action interface are exactly
/// the inner environment's; only the observation the policy receives is
/// scaled/flipped. Regime `0` is bit-identical to the raw environment
/// (multiplication by `1.0` is exact for the finite values environments
/// emit).
pub struct DriftedEnv {
    inner: Box<dyn Environment>,
    gains: Vec<f64>,
}

impl fmt::Debug for DriftedEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DriftedEnv")
            .field("inner", &self.inner.name())
            .field("gains", &self.gains)
            .finish()
    }
}

impl DriftedEnv {
    /// Wraps `inner` in the sensor transform of `(world_seed, regime)`.
    pub fn new(inner: Box<dyn Environment>, world_seed: u64, regime: u64) -> DriftedEnv {
        let gains = regime_gains(world_seed, regime, inner.observation_dim());
        DriftedEnv { inner, gains }
    }

    /// The per-dimension sensor gains in force.
    pub fn gains(&self) -> &[f64] {
        &self.gains
    }

    fn apply(&self, obs: &mut [f64]) {
        for (o, g) in obs.iter_mut().zip(&self.gains) {
            *o *= g;
        }
    }
}

impl Environment for DriftedEnv {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn observation_dim(&self) -> usize {
        self.inner.observation_dim()
    }

    fn action_dim(&self) -> usize {
        self.inner.action_dim()
    }

    fn action_kind(&self) -> ActionKind {
        self.inner.action_kind()
    }

    fn reset_into(&mut self, obs: &mut [f64]) {
        self.inner.reset_into(obs);
        self.apply(obs);
    }

    fn step_into(&mut self, action: &[f64], obs: &mut [f64]) -> (f64, bool) {
        let (reward, done) = self.inner.step_into(action, obs);
        self.apply(obs);
        (reward, done)
    }

    fn max_steps(&self) -> usize {
        self.inner.max_steps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesys_gym::EnvKind;

    #[test]
    fn sudden_flips_once() {
        let s = DriftSchedule::Sudden { at: 5 };
        assert_eq!(s.regime(0), 0);
        assert_eq!(s.regime(4), 0);
        assert_eq!(s.regime(5), 1);
        assert_eq!(s.regime(1_000_000), 1);
        assert!(s.changes_at(5));
        assert!(!s.changes_at(4));
        assert!(!s.changes_at(6));
        assert!(!s.changes_at(0));
    }

    #[test]
    fn cyclic_wraps_and_linear_never_returns() {
        let c = DriftSchedule::Cyclic {
            period: 3,
            regimes: 4,
        };
        let labels: Vec<u64> = (0..15).map(|g| c.regime(g)).collect();
        assert_eq!(labels, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 0, 0, 0]);
        let l = DriftSchedule::Linear { period: 2 };
        assert_eq!(l.regime(0), 0);
        assert_eq!(l.regime(7), 3);
        assert!(l.changes_at(2) && l.changes_at(4) && !l.changes_at(3));
    }

    #[test]
    fn zero_period_is_clamped() {
        let l = DriftSchedule::Linear { period: 0 };
        assert_eq!(l.regime(9), 9);
        let c = DriftSchedule::Cyclic {
            period: 0,
            regimes: 0,
        };
        assert_eq!(c.regime(9), 0, "zero regimes clamp to one (identity)");
    }

    #[test]
    fn compound_changes_when_any_component_changes() {
        let s = DriftSchedule::Compound(vec![
            DriftSchedule::Sudden { at: 4 },
            DriftSchedule::Cyclic {
                period: 3,
                regimes: 2,
            },
        ]);
        // Identity until the first component change.
        assert_eq!(s.regime(0), 0);
        assert_eq!(s.regime(2), 0);
        // Boundaries of either component are boundaries of the compound.
        assert!(s.changes_at(3), "cyclic component advances");
        assert!(s.changes_at(4), "sudden component fires");
        assert!(s.changes_at(6), "cyclic wraps back");
        assert!(!s.changes_at(5));
        // Drifted compound never aliases the identity regime.
        for g in 3..32 {
            if s.regime(g) == 0 {
                assert_eq!(
                    (DriftSchedule::Sudden { at: 4 }.regime(g), 0),
                    (
                        0,
                        DriftSchedule::Cyclic {
                            period: 3,
                            regimes: 2
                        }
                        .regime(g)
                    ),
                    "regime 0 only when every component is identity"
                );
            }
        }
        assert_eq!(DriftSchedule::Compound(vec![]).regime(77), 0);
    }

    #[test]
    fn regime_gains_are_pure_and_identity_at_zero() {
        assert_eq!(regime_gains(42, 0, 6), vec![1.0; 6]);
        let a = regime_gains(42, 3, 6);
        let b = regime_gains(42, 3, 6);
        assert_eq!(a, b, "same (seed, regime) names the same world");
        assert_ne!(a, regime_gains(42, 4, 6), "regimes differ");
        assert_ne!(a, regime_gains(43, 3, 6), "world seeds differ");
        for g in &a {
            assert!((0.5..1.5).contains(&g.abs()), "gain magnitude in range");
        }
    }

    #[test]
    fn drifted_env_identity_regime_is_bit_identical() {
        let mut raw = EnvKind::CartPole.make(7);
        let mut wrapped = DriftedEnv::new(EnvKind::CartPole.make(7), 99, 0);
        let mut a = vec![0.0; raw.observation_dim()];
        let mut b = vec![0.0; wrapped.observation_dim()];
        raw.reset_into(&mut a);
        wrapped.reset_into(&mut b);
        assert_eq!(a, b);
        for _ in 0..20 {
            let (ra, da) = raw.step_into(&[0.7], &mut a);
            let (rb, db) = wrapped.step_into(&[0.7], &mut b);
            assert_eq!((ra, da), (rb, db));
            assert_eq!(a, b);
            if da {
                break;
            }
        }
    }

    #[test]
    fn drifted_env_scales_observations_only() {
        let mut raw = EnvKind::MountainCar.make(11);
        let mut wrapped = DriftedEnv::new(EnvKind::MountainCar.make(11), 5, 2);
        let gains = wrapped.gains().to_vec();
        assert_ne!(gains, vec![1.0; 2]);
        let mut a = vec![0.0; 2];
        let mut b = vec![0.0; 2];
        raw.reset_into(&mut a);
        wrapped.reset_into(&mut b);
        for (i, g) in gains.iter().enumerate() {
            assert_eq!(b[i].to_bits(), (a[i] * g).to_bits());
        }
        let (ra, _) = raw.step_into(&[0.2], &mut a);
        let (rb, _) = wrapped.step_into(&[0.2], &mut b);
        assert_eq!(ra, rb, "reward stream untouched");
        assert_eq!(wrapped.max_steps(), raw.max_steps());
        assert_eq!(wrapped.action_kind(), raw.action_kind());
        assert_eq!(wrapped.name(), raw.name());
    }
}
