//! Fig 9: runtime and energy per generation across platforms.
//!
//! (a) inference runtime (CPU_a, CPU_b, GPU_a, GPU_b),
//! (b) inference energy (CPU_c, CPU_d, GPU_c, GPU_d, GENESYS),
//! (c) evolution runtime (CPU_a, CPU_c),
//! (d) evolution energy (GPU_a, GPU_c, GENESYS).
//!
//! Every column is driven by the same measured workload profile (Table
//! III legend printed first).
//!
//! Usage: `fig09_runtime_energy [--pop N] [--generations N] [--threads N] [--seed N]`

use genesys_bench::{genesys_cost, print_table, run_workload_islands, sci, ExperimentArgs};
use genesys_core::SocConfig;
use genesys_gym::EnvKind;
use genesys_platforms::{CpuModel, GpuModel, TABLE_III};

fn main() {
    let args = ExperimentArgs::parse();
    let pop = args.pop_or(64);
    let generations = args.generations_or(8);
    let seed = args.base_seed(40);
    let pool = args.pool();

    // ---- Table III legend -------------------------------------------------
    let rows: Vec<Vec<String>> = TABLE_III
        .iter()
        .map(|p| {
            vec![
                p.label.to_string(),
                p.inference.to_string(),
                p.evolution.to_string(),
                p.hardware.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table III: target system configurations",
        &["Legend", "Inference", "Evolution", "Platform"],
        &rows,
    );

    let i7 = CpuModel::i7();
    let a57 = CpuModel::cortex_a57();
    let gtx = GpuModel::gtx_1080();
    let tegra = GpuModel::tegra();
    let soc = SocConfig::default();

    let mut inf_runtime = Vec::new();
    let mut inf_energy = Vec::new();
    let mut evo_runtime = Vec::new();
    let mut evo_energy = Vec::new();
    let mut speedups = Vec::new();

    for (i, kind) in EnvKind::FIG9_SUITE.iter().enumerate() {
        eprintln!(
            "profiling {} ({generations} generations, pop {pop})...",
            kind.label()
        );
        let run = run_workload_islands(
            *kind,
            generations,
            seed + i as u64,
            Some(pop),
            pool.as_ref(),
            args.islands_or(1),
            args.migration_interval_or(0),
        );
        let w = run.profile();
        let gcost = genesys_cost(&run, &soc);

        // Fig 9(a): inference runtime, desktop platforms (seconds).
        let cpu_a = i7.inference_time_s(&w, false);
        let cpu_b = i7.inference_time_s(&w, true);
        let gpu_a = gtx.inference_gpu_a(&w).total_s();
        let gpu_b = gtx.inference_gpu_b(&w).total_s();
        inf_runtime.push(vec![
            w.label.clone(),
            sci(cpu_a),
            sci(cpu_b),
            sci(gpu_a),
            sci(gpu_b),
            sci(gcost.inference_s),
        ]);
        speedups.push(gpu_b.min(gpu_a) / gcost.inference_s);

        // Fig 9(b): inference energy, embedded platforms + GeneSys (J).
        let e_cpu_c = a57.energy_j(a57.inference_time_s(&w, false));
        let e_cpu_d = a57.energy_j(a57.inference_time_s(&w, true));
        let e_gpu_c = tegra.energy_j(tegra.inference_gpu_a(&w).total_s());
        let e_gpu_d = tegra.energy_j(tegra.inference_gpu_b(&w).total_s());
        inf_energy.push(vec![
            w.label.clone(),
            sci(e_cpu_c),
            sci(e_cpu_d),
            sci(e_gpu_c),
            sci(e_gpu_d),
            sci(gcost.inference_j),
        ]);

        // Fig 9(c): evolution runtime, CPUs (seconds).
        evo_runtime.push(vec![
            w.label.clone(),
            sci(i7.evolution_time_s(&w)),
            sci(a57.evolution_time_s(&w)),
            sci(gcost.evolution_s),
        ]);

        // Fig 9(d): evolution energy, GPUs + GeneSys (J).
        let e_gpu_a = gtx.energy_j(gtx.evolution_time_s(&w));
        let e_gpu_c = tegra.energy_j(tegra.evolution_time_s(&w));
        evo_energy.push(vec![
            w.label.clone(),
            sci(e_gpu_a),
            sci(e_gpu_c),
            sci(gcost.evolution_j),
        ]);
    }

    print_table(
        "Fig 9(a): inference runtime per generation, seconds",
        &["Environment", "CPU_a", "CPU_b", "GPU_a", "GPU_b", "GENESYS"],
        &inf_runtime,
    );
    print_table(
        "Fig 9(b): inference energy per generation, joules",
        &["Environment", "CPU_c", "CPU_d", "GPU_c", "GPU_d", "GENESYS"],
        &inf_energy,
    );
    print_table(
        "Fig 9(c): evolution runtime per generation, seconds",
        &["Environment", "CPU_a", "CPU_c", "GENESYS"],
        &evo_runtime,
    );
    print_table(
        "Fig 9(d): evolution energy per generation, joules",
        &["Environment", "GPU_a", "GPU_c", "GENESYS"],
        &evo_energy,
    );

    let min_speedup = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "\nGeneSys inference beats the best GPU mapping by ≥{min_speedup:.0}× \
         on every workload (paper: ~100×, 2–5 orders of magnitude in energy)."
    );
}
