//! Island smoke/speedup run: CartPole evolution on the
//! `genesys_neat::island::Archipelago` backend, quantifying what
//! dropping the global generation barrier buys
//! and **asserting the determinism contract** on every leg:
//!
//! * serial vs `--threads N`: bit-identical histories and final genomes
//!   (worker count never leaks into results);
//! * `--islands 1` vs the monolithic backend: bit-identical, generation
//!   by generation (island 0 keeps the run seed);
//! * monolithic vs `--islands N` wall-clock, so the barrier-removal
//!   speedup (or 1-core parity) is a printed number, not a hope.
//!
//! ```text
//! islands [--pop N] [--generations N] [--threads N] [--seed N]
//!         [--islands N] [--migration-interval N]
//! ```
//!
//! Defaults: `--pop 4096 --generations 2 --threads 4 --islands 4
//! --migration-interval 2`. `--threads 1` skips the parallel legs. CI
//! runs this as the islands smoke job.

use genesys_bench::ExperimentArgs;
use genesys_gym::{EnvKind, EpisodeEvaluator};
use genesys_neat::{Executor, GenerationStats, Genome, NeatConfig, Session};
use std::sync::Arc;
use std::time::Instant;

fn config(pop: usize, islands: usize, migration_interval: usize) -> NeatConfig {
    let mut config = EnvKind::CartPole.neat_config();
    config.pop_size = pop;
    config.islands = islands;
    config.migration_interval = migration_interval;
    config
}

fn run(
    config: NeatConfig,
    generations: usize,
    seed: u64,
    pool: Option<Arc<Executor>>,
) -> (Vec<GenerationStats>, Vec<Genome>, f64) {
    let builder = Session::builder(config, seed).expect("cartpole preset is valid");
    let builder = match pool {
        Some(pool) => builder.executor(pool),
        None => builder,
    };
    let mut session = builder
        .workload(EpisodeEvaluator::new(EnvKind::CartPole))
        .build();
    let t0 = Instant::now();
    let report = session.run(generations);
    let elapsed = t0.elapsed().as_secs_f64();
    (report.history, session.genomes().to_vec(), elapsed)
}

fn main() {
    let args = ExperimentArgs::parse();
    let pop = args.pop_or(4096);
    let generations = args.generations_or(2);
    let threads = args.threads_or(4);
    let seed = args.base_seed(42);
    let islands = args.islands_or(4);
    let migration_interval = args.migration_interval_or(2);

    println!(
        "islands: CartPole, pop {pop}, {generations} generations, seed {seed}, \
         {islands} island(s), migration every {migration_interval}"
    );

    // Monolithic reference (the barrier'd backend the archipelago races).
    let (mono_hist, mono_genomes, mono_s) =
        run(config(pop, 1, migration_interval), generations, seed, None);
    println!(
        "monolithic serial: {mono_s:.2}s total, {:.1}ms/generation",
        mono_s * 1e3 / generations.max(1) as f64
    );

    // --islands 1 must be *exactly* the monolithic run.
    let (one_hist, one_genomes, _) =
        run(config(pop, 1, migration_interval), generations, seed, None);
    assert_eq!(
        mono_hist, one_hist,
        "--islands 1 history diverged from the monolithic backend"
    );
    assert_eq!(
        mono_genomes, one_genomes,
        "--islands 1 final population diverged from the monolithic backend"
    );
    println!("equivalence: --islands 1 is bit-identical to the monolithic backend");

    // Archipelago, serial: the determinism reference for the parallel legs.
    let (serial_hist, serial_genomes, serial_s) = run(
        config(pop, islands, migration_interval),
        generations,
        seed,
        None,
    );
    let best = serial_hist
        .iter()
        .map(|s| s.max_fitness)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{islands} islands serial: {serial_s:.2}s total, {:.1}ms/generation, best fitness {best} \
         ({:.2}x vs monolithic serial)",
        serial_s * 1e3 / generations.max(1) as f64,
        mono_s / serial_s.max(1e-9)
    );

    if threads > 1 {
        let pool = Arc::new(Executor::new(threads));
        let (par_hist, par_genomes, par_s) = run(
            config(pop, islands, migration_interval),
            generations,
            seed,
            Some(Arc::clone(&pool)),
        );
        println!(
            "{islands} islands, {threads} workers: {par_s:.2}s total, {:.1}ms/generation \
             ({:.2}x vs islands serial, {:.2}x vs monolithic serial)",
            par_s * 1e3 / generations.max(1) as f64,
            serial_s / par_s.max(1e-9),
            mono_s / par_s.max(1e-9)
        );
        // The determinism contract: worker count must not leak into the
        // trajectory. Bit-exact across every generation and genome.
        for (gen, (a, b)) in serial_hist.iter().zip(par_hist.iter()).enumerate() {
            assert_eq!(
                a, b,
                "generation {gen} diverged between serial and {threads}-worker island runs"
            );
        }
        assert_eq!(
            serial_genomes, par_genomes,
            "final populations diverged between serial and {threads}-worker island runs"
        );
        println!("determinism: serial and {threads}-worker island runs are bit-identical");

        // The barrier'd monolithic backend on the same pool, for the
        // headline comparison: island scheduling vs phase barriers at
        // the same worker count.
        let (mono_par_hist, _, mono_par_s) = run(
            config(pop, 1, migration_interval),
            generations,
            seed,
            Some(pool),
        );
        assert_eq!(
            mono_hist, mono_par_hist,
            "monolithic parallel run diverged from its serial reference"
        );
        println!(
            "monolithic, {threads} workers: {mono_par_s:.2}s total — islands are {:.2}x \
             at the same worker count",
            mono_par_s / par_s.max(1e-9)
        );
    }
}
