//! `Session` — the single run surface for continuous evolution.
//!
//! The paper's headline claim is *continuous* learning: evolution that
//! keeps adapting across power cycles. This module is the API for that
//! loop. A [`Session`] ties together
//!
//! * a **workload** — anything implementing [`Evaluator`] (a gym episode
//!   rollout, the SoC's environment instances, or a plain closure), called
//!   once per genome per generation under the index-keyed determinism
//!   contract below;
//! * a **backend** — anything implementing [`Backend`]: the software
//!   [`Population`] or the cycle-accurate `GenesysSoc` hardware model
//!   (`genesys_core`), both driven by the same generation loop;
//! * an optional shared [`Executor`] for population-level parallelism;
//! * streaming [`GenerationEvent`] observers replacing ad-hoc history
//!   vectors;
//! * stop conditions (the config's target fitness plus a generation
//!   budget).
//!
//! # Determinism contract
//!
//! Every evaluation receives an [`EvalContext`] identifying the genome by
//! `(base_seed, generation, index)`. An [`Evaluator`] must derive **all**
//! of its randomness from that context (e.g. via [`EvalContext::seed`]) —
//! never from evaluation order, worker ids, or shared counters. Under that
//! contract a session's trajectory is bit-identical at any worker count,
//! and — combined with [`Session::export_state`] — a run that is
//! checkpointed, restored and resumed is bit-identical to one that never
//! stopped.
//!
//! # Save and resume
//!
//! [`Session::export_state`] captures the complete evolution state (a
//! [`RunState`]: one [`EvolutionState`] — genomes, species, innovation
//! counter, RNG, seed bookkeeping, generation counter, workload phase —
//! per population, so one for the monolithic backend and one per island
//! for an archipelago) and [`Session::resume`] rebuilds a
//! process-equivalent session from it. `genesys_core::snapshot`
//! serializes a [`RunState`] to a versioned binary image for on-disk
//! checkpoints.
//!
//! ```
//! use genesys_neat::{EvalContext, NeatConfig, Network, Session};
//!
//! let config = NeatConfig::builder(2, 1).pop_size(16).build()?;
//! // A deterministic workload: a pure function of (context, network).
//! let fitness = |ctx: EvalContext, net: &Network| {
//!     let x = (ctx.seed() % 97) as f64 / 97.0;
//!     net.activate(&[x, 0.5])[0]
//! };
//!
//! // Uninterrupted reference: four generations.
//! let mut full = Session::builder(config.clone(), 7)?.workload(fitness).build();
//! let full_report = full.run(4);
//!
//! // Same run, interrupted: two generations, checkpoint, restore, resume.
//! let mut first = Session::builder(config, 7)?.workload(fitness).build();
//! first.run(2);
//! let state = first.export_state();
//! drop(first); // "power cycle"
//! let mut resumed = Session::resume(state)?.workload(fitness).build();
//! let tail = resumed.run(2);
//!
//! // Bit-identical continuation.
//! assert_eq!(&full_report.history[2..], &tail.history[..]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::config::NeatConfig;
use crate::error::ConfigError;
use crate::executor::Executor;
use crate::genome::Genome;
use crate::island::{ArchipelagoState, EvolutionBackend};
use crate::network::Network;
use crate::population::{Population, RunOutcome};
use crate::species::Species;
use crate::stats::GenerationStats;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifies one genome evaluation: the triple every deterministic
/// workload derives its randomness from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalContext {
    /// The session's base seed (fixed for the whole run).
    pub base_seed: u64,
    /// Generation index of the evaluation.
    pub generation: u64,
    /// Index of the genome within its generation.
    pub index: u64,
}

impl EvalContext {
    /// Derives this evaluation's private seed: a SplitMix64-style mix of
    /// `(base_seed, generation, index)`. Pure in its inputs — never a
    /// function of scheduling order — so results are independent of which
    /// worker runs the evaluation. `genesys_gym::episode_seed` is this
    /// exact mix (episode seeds predating the session API stay valid).
    pub fn seed(&self) -> u64 {
        let mut z = self
            .base_seed
            .wrapping_add(self.generation.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(self.index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Result of one genome evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// The fitness assigned to the genome.
    pub fitness: f64,
    /// Environment steps consumed (0 for synthetic fitness functions).
    /// Summed order-insensitively into [`GenerationStats::env_steps`].
    pub env_steps: u64,
}

/// A workload: how one genome earns its fitness.
///
/// Implementations must honour the determinism contract (module docs):
/// every random choice derives from the [`EvalContext`], so evaluation is
/// a pure function of `(context, network)`. Plain closures
/// `Fn(EvalContext, &Network) -> f64 + Sync` implement this trait
/// directly (with `env_steps = 0`).
pub trait Evaluator: Sync {
    /// Evaluates one genome's phenotype.
    fn evaluate(&self, ctx: EvalContext, net: &Network) -> Evaluation;

    /// Serializable workload state, stored in checkpoints (e.g. the
    /// nonstationary drift phase). Defaults to 0 for stateless workloads.
    fn state(&self) -> u64 {
        0
    }

    /// Restores the value returned by [`Evaluator::state`] when a session
    /// is resumed from a checkpoint.
    fn restore_state(&mut self, _state: u64) {}
}

impl<F> Evaluator for F
where
    F: Fn(EvalContext, &Network) -> f64 + Sync,
{
    fn evaluate(&self, ctx: EvalContext, net: &Network) -> Evaluation {
        Evaluation {
            fitness: self(ctx, net),
            env_steps: 0,
        }
    }
}

/// The complete, self-contained state of an evolution run at a generation
/// boundary — everything needed to resume **bit-identically**: restoring
/// this state and running N more generations produces exactly the bytes an
/// uninterrupted run would have, at any worker count.
///
/// Carried inside a [`RunState`] — one per population — produced by
/// [`Session::export_state`] / [`Backend::export_state`] and consumed by
/// [`Session::resume`] / [`Backend::import_state`].
/// `genesys_core::snapshot` defines the versioned binary wire format.
#[derive(Debug, Clone, PartialEq)]
pub struct EvolutionState {
    /// The full hyper-parameter set of the run.
    pub config: NeatConfig,
    /// Genomes of the current generation (fitness included if evaluated).
    pub genomes: Vec<Genome>,
    /// Living species, in creation order (representatives, membership,
    /// stagnation bookkeeping).
    pub species: Vec<Species>,
    /// The species-id counter.
    pub species_next_id: u32,
    /// The innovation tracker's node-id counter. (The per-generation split
    /// memo is always empty at a generation boundary, so the counter is
    /// the tracker's entire persistent state.)
    pub innovation_next_node: u32,
    /// XORWOW state words + Weyl counter of the population RNG.
    pub rng_state: ([u32; 5], u32),
    /// The run's base seed (root of episode and child seeds).
    pub seed: u64,
    /// Generation counter (the next generation to evaluate).
    pub generation: u64,
    /// Next genome key to assign.
    pub next_key: u64,
    /// Best genome observed so far, if any generation was evaluated.
    pub best_ever: Option<Genome>,
    /// Opaque workload state ([`Evaluator::state`]), e.g. the
    /// nonstationary drift phase offset.
    pub workload_state: u64,
}

impl EvolutionState {
    /// Validates internal consistency (config validity, interface match,
    /// species membership in range).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`SessionError`].
    pub fn validate(&self) -> Result<(), SessionError> {
        self.config.validate().map_err(SessionError::Config)?;
        if self.genomes.is_empty() {
            return Err(SessionError::EmptyState);
        }
        if self.genomes.len() != self.config.pop_size {
            return Err(SessionError::PopulationSizeMismatch {
                config: self.config.pop_size,
                genomes: self.genomes.len(),
            });
        }
        for g in &self.genomes {
            if g.num_inputs() != self.config.num_inputs
                || g.num_outputs() != self.config.num_outputs
            {
                return Err(SessionError::InterfaceMismatch {
                    key: g.key(),
                    inputs: g.num_inputs(),
                    outputs: g.num_outputs(),
                });
            }
        }
        for s in &self.species {
            for &m in &s.members {
                if m >= self.genomes.len() {
                    return Err(SessionError::MemberOutOfRange {
                        species: s.id.0,
                        member: m,
                        population: self.genomes.len(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// The complete checkpoint of any backend — what [`Session::export_state`]
/// captures and [`Session::resume`] consumes. Monolithic backends (the
/// shared [`Population`], the SoC model) carry one [`EvolutionState`];
/// the island backend ([`crate::island::Archipelago`]) carries one per
/// island plus the global schedule counters. `genesys_core::snapshot`
/// serializes either kind into one versioned binary format (a kind word
/// selects the body).
// Both bodies are boxed: the inline footprints are lopsided (an
// `EvolutionState` embeds the config *and* the best-ever genome inline;
// an `ArchipelagoState` only the config), so either variant left inline
// would re-trip `clippy::large_enum_variant` as the odd one out. A
// `RunState` exists once per export/resume round-trip, so the extra
// allocation is noise while the enum itself shrinks to two words.
#[derive(Debug, Clone, PartialEq)]
pub enum RunState {
    /// A single-population backend's state.
    Monolithic(Box<EvolutionState>),
    /// An island-model backend's state.
    Archipelago(Box<ArchipelagoState>),
}

impl RunState {
    /// Generation counter (the next generation to evaluate).
    pub fn generation(&self) -> u64 {
        match self {
            RunState::Monolithic(s) => s.generation,
            RunState::Archipelago(s) => s.generation,
        }
    }

    /// The run's base seed.
    pub fn seed(&self) -> u64 {
        match self {
            RunState::Monolithic(s) => s.seed,
            RunState::Archipelago(s) => s.seed,
        }
    }

    /// The run's configuration.
    pub fn config(&self) -> &NeatConfig {
        match self {
            RunState::Monolithic(s) => &s.config,
            RunState::Archipelago(s) => &s.config,
        }
    }

    /// Opaque workload state ([`Evaluator::state`]).
    pub fn workload_state(&self) -> u64 {
        match self {
            RunState::Monolithic(s) => s.workload_state,
            RunState::Archipelago(s) => s.workload_state,
        }
    }

    /// Overwrites the workload state (done by [`Session::export_state`]
    /// just before checkpointing).
    pub fn set_workload_state(&mut self, state: u64) {
        match self {
            RunState::Monolithic(s) => s.workload_state = state,
            RunState::Archipelago(s) => s.workload_state = state,
        }
    }

    /// The monolithic state, if this is one.
    pub fn as_monolithic(&self) -> Option<&EvolutionState> {
        match self {
            RunState::Monolithic(s) => Some(s.as_ref()),
            RunState::Archipelago(_) => None,
        }
    }

    /// The archipelago state, if this is one.
    pub fn as_archipelago(&self) -> Option<&ArchipelagoState> {
        match self {
            RunState::Monolithic(_) => None,
            RunState::Archipelago(s) => Some(s.as_ref()),
        }
    }

    /// Validates internal consistency of whichever kind this is.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`SessionError`].
    pub fn validate(&self) -> Result<(), SessionError> {
        match self {
            RunState::Monolithic(s) => s.validate(),
            RunState::Archipelago(s) => s.validate(),
        }
    }
}

impl From<EvolutionState> for RunState {
    fn from(state: EvolutionState) -> Self {
        RunState::Monolithic(Box::new(state))
    }
}

/// Errors raised by session construction and state restore.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// The state carries no genomes.
    EmptyState,
    /// `config.pop_size` disagrees with the genome count.
    PopulationSizeMismatch {
        /// Configured population size.
        config: usize,
        /// Genomes actually present.
        genomes: usize,
    },
    /// A genome's input/output interface disagrees with the config.
    InterfaceMismatch {
        /// Key of the offending genome.
        key: u64,
        /// Its input count.
        inputs: usize,
        /// Its output count.
        outputs: usize,
    },
    /// A species references a genome index outside the population.
    MemberOutOfRange {
        /// Species id.
        species: u32,
        /// Offending member index.
        member: usize,
        /// Population size.
        population: usize,
    },
    /// A [`RunState`] kind was imported into a backend of the other kind
    /// (e.g. an archipelago checkpoint into a monolithic population).
    BackendMismatch,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Config(e) => write!(f, "invalid configuration: {e}"),
            SessionError::EmptyState => write!(f, "state contains no genomes"),
            SessionError::PopulationSizeMismatch { config, genomes } => write!(
                f,
                "config.pop_size {config} does not match {genomes} genomes"
            ),
            SessionError::InterfaceMismatch {
                key,
                inputs,
                outputs,
            } => write!(
                f,
                "genome {key} interface {inputs}x{outputs} does not match the config"
            ),
            SessionError::MemberOutOfRange {
                species,
                member,
                population,
            } => write!(
                f,
                "species s{species} references member {member} outside population of {population}"
            ),
            SessionError::BackendMismatch => {
                write!(f, "state kind does not match the backend kind")
            }
        }
    }
}

impl From<ConfigError> for SessionError {
    fn from(e: ConfigError) -> Self {
        SessionError::Config(e)
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Config(e) => Some(e),
            _ => None,
        }
    }
}

/// An evolution backend: something that can advance a population by one
/// generation under a workload. Implemented by the software [`Population`]
/// and by `genesys_core::GenesysSoc` (the cycle-accurate hardware model),
/// so both are driven by the same [`Session`] loop.
pub trait Backend {
    /// Runs one full generation: evaluates every genome through
    /// `workload` (passing an [`EvalContext`] built from `base_seed`, the
    /// current generation and the genome index) and produces the next
    /// generation. Returns the statistics of the evaluated generation.
    fn step(&mut self, workload: &dyn Evaluator, base_seed: u64) -> GenerationStats;

    /// Current generation index (0 before the first step).
    fn generation(&self) -> usize;

    /// Genomes of the current generation.
    fn genomes(&self) -> &[Genome];

    /// Best genome observed so far.
    fn best_genome(&self) -> Option<&Genome>;

    /// Champion of the most recently evaluated generation, if the
    /// backend tracks one (its fitness equals that generation's
    /// `max_fitness`). Unlike [`Backend::best_genome`] this is not
    /// monotone: on drifting or task-sequence workloads it follows the
    /// population's *current* ability instead of a stale high-water
    /// mark. Default `None` for backends without per-generation
    /// champion tracking.
    fn champion(&self) -> Option<&Genome> {
        None
    }

    /// The NEAT configuration driving evolution.
    fn neat_config(&self) -> &NeatConfig;

    /// Attaches a persistent evaluation pool. Backends without a parallel
    /// path (the serial SoC model) may ignore it.
    fn set_executor(&mut self, _pool: Arc<Executor>) {}

    /// Captures the complete evolution state at the current generation
    /// boundary (see [`RunState`]).
    fn export_state(&self) -> RunState;

    /// Replaces this backend's state with a previously exported one.
    ///
    /// # Errors
    ///
    /// Returns a [`SessionError`] if the state fails validation, or
    /// [`SessionError::BackendMismatch`] if the state kind belongs to the
    /// other backend kind and this backend cannot switch.
    fn import_state(&mut self, state: RunState) -> Result<(), SessionError>;
}

impl Backend for Population {
    fn step(&mut self, workload: &dyn Evaluator, base_seed: u64) -> GenerationStats {
        let generation = self.generation() as u64;
        // Order-insensitive step aggregation: summation commutes, so the
        // tally is identical at any worker count.
        let env_steps = AtomicU64::new(0);
        let mut stats = self.evolve_once_indexed(|index, net| {
            let evaluation = workload.evaluate(
                EvalContext {
                    base_seed,
                    generation,
                    index: index as u64,
                },
                net,
            );
            env_steps.fetch_add(evaluation.env_steps, Ordering::Relaxed);
            evaluation.fitness
        });
        stats.env_steps = env_steps.load(Ordering::Relaxed);
        stats
    }

    fn generation(&self) -> usize {
        Population::generation(self)
    }

    fn genomes(&self) -> &[Genome] {
        Population::genomes(self)
    }

    fn best_genome(&self) -> Option<&Genome> {
        Population::best_genome(self)
    }

    fn champion(&self) -> Option<&Genome> {
        Population::champion(self)
    }

    fn neat_config(&self) -> &NeatConfig {
        self.config()
    }

    fn set_executor(&mut self, pool: Arc<Executor>) {
        Population::set_executor(self, pool);
    }

    fn export_state(&self) -> RunState {
        RunState::Monolithic(Box::new(Population::export_state(self)))
    }

    fn import_state(&mut self, state: RunState) -> Result<(), SessionError> {
        match state {
            RunState::Monolithic(state) => {
                *self = Population::from_state(*state)?;
                Ok(())
            }
            RunState::Archipelago(_) => Err(SessionError::BackendMismatch),
        }
    }
}

/// One generation's worth of progress, streamed to observers as it
/// happens — the replacement for hand-rolled per-generation print loops
/// and ad-hoc history vectors.
///
/// # Borrowed vs owned
///
/// This is the **borrowed hot-path view**: it lends the backend's
/// [`GenerationStats`] and best [`Genome`] for the duration of the
/// observer call, so observing a generation allocates nothing and copies
/// nothing. The borrow cannot outlive the call — an observer that wants
/// to keep, queue, or ship the event (a session server pushing it over a
/// socket, a history ring buffer) converts it with
/// [`GenerationEvent::to_owned`], which produces an allocation-bounded
/// [`OwnedGenerationEvent`]: the stats are copied (all scalars) and the
/// best genome is summarized to a fixed-size [`BestSummary`] instead of
/// cloned, so the conversion cost is O(1) regardless of genome size.
/// `genesys_core::snapshot::event_to_bytes` serializes the owned form
/// with the same versioned word codec snapshots use.
#[derive(Debug)]
pub struct GenerationEvent<'a> {
    /// Statistics of the generation that just finished evaluating.
    pub stats: &'a GenerationStats,
    /// Best genome observed so far across the whole session.
    pub best: Option<&'a Genome>,
    /// Champion of the generation that just finished evaluating, if the
    /// backend tracks one (see [`Backend::champion`]). Borrowed-view
    /// only: [`GenerationEvent::to_owned`] does not carry it — owned
    /// events stay O(1) in genome size, and the stats already include
    /// the champion's fitness as `max_fitness`.
    pub champion: Option<&'a Genome>,
}

impl GenerationEvent<'_> {
    /// Converts the borrowed view into an owned, allocation-bounded event
    /// (see the type docs for the compatibility story). O(1) in genome
    /// size: the best genome is summarized, not cloned.
    pub fn to_owned(&self) -> OwnedGenerationEvent {
        OwnedGenerationEvent {
            stats: self.stats.clone(),
            best: self.best.map(BestSummary::of),
        }
    }
}

/// Owned form of a [`GenerationEvent`]: safe to keep past the observer
/// call, send across threads, queue in a ring buffer, or serialize onto a
/// wire (`genesys_core::snapshot::event_to_bytes`). Its size is bounded —
/// [`GenerationStats`] is all scalars and the best genome is carried as a
/// fixed-size [`BestSummary`] — so buffering N of them costs O(N) no
/// matter how large the genomes grow.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedGenerationEvent {
    /// Statistics of the generation that finished evaluating.
    pub stats: GenerationStats,
    /// Summary of the best genome observed so far across the session.
    pub best: Option<BestSummary>,
}

/// Fixed-size summary of a genome — what an [`OwnedGenerationEvent`]
/// carries instead of a full [`Genome`] clone. Callers that need the
/// actual genes checkpoint the session instead (the snapshot includes
/// `best_ever` in full).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestSummary {
    /// The genome's key.
    pub key: u64,
    /// Its fitness, if evaluated.
    pub fitness: Option<f64>,
    /// Node gene count.
    pub nodes: usize,
    /// Connection gene count.
    pub conns: usize,
}

impl BestSummary {
    /// Summarizes a genome.
    pub fn of(genome: &Genome) -> BestSummary {
        BestSummary {
            key: genome.key(),
            fitness: genome.fitness(),
            nodes: genome.num_nodes(),
            conns: genome.num_conns(),
        }
    }
}

/// Observers are `Send` so a whole [`Session`] can live on a worker
/// thread (the `genesys_serve` scheduler owns hundreds of them).
type Observer = Box<dyn FnMut(&GenerationEvent<'_>) + Send>;

/// Placeholder workload of a builder that has not been given one yet.
/// [`SessionBuilder::build`] only exists once a real [`Evaluator`] is set.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoWorkload;

/// Report of one [`Session::run`] call.
#[derive(Debug)]
pub struct SessionReport {
    /// Per-generation statistics, one entry per evaluated generation.
    pub history: Vec<GenerationStats>,
    /// Why the run stopped.
    pub outcome: RunOutcome,
    /// Best genome observed so far (across the whole session, not just
    /// this call).
    pub best: Option<Genome>,
}

impl SessionReport {
    /// Convenience: did the run reach the target fitness?
    pub fn converged(&self) -> bool {
        matches!(self.outcome, RunOutcome::Converged { .. })
    }
}

/// The single run surface: one workload, one backend, one driver loop.
/// See the [module docs](self) for the full tour; construct via
/// [`Session::builder`] (software), [`Session::on`] (any backend) or
/// [`Session::resume`] (from a checkpoint).
pub struct Session<W = NoWorkload, B = EvolutionBackend> {
    backend: B,
    workload: W,
    base_seed: u64,
    observers: Vec<Observer>,
}

impl<W: fmt::Debug, B: fmt::Debug> fmt::Debug for Session<W, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Observers are unnameable closures: report them by count only.
        f.debug_struct("Session")
            .field("backend", &self.backend)
            .field("workload", &self.workload)
            .field("base_seed", &self.base_seed)
            .field("observers", &self.observers.len())
            .finish()
    }
}

/// Builder for [`Session`]; see [`Session::builder`].
pub struct SessionBuilder<B = EvolutionBackend, W = NoWorkload> {
    backend: B,
    workload: W,
    base_seed: u64,
    executor: Option<Arc<Executor>>,
    threads: Option<usize>,
    observers: Vec<Observer>,
    restored_workload_state: Option<u64>,
}

impl<B: fmt::Debug, W: fmt::Debug> fmt::Debug for SessionBuilder<B, W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("backend", &self.backend)
            .field("workload", &self.workload)
            .field("base_seed", &self.base_seed)
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl Session {
    /// Starts a software session: a fresh [`EvolutionBackend`] built from
    /// `config` (a shared [`Population`], or a
    /// [`crate::island::Archipelago`] when `config.islands > 1`), seeded
    /// with `seed` (which also serves as the base of every evaluation
    /// seed).
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::Config`] if `config` fails validation.
    pub fn builder(config: NeatConfig, seed: u64) -> Result<SessionBuilder, SessionError> {
        config.validate().map_err(SessionError::Config)?;
        Ok(SessionBuilder::new(
            EvolutionBackend::new(config, seed),
            seed,
        ))
    }

    /// Resumes a software session from a previously exported state (the
    /// state kind selects the backend kind). Combined with a deterministic
    /// workload, the resumed session is bit-identical to one that never
    /// stopped.
    ///
    /// # Errors
    ///
    /// Returns a [`SessionError`] if the state fails validation.
    pub fn resume(state: RunState) -> Result<SessionBuilder, SessionError> {
        let seed = state.seed();
        let workload_state = state.workload_state();
        let backend = EvolutionBackend::from_state(state)?;
        let mut builder = SessionBuilder::new(backend, seed);
        builder.restored_workload_state = Some(workload_state);
        Ok(builder)
    }
}

impl<B: Backend> Session<NoWorkload, B> {
    /// Starts a session on an explicit backend — e.g. the GeneSys SoC
    /// model (`genesys_core::GenesysSoc`), so hardware and software runs
    /// share one driver loop. `seed` is the base of evaluation seeds; for
    /// bit-identical resume it must match the backend's construction seed.
    pub fn on(backend: B, seed: u64) -> SessionBuilder<B> {
        SessionBuilder::new(backend, seed)
    }
}

impl<B: Backend> SessionBuilder<B, NoWorkload> {
    fn new(backend: B, base_seed: u64) -> Self {
        SessionBuilder {
            backend,
            workload: NoWorkload,
            base_seed,
            executor: None,
            threads: None,
            observers: Vec::new(),
            restored_workload_state: None,
        }
    }
}

impl<B: Backend, W> SessionBuilder<B, W> {
    /// Sets the workload. Any [`Evaluator`] works: `genesys_gym`'s
    /// episode evaluators, or a plain `Fn(EvalContext, &Network) -> f64`
    /// closure.
    pub fn workload<W2: Evaluator>(self, workload: W2) -> SessionBuilder<B, W2> {
        SessionBuilder {
            backend: self.backend,
            workload,
            base_seed: self.base_seed,
            executor: self.executor,
            threads: self.threads,
            observers: self.observers,
            restored_workload_state: self.restored_workload_state,
        }
    }

    /// Shares a persistent evaluation pool with the backend (results are
    /// bit-identical at any worker count under the determinism contract).
    pub fn executor(mut self, pool: Arc<Executor>) -> Self {
        self.executor = Some(pool);
        self
    }

    /// Convenience for [`SessionBuilder::executor`]: spawns a dedicated
    /// pool of `threads` workers (≤ 1 keeps evaluation serial).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Registers a per-generation observer, called after every evaluated
    /// generation with a streaming [`GenerationEvent`]. Observers must be
    /// `Send` (sessions are movable across threads — the serving layer
    /// depends on it); keep long-lived copies of an event via
    /// [`GenerationEvent::to_owned`].
    pub fn observe(mut self, observer: impl FnMut(&GenerationEvent<'_>) + Send + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Restores a checkpointed workload phase ([`Evaluator::restore_state`]
    /// runs at build). [`Session::resume`] does this automatically; use
    /// this when resuming onto an explicit backend via [`Session::on`],
    /// passing the checkpoint's `workload_state`.
    pub fn workload_state(mut self, state: u64) -> Self {
        self.restored_workload_state = Some(state);
        self
    }
}

impl<B: Backend, W: Evaluator> SessionBuilder<B, W> {
    /// Finalizes the session.
    pub fn build(self) -> Session<W, B> {
        let mut backend = self.backend;
        if let Some(pool) = self.executor {
            backend.set_executor(pool);
        } else if let Some(threads) = self.threads {
            if threads > 1 {
                backend.set_executor(Arc::new(Executor::new(threads)));
            }
        }
        let mut workload = self.workload;
        if let Some(state) = self.restored_workload_state {
            workload.restore_state(state);
        }
        Session {
            backend,
            workload,
            base_seed: self.base_seed,
            observers: self.observers,
        }
    }
}

impl<W: Evaluator, B: Backend> Session<W, B> {
    /// Runs exactly one generation and returns its statistics. Observers
    /// fire before this returns.
    pub fn step(&mut self) -> GenerationStats {
        let Session {
            backend,
            workload,
            base_seed,
            observers,
        } = self;
        let stats = backend.step(&*workload, *base_seed);
        let event = GenerationEvent {
            stats: &stats,
            best: backend.best_genome(),
            champion: backend.champion(),
        };
        for observer in observers.iter_mut() {
            observer(&event);
        }
        stats
    }

    /// Runs until the config's target fitness is reached or
    /// `max_generations` have been evaluated in this call.
    pub fn run(&mut self, max_generations: usize) -> SessionReport {
        let mut history = Vec::with_capacity(max_generations);
        for _ in 0..max_generations {
            let stats = self.step();
            let hit = self
                .backend
                .neat_config()
                .target_fitness
                .is_some_and(|t| stats.max_fitness >= t);
            let generation = stats.generation;
            history.push(stats);
            if hit {
                return SessionReport {
                    history,
                    outcome: RunOutcome::Converged { generation },
                    best: self.backend.best_genome().cloned(),
                };
            }
        }
        SessionReport {
            history,
            outcome: RunOutcome::GenerationLimit,
            best: self.backend.best_genome().cloned(),
        }
    }

    /// Captures the complete session state — evolution state plus the
    /// workload's phase — for checkpointing. Serialize it with
    /// `genesys_core::snapshot` and rebuild with [`Session::resume`].
    pub fn export_state(&self) -> RunState {
        let mut state = self.backend.export_state();
        state.set_workload_state(self.workload.state());
        state
    }

    /// Current generation index.
    pub fn generation(&self) -> usize {
        self.backend.generation()
    }

    /// Genomes of the current generation.
    pub fn genomes(&self) -> &[Genome] {
        self.backend.genomes()
    }

    /// Best genome observed so far.
    pub fn best_genome(&self) -> Option<&Genome> {
        self.backend.best_genome()
    }

    /// Champion of the most recently evaluated generation, if the
    /// backend tracks one (see [`Backend::champion`]).
    pub fn champion(&self) -> Option<&Genome> {
        self.backend.champion()
    }

    /// The backend, for backend-specific inspection (e.g.
    /// [`Population::last_trace`], the SoC's generation reports).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// The workload.
    pub fn workload(&self) -> &W {
        &self.workload
    }

    /// The session's base seed.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proxy(ctx: EvalContext, net: &Network) -> f64 {
        let x = (ctx.seed() % 101) as f64 / 101.0;
        let out = net.activate(&[x, 1.0 - x])[0];
        1.0 - (out - x) * (out - x)
    }

    fn small_config() -> NeatConfig {
        NeatConfig::builder(2, 1).pop_size(24).build().unwrap()
    }

    #[test]
    fn session_drives_generations() {
        let mut s = Session::builder(small_config(), 3)
            .unwrap()
            .workload(proxy)
            .build();
        let report = s.run(4);
        assert_eq!(report.history.len(), 4);
        assert_eq!(s.generation(), 4);
        assert!(report.best.is_some());
    }

    #[test]
    fn invalid_config_is_rejected_at_builder() {
        let bad = NeatConfig {
            pop_size: 0,
            ..small_config()
        };
        assert!(matches!(
            Session::builder(bad, 1),
            Err(SessionError::Config(_))
        ));
    }

    #[test]
    fn observers_stream_every_generation() {
        use std::sync::{Arc, Mutex};
        let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let mut s = Session::builder(small_config(), 5)
            .unwrap()
            .workload(proxy)
            .observe(move |event| sink.lock().unwrap().push(event.stats.generation))
            .build();
        s.run(3);
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn champion_tracks_the_evaluated_generation() {
        let mut s = Session::builder(small_config(), 7)
            .unwrap()
            .workload(proxy)
            .build();
        assert!(s.champion().is_none(), "no champion before the first step");
        for _ in 0..4 {
            let stats = s.step();
            let champion = s.champion().expect("champion after a step");
            // The champion is the evaluated generation's max, exactly.
            assert_eq!(champion.fitness(), Some(stats.max_fitness));
        }
        // `best` is monotone; the champion need not be, but it can never
        // exceed the session-wide best.
        let best = s.best_genome().unwrap().fitness().unwrap();
        assert!(s.champion().unwrap().fitness().unwrap() <= best);
    }

    #[test]
    fn export_resume_is_bit_identical_to_uninterrupted() {
        let mut full = Session::builder(small_config(), 11)
            .unwrap()
            .workload(proxy)
            .build();
        let full_report = full.run(6);

        let mut head = Session::builder(small_config(), 11)
            .unwrap()
            .workload(proxy)
            .build();
        let head_report = head.run(3);
        let state = head.export_state();
        drop(head);
        let mut tail = Session::resume(state).unwrap().workload(proxy).build();
        let tail_report = tail.run(3);

        assert_eq!(&full_report.history[..3], &head_report.history[..]);
        assert_eq!(&full_report.history[3..], &tail_report.history[..]);
        // Final genomes byte-for-byte equal (Genome: PartialEq over every
        // gene and attribute).
        assert_eq!(full.genomes(), tail.genomes());
        assert_eq!(
            full.best_genome().unwrap().key(),
            tail.best_genome().unwrap().key()
        );
    }

    #[test]
    fn resume_is_identical_across_worker_counts() {
        let reference = {
            let mut s = Session::builder(small_config(), 21)
                .unwrap()
                .workload(proxy)
                .build();
            s.run(6);
            s.export_state()
        };
        let checkpoint = {
            let mut s = Session::builder(small_config(), 21)
                .unwrap()
                .workload(proxy)
                .build();
            s.run(3);
            s.export_state()
        };
        let reference = reference.as_monolithic().unwrap();
        for workers in [1usize, 4] {
            let mut resumed = Session::resume(checkpoint.clone())
                .unwrap()
                .workload(proxy)
                .threads(workers)
                .build();
            resumed.run(3);
            let state = resumed.export_state();
            let state = state.as_monolithic().unwrap();
            assert_eq!(state.genomes, reference.genomes, "workers={workers}");
            assert_eq!(state.rng_state, reference.rng_state, "workers={workers}");
            assert_eq!(state.next_key, reference.next_key, "workers={workers}");
            for (a, b) in state.species.iter().zip(reference.species.iter()) {
                assert_eq!(a.id, b.id, "workers={workers}");
                assert_eq!(a.members, b.members, "workers={workers}");
                assert_eq!(a.representative, b.representative, "workers={workers}");
            }
        }
    }

    #[test]
    fn state_validation_catches_corruption() {
        let mut s = Session::builder(small_config(), 2)
            .unwrap()
            .workload(proxy)
            .build();
        s.run(2);
        let exported = s.export_state();
        assert!(exported.validate().is_ok());
        let RunState::Monolithic(good) = exported else {
            panic!("monolithic config exports a monolithic state");
        };

        let mut truncated = good.clone();
        truncated.genomes.pop();
        assert!(matches!(
            truncated.validate(),
            Err(SessionError::PopulationSizeMismatch { .. })
        ));

        let mut bad_member = good.clone();
        if let Some(sp) = bad_member.species.first_mut() {
            sp.members.push(10_000);
            assert!(matches!(
                bad_member.validate(),
                Err(SessionError::MemberOutOfRange { .. })
            ));
        }

        let mut empty = good;
        empty.genomes.clear();
        empty.config.pop_size = 0;
        assert!(empty.validate().is_err());
    }

    #[test]
    fn target_fitness_stops_the_run() {
        let config = NeatConfig::builder(2, 1)
            .pop_size(16)
            .target_fitness(Some(0.0))
            .build()
            .unwrap();
        let mut s = Session::builder(config, 1).unwrap().workload(proxy).build();
        let report = s.run(50);
        assert!(report.converged());
        assert_eq!(report.history.len(), 1, "target 0.0 is hit immediately");
    }

    #[test]
    fn eval_context_seed_matches_the_documented_mix() {
        // Locked to the episode_seed formula: changing it would break
        // bit-compatibility of resumed runs with recorded checkpoints.
        let ctx = EvalContext {
            base_seed: 42,
            generation: 3,
            index: 17,
        };
        assert_eq!(ctx.seed(), ctx.seed());
        let other = EvalContext { index: 18, ..ctx };
        assert_ne!(ctx.seed(), other.seed());
    }

    #[test]
    fn owned_events_capture_the_borrowed_view() {
        use std::sync::{Arc, Mutex};
        let collected: Arc<Mutex<Vec<OwnedGenerationEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&collected);
        let mut s = Session::builder(small_config(), 13)
            .unwrap()
            .workload(proxy)
            .observe(move |event| sink.lock().unwrap().push(event.to_owned()))
            .build();
        let report = s.run(3);
        let events = collected.lock().unwrap();
        assert_eq!(events.len(), 3);
        for (owned, stats) in events.iter().zip(&report.history) {
            assert_eq!(&owned.stats, stats);
        }
        let best = s.best_genome().unwrap();
        let summary = events.last().unwrap().best.unwrap();
        assert_eq!(summary, BestSummary::of(best));
        assert_eq!(summary.key, best.key());
        assert_eq!(summary.fitness, best.fitness());
        assert_eq!(summary.nodes, best.num_nodes());
        assert_eq!(summary.conns, best.num_conns());
    }

    #[test]
    fn workload_state_round_trips_through_the_builder() {
        struct Phased {
            phase: u64,
        }
        impl Evaluator for Phased {
            fn evaluate(&self, _ctx: EvalContext, _net: &Network) -> Evaluation {
                Evaluation {
                    fitness: self.phase as f64,
                    env_steps: 1,
                }
            }
            fn state(&self) -> u64 {
                self.phase
            }
            fn restore_state(&mut self, state: u64) {
                self.phase = state;
            }
        }
        let mut s = Session::builder(small_config(), 9)
            .unwrap()
            .workload(Phased { phase: 7 })
            .build();
        s.step();
        let state = s.export_state();
        assert_eq!(state.workload_state(), 7);
        let resumed = Session::resume(state)
            .unwrap()
            .workload(Phased { phase: 0 })
            .build();
        assert_eq!(resumed.workload().phase, 7, "phase restored at build");
    }

    #[test]
    fn env_steps_aggregate_order_insensitively() {
        let stepper = |_ctx: EvalContext, _net: &Network| 1.0;
        struct TwoSteps;
        impl Evaluator for TwoSteps {
            fn evaluate(&self, ctx: EvalContext, _net: &Network) -> Evaluation {
                Evaluation {
                    fitness: ctx.index as f64,
                    env_steps: 2,
                }
            }
        }
        let mut plain = Session::builder(small_config(), 4)
            .unwrap()
            .workload(stepper)
            .build();
        assert_eq!(plain.step().env_steps, 0, "closures report no env steps");
        for workers in [1usize, 4] {
            let mut s = Session::builder(small_config(), 4)
                .unwrap()
                .workload(TwoSteps)
                .threads(workers)
                .build();
            assert_eq!(s.step().env_steps, 48, "24 genomes x 2 steps");
        }
    }
}
