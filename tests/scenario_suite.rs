//! Continual-learning scenario suite: the workspace-level acceptance
//! tests for `genesys::scenario`.
//!
//! Three axes, mirroring `session_resume.rs`:
//!
//! 1. **Worker invariance** — the full observable record of a scenario
//!    run (generation events with population diagnostics, continual
//!    metrics, final genome bytes) is bit-identical at 1, 4 and 8
//!    workers, on the monolithic and the archipelago backend.
//! 2. **Checkpoint/resume** — snapshotting mid-sequence (and mid-drift)
//!    through the binary wire format and resuming reproduces the
//!    uninterrupted run, including a metrics recorder that spans the
//!    power cycle.
//! 3. **Observability plumbing** — scenario events carry the population
//!    diagnostics and survive the event codec round trip.

use genesys::gym::EnvKind;
use genesys::neat::{InitialWeights, NeatConfig, OwnedGenerationEvent, RunState, Session};
use genesys::scenario::{
    ContinualMetrics, DriftSchedule, MetricsRecorder, RecoveryThreshold, Task, TaskPlan,
    TaskSequence,
};
use genesys::soc::snapshot::{event_from_bytes, event_to_bytes};
use genesys::soc::{encode_population, snapshot_from_bytes, snapshot_to_bytes};
use std::sync::{Arc, Mutex};

const POP: usize = 24;
const SEED: u64 = 21;

/// Three environment families, the middle one drifting mid-task.
fn plan() -> TaskPlan {
    TaskPlan::new(
        77,
        vec![
            Task::new(EnvKind::CartPole, 2),
            Task::new(EnvKind::Acrobot, 2).with_drift(DriftSchedule::Sudden { at: 1 }),
            Task::new(EnvKind::LunarLander, 2),
        ],
    )
}

fn config(islands: usize) -> NeatConfig {
    let mut config = plan().neat_config();
    config.pop_size = POP;
    config.initial_weights = InitialWeights::Uniform { lo: -1.0, hi: 1.0 };
    config.target_fitness = None; // fixed-length runs for exact comparison
    config.islands = islands;
    config.migration_interval = 2;
    config
}

fn recorder() -> MetricsRecorder {
    MetricsRecorder::new(plan(), RecoveryThreshold::WithinFraction(0.5)).probe(2, 9)
}

/// One complete observable record of a scenario run.
struct Record {
    events: Vec<OwnedGenerationEvent>,
    metrics: ContinualMetrics,
    genome_bytes: Vec<u64>,
}

fn run_scenario(islands: usize, threads: usize, generations: usize) -> Record {
    let rec = recorder();
    let events = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    let mut session = Session::builder(config(islands), SEED)
        .unwrap()
        .workload(TaskSequence::new(plan()))
        .threads(threads)
        .observe(move |event| sink.lock().unwrap().push(event.to_owned()))
        .observe(rec.observer())
        .build();
    session.run(generations);
    let genome_bytes = encode_population(session.genomes());
    drop(session);
    Record {
        events: Arc::try_unwrap(events).unwrap().into_inner().unwrap(),
        metrics: rec.snapshot(),
        genome_bytes,
    }
}

fn assert_worker_invariant(islands: usize, label: &str) {
    let reference = run_scenario(islands, 1, 6);
    assert_eq!(reference.events.len(), 6, "{label}: event per generation");
    for workers in [4usize, 8] {
        let got = run_scenario(islands, workers, 6);
        assert_eq!(
            reference.events, got.events,
            "{label}: events diverged at {workers} workers"
        );
        assert_eq!(
            reference.metrics, got.metrics,
            "{label}: metrics diverged at {workers} workers"
        );
        assert_eq!(
            reference.genome_bytes, got.genome_bytes,
            "{label}: genome bytes diverged at {workers} workers"
        );
    }
}

#[test]
fn scenario_record_is_worker_invariant_monolithic() {
    assert_worker_invariant(1, "monolithic");
}

#[test]
fn scenario_record_is_worker_invariant_archipelago() {
    assert_worker_invariant(3, "archipelago");
}

/// Checkpoint at generation `g_checkpoint` through the binary snapshot
/// wire, resume with a fresh workload *and* the same metrics recorder,
/// and compare every observable against the uninterrupted run.
fn assert_scenario_resume(islands: usize, g_checkpoint: usize, total: usize, label: &str) {
    // Uninterrupted reference.
    let full = run_scenario(islands, 1, total);

    // Head: run to the checkpoint, snapshot to bytes, drop.
    let rec = recorder();
    let events = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    let mut head = Session::builder(config(islands), SEED)
        .unwrap()
        .workload(TaskSequence::new(plan()))
        .threads(4)
        .observe(move |event| sink.lock().unwrap().push(event.to_owned()))
        .observe(rec.observer())
        .build();
    head.run(g_checkpoint);
    let bytes = snapshot_to_bytes(&head.export_state()).expect("encodable");
    drop(head);

    // Tail: restore from bytes; the sequence position rides in the
    // workload state, and the *same* recorder keeps accumulating.
    let restored: RunState = snapshot_from_bytes(&bytes).expect("decodable");
    let sink = Arc::clone(&events);
    let mut tail = Session::resume(restored)
        .unwrap()
        .workload(TaskSequence::new(plan()))
        .threads(1)
        .observe(move |event| sink.lock().unwrap().push(event.to_owned()))
        .observe(rec.observer())
        .build();
    tail.run(total - g_checkpoint);
    let tail_genomes = encode_population(tail.genomes());
    drop(tail);

    let events = Arc::try_unwrap(events).unwrap().into_inner().unwrap();
    assert_eq!(full.events, events, "{label}: event stream diverged");
    assert_eq!(
        full.metrics,
        rec.snapshot(),
        "{label}: continual metrics diverged across the power cycle"
    );
    assert_eq!(
        full.genome_bytes, tail_genomes,
        "{label}: genome bytes diverged"
    );
}

#[test]
fn mid_sequence_resume_reproduces_the_uninterrupted_run() {
    // Checkpoint at scenario generation 3: inside the Acrobot task,
    // exactly at its sudden-drift boundary (mid-drift AND mid-sequence).
    assert_scenario_resume(1, 3, 6, "monolithic g3");
}

#[test]
fn mid_task_resume_reproduces_the_uninterrupted_run() {
    // Checkpoint one generation into the run (mid-first-task).
    assert_scenario_resume(1, 1, 6, "monolithic g1");
}

#[test]
fn archipelago_mid_sequence_resume_reproduces_the_uninterrupted_run() {
    assert_scenario_resume(3, 3, 6, "archipelago g3");
}

#[test]
fn single_task_mid_drift_resume_is_bit_identical() {
    // The drift-only scenario: one cyclic-drifting task, checkpoint in
    // the middle of a non-identity regime.
    let plan = TaskPlan::drifting(
        EnvKind::CartPole,
        DriftSchedule::Cyclic {
            period: 2,
            regimes: 3,
        },
        5,
        8,
    );
    let mut config = EnvKind::CartPole.neat_config();
    config.pop_size = POP;
    config.target_fitness = None;

    let mut full = Session::builder(config.clone(), 13)
        .unwrap()
        .workload(TaskSequence::new(plan.clone()))
        .build();
    let full_report = full.run(6);

    let mut head = Session::builder(config, 13)
        .unwrap()
        .workload(TaskSequence::new(plan.clone()))
        .build();
    head.run(3); // scenario generation 3: regime 1 of the cycle
    assert_ne!(plan.regime(3), 0, "checkpoint lands mid-drift");
    let bytes = snapshot_to_bytes(&head.export_state()).unwrap();
    drop(head);
    let mut tail = Session::resume(snapshot_from_bytes(&bytes).unwrap())
        .unwrap()
        .workload(TaskSequence::new(plan))
        .build();
    let tail_report = tail.run(3);
    assert_eq!(&full_report.history[3..], &tail_report.history[..]);
    assert_eq!(
        encode_population(full.genomes()),
        encode_population(tail.genomes())
    );
}

#[test]
fn sequence_offset_rides_in_the_snapshot() {
    // A workload started mid-curriculum serializes its position; a
    // resume with a fresh (offset-0) workload restores it.
    let mut config = plan().neat_config();
    config.pop_size = 12;
    config.target_fitness = None;
    let mut head = Session::builder(config, 3)
        .unwrap()
        .workload(TaskSequence::new(plan()).with_generation_offset(4))
        .build();
    head.run(1);
    let bytes = snapshot_to_bytes(&head.export_state()).unwrap();
    let state = snapshot_from_bytes(&bytes).unwrap();
    assert_eq!(state.workload_state(), 4, "offset rides in the snapshot");
    let tail = Session::resume(state)
        .unwrap()
        .workload(TaskSequence::new(plan()))
        .build();
    assert_eq!(tail.workload().generation_offset(), 4);
}

#[test]
fn scenario_events_stream_population_diagnostics() {
    let record = run_scenario(1, 4, 6);
    for event in &record.events {
        let d = &event.stats.diagnostics;
        assert!(d.unique_genomes > 0, "unique-genome count populated");
        assert!(
            d.high_order_entropy > 0.0 && d.high_order_entropy <= 9.0 / 8.0,
            "entropy ratio in range, got {}",
            d.high_order_entropy
        );
        assert!(d.largest_species > 0, "species sizes populated");
        assert!(d.species_entropy >= 0.0);
        // The serve layer's observe verb ships exactly these words: the
        // event codec round trip must be lossless.
        let bytes = event_to_bytes(event);
        assert_eq!(&event_from_bytes(&bytes).unwrap(), event);
    }
    // The metrics side of the observability story: a full fitness
    // matrix (baseline + one row per task), every drift event
    // timestamped.
    let m = &record.metrics;
    let rows: Vec<Option<usize>> = m.probes.iter().map(|r| r.after_task).collect();
    assert_eq!(rows, [None, Some(0), Some(1), Some(2)]);
    for row in &m.probes {
        assert_eq!(row.fitness.len(), 3);
        assert!(row.fitness.iter().all(|f| f.is_finite()));
    }
    let boundaries: Vec<u64> = m.drift_events.iter().map(|d| d.generation).collect();
    assert_eq!(
        boundaries,
        [2, 3, 4],
        "task switch, sudden drift, task switch"
    );
    assert!(m.forgetting(0).is_some());
    assert!(m.mean_forgetting().is_some());
    assert!(m.backward_transfer().is_some());
    assert!(m.forward_transfer().is_some());
}
