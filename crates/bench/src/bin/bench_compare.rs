//! CI bench-regression gate.
//!
//! Compares a fresh `cargo bench` result file (JSON lines written by the
//! vendored criterion shim when `GENESYS_BENCH_JSON` is set) against the
//! committed baseline and **fails (exit 1) if any benchmark's minimum
//! iteration time regressed more than the threshold** (default 25 %).
//!
//! The *minimum* is compared, not the mean: min is the statistic least
//! contaminated by scheduler noise on shared CI runners, which is why the
//! shim reports min/mean/p95 instead of mean-only.
//!
//! Usage:
//!
//! ```text
//! bench_compare [--baseline PATH] [--results PATH] [--threshold PCT]
//!               [--update] [--no-calibration]
//! ```
//!
//! * `--baseline`  committed reference (default `crates/bench/bench_baseline.json`)
//! * `--results`   fresh measurements  (default `BENCH_results.json`)
//! * `--threshold` allowed regression in percent (default `25`)
//! * `--update`    rewrite the baseline from the results instead of comparing
//! * `--no-calibration` skip cross-machine rescaling (see below)
//!
//! Benchmarks that pass but sit within 5 percentage points of the
//! threshold are listed as **near misses**, so a slow drift is visible
//! before it trips the gate.
//!
//! Benchmarks present only in the results (newly added) pass with a note
//! and are counted, so the summary makes a stale baseline obvious.
//! Benchmarks present only in the baseline (removed, renamed, or silently
//! dropped by a partial run) **fail the gate**: a capture that lost
//! entries would otherwise pass while covering less than the baseline
//! promises. Intentional removals must refresh the baseline with
//! `--update`.
//!
//! # Cross-machine normalization
//!
//! Committed baselines are recorded on one machine; CI runs on another.
//! When **both** files contain the `calibration/spin` probe (a fixed
//! workload that only measures machine speed — see
//! `crates/bench/benches/calibration.rs`), every baseline time is rescaled
//! by `results_spin / baseline_spin` before comparing, so a uniformly
//! faster or slower host does not masquerade as a code change. The probe
//! itself is exempt from the gate. Pass `--no-calibration` to compare raw
//! times.
//!
//! The probe is single-threaded, so it cannot normalize a *core-count*
//! gap: multithreaded benchmarks (ids matching [`PARALLEL_MARKERS`]) are
//! shown but not gated when the two files report different `"cores"`
//! values.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// The machine-speed probe used to rescale cross-machine baselines.
const CALIBRATION_ID: &str = "calibration/spin";

/// Benchmarks whose wall-clock scales with *core count*, not single-thread
/// speed. When baseline and results report different core counts (the shim
/// records `"cores"` per line), these are shown but not gated — the
/// single-thread calibration probe cannot normalize a core-count gap.
const PARALLEL_MARKERS: &[&str] = &["_threads/", "static_chunks", "work_stealing"];

fn is_parallel_bench(id: &str) -> bool {
    PARALLEL_MARKERS.iter().any(|m| id.contains(m))
}

/// One benchmark's record from a JSON-lines result file.
#[derive(Debug, Clone, Copy)]
struct Record {
    min_ns: u64,
    mean_ns: u64,
    p95_ns: u64,
    iters: u64,
    /// Core count of the recording machine; 0 for pre-`cores` files.
    cores: u64,
}

/// Extracts the string value of `"key":"..."` from a single JSON line.
fn json_str(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    loop {
        match chars.next()? {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            c => out.push(c),
        }
    }
}

/// Extracts the integer value of `"key":123` from a single JSON line.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Parses a JSON-lines bench file into `id → record`. Later lines win on
/// duplicate ids (a re-run within one file supersedes earlier samples).
fn parse_file(path: &str) -> Result<BTreeMap<String, Record>, String> {
    let contents = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = BTreeMap::new();
    for (lineno, line) in contents.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parsed = json_str(line, "id").and_then(|id| {
            Some((
                id,
                Record {
                    min_ns: json_u64(line, "min_ns")?,
                    mean_ns: json_u64(line, "mean_ns")?,
                    p95_ns: json_u64(line, "p95_ns")?,
                    iters: json_u64(line, "iters")?,
                    cores: json_u64(line, "cores").unwrap_or(0),
                },
            ))
        });
        match parsed {
            Some((id, record)) => {
                out.insert(id, record);
            }
            None => return Err(format!("{path}:{}: malformed bench line", lineno + 1)),
        }
    }
    Ok(out)
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = arg_value(&args, "--baseline")
        .unwrap_or_else(|| "crates/bench/bench_baseline.json".to_string());
    let results_path =
        arg_value(&args, "--results").unwrap_or_else(|| "BENCH_results.json".to_string());
    let threshold_pct: f64 = arg_value(&args, "--threshold")
        .and_then(|v| v.parse().ok())
        .unwrap_or(25.0);
    let update = args.iter().any(|a| a == "--update");

    let results = match parse_file(&results_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if results.is_empty() {
        eprintln!("error: {results_path} holds no benchmark records");
        return ExitCode::FAILURE;
    }

    if update {
        let mut out = String::new();
        for (id, r) in &results {
            out.push_str(&format!(
                "{{\"id\":\"{id}\",\"min_ns\":{},\"mean_ns\":{},\"p95_ns\":{},\"iters\":{},\"cores\":{}}}\n",
                r.min_ns, r.mean_ns, r.p95_ns, r.iters, r.cores
            ));
        }
        if let Err(e) = std::fs::write(&baseline_path, out) {
            eprintln!("error: cannot write {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "baseline {baseline_path} updated with {} benchmarks",
            results.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match parse_file(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e} (run with --update to create it)");
            return ExitCode::FAILURE;
        }
    };

    // Machine-speed scale: >1 means this machine is slower than the one
    // that recorded the baseline, so baseline times are scaled up.
    let no_calibration = args.iter().any(|a| a == "--no-calibration");
    let scale = match (baseline.get(CALIBRATION_ID), results.get(CALIBRATION_ID)) {
        _ if no_calibration => 1.0,
        (Some(base), Some(new)) => {
            let s = new.min_ns as f64 / base.min_ns.max(1) as f64;
            println!(
                "calibration: this machine runs {CALIBRATION_ID} at {s:.2}x the baseline \
                 machine; baseline times rescaled accordingly\n"
            );
            s
        }
        _ => {
            println!("calibration: {CALIBRATION_ID} missing from baseline or results; comparing raw times\n");
            1.0
        }
    };

    let mut regressions = Vec::new();
    let mut near_misses = Vec::new();
    let mut compared = 0usize;
    let mut exempted = 0usize;
    let mut added = 0usize;
    println!(
        "{:<44} {:>12} {:>12} {:>8}",
        "benchmark", "base min*", "new min", "delta"
    );
    for (id, new) in &results {
        if id == CALIBRATION_ID {
            continue; // the probe measures the machine, not the code
        }
        match baseline.get(id) {
            None => {
                added += 1;
                println!("{id:<44} {:>12} {:>12} {:>8}", "-", new.min_ns, "new");
            }
            Some(base) => {
                // A core-count gap makes multithreaded timings incomparable:
                // the single-thread probe cannot normalize it either way.
                let core_gap = base.cores != new.cores && base.cores != 0 && new.cores != 0;
                let exempt = core_gap && is_parallel_bench(id);
                let scaled_base = (base.min_ns as f64 * scale).max(1.0);
                let delta = new.min_ns as f64 / scaled_base - 1.0;
                println!(
                    "{id:<44} {:>12.0} {:>12} {:>+7.1}%{}",
                    scaled_base,
                    new.min_ns,
                    delta * 100.0,
                    if exempt {
                        "  (not gated: parallel bench, core count differs)"
                    } else {
                        ""
                    }
                );
                if exempt {
                    exempted += 1;
                    continue;
                }
                compared += 1;
                if delta * 100.0 > threshold_pct {
                    regressions.push((id.clone(), delta));
                } else if delta * 100.0 > threshold_pct - 5.0 {
                    // Passing, but within 5 points of the gate: surface it
                    // so a slow drift is visible before it trips the gate.
                    near_misses.push((id.clone(), delta));
                }
            }
        }
    }
    // A fresh capture that *lost* baseline entries must not pass silently:
    // missing coverage is a gate failure, not a warning (refresh the
    // baseline with --update when a removal is intentional).
    let missing: Vec<&String> = baseline
        .keys()
        .filter(|id| !results.contains_key(*id) && *id != CALIBRATION_ID)
        .collect();
    for id in &missing {
        println!("MISSING: {id} present in baseline but absent from results");
    }
    if !near_misses.is_empty() {
        println!("\nnear misses (passing, but within 5 points of the +{threshold_pct}% gate):");
        for (id, delta) in &near_misses {
            println!("  {id} {:+.1}%", delta * 100.0);
        }
    }
    println!(
        "\ncompared {compared} benchmarks against {baseline_path} (threshold +{threshold_pct}% on min{}); {added} new, {} missing",
        if exempted > 0 {
            format!("; {exempted} parallel benches exempt on core-count mismatch")
        } else {
            String::new()
        },
        missing.len()
    );
    if regressions.is_empty() && missing.is_empty() {
        println!("bench regression gate: PASS");
        ExitCode::SUCCESS
    } else {
        for (id, delta) in &regressions {
            eprintln!(
                "REGRESSION: {id} is {:+.1}% slower than baseline",
                delta * 100.0
            );
        }
        if !missing.is_empty() {
            eprintln!(
                "MISSING: {} baseline benchmark(s) absent from results (intentional removals need --update)",
                missing.len()
            );
        }
        eprintln!(
            "bench regression gate: FAIL ({} regressed, {} missing)",
            regressions.len(),
            missing.len()
        );
        ExitCode::FAILURE
    }
}
