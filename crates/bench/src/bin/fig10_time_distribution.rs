//! Fig 10: where inference time goes, and on-chip memory footprints.
//!
//! (a) GPU_a time split (MemCpyHtoD / MemCpyDtoH / Kernel),
//! (b) GPU_b time split,
//! (c) GENESYS split (buffer traffic vs compute),
//! (d) memory footprint: GPU_a vs GPU_b vs GENESYS.
//!
//! Usage: `fig10_time_distribution [--pop N] [--generations N] [--threads N] [--seed N]`

use genesys_bench::{genesys_cost, print_table, run_workload_islands, sci, ExperimentArgs};
use genesys_core::SocConfig;
use genesys_gym::EnvKind;
use genesys_platforms::GpuModel;

fn main() {
    let args = ExperimentArgs::parse();
    let pop = args.pop_or(64);
    let generations = args.generations_or(8);
    let seed = args.base_seed(60);
    let pool = args.pool();

    let gtx = GpuModel::gtx_1080();
    let soc = SocConfig::default();

    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut rows_g = Vec::new();
    let mut rows_mem = Vec::new();

    for (i, kind) in EnvKind::FIG9_SUITE.iter().enumerate() {
        eprintln!("profiling {}...", kind.label());
        let run = run_workload_islands(
            *kind,
            generations,
            seed + i as u64,
            Some(pop),
            pool.as_ref(),
            args.islands_or(1),
            args.migration_interval_or(0),
        );
        let w = run.profile();
        let g = genesys_cost(&run, &soc);

        let a = gtx.inference_gpu_a(&w);
        rows_a.push(vec![
            w.label.clone(),
            format!("{:.1}", a.h2d_s * 1e3),
            format!("{:.1}", a.d2h_s * 1e3),
            format!("{:.1}", a.kernel_s * 1e3),
            format!("{:.0}%", a.memcpy_fraction() * 100.0),
        ]);
        let b = gtx.inference_gpu_b(&w);
        rows_b.push(vec![
            w.label.clone(),
            format!("{:.1}", b.h2d_s * 1e3),
            format!("{:.1}", b.d2h_s * 1e3),
            format!("{:.1}", b.kernel_s * 1e3),
            format!("{:.0}%", b.memcpy_fraction() * 100.0),
        ]);
        let transfer = g.buffer_transfer_s;
        let compute = g.inference_s;
        rows_g.push(vec![
            w.label.clone(),
            format!("{:.3}", transfer * 1e3),
            format!("{:.3}", compute * 1e3),
            format!("{:.0}%", transfer / (transfer + compute) * 100.0),
        ]);

        // Fig 10(d): footprints.
        let fp_a = GpuModel::footprint_gpu_a_bytes(&w);
        let fp_b = GpuModel::footprint_gpu_b_bytes(&w);
        let fp_g = w.genesys_footprint_bytes();
        rows_mem.push(vec![
            w.label.clone(),
            sci(fp_a as f64),
            sci(fp_b as f64),
            sci(fp_g as f64),
            format!("{:.0}x", fp_g as f64 / fp_a as f64),
            format!("{:.0}x", fp_b as f64 / fp_g as f64),
        ]);
    }

    print_table(
        "Fig 10(a): GPU_a inference time split, ms",
        &["Environment", "HtoD", "DtoH", "Kernel", "memcpy%"],
        &rows_a,
    );
    print_table(
        "Fig 10(b): GPU_b inference time split, ms",
        &["Environment", "HtoD", "DtoH", "Kernel", "memcpy%"],
        &rows_b,
    );
    print_table(
        "Fig 10(c): GENESYS inference split, ms (buffer traffic vs ADAM)",
        &["Environment", "Buffer", "Compute", "transfer%"],
        &rows_g,
    );
    print_table(
        "Fig 10(d): memory footprint, bytes",
        &[
            "Environment",
            "GPU_a",
            "GPU_b",
            "GENESYS",
            "G/GPU_a",
            "GPU_b/G",
        ],
        &rows_mem,
    );
    println!("\nPaper observations to check: GPU_a ≈70% memcpy, GPU_b ≈20%,");
    println!("GENESYS ≈15% (all data on-chip); GENESYS footprint ~100× GPU_a");
    println!("(whole population resident) and ~100× smaller than GPU_b.");
}
