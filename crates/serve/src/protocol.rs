//! The length-prefixed binary wire protocol.
//!
//! # Frame layout
//!
//! Every message is one frame: a little-endian `u32` length followed by
//! that many body bytes. Bodies share an 8-byte header:
//!
//! ```text
//! [0]    protocol version  (PROTOCOL_VERSION)
//! [1]    kind              (0 = request, 1 = reply)
//! [2..4] verb / tag        (u16 LE; Verb for requests, reply tag)
//! [4..8] request id        (u32 LE; echoed verbatim in the reply)
//! [8..]  verb-specific payload
//! ```
//!
//! The request id is caller-chosen correlation state: clients may
//! pipeline many requests on one connection and match replies by id
//! (replies can arrive out of request order — sessions finish at
//! different times). Integers are little-endian; variable-length fields
//! (snapshot images, config images, error messages) are `u32` length +
//! bytes. State-bearing payloads **are** `genesys_core::snapshot` images:
//! `submit` carries a config image, `resume`/`checkpoint` carry full
//! snapshot images, `observe` carries event images — the same versioned,
//! checksummed format checkpoint files use, so wire corruption is caught
//! by the same typed decoding.
//!
//! # Robustness
//!
//! Decoding never panics: adversarial bytes produce a typed
//! [`ServeError`] (proptested in `tests/serve_protocol.rs`). A frame
//! declaring more than [`MAX_FRAME_BYTES`] is rejected before buffering
//! ([`FrameError::Oversize`]), so a hostile length prefix cannot balloon
//! memory. Version negotiation is the snapshot policy: a body whose
//! version byte is not [`PROTOCOL_VERSION`] is rejected
//! ([`FrameError::BadVersion`]), never guessed at.

use crate::error::{FrameError, ServeError};
use crate::workload::WorkloadSpec;
use genesys_core::snapshot::{
    config_from_bytes, config_to_bytes, event_from_bytes, event_to_bytes,
};
use genesys_neat::{NeatConfig, OwnedGenerationEvent};

/// Protocol version byte; bumped on any wire layout change, other
/// versions rejected (the snapshot version policy). v2 added the
/// `dropped_events` counter to the `stats` reply.
pub const PROTOCOL_VERSION: u8 = 2;
/// Hard cap on one frame's body. Large enough for megapopulation
/// snapshot images, small enough that a hostile length prefix cannot
/// balloon memory.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

const KIND_REQUEST: u8 = 0;
const KIND_REPLY: u8 = 1;
const HEADER_BYTES: usize = 8;

/// A client request. See each variant for the verb's contract; every
/// verb is answered by exactly one [`Reply`] (or a wire error carrying a
/// [`ServeError::code`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit a new session evolving `config` under `workload`, seeded
    /// with `seed`. Answered by [`Reply::Submitted`].
    Submit {
        /// Base seed of the run (the determinism-contract root).
        seed: u64,
        /// The workload to evaluate genomes under.
        workload: WorkloadSpec,
        /// The full hyper-parameter set.
        config: Box<NeatConfig>,
    },
    /// Queue `generations` more generations for the session; the reply
    /// arrives once they have all run. Answered by [`Reply::Stepped`].
    Step {
        /// Target session.
        session: u64,
        /// Generations to run (≥ 1).
        generations: u32,
    },
    /// Drain up to `max` buffered generation events (oldest first).
    /// Answered by [`Reply::Events`].
    Observe {
        /// Target session.
        session: u64,
        /// Maximum events to return.
        max: u32,
    },
    /// Capture the session's state as a snapshot image at the current
    /// generation boundary. Works on evicted sessions without
    /// rehydrating them. Answered by [`Reply::Snapshot`].
    Checkpoint {
        /// Target session.
        session: u64,
    },
    /// Spill the session to disk now (explicit eviction; idempotent).
    /// Fails with [`ServeError::SessionBusy`] if generations are queued.
    /// Answered by [`Reply::Evicted`].
    Evict {
        /// Target session.
        session: u64,
    },
    /// Admit a session continuing from a snapshot image (cross-process
    /// migration; the bit-identical twin of `Session::resume`). Answered
    /// by [`Reply::Submitted`].
    Resume {
        /// The workload to continue under.
        workload: WorkloadSpec,
        /// A `genesys_core::snapshot` image.
        snapshot: Vec<u8>,
    },
    /// Server-wide counters. Answered by [`Reply::Stats`].
    Stats,
}

/// A successful server reply; errors travel as a distinct wire tag
/// carrying [`ServeError::code`] plus the rendered message.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The session was admitted.
    Submitted {
        /// The assigned session id.
        session: u64,
        /// Its current generation (0 for fresh submits).
        generation: u64,
    },
    /// The queued generations all ran.
    Stepped {
        /// The session.
        session: u64,
        /// Generation counter after the run.
        generation: u64,
        /// Event of the last generation that ran.
        event: Box<OwnedGenerationEvent>,
    },
    /// Buffered generation events, oldest first.
    Events {
        /// The session.
        session: u64,
        /// The drained events.
        events: Vec<OwnedGenerationEvent>,
    },
    /// A checkpoint image.
    Snapshot {
        /// The session.
        session: u64,
        /// The `genesys_core::snapshot` image bytes.
        image: Vec<u8>,
    },
    /// The session is spilled to disk.
    Evicted {
        /// The session.
        session: u64,
    },
    /// Server-wide counters.
    Stats(ServerStats),
}

/// Server-wide counters reported by the `stats` verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Live sessions (resident + evicted).
    pub sessions: u64,
    /// Sessions currently resident in RAM.
    pub resident: u64,
    /// Sessions currently spilled to disk.
    pub evicted: u64,
    /// Generations run since the server started.
    pub generations: u64,
    /// Evictions performed since start.
    pub evictions: u64,
    /// Rehydrations performed since start.
    pub rehydrations: u64,
    /// The admission cap on live sessions.
    pub max_sessions: u64,
    /// The cap on resident sessions.
    pub max_resident: u64,
    /// Generation events silently dropped from per-session observe rings
    /// because no `observe` call drained them before the ring wrapped.
    /// A nonzero, growing value means observers are polling too slowly
    /// (or the `event_buffer` is too small) and the event stream they see
    /// has holes.
    pub dropped_events: u64,
}

// ---------------------------------------------------------------------------
// Byte-level reader/writer.

/// Append-only body builder.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_blob(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }

    /// Seals the body into a full frame: `u32` length prefix + body.
    fn frame(self) -> Vec<u8> {
        let mut frame = Vec::with_capacity(4 + self.buf.len());
        frame.extend_from_slice(&(self.buf.len() as u32).to_le_bytes());
        frame.extend_from_slice(&self.buf);
        frame
    }
}

/// Bounds-checked body reader; running past the end is a typed
/// [`FrameError::Truncated`], never a panic.
#[derive(Debug)]
pub(crate) struct Reader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(body: &'a [u8]) -> Self {
        Reader { body, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.body.len())
            .ok_or(ServeError::Frame(FrameError::Truncated {
                offset: self.pos,
            }))?;
        let slice = &self.body[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn take_u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn take_u16(&mut self) -> Result<u16, ServeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    pub(crate) fn take_u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    pub(crate) fn take_u64(&mut self) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn take_blob(&mut self) -> Result<&'a [u8], ServeError> {
        let len = self.take_u32()? as usize;
        self.take(len)
    }

    /// Rejects bodies with bytes past the declared structure: trailing
    /// garbage means a framing bug or tampering.
    fn finish(&self) -> Result<(), ServeError> {
        if self.pos != self.body.len() {
            return Err(ServeError::Frame(FrameError::BadPayload("trailing bytes")));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Frame extraction.

/// Extracts the next complete frame's body from a connection read buffer,
/// draining the consumed bytes. `Ok(None)` means more bytes are needed.
///
/// # Errors
///
/// [`FrameError::Oversize`] if the length prefix exceeds
/// [`MAX_FRAME_BYTES`] — the stream is unrecoverable at that point (the
/// peer and server disagree on framing) and the connection should close.
pub fn take_frame(buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>, ServeError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("len 4")) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ServeError::Frame(FrameError::Oversize { len }));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let body = buf[4..4 + len].to_vec();
    buf.drain(..4 + len);
    Ok(Some(body))
}

/// Best-effort request-id peek from a body whose payload may be
/// malformed, so error replies can still correlate. `None` if even the
/// header is truncated.
pub fn request_id_of(body: &[u8]) -> Option<u32> {
    body.get(4..HEADER_BYTES)
        .map(|b| u32::from_le_bytes(b.try_into().expect("len 4")))
}

fn header(kind: u8, code: u16, request_id: u32) -> Writer {
    let mut w = Writer::default();
    w.put_u8(PROTOCOL_VERSION);
    w.put_u8(kind);
    w.put_u16(code);
    w.put_u32(request_id);
    w
}

/// Decodes a body's shared header, returning `(kind, code, request_id)`.
fn decode_header(r: &mut Reader<'_>) -> Result<(u8, u16, u32), ServeError> {
    let version = r.take_u8()?;
    if version != PROTOCOL_VERSION {
        return Err(ServeError::Frame(FrameError::BadVersion(version)));
    }
    let kind = r.take_u8()?;
    let code = r.take_u16()?;
    let id = r.take_u32()?;
    Ok((kind, code, id))
}

// Verb codes (stable; never renumbered).
const VERB_SUBMIT: u16 = 1;
const VERB_STEP: u16 = 2;
const VERB_OBSERVE: u16 = 3;
const VERB_CHECKPOINT: u16 = 4;
const VERB_EVICT: u16 = 5;
const VERB_RESUME: u16 = 6;
const VERB_STATS: u16 = 7;

// Reply tags (stable; tag 0 is the error reply).
const TAG_ERROR: u16 = 0;
const TAG_SUBMITTED: u16 = 1;
const TAG_STEPPED: u16 = 2;
const TAG_EVENTS: u16 = 3;
const TAG_SNAPSHOT: u16 = 4;
const TAG_EVICTED: u16 = 5;
const TAG_STATS: u16 = 6;

/// Encodes a request into a complete frame (length prefix included).
pub fn encode_request(request_id: u32, request: &Request) -> Vec<u8> {
    let mut w = match request {
        Request::Submit {
            seed,
            workload,
            config,
        } => {
            let mut w = header(KIND_REQUEST, VERB_SUBMIT, request_id);
            w.put_u64(*seed);
            workload.encode(&mut w);
            w.put_blob(&config_to_bytes(config));
            w
        }
        Request::Step {
            session,
            generations,
        } => {
            let mut w = header(KIND_REQUEST, VERB_STEP, request_id);
            w.put_u64(*session);
            w.put_u32(*generations);
            w
        }
        Request::Observe { session, max } => {
            let mut w = header(KIND_REQUEST, VERB_OBSERVE, request_id);
            w.put_u64(*session);
            w.put_u32(*max);
            w
        }
        Request::Checkpoint { session } => {
            let mut w = header(KIND_REQUEST, VERB_CHECKPOINT, request_id);
            w.put_u64(*session);
            w
        }
        Request::Evict { session } => {
            let mut w = header(KIND_REQUEST, VERB_EVICT, request_id);
            w.put_u64(*session);
            w
        }
        Request::Resume { workload, snapshot } => {
            let mut w = header(KIND_REQUEST, VERB_RESUME, request_id);
            workload.encode(&mut w);
            w.put_blob(snapshot);
            w
        }
        Request::Stats => header(KIND_REQUEST, VERB_STATS, request_id),
    };
    // Requests with no payload still flow through the same sealing path.
    w.put_u8(0);
    w.frame()
}

/// Decodes a request body (a frame with the length prefix already
/// stripped by [`take_frame`]).
///
/// # Errors
///
/// Malformed input of any shape is a typed [`ServeError`]; never panics.
pub fn decode_request(body: &[u8]) -> Result<(u32, Request), ServeError> {
    let mut r = Reader::new(body);
    let (kind, verb, id) = decode_header(&mut r)?;
    if kind != KIND_REQUEST {
        return Err(ServeError::Frame(FrameError::BadPayload(
            "reply frame where a request was expected",
        )));
    }
    let request = match verb {
        VERB_SUBMIT => {
            let seed = r.take_u64()?;
            let workload = WorkloadSpec::decode(&mut r)?;
            let config = config_from_bytes(r.take_blob()?)?;
            Request::Submit {
                seed,
                workload,
                config: Box::new(config),
            }
        }
        VERB_STEP => {
            let session = r.take_u64()?;
            let generations = r.take_u32()?;
            if generations == 0 {
                return Err(ServeError::Frame(FrameError::BadPayload(
                    "step of zero generations",
                )));
            }
            Request::Step {
                session,
                generations,
            }
        }
        VERB_OBSERVE => Request::Observe {
            session: r.take_u64()?,
            max: r.take_u32()?,
        },
        VERB_CHECKPOINT => Request::Checkpoint {
            session: r.take_u64()?,
        },
        VERB_EVICT => Request::Evict {
            session: r.take_u64()?,
        },
        VERB_RESUME => {
            let workload = WorkloadSpec::decode(&mut r)?;
            let snapshot = r.take_blob()?.to_vec();
            Request::Resume { workload, snapshot }
        }
        VERB_STATS => Request::Stats,
        other => return Err(ServeError::Frame(FrameError::UnknownVerb(other))),
    };
    if r.take_u8()? != 0 {
        return Err(ServeError::Frame(FrameError::BadPayload("seal byte")));
    }
    r.finish()?;
    Ok((id, request))
}

/// Encodes a reply — or a wire error — into a complete frame.
pub fn encode_reply(request_id: u32, result: &Result<Reply, ServeError>) -> Vec<u8> {
    let w = match result {
        Err(e) => {
            let mut w = header(KIND_REPLY, TAG_ERROR, request_id);
            w.put_u32(e.code());
            w.put_blob(e.to_string().as_bytes());
            w
        }
        Ok(Reply::Submitted {
            session,
            generation,
        }) => {
            let mut w = header(KIND_REPLY, TAG_SUBMITTED, request_id);
            w.put_u64(*session);
            w.put_u64(*generation);
            w
        }
        Ok(Reply::Stepped {
            session,
            generation,
            event,
        }) => {
            let mut w = header(KIND_REPLY, TAG_STEPPED, request_id);
            w.put_u64(*session);
            w.put_u64(*generation);
            w.put_blob(&event_to_bytes(event));
            w
        }
        Ok(Reply::Events { session, events }) => {
            let mut w = header(KIND_REPLY, TAG_EVENTS, request_id);
            w.put_u64(*session);
            w.put_u32(events.len() as u32);
            for event in events {
                w.put_blob(&event_to_bytes(event));
            }
            w
        }
        Ok(Reply::Snapshot { session, image }) => {
            let mut w = header(KIND_REPLY, TAG_SNAPSHOT, request_id);
            w.put_u64(*session);
            w.put_blob(image);
            w
        }
        Ok(Reply::Evicted { session }) => {
            let mut w = header(KIND_REPLY, TAG_EVICTED, request_id);
            w.put_u64(*session);
            w
        }
        Ok(Reply::Stats(s)) => {
            let mut w = header(KIND_REPLY, TAG_STATS, request_id);
            for v in [
                s.sessions,
                s.resident,
                s.evicted,
                s.generations,
                s.evictions,
                s.rehydrations,
                s.max_sessions,
                s.max_resident,
                s.dropped_events,
            ] {
                w.put_u64(v);
            }
            w
        }
    };
    let mut w = w;
    w.put_u8(0);
    w.frame()
}

/// Decodes a reply body. Wire errors surface as `Ok((id,
/// Err(ServeError::Remote { .. })))` — the outer `Err` is reserved for
/// bodies this client cannot parse at all.
///
/// # Errors
///
/// Malformed input of any shape is a typed [`ServeError`]; never panics.
#[allow(clippy::type_complexity)]
pub fn decode_reply(body: &[u8]) -> Result<(u32, Result<Reply, ServeError>), ServeError> {
    let mut r = Reader::new(body);
    let (kind, tag, id) = decode_header(&mut r)?;
    if kind != KIND_REPLY {
        return Err(ServeError::Frame(FrameError::BadPayload(
            "request frame where a reply was expected",
        )));
    }
    let result = match tag {
        TAG_ERROR => {
            let code = r.take_u32()?;
            let message = String::from_utf8_lossy(r.take_blob()?).into_owned();
            Err(ServeError::Remote { code, message })
        }
        TAG_SUBMITTED => Ok(Reply::Submitted {
            session: r.take_u64()?,
            generation: r.take_u64()?,
        }),
        TAG_STEPPED => {
            let session = r.take_u64()?;
            let generation = r.take_u64()?;
            let event = event_from_bytes(r.take_blob()?)?;
            Ok(Reply::Stepped {
                session,
                generation,
                event: Box::new(event),
            })
        }
        TAG_EVENTS => {
            let session = r.take_u64()?;
            let count = r.take_u32()? as usize;
            // Each event blob is ≥ 4 bytes of length prefix; reject
            // counts the body cannot possibly hold before allocating.
            if count > body.len() / 4 {
                return Err(ServeError::Frame(FrameError::Truncated {
                    offset: body.len(),
                }));
            }
            let mut events = Vec::with_capacity(count);
            for _ in 0..count {
                events.push(event_from_bytes(r.take_blob()?)?);
            }
            Ok(Reply::Events { session, events })
        }
        TAG_SNAPSHOT => {
            let session = r.take_u64()?;
            let image = r.take_blob()?.to_vec();
            Ok(Reply::Snapshot { session, image })
        }
        TAG_EVICTED => Ok(Reply::Evicted {
            session: r.take_u64()?,
        }),
        TAG_STATS => {
            let mut vals = [0u64; 9];
            for v in &mut vals {
                *v = r.take_u64()?;
            }
            Ok(Reply::Stats(ServerStats {
                sessions: vals[0],
                resident: vals[1],
                evicted: vals[2],
                generations: vals[3],
                evictions: vals[4],
                rehydrations: vals[5],
                max_sessions: vals[6],
                max_resident: vals[7],
                dropped_events: vals[8],
            }))
        }
        other => return Err(ServeError::Frame(FrameError::UnknownTag(other))),
    };
    if r.take_u8()? != 0 {
        return Err(ServeError::Frame(FrameError::BadPayload("seal byte")));
    }
    r.finish()?;
    Ok((id, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesys_gym::EnvKind;

    fn specs() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::Synthetic,
            WorkloadSpec::Env {
                kind: EnvKind::CartPole,
                episodes: 2,
                batch: 2,
            },
            WorkloadSpec::Drifting {
                world_seed: 7,
                period: 40,
                episodes_per_generation: 16,
            },
        ]
    }

    #[test]
    fn requests_roundtrip_through_frames() {
        let config = genesys_neat::NeatConfig::builder(4, 2)
            .pop_size(10)
            .build()
            .unwrap();
        let mut requests = vec![
            Request::Step {
                session: 3,
                generations: 5,
            },
            Request::Observe { session: 3, max: 8 },
            Request::Checkpoint { session: 9 },
            Request::Evict { session: 9 },
            Request::Resume {
                workload: WorkloadSpec::Synthetic,
                snapshot: vec![1, 2, 3],
            },
            Request::Stats,
        ];
        for workload in specs() {
            requests.push(Request::Submit {
                seed: 42,
                workload,
                config: Box::new(config.clone()),
            });
        }
        for (i, request) in requests.into_iter().enumerate() {
            let id = i as u32 + 10;
            let frame = encode_request(id, &request);
            let mut buf = frame.clone();
            let body = take_complete_frame(&mut buf);
            assert!(buf.is_empty());
            assert_eq!(request_id_of(&body), Some(id));
            let (got_id, got) = decode_request(&body).unwrap();
            assert_eq!(got_id, id);
            assert_eq!(got, request);
        }
    }

    /// Takes exactly one complete frame off `buf`, failing the test on
    /// a wire error or an incomplete buffer alike.
    fn take_complete_frame(buf: &mut Vec<u8>) -> Vec<u8> {
        match take_frame(buf) {
            Ok(Some(body)) => body,
            other => panic!("expected one complete frame, got {other:?}"),
        }
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let frame = encode_request(1, &Request::Stats);
        for len in 0..frame.len() {
            let mut buf = frame[..len].to_vec();
            assert_eq!(take_frame(&mut buf).unwrap(), None, "prefix {len}");
            assert_eq!(buf.len(), len, "partial frames are not consumed");
        }
    }

    #[test]
    fn oversize_frames_are_rejected_before_buffering() {
        let mut buf = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes().to_vec();
        assert!(matches!(
            take_frame(&mut buf),
            Err(ServeError::Frame(FrameError::Oversize { .. }))
        ));
    }

    #[test]
    fn step_zero_is_a_typed_error() {
        let mut frame = encode_request(
            1,
            &Request::Step {
                session: 0,
                generations: 1,
            },
        );
        // Zero out the generations field (last 5 bytes are u32 + seal).
        let n = frame.len();
        frame[n - 5..n - 1].fill(0);
        let body = take_frame(&mut frame.clone().to_vec()).unwrap().unwrap();
        assert!(matches!(
            decode_request(&body),
            Err(ServeError::Frame(FrameError::BadPayload(_)))
        ));
    }

    #[test]
    fn replies_roundtrip_through_frames() {
        let event = OwnedGenerationEvent {
            stats: genesys_neat::GenerationStats::collect(1, &[], 0, None, 9),
            best: None,
        };
        let replies: Vec<Result<Reply, ServeError>> = vec![
            Ok(Reply::Submitted {
                session: 4,
                generation: 0,
            }),
            Ok(Reply::Stepped {
                session: 4,
                generation: 6,
                event: Box::new(event.clone()),
            }),
            Ok(Reply::Events {
                session: 4,
                events: vec![event.clone(), event],
            }),
            Ok(Reply::Snapshot {
                session: 4,
                image: vec![9, 8, 7],
            }),
            Ok(Reply::Evicted { session: 4 }),
            Ok(Reply::Stats(ServerStats {
                sessions: 1,
                resident: 1,
                evicted: 0,
                generations: 12,
                evictions: 3,
                rehydrations: 2,
                max_sessions: 64,
                max_resident: 8,
                dropped_events: 5,
            })),
            Err(ServeError::UnknownSession(77)),
        ];
        for (i, reply) in replies.into_iter().enumerate() {
            let id = i as u32;
            let frame = encode_reply(id, &reply);
            let mut buf = frame;
            let body = take_frame(&mut buf).unwrap().unwrap();
            let (got_id, got) = decode_reply(&body).unwrap();
            assert_eq!(got_id, id);
            match (&reply, &got) {
                (Err(e), Err(ServeError::Remote { code, message })) => {
                    assert_eq!(*code, e.code(), "wire code preserved");
                    assert_eq!(message, &e.to_string());
                }
                _ => assert_eq!(got, reply),
            }
        }
    }

    #[test]
    fn pipelined_frames_drain_in_order() {
        let mut buf = Vec::new();
        for id in 0..4u32 {
            buf.extend_from_slice(&encode_request(id, &Request::Stats));
        }
        for id in 0..4u32 {
            let body = take_complete_frame(&mut buf);
            assert_eq!(decode_request(&body).unwrap().0, id);
        }
        assert_eq!(take_frame(&mut buf).unwrap(), None);
    }
}
