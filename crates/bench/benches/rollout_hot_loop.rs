//! Steady-state rollout throughput per environment kind.
//!
//! One iteration = one full episode of an evolved policy on a fresh
//! seed-derived environment — exactly the unit of work the persistent
//! evaluation engine schedules. This is the hot loop the compiled
//! zero-allocation pipeline targets: report min-time here before and after
//! touching `Network::activate_into`, `Environment::step_into` or the
//! rollout buffers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genesys_gym::{episode_rollout_with, EnvKind, RolloutScratch};
use genesys_neat::trace::OpCounters;
use genesys_neat::{Genome, InnovationTracker, Network, XorWow};

/// Evolves a genome with a little hidden structure so the benchmark walks
/// a multi-wavefront plan, not just the initial input→output matrix.
fn evolved_net(kind: EnvKind, rounds: usize) -> Network {
    let config = kind.neat_config();
    let mut rng = XorWow::seed_from_u64_value(7);
    let mut innov = InnovationTracker::new(config.first_hidden_id());
    let mut g = Genome::initial(0, &config, &mut rng);
    let mut ops = OpCounters::new();
    for _ in 0..rounds {
        g.mutate_add_node(&mut innov, &mut rng, &mut ops);
        g.mutate_add_conn(&mut rng, &mut ops);
        g.mutate_attributes(&config, &mut rng, &mut ops);
    }
    Network::from_genome(&g).expect("mutated genome stays acyclic")
}

fn bench_rollout(c: &mut Criterion) {
    let mut group = c.benchmark_group("rollout_hot_loop");
    for kind in EnvKind::ALL {
        let net = evolved_net(kind, 6);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                // Buffers persist across iterations, like a pool worker's.
                let mut scratch = RolloutScratch::new();
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    episode_rollout_with(kind, &net, seed, &mut scratch)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rollout);
criterion_main!(benches);
