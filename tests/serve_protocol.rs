//! Property tests on the serve wire protocol: request/reply codecs are a
//! fixed point on well-formed messages, and corrupt input of every shape
//! — truncation, bit flips, byte soup — returns a typed [`ServeError`]
//! with a stable numeric code and never panics.

use genesys::gym::EnvKind;
use genesys::neat::{trace::OpCounters, GenerationStats, NeatConfig, PopulationDiagnostics};
use genesys::serve::protocol::{
    decode_reply, decode_request, encode_reply, encode_request, request_id_of, take_frame,
};
use genesys::serve::{FrameError, Reply, Request, ServeError, ServerStats, WorkloadSpec};
use genesys::{BestSummary, OwnedGenerationEvent};
use proptest::prelude::*;

// The vendored proptest shim has ranges/tuples/`prop_map` but no
// `prop_oneof!`/collections, so the protocol generators are hand-rolled
// `Strategy` impls drawing from the case RNG directly.

struct ArbWorkload;

impl Strategy for ArbWorkload {
    type Value = WorkloadSpec;

    fn sample(&self, rng: &mut TestRng) -> WorkloadSpec {
        match rng.next_u64() % 3 {
            0 => WorkloadSpec::Synthetic,
            1 => WorkloadSpec::Env {
                kind: EnvKind::ALL[(rng.next_u64() % EnvKind::ALL.len() as u64) as usize],
                episodes: 1 + (rng.next_u64() % 3) as u32,
                batch: 1 + (rng.next_u64() % 3) as u32,
            },
            _ => WorkloadSpec::Drifting {
                world_seed: rng.next_u64(),
                period: 1 + rng.next_u64() % 100,
                episodes_per_generation: 1 + rng.next_u64() % 50,
            },
        }
    }
}

struct ArbRequest;

impl Strategy for ArbRequest {
    type Value = Request;

    fn sample(&self, rng: &mut TestRng) -> Request {
        match rng.next_u64() % 7 {
            0 => Request::Submit {
                seed: rng.next_u64(),
                workload: ArbWorkload.sample(rng),
                config: Box::new(
                    NeatConfig::builder(
                        1 + (rng.next_u64() % 5) as usize,
                        1 + (rng.next_u64() % 3) as usize,
                    )
                    .pop_size(2 + (rng.next_u64() % 38) as usize)
                    .build()
                    .expect("valid config"),
                ),
            },
            1 => Request::Step {
                session: rng.next_u64(),
                generations: 1 + (rng.next_u64() % 999) as u32,
            },
            2 => Request::Observe {
                session: rng.next_u64(),
                max: rng.next_u64() as u32,
            },
            3 => Request::Checkpoint {
                session: rng.next_u64(),
            },
            4 => Request::Evict {
                session: rng.next_u64(),
            },
            5 => Request::Resume {
                workload: ArbWorkload.sample(rng),
                snapshot: arb_bytes(rng, 256),
            },
            _ => Request::Stats,
        }
    }
}

struct ArbReply;

impl Strategy for ArbReply {
    type Value = Reply;

    fn sample(&self, rng: &mut TestRng) -> Reply {
        match rng.next_u64() % 6 {
            0 => Reply::Submitted {
                session: rng.next_u64(),
                generation: rng.next_u64(),
            },
            1 => Reply::Stepped {
                session: rng.next_u64(),
                generation: rng.next_u64(),
                event: Box::new(arb_event(rng)),
            },
            2 => Reply::Events {
                session: rng.next_u64(),
                events: (0..rng.next_u64() % 5).map(|_| arb_event(rng)).collect(),
            },
            3 => Reply::Snapshot {
                session: rng.next_u64(),
                image: arb_bytes(rng, 512),
            },
            4 => Reply::Evicted {
                session: rng.next_u64(),
            },
            _ => Reply::Stats(ServerStats {
                sessions: rng.next_u64(),
                resident: rng.next_u64(),
                evicted: rng.next_u64(),
                generations: rng.next_u64(),
                evictions: rng.next_u64(),
                rehydrations: rng.next_u64(),
                max_sessions: 4096,
                max_resident: 256,
                dropped_events: rng.next_u64(),
            }),
        }
    }
}

fn arb_bytes(rng: &mut TestRng, max: usize) -> Vec<u8> {
    let n = (rng.next_u64() as usize) % max;
    (0..n).map(|_| rng.next_u64() as u8).collect()
}

fn arb_event(rng: &mut TestRng) -> OwnedGenerationEvent {
    let stats = GenerationStats {
        generation: (rng.next_u64() % 10_000) as usize,
        max_fitness: rng.unit_f64() * 100.0,
        mean_fitness: rng.unit_f64() * 50.0,
        min_fitness: -rng.unit_f64(),
        num_species: (rng.next_u64() % 64) as usize,
        total_nodes: (rng.next_u64() % 4096) as usize,
        total_conns: (rng.next_u64() % 8192) as usize,
        total_genes: (rng.next_u64() % 12_000) as usize,
        max_genome_genes: (rng.next_u64() % 512) as usize,
        memory_bytes: (rng.next_u64() % (1 << 20)) as usize,
        ops: OpCounters {
            crossover: rng.next_u64() % 1000,
            perturb: rng.next_u64() % 1000,
            add_node: rng.next_u64() % 100,
            add_conn: rng.next_u64() % 100,
            delete_node: rng.next_u64() % 100,
            delete_conn: rng.next_u64() % 100,
        },
        fittest_parent_reuse: (rng.next_u64() % 32) as usize,
        inference_macs: rng.next_u64() % (1 << 40),
        env_steps: rng.next_u64() % (1 << 30),
        diagnostics: PopulationDiagnostics {
            high_order_entropy: rng.unit_f64() * 9.0 / 8.0,
            unique_genomes: (rng.next_u64() % 4096) as usize,
            species_entropy: rng.unit_f64() * 4.0,
            largest_species: (rng.next_u64() % 4096) as usize,
        },
        speciate_ns: rng.next_u64() % (1 << 34),
        reproduce_ns: rng.next_u64() % (1 << 34),
        eval_ns: rng.next_u64() % (1 << 34),
    };
    let best = (rng.next_u64().is_multiple_of(2)).then(|| BestSummary {
        key: rng.next_u64(),
        fitness: (rng.next_u64().is_multiple_of(2)).then(|| rng.unit_f64() * 10.0),
        nodes: (rng.next_u64() % 128) as usize,
        conns: (rng.next_u64() % 256) as usize,
    });
    OwnedGenerationEvent { stats, best }
}

/// Every error the server can put on the wire, with its pinned code.
/// Renumbering any of these is a protocol break — this list is the
/// compatibility contract, so extend it but never edit existing rows.
fn pinned_errors() -> Vec<(ServeError, u32)> {
    vec![
        (ServeError::Frame(FrameError::Truncated { offset: 3 }), 100),
        (
            ServeError::Frame(FrameError::Oversize { len: 1 << 40 }),
            101,
        ),
        (ServeError::Frame(FrameError::BadVersion(9)), 102),
        (ServeError::Frame(FrameError::UnknownVerb(77)), 103),
        (ServeError::Frame(FrameError::UnknownTag(88)), 104),
        (ServeError::Frame(FrameError::BadPayload("x")), 105),
        (ServeError::UnknownSession(5), 200),
        (ServeError::ServerFull { live: 2, cap: 2 }, 201),
        (ServeError::SessionBusy(5), 202),
        (ServeError::Io("gone".into()), 500),
        (ServeError::Disconnected, 501),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// encode → frame-extract → decode is the identity on requests, and
    /// the best-effort id peek agrees with the full decode.
    #[test]
    fn requests_roundtrip(id in any::<u32>(), request in ArbRequest) {
        let frame = encode_request(id, &request);
        let mut buf = frame.clone();
        let body = take_frame(&mut buf).unwrap().expect("whole frame present");
        prop_assert!(buf.is_empty());
        prop_assert_eq!(request_id_of(&body), Some(id));
        let (got_id, got) = decode_request(&body).expect("well-formed request");
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got, request);
    }

    /// Same fixed point for replies.
    #[test]
    fn replies_roundtrip(id in any::<u32>(), reply in ArbReply) {
        let mut buf = encode_reply(id, &Ok(reply.clone()));
        let body = take_frame(&mut buf).unwrap().expect("whole frame present");
        let (got_id, got) = decode_reply(&body).expect("well-formed reply");
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got.expect("ok reply"), reply);
    }

    /// Any strict prefix of a request body decodes to a typed error in
    /// the frame range — never a panic, never a bogus success.
    #[test]
    fn truncated_bodies_are_typed_errors(request in ArbRequest, cut in 0.0f64..1.0) {
        let frame = encode_request(7, &request);
        let body = &frame[4..];
        let cut = ((body.len() as f64) * cut) as usize;
        if cut < body.len() {
            match decode_request(&body[..cut]) {
                Ok(_) => prop_assert!(false, "truncated body decoded successfully"),
                Err(e) => {
                    let code = e.code();
                    prop_assert!((100..=105).contains(&code), "unexpected code {code}");
                }
            }
        }
    }

    /// A single flipped bit anywhere in the body never panics the
    /// decoder; failures carry codes from the frame or snapshot ranges
    /// (a Submit body embeds a config image, so checksum errors are
    /// legitimate outcomes).
    #[test]
    fn bit_flips_never_panic(request in ArbRequest, at in 0.0f64..1.0, bit in 0u8..8) {
        let frame = encode_request(3, &request);
        let mut body = frame[4..].to_vec();
        let at = (((body.len() - 1) as f64) * at) as usize;
        body[at] ^= 1 << bit;
        if let Err(e) = decode_request(&body) {
            let code = e.code();
            prop_assert!(
                (100..=105).contains(&code)
                    || (300..=399).contains(&code)
                    || (400..=499).contains(&code),
                "unexpected code {code}"
            );
        }
        // A flip in a don't-care position may still decode; the property
        // is the absence of panics and of untyped errors.
    }

    /// Arbitrary byte soup through the frame extractor: complete frames
    /// come out, incomplete ones wait, oversize prefixes are rejected —
    /// and nothing panics downstream in either decoder.
    #[test]
    fn byte_soup_never_panics(seed in any::<u64>(), len in 0usize..64) {
        let mut rng = TestRng::deterministic(seed);
        let mut buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        match take_frame(&mut buf) {
            Ok(Some(body)) => {
                let _ = decode_request(&body);
                let _ = decode_reply(&body);
            }
            Ok(None) => {}
            Err(e) => prop_assert_eq!(e.code(), 101, "only oversize kills framing"),
        }
    }
}

#[test]
fn error_codes_are_pinned_across_the_wire() {
    for (error, code) in pinned_errors() {
        assert_eq!(error.code(), code, "code changed for {error:?}");
        let mut buf = encode_reply(11, &Err(error));
        let body = take_frame(&mut buf).unwrap().expect("whole frame");
        let (id, result) = decode_reply(&body).expect("error replies are well-formed");
        assert_eq!(id, 11);
        match result {
            Err(ServeError::Remote {
                code: remote_code, ..
            }) => assert_eq!(remote_code, code),
            other => panic!("expected Remote error, got {other:?}"),
        }
    }
}

#[test]
fn remote_errors_preserve_the_rendered_message() {
    let err = ServeError::UnknownSession(42);
    let rendered = err.to_string();
    let mut buf = encode_reply(1, &Err(err));
    let body = take_frame(&mut buf).unwrap().unwrap();
    let (_, result) = decode_reply(&body).unwrap();
    match result {
        Err(ServeError::Remote { message, .. }) => assert_eq!(message, rendered),
        other => panic!("expected Remote error, got {other:?}"),
    }
}
