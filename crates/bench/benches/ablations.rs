//! Ablation benches for the design choices called out in `DESIGN.md` §5:
//! GLR-aware greedy PE allocation vs round-robin, and the multicast tree
//! vs point-to-point buses, measured as modelled SRAM reads (reported via
//! custom criterion measurement of the replay work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genesys_core::{
    allocate_pes, select_parents, AllocPolicy, EveEngine, GenomeBuffer, NocKind, PeConfig,
    SramConfig,
};
use genesys_neat::{Genome, NeatConfig, SpeciesSet, XorWow};

fn population(n: usize) -> (Vec<Genome>, NeatConfig) {
    let c = NeatConfig::builder(6, 2).pop_size(n).build().unwrap();
    let mut rng = XorWow::seed_from_u64_value(77);
    let mut genomes: Vec<Genome> = (0..n as u64)
        .map(|k| Genome::initial(k, &c, &mut rng))
        .collect();
    for (i, g) in genomes.iter_mut().enumerate() {
        g.set_fitness((i % 11) as f64);
    }
    (genomes, c)
}

fn bench_alloc_policy(c: &mut Criterion) {
    let (genomes, config) = population(150);
    let mut species = SpeciesSet::new();
    let mut rng = XorWow::seed_from_u64_value(3);
    let plans = select_parents(&genomes, &mut species, &config, 0, &mut rng);
    let pe_config = PeConfig::from_neat(&config, 10);

    let mut group = c.benchmark_group("alloc_policy_reproduction");
    group.sample_size(10);
    for policy in [AllocPolicy::Greedy, AllocPolicy::RoundRobin] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &p| {
                b.iter(|| {
                    let schedule = allocate_pes(&plans, 64, p);
                    let mut engine =
                        EveEngine::new(64, pe_config.clone(), NocKind::MulticastTree, 5);
                    let mut buffer = GenomeBuffer::new(SramConfig::default());
                    let mut key = 10_000;
                    engine.reproduce(&genomes, &plans, &schedule, &mut buffer, &mut key)
                });
            },
        );
    }
    group.finish();

    // Print the modelled SRAM-read ablation once (criterion measures time;
    // the architectural win is reads, reported here for EXPERIMENTS.md).
    for policy in [AllocPolicy::Greedy, AllocPolicy::RoundRobin] {
        let schedule = allocate_pes(&plans, 64, policy);
        let mut engine = EveEngine::new(64, pe_config.clone(), NocKind::MulticastTree, 5);
        let mut buffer = GenomeBuffer::new(SramConfig::default());
        let mut key = 10_000;
        let report = engine.reproduce(&genomes, &plans, &schedule, &mut buffer, &mut key);
        eprintln!(
            "[ablation] {policy:?} + multicast: SRAM reads = {}",
            report.noc.sram_reads
        );
    }
}

fn bench_noc_kind(c: &mut Criterion) {
    let (genomes, config) = population(150);
    let mut species = SpeciesSet::new();
    let mut rng = XorWow::seed_from_u64_value(4);
    let plans = select_parents(&genomes, &mut species, &config, 0, &mut rng);
    let pe_config = PeConfig::from_neat(&config, 10);
    let schedule = allocate_pes(&plans, 64, AllocPolicy::Greedy);

    let mut group = c.benchmark_group("noc_kind_reproduction");
    group.sample_size(10);
    for noc in [NocKind::PointToPoint, NocKind::MulticastTree] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{noc}")),
            &noc,
            |b, &n| {
                b.iter(|| {
                    let mut engine = EveEngine::new(64, pe_config.clone(), n, 5);
                    let mut buffer = GenomeBuffer::new(SramConfig::default());
                    let mut key = 10_000;
                    engine.reproduce(&genomes, &plans, &schedule, &mut buffer, &mut key)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_alloc_policy, bench_noc_kind);
criterion_main!(benches);
