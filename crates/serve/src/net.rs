//! Hand-rolled nonblocking TCP transport (no registry I/O deps — the
//! same offline constraint as `vendor/`).
//!
//! [`serve`] runs a poll loop in the calling thread: a nonblocking
//! listener plus per-connection read/write buffers, extracting complete
//! frames with [`crate::protocol::take_frame`], dispatching them to the
//! scheduler through a [`Client`], and flushing replies opportunistically
//! (partial writes and `WouldBlock` are normal states, not errors).
//! Requests carry caller-chosen correlation ids, so a connection can
//! pipeline arbitrarily many requests; replies come back tagged and
//! possibly out of request order.
//!
//! Malformed frames never kill the server: a body that fails
//! [`crate::protocol::decode_request`] earns an error reply (correlated
//! by a best-effort header peek) and the connection keeps going, since
//! framing is still intact. Only an oversize length prefix — where
//! framing itself is lost — closes the connection, after an error reply.
//!
//! [`WireClient`] is the matching blocking client: `send` (pipeline),
//! `recv` (next reply, any id) and `call` (one request, wait for its
//! reply).

use crate::error::ServeError;
use crate::protocol::{decode_reply, encode_reply, encode_request, request_id_of, take_frame};
use crate::protocol::{decode_request, Reply, Request};
use crate::server::Client;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

const READ_CHUNK: usize = 64 * 1024;

struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Replies completed by the scheduler, tagged with their request id.
    replies: Receiver<(u32, Result<Reply, ServeError>)>,
    reply_tx: Sender<(u32, Result<Reply, ServeError>)>,
    dispatched: u64,
    completed: u64,
    /// Peer closed its write side (or the stream failed): read no more.
    eof: bool,
    /// The connection is unrecoverable (framing lost or writes failing);
    /// replies are discarded and it closes once in-flight work settles.
    broken: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        let (reply_tx, replies) = mpsc::channel();
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            replies,
            reply_tx,
            dispatched: 0,
            completed: 0,
            eof: false,
            broken: false,
        }
    }

    /// All dispatched requests have been answered and flushed.
    fn drained(&self) -> bool {
        self.wbuf.is_empty() && self.dispatched == self.completed
    }
}

/// Serves the scheduler behind `client` on `listener` until `shutdown`
/// turns true. Runs in the calling thread; spawn it on a dedicated one.
///
/// # Errors
///
/// Only listener-level failures (e.g. setting nonblocking mode) abort the
/// loop; per-connection errors close that connection.
pub fn serve(
    client: &Client,
    listener: TcpListener,
    shutdown: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<Conn> = Vec::new();
    while !shutdown.load(Ordering::Relaxed) {
        let mut progress = false;

        // Accept.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_ok() {
                        conns.push(Conn::new(stream));
                        progress = true;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }

        for conn in &mut conns {
            progress |= pump_read(conn, client);
            progress |= pump_replies(conn);
            progress |= pump_write(conn);
        }
        // A connection retires once the peer is done sending and every
        // dispatched request has settled (answered and flushed, or
        // discarded on a broken connection). In-flight callbacks hold
        // the reply channel, so a conn never drops with work pending.
        conns.retain(|c| {
            if c.broken {
                !c.drained()
            } else {
                !(c.eof && c.drained())
            }
        });

        if !progress {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    Ok(())
}

/// Reads available bytes and dispatches every complete frame. Returns
/// whether any work happened.
fn pump_read(conn: &mut Conn, client: &Client) -> bool {
    if conn.eof || conn.broken {
        return false;
    }
    let mut progress = false;
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                progress = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.eof = true;
                break;
            }
        }
    }
    loop {
        match take_frame(&mut conn.rbuf) {
            Ok(Some(body)) => {
                progress = true;
                dispatch(conn, client, &body);
            }
            Ok(None) => break,
            Err(e) => {
                // Framing lost: answer with the typed error, then close.
                conn.wbuf.extend_from_slice(&encode_reply(0, &Err(e)));
                conn.broken = true;
                break;
            }
        }
    }
    progress
}

/// Decodes one request body and hands it to the scheduler; parse
/// failures are answered immediately with a typed error reply.
fn dispatch(conn: &mut Conn, client: &Client, body: &[u8]) {
    match decode_request(body) {
        Ok((id, request)) => {
            let tx = conn.reply_tx.clone();
            let sent = client.dispatch(
                request,
                Box::new(move |result| {
                    let _ = tx.send((id, result));
                }),
            );
            match sent {
                Ok(()) => conn.dispatched += 1,
                Err(e) => conn.wbuf.extend_from_slice(&encode_reply(id, &Err(e))),
            }
        }
        Err(e) => {
            let id = request_id_of(body).unwrap_or(0);
            conn.wbuf.extend_from_slice(&encode_reply(id, &Err(e)));
        }
    }
}

/// Moves completed replies into the write buffer.
fn pump_replies(conn: &mut Conn) -> bool {
    let mut progress = false;
    while let Ok((id, result)) = conn.replies.try_recv() {
        conn.wbuf.extend_from_slice(&encode_reply(id, &result));
        conn.completed += 1;
        progress = true;
    }
    progress
}

/// Flushes as much of the write buffer as the socket accepts. A write
/// failure marks the connection broken and discards the buffer (the peer
/// is gone; nothing can be delivered).
fn pump_write(conn: &mut Conn) -> bool {
    if conn.wbuf.is_empty() {
        return false;
    }
    let mut written = 0;
    loop {
        match conn.stream.write(&conn.wbuf[written..]) {
            Ok(0) => {
                conn.eof = true;
                conn.broken = true;
                conn.wbuf.clear();
                return true;
            }
            Ok(n) => {
                written += n;
                if written == conn.wbuf.len() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.eof = true;
                conn.broken = true;
                conn.wbuf.clear();
                return true;
            }
        }
    }
    conn.wbuf.drain(..written);
    written > 0
}

/// Blocking wire client: the TCP twin of [`Client`]. Supports pipelining
/// — [`WireClient::send`] queues a request and returns its id,
/// [`WireClient::recv`] returns the next reply (any id) — plus the
/// one-shot [`WireClient::call`].
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    rbuf: Vec<u8>,
    next_id: u32,
}

impl WireClient {
    /// Connects to a server started with [`serve`].
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(WireClient {
            stream,
            rbuf: Vec::new(),
            next_id: 1,
        })
    }

    /// Sends a request without waiting, returning its correlation id.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on transport failure.
    pub fn send(&mut self, request: &Request) -> Result<u32, ServeError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        self.stream.write_all(&encode_request(id, request))?;
        Ok(id)
    }

    /// Blocks for the next reply frame, whichever request it answers.
    ///
    /// # Errors
    ///
    /// [`ServeError::Disconnected`] on EOF; [`ServeError::Io`] on
    /// transport failure; frame errors if the server sent garbage.
    pub fn recv(&mut self) -> Result<(u32, Result<Reply, ServeError>), ServeError> {
        loop {
            if let Some(body) = take_frame(&mut self.rbuf)? {
                return decode_reply(&body);
            }
            let mut chunk = [0u8; READ_CHUNK];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(ServeError::Disconnected);
            }
            self.rbuf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Sends one request and waits for **its** reply. Assumes no other
    /// requests are outstanding on this connection (replies to other ids
    /// are discarded); pipeline with [`WireClient::send`]/[`WireClient::recv`]
    /// instead when interleaving.
    ///
    /// # Errors
    ///
    /// Transport errors, or the server's typed error for this request.
    pub fn call(&mut self, request: &Request) -> Result<Reply, ServeError> {
        let id = self.send(request)?;
        loop {
            let (got, result) = self.recv()?;
            if got == id {
                return result;
            }
        }
    }
}
