//! # genesys-platforms — baseline platform models
//!
//! Trace-driven cost models for the comparison platforms of the GeneSys
//! evaluation: desktop/embedded CPUs and GPUs (Table III, Figs 9–10) and
//! the DQN-vs-EA characterization (Table II).
//!
//! All models consume a [`WorkloadProfile`] — op/byte counts *measured*
//! from actual runs of `genesys-neat` — and apply per-device constants.
//! See `DESIGN.md` §4 for why this substitution preserves the paper's
//! comparisons.
//!
//! ```
//! use genesys_platforms::{CpuModel, WorkloadProfile};
//!
//! let profile = WorkloadProfile {
//!     label: "CartPole_v0".into(),
//!     pop_size: 150,
//!     env_steps: 15_000,
//!     inference_macs: 150_000,
//!     evolution_ops: 8_000,
//!     total_genes: 2_000,
//!     max_nodes: 12,
//!     mean_nodes: 7.0,
//! };
//! let i7 = CpuModel::i7();
//! let serial = i7.inference_time_s(&profile, false);
//! let plp = i7.inference_time_s(&profile, true);
//! assert!(plp < serial);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod cpu;
pub mod dqn;
pub mod gpu;
pub mod platform;

pub use cpu::CpuModel;
pub use dqn::{table2, DqnSpec, Table2Row};
pub use gpu::{GpuModel, TransferBreakdown};
pub use platform::{
    platform_by_label, DeviceClass, ParallelismMode, PlatformSpec, WorkloadProfile, TABLE_III,
};
