//! Umbrella crate for the GeneSys reproduction.
//!
//! This crate re-exports the workspace members under one roof so that the
//! runnable examples and the integration tests can address the whole system
//! through a single dependency:
//!
//! * [`neat`] — the NEAT neuro-evolution algorithm (genes, genomes,
//!   speciation, reproduction) and the [`Session`] run surface.
//! * [`gym`] — the environment suite from Table I of the paper, plus the
//!   session workloads ([`gym::EpisodeEvaluator`],
//!   [`gym::DriftingEvaluator`]).
//! * [`scenario`] — the continual-learning scenario suite: drift
//!   schedules, task-sequence curricula with io-adapter mapping, and the
//!   continual metrics (fitness matrix, forgetting, recovery) computed by
//!   a session observer.
//! * [`soc`] — the GeneSys SoC simulator (EvE, ADAM, SRAM, NoC, energy),
//!   which doubles as a session [`Backend`], and the binary
//!   [`soc::snapshot`] checkpoint format.
//! * [`platforms`] — CPU/GPU/DQN baseline cost models (Tables II and III).
//! * [`serve`] — the multi-tenant session server: many concurrent
//!   evolution sessions over one shared executor, with snapshot-backed
//!   eviction and a length-prefixed binary wire protocol.
//!
//! # Quickstart: one run surface, bit-identical resume
//!
//! A [`Session`] ties a workload to a backend (software population or the
//! SoC model) behind one driver loop, and checkpoints restore
//! **bit-identically** — the paper's continuous-learning claim, as an API:
//!
//! ```
//! use genesys::gym::{EnvKind, EpisodeEvaluator};
//! use genesys::neat::Session;
//! use genesys::soc::{snapshot_from_bytes, snapshot_to_bytes};
//!
//! let mut config = EnvKind::CartPole.neat_config();
//! config.pop_size = 16;
//!
//! // Evolve two generations, checkpoint to bytes ("power off").
//! let mut session = Session::builder(config, 42)?
//!     .workload(EpisodeEvaluator::new(EnvKind::CartPole))
//!     .build();
//! session.run(2);
//! let checkpoint = snapshot_to_bytes(&session.export_state())?;
//!
//! // "Power on": restore and keep learning; the trajectory is the one
//! // the uninterrupted run would have taken, at any worker count.
//! let mut resumed = Session::resume(snapshot_from_bytes(&checkpoint)?)?
//!     .workload(EpisodeEvaluator::new(EnvKind::CartPole))
//!     .build();
//! session.run(2);
//! resumed.run(2);
//! assert_eq!(session.genomes(), resumed.genomes());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use genesys_core as soc;
pub use genesys_gym as gym;
pub use genesys_neat as neat;
pub use genesys_platforms as platforms;
pub use genesys_scenario as scenario;
pub use genesys_serve as serve;

pub use genesys_neat::{
    Backend, BestSummary, EvalContext, Evaluation, Evaluator, EvolutionState, GenerationEvent,
    OwnedGenerationEvent, Session, SessionBuilder, SessionError, SessionReport,
};
