//! Offline shim for the `crossbeam` APIs used by this workspace.
//!
//! Call-site compatible with crossbeam 0.8 for the subset GeneSys uses:
//!
//! * [`thread`] — scoped threads, backed by `std::thread::scope` (stable
//!   since Rust 1.63): `crossbeam::thread::scope(|scope| { scope.spawn(|_|
//!   ...); ... })` returning a `Result` that is `Ok` when no spawned thread
//!   panicked.
//! * [`deque`] — the work-stealing deque primitives of `crossbeam-deque`
//!   ([`deque::Injector`], [`deque::Worker`], [`deque::Stealer`],
//!   [`deque::Steal`]) that back the persistent evaluation executor in
//!   `genesys_neat::executor`. The shim trades the lock-free Chase–Lev
//!   algorithm for straightforward mutex-guarded ring buffers — identical
//!   semantics (LIFO owner pops, FIFO steals, batched injector steals),
//!   adequate throughput for the coarse-grained jobs GeneSys schedules
//!   (whole gym episodes), and the same call sites when swapped for the
//!   crates.io implementation.

#![deny(missing_docs)]

pub mod deque {
    //! Work-stealing deques (crossbeam-deque 0.8 `crossbeam::deque`).
    //!
    //! A [`Worker`] is an owner-side deque handle: the owning thread pushes
    //! and pops work at one end, while any number of [`Stealer`] handles
    //! take work from the opposite end. An [`Injector`] is a shared FIFO
    //! queue that batches of new work are pushed into and that workers pull
    //! from when their local deque runs dry.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// The result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty at the time of the attempt.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried. The mutex-backed
        /// shim never produces this, but callers written against
        /// crossbeam-deque handle it, so the variant is kept for
        /// call-site compatibility.
        Retry,
    }

    impl<T> Steal<T> {
        /// Converts into `Some(task)` on success.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }

        /// True when the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// True when a task was stolen.
        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        /// True when the attempt should be retried.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Flavor {
        Fifo,
        Lifo,
    }

    /// Owner-side handle of a work-stealing deque.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
        flavor: Flavor,
    }

    impl<T> Worker<T> {
        /// Creates a deque whose owner pops the most recently pushed task
        /// first (depth-first; the executor's default).
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Lifo,
            }
        }

        /// Creates a deque whose owner pops the oldest task first.
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Fifo,
            }
        }

        /// Pushes a task onto the owner end.
        pub fn push(&self, task: T) {
            self.queue.lock().expect("deque poisoned").push_back(task);
        }

        /// Pops a task from the owner end.
        pub fn pop(&self) -> Option<T> {
            let mut q = self.queue.lock().expect("deque poisoned");
            match self.flavor {
                Flavor::Lifo => q.pop_back(),
                Flavor::Fifo => q.pop_front(),
            }
        }

        /// Creates a new stealer handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// True when the deque holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("deque poisoned").is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("deque poisoned").len()
        }
    }

    /// Thief-side handle of a work-stealing deque. Cloneable; steals from
    /// the end opposite the owner's LIFO end.
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the front (the oldest task).
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("deque poisoned").pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Steals roughly half the queue into `dest`, returning one of the
        /// stolen tasks directly.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let batch = {
                let mut q = self.queue.lock().expect("deque poisoned");
                let take = q.len().div_ceil(2);
                q.drain(..take).collect::<Vec<T>>()
            };
            push_batch_and_pop(batch, dest)
        }

        /// True when the deque holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("deque poisoned").is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("deque poisoned").len()
        }
    }

    /// A shared FIFO injector queue feeding a pool of workers.
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Steals one task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Steals a batch of tasks into `dest`, returning one directly.
        /// Batch size mirrors crossbeam: half the queue, capped so one
        /// greedy worker cannot drain the injector.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            const MAX_BATCH: usize = 32;
            let batch = {
                let mut q = self.queue.lock().expect("injector poisoned");
                let take = q.len().div_ceil(2).min(MAX_BATCH);
                q.drain(..take).collect::<Vec<T>>()
            };
            push_batch_and_pop(batch, dest)
        }

        /// True when the queue holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector poisoned").len()
        }
    }

    /// Moves `batch` into `dest` keeping FIFO order, returning the first
    /// task (what the thief runs immediately).
    fn push_batch_and_pop<T>(batch: Vec<T>, dest: &Worker<T>) -> Steal<T> {
        let mut iter = batch.into_iter();
        match iter.next() {
            None => Steal::Empty,
            Some(first) => {
                for task in iter {
                    dest.push(task);
                }
                Steal::Success(first)
            }
        }
    }
}

pub mod thread {
    //! Scoped threads (crossbeam 0.8 `crossbeam::thread`).

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope for spawning threads that may borrow from the enclosing stack
    /// frame. Mirrors `crossbeam::thread::Scope`.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives a
        /// reference to the scope so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Creates a scope, runs `f` inside it, and joins every spawned thread
    /// before returning. Matches crossbeam 0.8's contract: a panic in a
    /// *spawned thread* is returned as `Err` with its payload, while a panic
    /// in the scope closure itself propagates to the caller (`std`'s scope
    /// would re-raise both).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let mut closure_panic: Option<Box<dyn std::any::Any + Send>> = None;
        let result = catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                match catch_unwind(AssertUnwindSafe(|| f(&Scope { inner: s }))) {
                    Ok(value) => Some(value),
                    Err(payload) => {
                        closure_panic = Some(payload);
                        None
                    }
                }
            })
        }));
        // `std::thread::scope` re-raises a spawned thread's panic after
        // joining, which the outer catch_unwind turns into `Err`. A closure
        // panic takes precedence, as in crossbeam.
        if let Some(payload) = closure_panic {
            std::panic::resume_unwind(payload);
        }
        match result {
            Ok(Some(value)) => Ok(value),
            Ok(None) => unreachable!("closure panic handled above"),
            Err(thread_panic) => Err(thread_panic),
        }
    }
}

#[cfg(test)]
mod deque_tests {
    use crate::deque::{Injector, Steal, Worker};
    use std::collections::HashSet;

    #[test]
    fn lifo_worker_pops_newest_first() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn fifo_worker_pops_oldest_first() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
    }

    #[test]
    fn stealer_takes_from_opposite_end() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_batch_steal_moves_half() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let local = Worker::new_lifo();
        let first = inj.steal_batch_and_pop(&local);
        assert_eq!(first, Steal::Success(0));
        assert_eq!(local.len(), 4, "half of 10 minus the popped one");
        assert_eq!(inj.len(), 5);
    }

    #[test]
    fn every_task_is_delivered_exactly_once_under_contention() {
        const N: usize = 10_000;
        const THIEVES: usize = 4;
        let inj = Injector::new();
        for i in 0..N {
            inj.push(i);
        }
        let mut all = Vec::new();
        crate::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..THIEVES {
                handles.push(scope.spawn(|_| {
                    let local = Worker::new_lifo();
                    let mut seen = Vec::new();
                    loop {
                        let task = local.pop().or_else(|| loop {
                            match inj.steal_batch_and_pop(&local) {
                                Steal::Success(t) => break Some(t),
                                Steal::Empty => break None,
                                Steal::Retry => continue,
                            }
                        });
                        match task {
                            Some(t) => seen.push(t),
                            None => break,
                        }
                    }
                    seen
                }));
            }
            for h in handles {
                all.extend(h.join().expect("thief panicked"));
            }
        })
        .expect("scope failed");
        assert_eq!(all.len(), N, "no task lost or duplicated");
        let unique: HashSet<usize> = all.into_iter().collect();
        assert_eq!(unique.len(), N);
    }

    #[test]
    fn steal_success_converts_to_option() {
        assert_eq!(Steal::Success(7).success(), Some(7));
        assert_eq!(Steal::<i32>::Empty.success(), None);
        assert!(Steal::<i32>::Retry.is_retry());
    }

    #[test]
    fn empty_len_reporting() {
        let w: Worker<u8> = Worker::new_lifo();
        let s = w.stealer();
        let inj: Injector<u8> = Injector::new();
        assert!(w.is_empty() && s.is_empty() && inj.is_empty());
        w.push(1);
        inj.push(2);
        assert_eq!((w.len(), s.len(), inj.len()), (1, 1, 1));
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        let result = crate::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn scoped_threads_can_write_disjoint_chunks() {
        let mut data = [0u32; 8];
        crate::thread::scope(|scope| {
            for chunk in data.chunks_mut(2) {
                scope.spawn(move |_| {
                    for v in chunk {
                        *v += 1;
                    }
                });
            }
        })
        .unwrap();
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn closure_panic_propagates_like_crossbeam() {
        let result = std::panic::catch_unwind(|| {
            let _ = crate::thread::scope(|_| panic!("in closure"));
        });
        assert!(result.is_err(), "closure panics must propagate, not Err");
    }

    #[test]
    fn panics_surface_as_err() {
        let result = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
