//! Speciation and fitness sharing (Section II-D of the paper).
//!
//! "Speciation works by grouping a few individuals within the population
//! with a particular niche. Within a species, the fitness of the younger
//! individuals is artificially increased so that they are not obliterated
//! when pitted against older, fitter individuals." Genomes are clustered by
//! compatibility distance against a per-species representative; fitness
//! sharing normalizes member fitness within each species before offspring
//! are allocated.
//!
//! # The two-tier pruned scan
//!
//! The expensive part of speciation is comparing every genome against the
//! retained species representatives — naively `O(population × species)`
//! exact gene-stream merges. The scan here skips most of them without
//! changing a single assignment bit:
//!
//! 1. **Signature lower bound.** Every genome carries a
//!    [`GenomeSignature`] — gene counts, 128-bit innovation bitsketches
//!    and quantized weight moments, maintained incrementally by every
//!    mutation/crossover/clone. [`GenomeSignature::lower_bound`] turns a
//!    pair of signatures into a provable lower bound on the exact
//!    compatibility distance in `O(1)`. A candidate representative is
//!    skipped only when its bound shows it can neither match (bound ≥
//!    compatibility threshold) nor improve on the best distance already
//!    in hand — so every skipped comparison provably could not have
//!    changed the outcome.
//! 2. **Parent-species hints.** A child that was just produced from
//!    parents of species `h` very likely still belongs to `h`.
//!    [`SpeciesSet::speciate_with_hints`] accepts such hints and
//!    verifies each with one exact check against `h`'s representative,
//!    then only has to prove no *earlier* candidate matches — a scan in
//!    which the lower bound rules out nearly every candidate.
//!
//! Unpruned candidates are compared through a columnar representative
//! pack ([`RepColumns`]): up to [`REP_BLOCK`] representatives' gene
//! clusters merged into one key-sorted stream, so one pass over the
//! genome scores the whole block with the same arithmetic, in the same
//! order, as the scalar kernel. Candidate blocks grow geometrically
//! (1, 2, 4, … [`REP_BLOCK`]) so genomes that match their first
//! candidate never pay for a full pack.
//!
//! Per-genome scan rows are computed as index-keyed jobs on the
//! persistent [`Executor`]; the actual cluster **assignment is a
//! deterministic serial fold** over the precomputed rows. Rows are pure
//! functions of `(genome, representatives)` and pruning decisions are
//! bit-exact by construction, so the clustering is bit-identical at any
//! worker count — including the serial path ([`SpeciesSet::speciate`])
//! and the exact reference path ([`NeatConfig::speciate_exact`] or the
//! `GENESYS_SPECIATE_EXACT` environment variable), which computes every
//! distance scalar-and-unpruned. Populations under
//! `BLOCKED_SCAN_MIN_POP` (128) take the same scalar scan by default — at
//! that scale the blocked machinery costs more than the distances it
//! saves, and the rows are bit-identical either way. See
//! `docs/speciation.md` for the lower-bound proof sketch.
//!
//! # Representative cap
//!
//! At megapopulation scale the species count itself can grow without
//! bound, so every genome is compared against at most
//! [`NeatConfig::species_representative_cap`] representatives (the first
//! `K` species in creation order), bounding the fold at `O(n·K)`. Once the
//! cap is reached no new species are founded; an unmatched genome joins
//! the *nearest* capped candidate instead (ties break toward the earliest
//! species via [`f64::total_cmp`]). Runs whose species count stays below
//! the cap are bit-identical to the uncapped algorithm; see the config
//! field's docs for the determinism trade.

use crate::arena::{GenomeView, PopulationArena, RepColumns, REP_BLOCK};
use crate::config::NeatConfig;
use crate::executor::Executor;
use crate::genome::{Genome, GenomeSignature};
use std::fmt;
use std::sync::OnceLock;

/// True when the `GENESYS_SPECIATE_EXACT` environment variable forces the
/// exact (unpruned) speciation path. Read once per process.
fn env_speciate_exact() -> bool {
    static EXACT: OnceLock<bool> = OnceLock::new();
    *EXACT.get_or_init(|| std::env::var("GENESYS_SPECIATE_EXACT").is_ok_and(|v| v != "0"))
}

/// Identifier of a species.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpeciesId(pub u32);

impl fmt::Display for SpeciesId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One species: a niche of structurally similar genomes.
#[derive(Debug, Clone, PartialEq)]
pub struct Species {
    /// Identifier (stable across generations).
    pub id: SpeciesId,
    /// Representative genome used for distance tests.
    pub representative: Genome,
    /// Member indices into the current generation's genome vector.
    pub members: Vec<usize>,
    /// Generation at which the species appeared.
    pub created_at: usize,
    /// Last generation in which the species' best fitness improved.
    pub last_improved: usize,
    /// Best raw fitness ever seen in this species.
    pub best_fitness: f64,
    /// Fitness-shared (adjusted) fitness for the current generation.
    pub adjusted_fitness: f64,
}

impl Species {
    /// Mean raw fitness of current members.
    pub fn mean_fitness(&self, genomes: &[Genome]) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .members
            .iter()
            .map(|&i| genomes[i].fitness().unwrap_or(0.0))
            .sum();
        sum / self.members.len() as f64
    }

    /// Best member index (by raw fitness) in the current generation.
    /// NaN fitness sorts above every finite value under [`f64::total_cmp`],
    /// so a poisoned evaluation degrades deterministically instead of
    /// aborting.
    pub fn champion(&self, genomes: &[Genome]) -> Option<usize> {
        self.members.iter().copied().max_by(|&a, &b| {
            let fa = genomes[a].fitness().unwrap_or(f64::NEG_INFINITY);
            let fb = genomes[b].fitness().unwrap_or(f64::NEG_INFINITY);
            fa.total_cmp(&fb)
        })
    }
}

/// Per-call counters of the two-tier speciation scan — how many exact
/// distances were computed, how many candidates the signature lower bound
/// pruned, and how many genomes the parent-species hint short-circuited.
/// Reset at the start of every `speciate*` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpeciateScanStats {
    /// Exact merge-join distances computed.
    pub exact: u64,
    /// Candidate comparisons skipped by the signature lower bound.
    pub pruned: u64,
    /// Genomes placed directly into their hinted parent species.
    pub hint_hits: u64,
}

/// How many lanes of a block the signature lower bound probes before an
/// all-miss run writes the block off (the adaptive skip in `scan_row`).
/// Pruning any *subset* of prunable lanes is sound, so this is purely a
/// cost knob: hostile populations (nothing prunable) pay for at most this
/// many bounds per block, converged ones keep pruning.
const LB_PROBE_LANES: usize = 4;

/// Populations below this use the plain scalar early-exit scan instead of
/// the blocked columnar one. The blocked scan's per-call costs — packing
/// representatives into [`RepColumns`], zeroing per-block lane arrays,
/// probing lower bounds — amortize over the population; under roughly a
/// hundred genomes they exceed the distances they save (measured ~2×
/// slower at pop 64, break-even near 128, 3×+ faster at 10⁴). Both scans
/// produce bit-identical rows, so the cutoff is purely a cost choice.
const BLOCKED_SCAN_MIN_POP: usize = 128;

/// Debug-only soundness check: the lower bound must never exceed the exact
/// distance. NaN distances compare unordered to every bound, which is fine —
/// the poison guard makes the bound `-inf` there, so nothing is pruned.
fn lb_sound(lb: f64, d: f64) -> bool {
    lb.partial_cmp(&d) != Some(std::cmp::Ordering::Greater)
}

/// Per-genome result of the candidate scan: everything the serial
/// assignment fold needs, computed as a **pure function** of
/// `(genome, fixed candidate representatives, hint)` so rows can be
/// produced serially or on any worker count with bit-identical content.
#[derive(Debug, Clone, Copy)]
struct ScanRow {
    /// First candidate (creation order) under the threshold; `u32::MAX`
    /// when no candidate matched.
    matched: u32,
    /// Distance to the matched candidate's representative.
    matched_d: f64,
    /// Argmin over the computed candidates (`u32::MAX` when none) — ties
    /// resolve to the earliest index, NaN via `total_cmp`.
    nearest_s: u32,
    /// Distance to the nearest candidate's representative.
    nearest_d: f64,
    /// Exact distances this row computed.
    exact: u32,
    /// Candidates the lower bound pruned.
    pruned: u32,
    /// Whether the parent-species hint placed this genome.
    hint_hit: bool,
}

impl Default for ScanRow {
    fn default() -> Self {
        ScanRow {
            matched: u32::MAX,
            matched_d: f64::INFINITY,
            nearest_s: u32::MAX,
            nearest_d: f64::INFINITY,
            exact: 0,
            pruned: 0,
            hint_hit: false,
        }
    }
}

/// Shared read-only context of one `speciate` call's row computation.
struct ScanCtx<'a> {
    genomes: &'a [Genome],
    config: &'a NeatConfig,
    candidates: usize,
    /// Compute every candidate distance with the plain scalar early-exit
    /// loop — no blocks, no lower bounds, no hints. Set in exact mode
    /// ([`NeatConfig::speciate_exact`], the reference path) and for
    /// populations under [`BLOCKED_SCAN_MIN_POP`], where the blocked
    /// machinery's per-call cost outweighs the distances it saves. Both
    /// paths produce bit-identical rows, so this is purely a cost choice.
    scalar: bool,
    rep_arena: &'a PopulationArena,
    rep_sigs: &'a [GenomeSignature],
    blocks: &'a [RepColumns],
    block_starts: &'a [usize],
    hints: Option<&'a [Option<SpeciesId>]>,
    hint_index: &'a [(SpeciesId, u32)],
}

impl ScanCtx<'_> {
    /// Scans genome `g_idx` against the fixed candidate representatives.
    ///
    /// Pure in `(genome, candidate set, hint)`: the same row is produced
    /// on the serial path and on every worker count.
    ///
    /// Correctness of the two shortcuts (`docs/speciation.md` has the full
    /// argument):
    ///
    /// * **Pruning**: candidate `s` is skipped only when its lower bound
    ///   satisfies both `lb >= threshold` (so `d_s >= threshold` — `s`
    ///   cannot be the first match) and `lb >= B` where `B` is the best
    ///   distance frozen at the block boundary (so `d_s >= B >=` the final
    ///   nearest distance, and on a tie the holder of `B` has the smaller
    ///   index — `s` cannot be the argmin either).
    /// * **Hint**: with `d_hint < threshold` a match is guaranteed at the
    ///   hint or earlier, so the nearest-candidate tracking is moot and
    ///   earlier candidates can be skipped on `lb >= threshold` alone.
    fn scan_row(&self, g_idx: usize) -> ScanRow {
        let mut row = ScanRow::default();
        if self.candidates == 0 {
            return row;
        }
        let genome = &self.genomes[g_idx];
        let view = GenomeView::of(genome);
        let threshold = self.config.compatibility_threshold;

        if self.scalar {
            for s in 0..self.candidates {
                let d = view.distance(self.rep_arena.view(s), self.config);
                row.exact += 1;
                if d < threshold {
                    row.matched = s as u32;
                    row.matched_d = d;
                    return row;
                }
                if row.nearest_s == u32::MAX || d.total_cmp(&row.nearest_d).is_lt() {
                    row.nearest_s = s as u32;
                    row.nearest_d = d;
                }
            }
            return row;
        }

        let sig = genome.signature();

        // Hint fast path: check the parent species' representative first;
        // on a hit, only candidates *before* it that the lower bound
        // cannot exclude need an exact check.
        if let Some(hints) = self.hints {
            if let Some(hint_id) = hints[g_idx] {
                if let Ok(pos) = self
                    .hint_index
                    .binary_search_by(|&(id, _)| id.cmp(&hint_id))
                {
                    let h = self.hint_index[pos].1 as usize;
                    let d_h = view.distance(self.rep_arena.view(h), self.config);
                    row.exact += 1;
                    if d_h < threshold {
                        for s in 0..h {
                            let lb =
                                GenomeSignature::lower_bound(sig, &self.rep_sigs[s], self.config);
                            if lb >= threshold {
                                row.pruned += 1;
                                continue;
                            }
                            let d = view.distance(self.rep_arena.view(s), self.config);
                            row.exact += 1;
                            debug_assert!(lb_sound(lb, d), "lower bound {lb} above exact {d}");
                            if d < threshold {
                                row.matched = s as u32;
                                row.matched_d = d;
                                return row;
                            }
                        }
                        row.matched = h as u32;
                        row.matched_d = d_h;
                        row.hint_hit = true;
                        return row;
                    }
                    // The hinted representative drifted out of range: fall
                    // through to the full scan (recomputing its lane is
                    // bit-identical, so the row stays hint-independent).
                }
            }
        }

        // Blocked columnar scan with lower-bound pruning.
        let mut out = [0.0f64; REP_BLOCK];
        let mut lbs = [f64::NEG_INFINITY; REP_BLOCK];
        // Pruning decisions never change the row (a skipped candidate is
        // provably neither the first match nor the argmin), so *when* to
        // try pruning is a free heuristic: after a full block of bounds
        // fires zero prunes, this genome's signature is too loose against
        // this candidate set and the remaining blocks skip the bound
        // computation. Depends only on (genome, candidate set) — still a
        // pure row, identical on every worker count.
        let mut lb_live = true;
        for (b, block) in self.blocks.iter().enumerate() {
            let start = self.block_starts[b];
            let lanes = block.lanes();
            let mut active: u16 = if lanes >= 16 {
                u16::MAX
            } else {
                (1u16 << lanes) - 1
            };
            // No bound can fire until a first distance exists (B = +inf
            // would never beat a finite lb), so block 0 skips the lb
            // computation entirely.
            lbs[..lanes].fill(f64::NEG_INFINITY);
            if lb_live && row.nearest_s != u32::MAX {
                let frozen = row.nearest_d;
                let mut fired = false;
                for (lane, lb_slot) in lbs.iter_mut().enumerate().take(lanes) {
                    // Probing is free to stop anywhere: every un-probed
                    // lane just stays active (lb = -inf never prunes). If
                    // the first few bounds all fail to fire, the block is
                    // written off without paying for the rest.
                    if lane == LB_PROBE_LANES && !fired {
                        break;
                    }
                    let lb = GenomeSignature::lower_bound(
                        sig,
                        &self.rep_sigs[start + lane],
                        self.config,
                    );
                    *lb_slot = lb;
                    if lb >= threshold && lb >= frozen {
                        active &= !(1u16 << lane);
                        row.pruned += 1;
                        fired = true;
                    }
                }
                lb_live = fired;
                if active == 0 {
                    continue;
                }
            }
            block.scan(view, active, self.config, &mut out);
            for lane in 0..lanes {
                if active & (1u16 << lane) == 0 {
                    continue;
                }
                let d = out[lane];
                row.exact += 1;
                debug_assert!(
                    lb_sound(lbs[lane], d),
                    "lower bound {} above exact {d}",
                    lbs[lane]
                );
                let s = (start + lane) as u32;
                if d < threshold {
                    row.matched = s;
                    row.matched_d = d;
                    return row;
                }
                if row.nearest_s == u32::MAX || d.total_cmp(&row.nearest_d).is_lt() {
                    row.nearest_s = s;
                    row.nearest_d = d;
                }
            }
        }
        row
    }
}

/// The set of all living species, with the clustering and stagnation logic.
#[derive(Debug, Clone, Default)]
pub struct SpeciesSet {
    species: Vec<Species>,
    next_id: u32,
    /// Per-genome scan rows reused across generations.
    rows: Vec<ScanRow>,
    /// Flat arena the candidate representatives are packed into each
    /// generation, so distance scans walk contiguous gene memory instead
    /// of one heap allocation per species (buffers reused across calls).
    rep_arena: PopulationArena,
    /// Candidate representatives' signatures, packed alongside the arena.
    rep_sigs: Vec<GenomeSignature>,
    /// Columnar representative blocks (geometric sizes 1, 2, 4, …,
    /// [`REP_BLOCK`]) for the batched one-genome-versus-K distance scan.
    blocks: Vec<RepColumns>,
    /// First candidate index of each block.
    block_starts: Vec<usize>,
    /// Sorted `(species id, candidate index)` pairs for hint resolution.
    hint_index: Vec<(SpeciesId, u32)>,
    /// Every genome's distance to its assigned species' *old*
    /// representative, captured during the fold so representative
    /// re-election needs no further distance computations.
    assigned_dist: Vec<f64>,
    /// Counters of the most recent `speciate*` call.
    scan_stats: SpeciateScanStats,
}

impl SpeciesSet {
    /// Creates an empty species set.
    pub fn new() -> Self {
        SpeciesSet::default()
    }

    /// Reassembles a species set from checkpointed parts: the living
    /// species (creation order) and the id counter. The inverse of
    /// cloning out [`SpeciesSet::iter`] plus [`SpeciesSet::next_species_id`].
    pub fn from_parts(species: Vec<Species>, next_id: u32) -> Self {
        SpeciesSet {
            species,
            next_id,
            ..SpeciesSet::default()
        }
    }

    /// Counters of the most recent `speciate*` call (reset per call).
    pub fn scan_stats(&self) -> SpeciateScanStats {
        self.scan_stats
    }

    /// The id the next founded species will receive — part of the
    /// checkpoint state (ids must not be reused after a resume).
    pub fn next_species_id(&self) -> u32 {
        self.next_id
    }

    /// Living species, in creation order.
    pub fn iter(&self) -> impl Iterator<Item = &Species> {
        self.species.iter()
    }

    /// Number of living species.
    pub fn len(&self) -> usize {
        self.species.len()
    }

    /// True when no species exist (before the first [`SpeciesSet::speciate`]).
    pub fn is_empty(&self) -> bool {
        self.species.is_empty()
    }

    /// Clusters `genomes` into species by compatibility distance, serially.
    /// Equivalent to [`SpeciesSet::speciate_on`] with no pool.
    pub fn speciate(&mut self, genomes: &[Genome], config: &NeatConfig, generation: usize) {
        self.speciate_on(genomes, config, generation, None);
    }

    /// Clusters `genomes` into species by compatibility distance, with the
    /// per-genome candidate scans computed on `pool` when given (see the
    /// module docs for the determinism argument). Equivalent to
    /// [`SpeciesSet::speciate_with_hints`] with no hints.
    pub fn speciate_on(
        &mut self,
        genomes: &[Genome],
        config: &NeatConfig,
        generation: usize,
        pool: Option<&Executor>,
    ) {
        self.speciate_with_hints(genomes, config, generation, pool, None);
    }

    /// Clusters `genomes` into species by compatibility distance.
    ///
    /// Each genome joins the first existing species whose representative is
    /// within [`NeatConfig::compatibility_threshold`]; otherwise it founds a
    /// new species. Afterwards each non-empty species re-elects the member
    /// closest to the old representative as its new representative
    /// (`neat-python` behaviour); empty species are dropped.
    ///
    /// `hints` optionally carries each genome's parent species id (from the
    /// reproduction plan): a hinted genome is first checked against its
    /// parent's retained representative, and earlier candidates are
    /// examined only when the signature lower bound cannot rule them out —
    /// a bit-neutral short-circuit (the hint never changes which species
    /// wins, only how many exact distances finding it costs). A hints
    /// slice of the wrong length is ignored; hints are also ignored in
    /// exact mode (see [`NeatConfig::speciate_exact`]) and for
    /// populations under the blocked-scan cutoff (`BLOCKED_SCAN_MIN_POP`),
    /// which take the scalar scan the hints exist to avoid.
    pub fn speciate_with_hints(
        &mut self,
        genomes: &[Genome],
        config: &NeatConfig,
        generation: usize,
        pool: Option<&Executor>,
        hints: Option<&[Option<SpeciesId>]>,
    ) {
        for s in &mut self.species {
            s.members.clear();
        }
        let existing = self.species.len();
        let cap = config.species_representative_cap.max(1);
        // Only the first `cap` species (creation order) are assignment
        // candidates; the scan never examines more than that.
        let candidates = existing.min(cap);
        let exact_mode = config.speciate_exact || env_speciate_exact();
        // Small populations take the scalar scan (same rows, cheaper at
        // this scale — see `BLOCKED_SCAN_MIN_POP`); hints only exist to
        // save blocked-scan work, so they are dropped with it.
        let scalar = exact_mode || genomes.len() < BLOCKED_SCAN_MIN_POP;
        let hints = if scalar { None } else { hints };
        let hints = hints.filter(|h| h.len() == genomes.len());
        self.scan_stats = SpeciateScanStats::default();

        // Pack the candidate representatives (and, for the blocked scan,
        // their signatures) into the flat arena so every scan streams
        // contiguous gene memory.
        self.rep_arena.pack(
            self.species
                .iter()
                .take(candidates)
                .map(|s| &s.representative),
        );
        self.rep_sigs.clear();
        if !scalar {
            self.rep_sigs.extend(
                self.species
                    .iter()
                    .take(candidates)
                    .map(|s| *s.representative.signature()),
            );
        }

        // Columnar blocks over the candidates, geometric sizes
        // 1, 2, 4, …, REP_BLOCK: early blocks stay cheap for genomes that
        // match immediately, late blocks amortize the merge-join across a
        // full REP_BLOCK lanes. Built once per call, shared by all rows.
        self.block_starts.clear();
        if !scalar {
            let mut start = 0usize;
            let mut size = 1usize;
            let mut b = 0usize;
            while start < candidates {
                let lanes = size.min(REP_BLOCK).min(candidates - start);
                if self.blocks.len() == b {
                    self.blocks.push(RepColumns::new());
                }
                let views: Vec<GenomeView<'_>> = (start..start + lanes)
                    .map(|s| self.rep_arena.view(s))
                    .collect();
                self.blocks[b].build(&views);
                self.block_starts.push(start);
                start += lanes;
                size = (size * 2).min(REP_BLOCK);
                b += 1;
            }
            self.blocks.truncate(b);
        } else {
            self.blocks.clear();
        }

        // Hint resolution map: species id → candidate index, sorted for
        // binary search (ids are unique).
        self.hint_index.clear();
        if hints.is_some() {
            self.hint_index.extend(
                self.species
                    .iter()
                    .take(candidates)
                    .enumerate()
                    .map(|(i, s)| (s.id, i as u32)),
            );
            self.hint_index.sort_unstable_by_key(|&(id, _)| id);
        }

        // Phase 1: one scan row per genome — a pure function of the genome
        // and the fixed candidate set, so serial and parallel production
        // are bit-identical (index-keyed jobs on the pool; see module
        // docs). Rows keep the lazy first-match early exit at block
        // granularity and prune candidates via the signature lower bound.
        let ctx = ScanCtx {
            genomes,
            config,
            candidates,
            scalar,
            rep_arena: &self.rep_arena,
            rep_sigs: &self.rep_sigs,
            blocks: &self.blocks,
            block_starts: &self.block_starts,
            hints,
            hint_index: &self.hint_index,
        };
        self.rows.clear();
        self.rows.resize(genomes.len(), ScanRow::default());
        match pool {
            Some(pool) if candidates > 0 => {
                pool.for_each_chunk(&mut self.rows, 1, |g, row| {
                    row[0] = ctx.scan_row(g);
                });
            }
            _ => {
                for (g, row) in self.rows.iter_mut().enumerate() {
                    *row = ctx.scan_row(g);
                }
            }
        }
        for row in &self.rows {
            self.scan_stats.exact += u64::from(row.exact);
            self.scan_stats.pruned += u64::from(row.pruned);
            self.scan_stats.hint_hits += u64::from(row.hint_hit);
        }

        // Phase 2 (serial fold): deterministic assignment in genome order —
        // first candidate species (in creation order) under the threshold
        // wins, exactly as the lazy serial scan this replaced. At most
        // `cap` candidates are ever scanned; past the cap an unmatched
        // genome joins the nearest candidate instead of founding. Species
        // founded *during* the fold are scanned serially here (they cannot
        // appear in the precomputed rows; their indices all exceed the
        // row candidates', so seeding `nearest` from the row preserves the
        // earliest-index tie-break). Every member's distance to its
        // assigned species' old representative is captured so phase 3
        // below re-elects representatives without recomputing anything.
        let cd = config.compatibility_disjoint_coefficient;
        let cw = config.compatibility_weight_coefficient;
        let coeffs_finite = cd.is_finite() && cw.is_finite();
        self.assigned_dist.clear();
        self.assigned_dist.resize(genomes.len(), 0.0);
        for (idx, genome) in genomes.iter().enumerate() {
            let row = self.rows[idx];
            if row.matched != u32::MAX {
                self.species[row.matched as usize].members.push(idx);
                self.assigned_dist[idx] = row.matched_d;
                continue;
            }
            let mut placed = false;
            let mut nearest: Option<(usize, f64)> =
                (row.nearest_s != u32::MAX).then_some((row.nearest_s as usize, row.nearest_d));
            let scan = self.species.len().min(cap);
            for s in candidates..scan {
                let d = genome.distance(&self.species[s].representative, config);
                self.scan_stats.exact += 1;
                if d < config.compatibility_threshold {
                    self.species[s].members.push(idx);
                    self.assigned_dist[idx] = d;
                    placed = true;
                    break;
                }
                // Strict `<` keeps the earliest species on ties; total_cmp
                // keeps NaN distances from poisoning the argmin.
                if nearest.is_none_or(|(_, best)| d.total_cmp(&best).is_lt()) {
                    nearest = Some((s, d));
                }
            }
            if placed {
                continue;
            }
            if self.species.len() < cap {
                let id = SpeciesId(self.next_id);
                self.next_id += 1;
                // A founder's distance to itself is exactly +0.0 whenever
                // everything involved is finite; otherwise (NaN/inf
                // attributes, non-finite coefficients) compute what the
                // re-election pass would have seen.
                self.assigned_dist[idx] = if coeffs_finite && !genome.signature().has_nonfinite() {
                    0.0
                } else {
                    genome.distance(genome, config)
                };
                self.species.push(Species {
                    id,
                    representative: genome.clone(),
                    members: vec![idx],
                    created_at: generation,
                    last_improved: generation,
                    best_fitness: f64::NEG_INFINITY,
                    adjusted_fitness: 0.0,
                });
            } else {
                let (s, d) = nearest.expect("cap >= 1 so at least one candidate was scanned");
                self.species[s].members.push(idx);
                self.assigned_dist[idx] = d;
            }
        }

        // Phase 3: re-elect representatives from the captured
        // member→old-representative distances. Ties and NaN break
        // deterministically via total_cmp (earliest member wins a tie,
        // exactly as the recomputing implementation this replaced).
        let assigned = &self.assigned_dist;
        for sp in &mut self.species {
            if sp.members.is_empty() {
                continue; // dropped below
            }
            let closest = sp
                .members
                .iter()
                .copied()
                .min_by(|&a, &b| assigned[a].total_cmp(&assigned[b]))
                .expect("non-empty species");
            // clone_from reuses the old representative's gene buffers.
            sp.representative.clone_from(&genomes[closest]);
        }
        self.species.retain(|s| !s.members.is_empty());
    }

    /// Applies fitness sharing: every species' `adjusted_fitness` becomes
    /// its members' mean fitness normalized by the population's fitness
    /// range — so young, small species stay competitive.
    ///
    /// Returns `(min, max)` raw population fitness.
    pub fn share_fitness(&mut self, genomes: &[Genome]) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for g in genomes {
            let f = g.fitness().unwrap_or(0.0);
            lo = lo.min(f);
            hi = hi.max(f);
        }
        let range = (hi - lo).max(1e-9);
        for s in &mut self.species {
            let mean = s.mean_fitness(genomes);
            s.adjusted_fitness = (mean - lo) / range;
        }
        (lo, hi)
    }

    /// Updates stagnation bookkeeping and removes species that have not
    /// improved for [`NeatConfig::max_stagnation`] generations, always
    /// keeping the best [`NeatConfig::species_elitism`] species alive.
    ///
    /// Returns the ids of removed species.
    pub fn remove_stagnant(
        &mut self,
        genomes: &[Genome],
        config: &NeatConfig,
        generation: usize,
    ) -> Vec<SpeciesId> {
        for s in &mut self.species {
            let best_now = s
                .members
                .iter()
                .map(|&i| genomes[i].fitness().unwrap_or(f64::NEG_INFINITY))
                .fold(f64::NEG_INFINITY, f64::max);
            if best_now > s.best_fitness {
                s.best_fitness = best_now;
                s.last_improved = generation;
            }
        }
        // Rank species by best fitness; protect the top `species_elitism`.
        let mut ranked: Vec<(f64, SpeciesId)> = self
            .species
            .iter()
            .map(|s| (s.best_fitness, s.id))
            .collect();
        ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
        let protected: Vec<SpeciesId> = ranked
            .iter()
            .take(config.species_elitism)
            .map(|&(_, id)| id)
            .collect();
        let mut removed = Vec::new();
        self.species.retain(|s| {
            let stagnant = generation.saturating_sub(s.last_improved) > config.max_stagnation;
            if stagnant && !protected.contains(&s.id) {
                removed.push(s.id);
                false
            } else {
                true
            }
        });
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::innovation::InnovationTracker;
    use crate::rng::XorWow;
    use crate::trace::OpCounters;

    fn cfg() -> NeatConfig {
        NeatConfig::builder(3, 1).build().unwrap()
    }

    fn diverged_population(n: usize) -> (Vec<Genome>, NeatConfig) {
        let c = cfg();
        let mut r = XorWow::seed_from_u64_value(77);
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut genomes = Vec::new();
        for k in 0..n {
            let mut g = Genome::initial(k as u64, &c, &mut r);
            // Diverge half the population structurally.
            if k % 2 == 1 {
                let mut ops = OpCounters::new();
                for _ in 0..6 {
                    g.mutate_add_node(&mut innov, &mut r, &mut ops);
                    g.mutate_attributes(&c, &mut r, &mut ops);
                }
            }
            g.set_fitness(k as f64);
            genomes.push(g);
        }
        (genomes, c)
    }

    #[test]
    fn identical_genomes_form_one_species() {
        let c = cfg();
        let mut r = XorWow::seed_from_u64_value(1);
        let genomes: Vec<Genome> = (0..10)
            .map(|k| {
                let mut g = Genome::initial(k, &c, &mut r);
                g.set_fitness(1.0);
                g
            })
            .collect();
        let mut set = SpeciesSet::new();
        set.speciate(&genomes, &c, 0);
        assert_eq!(set.len(), 1);
        assert_eq!(set.iter().next().unwrap().members.len(), 10);
    }

    #[test]
    fn diverged_genomes_split_into_species() {
        let (genomes, c) = diverged_population(10);
        let mut set = SpeciesSet::new();
        set.speciate(&genomes, &c, 0);
        assert!(set.len() >= 2, "structural divergence should split species");
        let total: usize = set.iter().map(|s| s.members.len()).sum();
        assert_eq!(total, 10, "every genome belongs to exactly one species");
    }

    #[test]
    fn fitness_sharing_normalizes_to_unit_range() {
        let (genomes, c) = diverged_population(10);
        let mut set = SpeciesSet::new();
        set.speciate(&genomes, &c, 0);
        let (lo, hi) = set.share_fitness(&genomes);
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 9.0);
        for s in set.iter() {
            assert!((0.0..=1.0).contains(&s.adjusted_fitness));
        }
    }

    #[test]
    fn stagnant_species_removed_but_elite_protected() {
        let (mut genomes, mut c) = diverged_population(10);
        c.max_stagnation = 3;
        c.species_elitism = 1;
        let mut set = SpeciesSet::new();
        set.speciate(&genomes, &c, 0);
        let initial = set.len();
        assert!(initial >= 2);
        // Freeze fitness; advance generations until stagnation triggers.
        for g in &mut genomes {
            g.set_fitness(1.0);
        }
        let mut removed_total = 0;
        for generation in 0..10 {
            removed_total += set.remove_stagnant(&genomes, &c, generation).len();
        }
        assert!(removed_total >= 1, "stagnant species should be removed");
        assert!(!set.is_empty(), "species elitism keeps at least one alive");
    }

    #[test]
    fn parallel_speciation_matches_serial_exactly() {
        let (genomes, c) = diverged_population(24);
        let mut serial = SpeciesSet::new();
        serial.speciate(&genomes, &c, 0);
        for workers in [1usize, 4, 8] {
            let pool = Executor::new(workers);
            let mut parallel = SpeciesSet::new();
            parallel.speciate_on(&genomes, &c, 0, Some(&pool));
            assert_eq!(serial.len(), parallel.len(), "workers={workers}");
            for (a, b) in serial.iter().zip(parallel.iter()) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.members, b.members);
                assert_eq!(a.representative, b.representative);
            }
        }
    }

    #[test]
    fn respeciation_reuses_the_distance_matrix_path() {
        // Second call exercises `existing > 0` (matrix rows) on both paths.
        let (genomes, c) = diverged_population(16);
        let pool = Executor::new(4);
        let mut serial = SpeciesSet::new();
        let mut parallel = SpeciesSet::new();
        for generation in 0..3 {
            serial.speciate(&genomes, &c, generation);
            parallel.speciate_on(&genomes, &c, generation, Some(&pool));
        }
        let a: Vec<_> = serial.iter().map(|s| (s.id, s.members.clone())).collect();
        let b: Vec<_> = parallel.iter().map(|s| (s.id, s.members.clone())).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn representative_cap_bounds_species_and_covers_population() {
        let (genomes, mut c) = diverged_population(24);
        c.compatibility_threshold = 0.10; // force many would-be species
        c.species_representative_cap = 3;
        let mut set = SpeciesSet::new();
        set.speciate(&genomes, &c, 0);
        assert!(set.len() <= 3, "cap must bound the species count");
        let total: usize = set.iter().map(|s| s.members.len()).sum();
        assert_eq!(total, 24, "overflow genomes join the nearest candidate");
    }

    #[test]
    fn capped_speciation_is_bit_identical_below_the_cap() {
        // The default cap (64) is far above the species this population
        // forms, so capped and effectively-uncapped runs must agree.
        let (genomes, c) = diverged_population(16);
        let mut huge = c.clone();
        huge.species_representative_cap = usize::MAX;
        let mut capped = SpeciesSet::new();
        let mut uncapped = SpeciesSet::new();
        for generation in 0..3 {
            capped.speciate(&genomes, &c, generation);
            uncapped.speciate(&genomes, &huge, generation);
        }
        assert!(capped.len() < c.species_representative_cap);
        let a: Vec<_> = capped.iter().map(|s| (s.id, s.members.clone())).collect();
        let b: Vec<_> = uncapped.iter().map(|s| (s.id, s.members.clone())).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn capped_parallel_speciation_matches_capped_serial() {
        let (genomes, mut c) = diverged_population(24);
        c.compatibility_threshold = 0.10;
        c.species_representative_cap = 2;
        let mut serial = SpeciesSet::new();
        serial.speciate(&genomes, &c, 0);
        serial.speciate(&genomes, &c, 1); // matrix path has columns now
        for workers in [1usize, 4, 8] {
            let pool = Executor::new(workers);
            let mut parallel = SpeciesSet::new();
            parallel.speciate_on(&genomes, &c, 0, Some(&pool));
            parallel.speciate_on(&genomes, &c, 1, Some(&pool));
            assert_eq!(serial.len(), parallel.len(), "workers={workers}");
            for (a, b) in serial.iter().zip(parallel.iter()) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.members, b.members);
                assert_eq!(a.representative, b.representative);
            }
        }
    }

    #[test]
    fn nan_fitness_degrades_deterministically() {
        let (mut genomes, c) = diverged_population(8);
        genomes[3].set_fitness(f64::NAN);
        let mut set = SpeciesSet::new();
        set.speciate(&genomes, &c, 0);
        // total_cmp ordering: no panic, and the champion is well defined
        // (NaN sorts above every finite fitness).
        for s in set.iter() {
            let champ = s.champion(&genomes).expect("non-empty species");
            if s.members.contains(&3) {
                assert_eq!(champ, 3, "NaN sorts greatest under total_cmp");
            }
        }
        // Stagnation ranking must not panic either.
        set.remove_stagnant(&genomes, &c, 1);
    }

    #[test]
    fn champion_is_best_member() {
        let (genomes, c) = diverged_population(10);
        let mut set = SpeciesSet::new();
        set.speciate(&genomes, &c, 0);
        for s in set.iter() {
            let champ = s.champion(&genomes).unwrap();
            for &m in &s.members {
                assert!(genomes[champ].fitness() >= genomes[m].fitness());
            }
        }
    }
}
