//! HyperNEAT-style indirect encoding (an extension the paper points to).
//!
//! Section III-D1 notes that "there have been other NE algorithms such as
//! HyperNEAT which provide a mechanism to encode the genomes more
//! efficiently, which can be leveraged if need be". This module implements
//! that mechanism: a small **CPPN** (itself an ordinary NEAT [`Genome`]
//! with four spatial inputs) is queried over a geometric **substrate** to
//! paint the weights of a large phenotype network. The population then
//! evolves the compact CPPNs while ADAM runs the expressed substrate
//! networks — shrinking genome-buffer traffic for large interfaces (the
//! Atari class).

use crate::config::NeatConfig;
use crate::error::GenomeError;
use crate::gene::{ConnGene, NodeGene, NodeId};
use crate::genome::Genome;
use crate::network::Network;

/// A geometric substrate: nodes with 2-D coordinates arranged in layers
/// (layer 0 = inputs, last = outputs).
#[derive(Debug, Clone, PartialEq)]
pub struct Substrate {
    layers: Vec<Vec<(f64, f64)>>,
}

impl Substrate {
    /// Builds a layered grid substrate: `inputs` nodes on the y = -1 line,
    /// each hidden layer evenly spaced between, `outputs` on y = +1. Node
    /// x-coordinates are spread over `[-1, 1]`.
    pub fn grid(inputs: usize, hidden: &[usize], outputs: usize) -> Substrate {
        assert!(
            inputs > 0 && outputs > 0,
            "substrate needs a real interface"
        );
        let depth = hidden.len() + 1;
        let mut layers = Vec::with_capacity(hidden.len() + 2);
        let spread = |n: usize| -> Vec<f64> {
            if n == 1 {
                vec![0.0]
            } else {
                (0..n)
                    .map(|i| -1.0 + 2.0 * i as f64 / (n - 1) as f64)
                    .collect()
            }
        };
        let push_layer = |n: usize, y: f64, layers: &mut Vec<Vec<(f64, f64)>>| {
            layers.push(spread(n).into_iter().map(|x| (x, y)).collect());
        };
        push_layer(inputs, -1.0, &mut layers);
        for (i, &n) in hidden.iter().enumerate() {
            let y = -1.0 + 2.0 * (i + 1) as f64 / depth as f64;
            push_layer(n, y, &mut layers);
        }
        push_layer(outputs, 1.0, &mut layers);
        Substrate { layers }
    }

    /// Layers of node coordinates.
    pub fn layers(&self) -> &[Vec<(f64, f64)>] {
        &self.layers
    }

    /// Total substrate nodes.
    pub fn num_nodes(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// Number of candidate connections (adjacent-layer all-to-all).
    pub fn num_candidate_conns(&self) -> usize {
        self.layers
            .windows(2)
            .map(|w| w[0].len() * w[1].len())
            .sum()
    }
}

/// The HyperNEAT expressor: evolves CPPNs, expresses substrate genomes.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperNeat {
    substrate: Substrate,
    /// |CPPN output| below this expresses no connection (sparsity control).
    pub weight_threshold: f64,
    /// Expressed weight = `scale * (|out| - threshold) * sign(out)`.
    pub weight_scale: f64,
}

impl HyperNeat {
    /// CPPN input count: `(x1, y1, x2, y2)`.
    pub const CPPN_INPUTS: usize = 4;
    /// CPPN output count: the connection weight.
    pub const CPPN_OUTPUTS: usize = 1;

    /// Creates an expressor over `substrate` with HyperNEAT's customary
    /// threshold (0.2) and scale (3.0).
    pub fn new(substrate: Substrate) -> Self {
        HyperNeat {
            substrate,
            weight_threshold: 0.2,
            weight_scale: 3.0,
        }
    }

    /// The substrate in use.
    pub fn substrate(&self) -> &Substrate {
        &self.substrate
    }

    /// A NEAT configuration suitable for evolving the CPPNs: 4 inputs, 1
    /// output, the full activation zoo (CPPNs thrive on diverse basis
    /// functions), random initial weights.
    pub fn cppn_config(&self) -> NeatConfig {
        NeatConfig::builder(Self::CPPN_INPUTS, Self::CPPN_OUTPUTS)
            .initial_weights(crate::config::InitialWeights::Uniform { lo: -1.0, hi: 1.0 })
            .activation_options(vec![
                crate::Activation::Sigmoid,
                crate::Activation::Tanh,
                crate::Activation::Sin,
                crate::Activation::Gauss,
                crate::Activation::Abs,
            ])
            .activation_mutate_rate(0.2)
            .build()
            .expect("hyperneat defaults are valid")
    }

    /// Expresses a CPPN genome into a substrate phenotype genome: every
    /// adjacent-layer node pair is queried as `(x1, y1, x2, y2)`; outputs
    /// beyond the threshold become connections.
    ///
    /// # Errors
    ///
    /// Returns a [`GenomeError`] if the CPPN genome itself is malformed.
    pub fn express(&self, cppn: &Genome, key: u64) -> Result<Genome, GenomeError> {
        let cppn_net = Network::from_genome(cppn)?;
        let inputs = self.substrate.layers.first().expect("non-empty").len();
        let outputs = self.substrate.layers.last().expect("non-empty").len();

        // Assign substrate node ids: inputs, then outputs, then hidden —
        // the id layout `Genome` expects.
        let mut nodes: Vec<NodeGene> = Vec::with_capacity(self.substrate.num_nodes());
        let mut ids: Vec<Vec<NodeId>> = Vec::with_capacity(self.substrate.layers.len());
        let mut next_hidden = (inputs + outputs) as u32;
        for (l, layer) in self.substrate.layers.iter().enumerate() {
            let mut layer_ids = Vec::with_capacity(layer.len());
            for k in 0..layer.len() {
                let id = if l == 0 {
                    let id = NodeId(k as u32);
                    nodes.push(NodeGene::input(id));
                    id
                } else if l == self.substrate.layers.len() - 1 {
                    let id = NodeId((inputs + k) as u32);
                    nodes.push(NodeGene::output(id));
                    id
                } else {
                    let id = NodeId(next_hidden);
                    next_hidden += 1;
                    let mut n = NodeGene::hidden(id);
                    n.activation = crate::Activation::Tanh;
                    nodes.push(n);
                    id
                };
                layer_ids.push(id);
            }
            ids.push(layer_ids);
        }

        let mut conns = Vec::new();
        for l in 0..self.substrate.layers.len() - 1 {
            for (i, &(x1, y1)) in self.substrate.layers[l].iter().enumerate() {
                for (j, &(x2, y2)) in self.substrate.layers[l + 1].iter().enumerate() {
                    let out = cppn_net.activate(&[x1, y1, x2, y2])[0];
                    // Centre the sigmoid-range CPPN output on zero.
                    let signal = 2.0 * out - 1.0;
                    if signal.abs() > self.weight_threshold {
                        let weight = self.weight_scale
                            * (signal.abs() - self.weight_threshold)
                            * signal.signum();
                        conns.push(ConnGene::new(ids[l][i], ids[l + 1][j], weight));
                    }
                }
            }
        }
        Genome::from_parts(key, inputs, outputs, nodes, conns)
    }

    /// Compression ratio: candidate phenotype genes per CPPN gene — the
    /// "more efficient encoding" the paper refers to.
    pub fn compression(&self, cppn: &Genome) -> f64 {
        (self.substrate.num_nodes() + self.substrate.num_candidate_conns()) as f64
            / cppn.num_genes().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Population;
    use crate::rng::XorWow;

    fn expressor() -> HyperNeat {
        HyperNeat::new(Substrate::grid(4, &[6], 2))
    }

    #[test]
    fn grid_substrate_shape() {
        let s = Substrate::grid(4, &[6, 3], 2);
        assert_eq!(s.layers().len(), 4);
        assert_eq!(s.num_nodes(), 15);
        assert_eq!(s.num_candidate_conns(), 4 * 6 + 6 * 3 + 3 * 2);
        // Inputs on y=-1, outputs on y=+1.
        assert!(s.layers()[0].iter().all(|&(_, y)| y == -1.0));
        assert!(s.layers()[3].iter().all(|&(_, y)| y == 1.0));
    }

    #[test]
    fn single_node_layer_centres() {
        let s = Substrate::grid(1, &[], 1);
        assert_eq!(s.layers()[0][0], (0.0, -1.0));
        assert_eq!(s.layers()[1][0], (0.0, 1.0));
    }

    #[test]
    fn expression_produces_valid_genome() {
        let h = expressor();
        let config = h.cppn_config();
        let mut rng = XorWow::seed_from_u64_value(3);
        let cppn = Genome::initial(0, &config, &mut rng);
        let phenotype = h.express(&cppn, 100).unwrap();
        assert!(phenotype.validate().is_ok());
        assert_eq!(phenotype.num_inputs(), 4);
        assert_eq!(phenotype.num_outputs(), 2);
        // And it must run.
        let net = Network::from_genome(&phenotype).unwrap();
        let out = net.activate(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn expression_is_deterministic() {
        let h = expressor();
        let config = h.cppn_config();
        let mut rng = XorWow::seed_from_u64_value(5);
        let cppn = Genome::initial(0, &config, &mut rng);
        let a = h.express(&cppn, 1).unwrap();
        let b = h.express(&cppn, 1).unwrap();
        assert_eq!(a.num_conns(), b.num_conns());
        for (ca, cb) in a.conns().zip(b.conns()) {
            assert_eq!(ca.weight, cb.weight);
        }
    }

    #[test]
    fn threshold_controls_sparsity() {
        let mut h = expressor();
        let config = h.cppn_config();
        let mut rng = XorWow::seed_from_u64_value(7);
        let cppn = Genome::initial(0, &config, &mut rng);
        h.weight_threshold = 0.0;
        let dense = h.express(&cppn, 1).unwrap().num_conns();
        h.weight_threshold = 0.9;
        let sparse = h.express(&cppn, 1).unwrap().num_conns();
        assert!(sparse <= dense);
    }

    #[test]
    fn compression_exceeds_one_for_large_substrates() {
        let h = HyperNeat::new(Substrate::grid(128, &[32], 18));
        let config = h.cppn_config();
        let mut rng = XorWow::seed_from_u64_value(9);
        let cppn = Genome::initial(0, &config, &mut rng);
        assert!(
            h.compression(&cppn) > 50.0,
            "a 128-input substrate should compress well, got {}",
            h.compression(&cppn)
        );
    }

    #[test]
    fn cppn_population_evolves_expressible_genomes() {
        let h = expressor();
        let mut pop = Population::new(h.cppn_config(), 42);
        for _ in 0..3 {
            pop.evolve_once(|cppn_net| {
                // Favour CPPNs whose output varies across space (non-trivial
                // weight patterns).
                let a = cppn_net.activate(&[-1.0, -1.0, 1.0, 1.0])[0];
                let b = cppn_net.activate(&[1.0, -1.0, -1.0, 1.0])[0];
                (a - b).abs()
            });
        }
        // Every genome in the final population must express cleanly.
        for (i, cppn) in pop.genomes().iter().enumerate() {
            let phenotype = h.express(cppn, i as u64).unwrap();
            assert!(phenotype.validate().is_ok());
        }
    }
}
