//! Task-sequence curricula: ordered environment families behind one fixed
//! genome interface.
//!
//! A [`TaskPlan`] names an ordered list of [`Task`]s (environment family +
//! generation budget + optional [`DriftSchedule`]); [`TaskSequence`] turns
//! the plan into a session [`Evaluator`]. Because the environment families
//! disagree on observation/action widths (CartPole is 4→1, LunarLander
//! 8→1, the walker 24→4), the plan fixes **one** genome interface — the
//! maximum width over its tasks — and each task carries an [`IoAdapter`]
//! that maps the task's interface onto it. The adapter is the degenerate
//! (fixed, non-evolved) form of an io-adapter *gene*: a deterministic
//! prefix mapping, identical for every genome, so evolution adapts the
//! network behind a stable pinout rather than re-negotiating the pinout
//! itself.
//!
//! # Determinism and checkpoints
//!
//! Which task (and which drift regime within it) an evaluation faces is a
//! pure function of the **scenario generation** `generation_offset +
//! ctx.generation`; episode seeds derive from the [`EvalContext`] with the
//! task index mixed in, so crossing a task boundary reshuffles the episode
//! stream deterministically. The only mutable workload state is
//! `generation_offset`, a single `u64` that rides in
//! [`Evaluator::state`] — which is what lets `Session::resume` continue a
//! curriculum mid-sequence (or mid-drift) bit-identically.

use crate::drift::{DriftSchedule, DriftedEnv};
use genesys_gym::{EnvKind, Environment};
use genesys_neat::{EvalContext, Evaluation, Evaluator, NeatConfig, Network, Scratch, WorkerLocal};

/// One curriculum entry: an environment family, how many generations the
/// population trains on it, and (optionally) how the world drifts while
/// it does.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// The environment family.
    pub kind: EnvKind,
    /// Generations the sequence dwells on this task (at least 1).
    pub generations: u64,
    /// Optional drift within the task, evaluated at the task-local
    /// generation (the schedule restarts when the task begins).
    pub drift: Option<DriftSchedule>,
}

impl Task {
    /// A drift-free task of `generations` generations.
    ///
    /// # Panics
    ///
    /// Panics if `generations == 0`.
    pub fn new(kind: EnvKind, generations: u64) -> Task {
        assert!(generations > 0, "a task must last at least one generation");
        Task {
            kind,
            generations,
            drift: None,
        }
    }

    /// Attaches a drift schedule (task-local generations).
    pub fn with_drift(mut self, drift: DriftSchedule) -> Task {
        self.drift = Some(drift);
        self
    }
}

/// The io-adapter mapping of one task: how the task's observation/action
/// interface plugs into the plan's fixed genome interface.
///
/// The mapping is the identity prefix: task observation `i` feeds genome
/// input `i`, unused genome inputs are held at `0.0`, and the task reads
/// the first `action_dim` genome outputs (surplus outputs are ignored).
/// It is deliberately *not* evolved — every genome sees the same pinout,
/// so fitness differences are attributable to the network, and the
/// mapping needs no checkpoint state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoAdapter {
    obs_dim: usize,
    act_dim: usize,
    in_width: usize,
    out_width: usize,
}

impl IoAdapter {
    /// Builds the adapter for a task interface inside a genome interface.
    ///
    /// # Panics
    ///
    /// Panics if the task interface exceeds the genome interface.
    pub fn new(obs_dim: usize, act_dim: usize, in_width: usize, out_width: usize) -> IoAdapter {
        assert!(
            obs_dim <= in_width && act_dim <= out_width,
            "task interface ({obs_dim}/{act_dim}) exceeds the genome interface \
             ({in_width}/{out_width})"
        );
        IoAdapter {
            obs_dim,
            act_dim,
            in_width,
            out_width,
        }
    }

    /// Task observation dimension.
    pub fn obs_dim(&self) -> usize {
        self.obs_dim
    }

    /// Task action dimension.
    pub fn act_dim(&self) -> usize {
        self.act_dim
    }

    /// Genome input width.
    pub fn in_width(&self) -> usize {
        self.in_width
    }

    /// Genome output width.
    pub fn out_width(&self) -> usize {
        self.out_width
    }

    /// Scatters a task observation into the genome input vector: identity
    /// prefix, zero padding.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with the adapter.
    pub fn scatter_obs(&self, task_obs: &[f64], input: &mut [f64]) {
        assert_eq!(task_obs.len(), self.obs_dim);
        assert_eq!(input.len(), self.in_width);
        input[..self.obs_dim].copy_from_slice(task_obs);
        for slot in &mut input[self.obs_dim..] {
            *slot = 0.0;
        }
    }

    /// The slice of genome outputs the task consumes as its action.
    ///
    /// # Panics
    ///
    /// Panics if `output.len() != self.out_width()`.
    pub fn gather_actions<'a>(&self, output: &'a [f64]) -> &'a [f64] {
        assert_eq!(output.len(), self.out_width);
        &output[..self.act_dim]
    }
}

/// Reusable buffers for [`adapted_episode`]: task observation, genome
/// input/output vectors, and the network [`Scratch`]. Same ownership
/// rules as `genesys_gym::RolloutScratch` — reuse one per worker, never
/// share concurrently; contents carry no information between episodes.
#[derive(Debug, Clone, Default)]
pub struct AdapterScratch {
    obs: Vec<f64>,
    input: Vec<f64>,
    action: Vec<f64>,
    net: Scratch,
}

impl AdapterScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> AdapterScratch {
        AdapterScratch::default()
    }
}

/// Runs one episode of `env` under `net` through `adapter`, returning
/// `(cumulative_reward, steps_taken)`.
///
/// This is the sequence counterpart of `genesys_gym::episode_into`: after
/// the buffers have grown to the widest interface seen, the loop performs
/// zero heap allocations per step. When the task interface equals the
/// genome interface the trajectory is bit-identical to `episode_into`
/// (the scatter is a plain copy and the gather is the whole output).
///
/// # Panics
///
/// Panics if the network or environment interface disagrees with
/// `adapter`.
pub fn adapted_episode(
    net: &Network,
    env: &mut dyn Environment,
    adapter: &IoAdapter,
    scratch: &mut AdapterScratch,
) -> (f64, u64) {
    assert_eq!(
        net.num_inputs(),
        adapter.in_width(),
        "genome input width must match the adapter"
    );
    assert_eq!(
        net.num_outputs(),
        adapter.out_width(),
        "genome output width must match the adapter"
    );
    assert_eq!(env.observation_dim(), adapter.obs_dim());
    assert_eq!(env.action_dim(), adapter.act_dim());
    let AdapterScratch {
        obs,
        input,
        action,
        net: net_scratch,
    } = scratch;
    obs.resize(adapter.obs_dim(), 0.0);
    input.resize(adapter.in_width(), 0.0);
    action.resize(adapter.out_width(), 0.0);
    let obs = &mut obs[..adapter.obs_dim()];
    let input = &mut input[..adapter.in_width()];
    let action = &mut action[..adapter.out_width()];
    env.reset_into(obs);
    let mut fitness = 0.0;
    let mut steps = 0u64;
    loop {
        adapter.scatter_obs(obs, input);
        net.activate_into(net_scratch, input, action);
        let (reward, done) = env.step_into(adapter.gather_actions(action), obs);
        fitness += reward;
        steps += 1;
        if done {
            return (fitness, steps);
        }
    }
}

/// An ordered continual-learning curriculum: which tasks, for how long,
/// under which drift, behind which fixed genome interface.
///
/// The plan is plain cloneable data (no buffers, no state), so the same
/// value can drive the [`TaskSequence`] workload *and* the metrics
/// recorder that probes it — both answering "what holds at generation
/// `g`?" from the same pure functions.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskPlan {
    tasks: Vec<Task>,
    world_seed: u64,
}

impl TaskPlan {
    /// Builds a plan. `world_seed` keys every drift regime's sensor
    /// transform (see [`crate::drift::regime_gains`]).
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is empty.
    pub fn new(world_seed: u64, tasks: Vec<Task>) -> TaskPlan {
        assert!(!tasks.is_empty(), "a plan needs at least one task");
        TaskPlan { tasks, world_seed }
    }

    /// Single-task convenience: `kind` under `drift` for `generations`
    /// generations — the drift-only continual scenario.
    pub fn drifting(
        kind: EnvKind,
        drift: DriftSchedule,
        world_seed: u64,
        generations: u64,
    ) -> TaskPlan {
        TaskPlan::new(
            world_seed,
            vec![Task::new(kind, generations).with_drift(drift)],
        )
    }

    /// The curriculum entries, in order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The drift world seed.
    pub fn world_seed(&self) -> u64 {
        self.world_seed
    }

    /// The fixed genome interface: maximum observation/action widths over
    /// the plan's tasks.
    pub fn interface(&self) -> (usize, usize) {
        let mut inputs = 0;
        let mut outputs = 0;
        for task in &self.tasks {
            let (i, o) = task.kind.interface();
            inputs = inputs.max(i);
            outputs = outputs.max(o);
        }
        (inputs, outputs)
    }

    /// Sum of the per-task generation budgets (saturating).
    pub fn total_generations(&self) -> u64 {
        self.tasks
            .iter()
            .fold(0u64, |acc, t| acc.saturating_add(t.generations))
    }

    /// `(task index, task-local generation)` in force at scenario
    /// generation `g`. Generations past the total budget stay in the last
    /// task (its local counter keeps advancing, so an attached drift
    /// schedule keeps drifting).
    pub fn task_at(&self, g: u64) -> (usize, u64) {
        let mut start = 0u64;
        for (i, task) in self.tasks.iter().enumerate() {
            let end = start.saturating_add(task.generations);
            if g < end || i == self.tasks.len() - 1 {
                return (i, g - start);
            }
            start = end;
        }
        unreachable!("a plan always has at least one task")
    }

    /// The drift regime in force at scenario generation `g` (0 when the
    /// active task has no schedule).
    pub fn regime(&self, g: u64) -> u64 {
        let (idx, local) = self.task_at(g);
        self.tasks[idx]
            .drift
            .as_ref()
            .map_or(0, |s| s.regime(local))
    }

    /// True when generation `g` faces a different world than `g - 1`: a
    /// task switch or a within-task drift-regime change. These are the
    /// drift events the metrics layer timestamps for recovery tracking.
    pub fn is_boundary(&self, g: u64) -> bool {
        if g == 0 {
            return false;
        }
        let (task, local) = self.task_at(g);
        let (prev_task, _) = self.task_at(g - 1);
        if task != prev_task {
            return true;
        }
        self.tasks[task]
            .drift
            .as_ref()
            .is_some_and(|s| local > 0 && s.changes_at(local))
    }

    /// The io-adapter of task `index` inside the plan's genome interface.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn adapter(&self, index: usize) -> IoAdapter {
        let (obs, act) = self.tasks[index].kind.interface();
        let (inputs, outputs) = self.interface();
        IoAdapter::new(obs, act, inputs, outputs)
    }

    /// A default [`NeatConfig`] sized to the plan's genome interface.
    /// Callers typically override population size and initial weights.
    pub fn neat_config(&self) -> NeatConfig {
        let (inputs, outputs) = self.interface();
        NeatConfig::builder(inputs, outputs)
            .build()
            .expect("default scenario config is valid")
    }

    /// Deterministic fixed-seed fitness of `net` on task `index`,
    /// averaged over `episodes` episodes of the **un-drifted** task (the
    /// probe measures task skill, not the drift regime of the moment).
    ///
    /// Probe seeds derive from `(probe_seed, index, episode)` through the
    /// session seed mix — independent of generation, worker count, and
    /// the training episode stream, so a probe is a stable measuring
    /// stick across the whole run.
    ///
    /// # Panics
    ///
    /// Panics if `episodes == 0`, `index` is out of range, or the network
    /// interface disagrees with the plan.
    pub fn probe_fitness(
        &self,
        net: &Network,
        index: usize,
        episodes: usize,
        probe_seed: u64,
    ) -> f64 {
        assert!(episodes > 0, "at least one probe episode required");
        let adapter = self.adapter(index);
        let mut scratch = AdapterScratch::new();
        let mut total = 0.0;
        for episode in 0..episodes {
            let env_seed = EvalContext {
                base_seed: probe_seed,
                generation: index as u64,
                index: episode as u64,
            }
            .seed();
            let mut env = self.tasks[index].kind.make(env_seed);
            total += adapted_episode(net, env.as_mut(), &adapter, &mut scratch).0;
        }
        total / episodes as f64
    }
}

/// The curriculum as a session workload: evaluations at scenario
/// generation `g` face the task and drift regime [`TaskPlan`] assigns to
/// `g` (see the module docs for the determinism story).
#[derive(Debug)]
pub struct TaskSequence {
    plan: TaskPlan,
    generation_offset: u64,
    episodes: usize,
    scratch: WorkerLocal<AdapterScratch>,
}

impl TaskSequence {
    /// Builds the workload at sequence position 0 with 1 episode per
    /// evaluation.
    pub fn new(plan: TaskPlan) -> TaskSequence {
        TaskSequence {
            plan,
            generation_offset: 0,
            episodes: 1,
            scratch: WorkerLocal::new(AdapterScratch::new),
        }
    }

    /// Starts the curriculum at a nonzero position (e.g. to continue a
    /// sequence that already ran outside this session). `Session::resume`
    /// restores the offset from the checkpoint instead.
    pub fn with_generation_offset(mut self, offset: u64) -> TaskSequence {
        self.generation_offset = offset;
        self
    }

    /// Averages fitness over `episodes` episodes per evaluation, each
    /// with its own derived seed (the `(task, episode)` mix
    /// [`TaskPlan::probe_fitness`] uses) — the knob
    /// `genesys_gym::EpisodeEvaluator::episodes` offers, for curricula.
    /// Multi-episode averaging matters most on drifting tasks, where a
    /// single episode is a noisy read of a regime. Configuration, not
    /// workload state: like the gym evaluator's, it is not serialized —
    /// resume with the same setting. Panics if `episodes == 0`.
    pub fn with_episodes(mut self, episodes: usize) -> TaskSequence {
        assert!(episodes > 0, "at least one episode required");
        self.episodes = episodes;
        self
    }

    /// The plan driving this workload.
    pub fn plan(&self) -> &TaskPlan {
        &self.plan
    }

    /// The serialized sequence position (see [`Evaluator::state`]).
    pub fn generation_offset(&self) -> u64 {
        self.generation_offset
    }

    /// The scenario generation a session generation maps to.
    pub fn scenario_generation(&self, session_generation: u64) -> u64 {
        self.generation_offset + session_generation
    }
}

impl Evaluator for TaskSequence {
    fn evaluate(&self, ctx: EvalContext, net: &Network) -> Evaluation {
        let g = self.scenario_generation(ctx.generation);
        let (index, local) = self.plan.task_at(g);
        let task = &self.plan.tasks()[index];
        let adapter = self.plan.adapter(index);
        let regime = task.drift.as_ref().map_or(0, |s| s.regime(local));
        let mut total = 0.0;
        let mut env_steps = 0u64;
        for episode in 0..self.episodes {
            // Mix the task index and episode into the seed so a task
            // switch reshuffles the episode stream and every episode of
            // a multi-episode evaluation draws its own initial state
            // (still pure in the context).
            let env_seed = EvalContext {
                base_seed: ctx.seed(),
                generation: index as u64,
                index: episode as u64,
            }
            .seed();
            let env = task.kind.make(env_seed);
            let (fitness, steps) = self.scratch.with(|scratch| {
                if regime != 0 {
                    // Key the drift world by task too, so two tasks
                    // sharing a regime label do not share a sensor-gain
                    // draw.
                    let world =
                        self.plan.world_seed() ^ (index as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    let mut drifted = DriftedEnv::new(env, world, regime);
                    adapted_episode(net, &mut drifted, &adapter, scratch)
                } else {
                    let mut env = env;
                    adapted_episode(net, env.as_mut(), &adapter, scratch)
                }
            });
            total += fitness;
            env_steps += steps;
        }
        Evaluation {
            fitness: total / self.episodes as f64,
            env_steps,
        }
    }

    fn state(&self) -> u64 {
        self.generation_offset
    }

    fn restore_state(&mut self, state: u64) {
        self.generation_offset = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesys_neat::{Genome, XorWow};

    fn plan3() -> TaskPlan {
        TaskPlan::new(
            9,
            vec![
                Task::new(EnvKind::CartPole, 3),
                Task::new(EnvKind::Acrobot, 2).with_drift(DriftSchedule::Sudden { at: 1 }),
                Task::new(EnvKind::LunarLander, 4),
            ],
        )
    }

    #[test]
    fn interface_is_the_maximum_over_tasks() {
        assert_eq!(plan3().interface(), (8, 1));
        let wide = TaskPlan::new(
            0,
            vec![
                Task::new(EnvKind::Bipedal, 1),
                Task::new(EnvKind::MountainCar, 1),
            ],
        );
        assert_eq!(wide.interface(), (24, 4));
    }

    #[test]
    fn task_lookup_walks_budgets_and_clamps_to_last() {
        let p = plan3();
        assert_eq!(p.total_generations(), 9);
        assert_eq!(p.task_at(0), (0, 0));
        assert_eq!(p.task_at(2), (0, 2));
        assert_eq!(p.task_at(3), (1, 0));
        assert_eq!(p.task_at(4), (1, 1));
        assert_eq!(p.task_at(5), (2, 0));
        assert_eq!(p.task_at(8), (2, 3));
        // Past the budget: stays in the last task, local clock running.
        assert_eq!(p.task_at(100), (2, 95));
    }

    #[test]
    fn boundaries_are_task_switches_and_drift_events() {
        let p = plan3();
        let boundaries: Vec<u64> = (0..9).filter(|&g| p.is_boundary(g)).collect();
        // g=3: CartPole→Acrobot; g=4: Acrobot's sudden drift at local 1;
        // g=5: Acrobot→LunarLander.
        assert_eq!(boundaries, [3, 4, 5]);
        assert_eq!(p.regime(3), 0);
        assert_ne!(p.regime(4), 0);
    }

    #[test]
    fn adapter_scatters_prefix_and_zero_pads() {
        let a = IoAdapter::new(2, 1, 4, 2);
        let mut input = [9.0; 4];
        a.scatter_obs(&[0.25, -1.5], &mut input);
        assert_eq!(input, [0.25, -1.5, 0.0, 0.0]);
        let out = [0.7, 0.3];
        assert_eq!(a.gather_actions(&out), &[0.7]);
    }

    #[test]
    #[should_panic(expected = "exceeds the genome interface")]
    fn oversized_task_interface_panics() {
        IoAdapter::new(8, 1, 4, 1);
    }

    #[test]
    fn adapted_episode_with_identity_adapter_matches_episode_into() {
        let kind = EnvKind::CartPole;
        let config = kind.neat_config();
        let genome = Genome::initial(0, &config, &mut XorWow::seed_from_u64_value(3));
        let net = Network::from_genome(&genome).unwrap();
        let adapter = IoAdapter::new(4, 1, 4, 1);
        let (fit, steps) = adapted_episode(
            &net,
            kind.make(21).as_mut(),
            &adapter,
            &mut AdapterScratch::new(),
        );
        let want = genesys_gym::episode_into(
            &net,
            kind.make(21).as_mut(),
            &mut genesys_gym::RolloutScratch::new(),
        );
        assert_eq!((fit.to_bits(), steps), (want.0.to_bits(), want.1));
    }

    #[test]
    fn evaluation_is_pure_in_the_context() {
        let plan = plan3();
        let config = plan.neat_config();
        let genome = Genome::initial(0, &config, &mut XorWow::seed_from_u64_value(5));
        let net = Network::from_genome(&genome).unwrap();
        let seq = TaskSequence::new(plan);
        for generation in [0u64, 3, 4, 7] {
            let ctx = EvalContext {
                base_seed: 11,
                generation,
                index: 2,
            };
            let a = seq.evaluate(ctx, &net);
            let b = seq.evaluate(ctx, &net);
            assert_eq!(a.fitness.to_bits(), b.fitness.to_bits());
            assert_eq!(a.env_steps, b.env_steps);
        }
    }

    #[test]
    fn multi_episode_evaluation_averages_derived_seeds() {
        let plan = plan3();
        let config = plan.neat_config();
        let genome = Genome::initial(0, &config, &mut XorWow::seed_from_u64_value(5));
        let net = Network::from_genome(&genome).unwrap();
        let ctx = EvalContext {
            base_seed: 11,
            generation: 1,
            index: 4,
        };
        let one = TaskSequence::new(plan.clone()).evaluate(ctx, &net);
        let two = TaskSequence::new(plan.clone())
            .with_episodes(2)
            .evaluate(ctx, &net);
        let two_again = TaskSequence::new(plan).with_episodes(2).evaluate(ctx, &net);
        // Deterministic, and episode 0 of the 2-episode run is the
        // 1-episode run: steps strictly grow, fitness is the mean.
        assert_eq!(two.fitness.to_bits(), two_again.fitness.to_bits());
        assert_eq!(two.env_steps, two_again.env_steps);
        assert!(two.env_steps > one.env_steps);
        assert!(two.fitness.is_finite());
    }

    #[test]
    fn generation_offset_shifts_the_curriculum() {
        let mut shifted = TaskSequence::new(plan3());
        assert_eq!(shifted.state(), 0);
        shifted.restore_state(3);
        assert_eq!(shifted.generation_offset(), 3);
        // Session generation 1 now sits at scenario generation 4: inside
        // the Acrobot task, one generation past its sudden drift.
        assert_eq!(shifted.scenario_generation(1), 4);
        assert_eq!(
            shifted.plan().task_at(shifted.scenario_generation(1)),
            (1, 1)
        );
        assert_eq!(shifted.state(), 3);
    }

    #[test]
    fn probe_fitness_is_deterministic_and_task_keyed() {
        let plan = plan3();
        let config = plan.neat_config();
        let genome = Genome::initial(0, &config, &mut XorWow::seed_from_u64_value(7));
        let net = Network::from_genome(&genome).unwrap();
        let a = plan.probe_fitness(&net, 0, 3, 99);
        let b = plan.probe_fitness(&net, 0, 3, 99);
        assert_eq!(a.to_bits(), b.to_bits());
        let other_task = plan.probe_fitness(&net, 2, 3, 99);
        let other_seed = plan.probe_fitness(&net, 0, 3, 100);
        // CartPole and LunarLander rewards differ wildly; mostly we
        // assert the probes are well-defined and finite.
        assert!(a.is_finite() && other_task.is_finite() && other_seed.is_finite());
    }
}
