//! End-to-end SoC simulation cost: one full hardware generation
//! (inference on real environments + functional EvE reproduction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genesys_core::{GenesysSoc, SocConfig};
use genesys_gym::{CartPole, Environment};
use genesys_neat::NeatConfig;

fn bench_soc(c: &mut Criterion) {
    let mut group = c.benchmark_group("soc_generation");
    group.sample_size(10);
    for &pop in &[16usize, 48] {
        group.bench_with_input(BenchmarkId::new("cartpole", pop), &pop, |b, &n| {
            let neat = NeatConfig::builder(4, 1).pop_size(n).build().unwrap();
            let mut soc = GenesysSoc::new(SocConfig::default().with_num_eve_pes(32), neat, 3);
            let mut factory =
                |i: usize| -> Box<dyn Environment> { Box::new(CartPole::new(i as u64)) };
            b.iter(|| soc.run_generation(&mut factory));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_soc);
criterion_main!(benches);
