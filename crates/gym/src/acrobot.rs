//! Acrobot: swing a two-link pendulum above the bar.
//!
//! Standard gym Acrobot-v1 dynamics (Sutton 1996): two rigid links, torque
//! applied at the elbow joint, RK4 integration with dt = 0.2 s.
//! Observation: six floats `[cosθ1, sinθ1, cosθ2, sinθ2, θ̇1, θ̇2]`
//! (Table I's "six floating point numbers"). Action: one float decoded to
//! torque ∈ {-1, 0, +1}.

use crate::env::{quantize_action, ActionKind, Environment};
use genesys_neat::XorWow;

const DT: f64 = 0.2;
const LINK_LENGTH_1: f64 = 1.0;
const LINK_MASS_1: f64 = 1.0;
const LINK_MASS_2: f64 = 1.0;
const LINK_COM_1: f64 = 0.5;
const LINK_COM_2: f64 = 0.5;
const LINK_MOI: f64 = 1.0;
const MAX_VEL_1: f64 = 4.0 * std::f64::consts::PI;
const MAX_VEL_2: f64 = 9.0 * std::f64::consts::PI;
const G: f64 = 9.8;

/// The Acrobot environment.
#[derive(Debug, Clone)]
pub struct Acrobot {
    rng: XorWow,
    state: [f64; 4], // theta1, theta2, dtheta1, dtheta2
    steps: usize,
    done: bool,
}

impl Acrobot {
    /// Gym's episode limit for v1.
    pub const MAX_STEPS: usize = 500;

    /// Creates an Acrobot seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        let mut env = Acrobot {
            rng: XorWow::seed_from_u64_value(seed ^ 0xAC20_B070),
            state: [0.0; 4],
            steps: 0,
            done: false,
        };
        env.reset();
        env
    }

    fn write_observation(&self, obs: &mut [f64]) {
        let [t1, t2, d1, d2] = self.state;
        obs.copy_from_slice(&[t1.cos(), t1.sin(), t2.cos(), t2.sin(), d1, d2]);
    }

    /// Height of the tip above the pivot: `-cosθ1 - cos(θ1+θ2)`.
    pub fn tip_height(&self) -> f64 {
        -self.state[0].cos() - (self.state[0] + self.state[1]).cos()
    }

    fn dynamics(state: [f64; 4], torque: f64) -> [f64; 4] {
        let [theta1, theta2, dtheta1, dtheta2] = state;
        let m1 = LINK_MASS_1;
        let m2 = LINK_MASS_2;
        let l1 = LINK_LENGTH_1;
        let lc1 = LINK_COM_1;
        let lc2 = LINK_COM_2;
        let i1 = LINK_MOI;
        let i2 = LINK_MOI;
        let d1 =
            m1 * lc1 * lc1 + m2 * (l1 * l1 + lc2 * lc2 + 2.0 * l1 * lc2 * theta2.cos()) + i1 + i2;
        let d2 = m2 * (lc2 * lc2 + l1 * lc2 * theta2.cos()) + i2;
        let phi2 = m2 * lc2 * G * (theta1 + theta2 - std::f64::consts::FRAC_PI_2).cos();
        let phi1 = -m2 * l1 * lc2 * dtheta2 * dtheta2 * theta2.sin()
            - 2.0 * m2 * l1 * lc2 * dtheta2 * dtheta1 * theta2.sin()
            + (m1 * lc1 + m2 * l1) * G * (theta1 - std::f64::consts::FRAC_PI_2).cos()
            + phi2;
        // "book" variant of the dynamics, as used by gym.
        let ddtheta2 =
            (torque + d2 / d1 * phi1 - m2 * l1 * lc2 * dtheta1 * dtheta1 * theta2.sin() - phi2)
                / (m2 * lc2 * lc2 + i2 - d2 * d2 / d1);
        let ddtheta1 = -(d2 * ddtheta2 + phi1) / d1;
        [dtheta1, dtheta2, ddtheta1, ddtheta2]
    }

    fn rk4(&mut self, torque: f64) {
        let y = self.state;
        let k1 = Self::dynamics(y, torque);
        let add = |y: [f64; 4], k: [f64; 4], h: f64| {
            [
                y[0] + h * k[0],
                y[1] + h * k[1],
                y[2] + h * k[2],
                y[3] + h * k[3],
            ]
        };
        let k2 = Self::dynamics(add(y, k1, DT / 2.0), torque);
        let k3 = Self::dynamics(add(y, k2, DT / 2.0), torque);
        let k4 = Self::dynamics(add(y, k3, DT), torque);
        for i in 0..4 {
            self.state[i] = y[i] + DT / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        self.state[0] = wrap_pi(self.state[0]);
        self.state[1] = wrap_pi(self.state[1]);
        self.state[2] = self.state[2].clamp(-MAX_VEL_1, MAX_VEL_1);
        self.state[3] = self.state[3].clamp(-MAX_VEL_2, MAX_VEL_2);
    }
}

fn wrap_pi(x: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let mut v = (x + std::f64::consts::PI) % two_pi;
    if v < 0.0 {
        v += two_pi;
    }
    v - std::f64::consts::PI
}

impl Environment for Acrobot {
    fn name(&self) -> &'static str {
        "Acrobot_v1"
    }

    fn observation_dim(&self) -> usize {
        6
    }

    fn action_dim(&self) -> usize {
        1
    }

    fn action_kind(&self) -> ActionKind {
        ActionKind::Discrete(3)
    }

    fn reset_into(&mut self, obs: &mut [f64]) {
        for s in &mut self.state {
            *s = self.rng.uniform(-0.1, 0.1);
        }
        self.steps = 0;
        self.done = false;
        self.write_observation(obs);
    }

    fn step_into(&mut self, action: &[f64], obs: &mut [f64]) -> (f64, bool) {
        assert_eq!(action.len(), 1, "Acrobot takes one output");
        if self.done {
            self.write_observation(obs);
            return (0.0, true);
        }
        let torque = quantize_action(action[0], 3) as f64 - 1.0;
        self.rk4(torque);
        self.steps += 1;
        let solved = self.tip_height() > 1.0;
        self.done = solved || self.steps >= Self::MAX_STEPS;
        self.write_observation(obs);
        (if solved { 0.0 } else { -1.0 }, self.done)
    }

    fn max_steps(&self) -> usize {
        Self::MAX_STEPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_has_six_components() {
        let mut env = Acrobot::new(1);
        assert_eq!(env.reset().len(), 6);
        assert_eq!(env.observation_dim(), 6);
    }

    #[test]
    fn cos_sin_observation_is_consistent() {
        let mut env = Acrobot::new(2);
        let obs = env.reset();
        assert!((obs[0] * obs[0] + obs[1] * obs[1] - 1.0).abs() < 1e-9);
        assert!((obs[2] * obs[2] + obs[3] * obs[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hanging_start_has_negative_tip_height() {
        let env = Acrobot::new(3);
        assert!(env.tip_height() < -1.5, "starts hanging near the bottom");
    }

    #[test]
    fn zero_torque_conserves_low_energy() {
        let mut env = Acrobot::new(4);
        env.reset();
        for _ in 0..100 {
            let s = env.step(&[0.5]); // torque 0
            assert!(!s.done || env.tip_height() <= 1.0);
            if s.done {
                break;
            }
        }
        assert!(
            env.tip_height() < 1.0,
            "no torque cannot swing above the bar"
        );
    }

    #[test]
    fn bang_bang_pumping_gains_energy() {
        let mut env = Acrobot::new(5);
        env.reset();
        let mut peak = env.tip_height();
        for _ in 0..400 {
            // pump with the direction of elbow velocity
            let a = if env.state[2] >= 0.0 { 0.99 } else { 0.01 };
            let s = env.step(&[a]);
            peak = peak.max(env.tip_height());
            if s.done {
                break;
            }
        }
        assert!(
            peak > -0.5,
            "resonant pumping should raise the tip, peak {peak}"
        );
    }

    #[test]
    fn velocities_clamped() {
        let mut env = Acrobot::new(6);
        env.reset();
        for _ in 0..300 {
            let s = env.step(&[0.99]);
            assert!(s.observation[4].abs() <= MAX_VEL_1 + 1e-9);
            assert!(s.observation[5].abs() <= MAX_VEL_2 + 1e-9);
            if s.done {
                break;
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Acrobot::new(7);
        let mut b = Acrobot::new(7);
        a.reset();
        b.reset();
        for _ in 0..50 {
            assert_eq!(a.step(&[0.7]), b.step(&[0.7]));
        }
    }
}
