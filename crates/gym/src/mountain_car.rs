//! MountainCar-v0: drive an underpowered car out of a valley.
//!
//! Standard gym dynamics (Moore 1990): position ∈ [-1.2, 0.6], velocity
//! ∈ [-0.07, 0.07], three discrete actions (push left / coast / push
//! right), goal at position 0.5. Observation: two floats. Action: one
//! integer less than three (Table I).

use crate::env::{quantize_action, ActionKind, Environment};
use genesys_neat::XorWow;

const MIN_POS: f64 = -1.2;
const MAX_POS: f64 = 0.6;
const MAX_SPEED: f64 = 0.07;
const GOAL_POS: f64 = 0.5;
const FORCE: f64 = 0.001;
const GRAVITY: f64 = 0.0025;

/// The MountainCar-v0 environment.
#[derive(Debug, Clone)]
pub struct MountainCar {
    rng: XorWow,
    position: f64,
    velocity: f64,
    steps: usize,
    done: bool,
}

impl MountainCar {
    /// Gym's episode limit for v0.
    pub const MAX_STEPS: usize = 200;

    /// Creates a MountainCar seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        let mut env = MountainCar {
            rng: XorWow::seed_from_u64_value(seed ^ 0x0CA2_0000),
            position: -0.5,
            velocity: 0.0,
            steps: 0,
            done: false,
        };
        env.reset();
        env
    }

    /// Current `(position, velocity)`.
    pub fn state(&self) -> (f64, f64) {
        (self.position, self.velocity)
    }

    /// Did the car reach the goal?
    pub fn reached_goal(&self) -> bool {
        self.position >= GOAL_POS
    }
}

impl Environment for MountainCar {
    fn name(&self) -> &'static str {
        "MountainCar_v0"
    }

    fn observation_dim(&self) -> usize {
        2
    }

    fn action_dim(&self) -> usize {
        1
    }

    fn action_kind(&self) -> ActionKind {
        ActionKind::Discrete(3)
    }

    fn reset_into(&mut self, obs: &mut [f64]) {
        self.position = self.rng.uniform(-0.6, -0.4);
        self.velocity = 0.0;
        self.steps = 0;
        self.done = false;
        obs.copy_from_slice(&[self.position, self.velocity]);
    }

    fn step_into(&mut self, action: &[f64], obs: &mut [f64]) -> (f64, bool) {
        assert_eq!(action.len(), 1, "MountainCar takes one output");
        if self.done {
            obs.copy_from_slice(&[self.position, self.velocity]);
            return (0.0, true);
        }
        let a = quantize_action(action[0], 3) as f64 - 1.0; // -1, 0, +1
        self.velocity += a * FORCE + (3.0 * self.position).cos() * (-GRAVITY);
        self.velocity = self.velocity.clamp(-MAX_SPEED, MAX_SPEED);
        self.position += self.velocity;
        self.position = self.position.clamp(MIN_POS, MAX_POS);
        if self.position <= MIN_POS && self.velocity < 0.0 {
            self.velocity = 0.0; // inelastic left wall, as in gym
        }
        self.steps += 1;
        self.done = self.reached_goal() || self.steps >= Self::MAX_STEPS;
        obs.copy_from_slice(&[self.position, self.velocity]);
        (-1.0, self.done)
    }

    fn max_steps(&self) -> usize {
        Self::MAX_STEPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_in_valley() {
        let mut env = MountainCar::new(1);
        let obs = env.reset();
        assert!((-0.6..-0.4).contains(&obs[0]));
        assert_eq!(obs[1], 0.0);
    }

    #[test]
    fn coasting_never_escapes() {
        let mut env = MountainCar::new(2);
        env.reset();
        for _ in 0..200 {
            let s = env.step(&[0.5]); // action 1 = coast
            if s.done {
                break;
            }
        }
        assert!(!env.reached_goal(), "coasting cannot climb the hill");
    }

    #[test]
    fn oscillation_policy_escapes() {
        // Classic solution: push in the direction of motion.
        let mut env = MountainCar::new(3);
        env.reset();
        let mut steps = 0;
        loop {
            let (_, v) = env.state();
            let a = if v >= 0.0 { 0.99 } else { 0.01 };
            let s = env.step(&[a]);
            steps += 1;
            if s.done {
                break;
            }
        }
        assert!(env.reached_goal(), "momentum pumping should reach the flag");
        assert!(steps < 200);
    }

    #[test]
    fn reward_is_minus_one_per_step() {
        let mut env = MountainCar::new(4);
        env.reset();
        let s = env.step(&[0.0]);
        assert_eq!(s.reward, -1.0);
    }

    #[test]
    fn velocity_stays_clamped() {
        let mut env = MountainCar::new(5);
        env.reset();
        for _ in 0..200 {
            let s = env.step(&[0.99]);
            assert!(s.observation[1].abs() <= MAX_SPEED + 1e-12);
            if s.done {
                break;
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = MountainCar::new(6);
        let mut b = MountainCar::new(6);
        a.reset();
        b.reset();
        for _ in 0..100 {
            assert_eq!(a.step(&[0.8]), b.step(&[0.8]));
        }
    }
}
