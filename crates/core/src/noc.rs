//! Network-on-chip models for gene distribution (Section IV-C4).
//!
//! Two designs from the paper: the base design of "separate high-bandwidth
//! buses, one for the distribution and one for the collection", and a
//! "tree-based network with multicast support" that exploits genome-level
//! reuse (GLR) — when many PEs consume the same parent genome, a multicast
//! tree reads each gene from SRAM **once** and forks it in the fabric,
//! which Fig 11(b) shows cuts SRAM reads by >100×.

use std::fmt;

/// Which interconnect feeds the EvE PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NocKind {
    /// Separate point-to-point distribution/collection buses: every PE
    /// stream demands its own SRAM read.
    #[default]
    PointToPoint,
    /// A fork tree with multicast: one SRAM read per *distinct* parent
    /// gene per cycle, forked to all subscribing PEs.
    MulticastTree,
}

impl fmt::Display for NocKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocKind::PointToPoint => write!(f, "point-to-point"),
            NocKind::MulticastTree => write!(f, "multicast-tree"),
        }
    }
}

/// Traffic counters for one simulated span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NocStats {
    /// SRAM reads issued on the distribution network.
    pub sram_reads: u64,
    /// Gene flits delivered to PEs (read amplification = delivered/reads).
    pub flits_delivered: u64,
    /// Child-gene flits collected from PEs to the Gene Merge block.
    pub flits_collected: u64,
    /// Cycles the distribution network was active.
    pub active_cycles: u64,
}

impl NocStats {
    /// Accumulates another counter set.
    pub fn merge(&mut self, other: &NocStats) {
        self.sram_reads += other.sram_reads;
        self.flits_delivered += other.flits_delivered;
        self.flits_collected += other.flits_collected;
        self.active_cycles += other.active_cycles;
    }

    /// Average SRAM reads per active cycle — the Fig 11(b) metric.
    pub fn reads_per_cycle(&self) -> f64 {
        if self.active_cycles == 0 {
            0.0
        } else {
            self.sram_reads as f64 / self.active_cycles as f64
        }
    }
}

/// The distribution/collection network model.
///
/// Per delivery cycle, each active PE consumes one parent-gene pair. The
/// model receives, for each cycle, the list of *(parent genome id, gene
/// offset)* requests across PEs and charges SRAM reads according to the
/// interconnect kind.
#[derive(Debug, Clone)]
pub struct Noc {
    kind: NocKind,
    stats: NocStats,
    scratch: Vec<(u64, u32)>,
}

impl Noc {
    /// Creates a network of the given kind.
    pub fn new(kind: NocKind) -> Self {
        Noc {
            kind,
            stats: NocStats::default(),
            scratch: Vec::new(),
        }
    }

    /// Interconnect kind.
    pub fn kind(&self) -> NocKind {
        self.kind
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Resets counters.
    pub fn reset_stats(&mut self) {
        self.stats = NocStats::default();
    }

    /// Simulates one distribution cycle. `requests` holds one entry per
    /// active PE input port: the (genome id, gene offset) it needs this
    /// cycle. Returns the number of SRAM reads issued.
    pub fn distribute_cycle(&mut self, requests: &[(u64, u32)]) -> u64 {
        if requests.is_empty() {
            return 0;
        }
        let reads = match self.kind {
            NocKind::PointToPoint => requests.len() as u64,
            NocKind::MulticastTree => {
                // One read per distinct (genome, offset); the tree forks it.
                self.scratch.clear();
                self.scratch.extend_from_slice(requests);
                self.scratch.sort_unstable();
                self.scratch.dedup();
                self.scratch.len() as u64
            }
        };
        self.stats.sram_reads += reads;
        self.stats.flits_delivered += requests.len() as u64;
        self.stats.active_cycles += 1;
        reads
    }

    /// Records `n` child genes collected toward the Gene Merge block.
    pub fn collect(&mut self, n: u64) {
        self.stats.flits_collected += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_reads_once_per_pe() {
        let mut noc = Noc::new(NocKind::PointToPoint);
        // 8 PEs all requesting the same parent gene.
        let reqs = vec![(7u64, 3u32); 8];
        assert_eq!(noc.distribute_cycle(&reqs), 8);
        assert_eq!(noc.stats().sram_reads, 8);
    }

    #[test]
    fn multicast_reads_once_per_distinct_gene() {
        let mut noc = Noc::new(NocKind::MulticastTree);
        let reqs = vec![(7u64, 3u32); 8];
        assert_eq!(
            noc.distribute_cycle(&reqs),
            1,
            "fork in the tree, not at SRAM"
        );
        // Mixed requests: 2 distinct genes.
        let reqs = vec![(7, 3), (7, 3), (9, 1), (9, 1)];
        assert_eq!(noc.distribute_cycle(&reqs), 2);
    }

    #[test]
    fn multicast_never_beats_p2p_backwards() {
        // Multicast reads <= p2p reads on any request pattern.
        let patterns: Vec<Vec<(u64, u32)>> = vec![
            vec![(1, 0), (2, 0), (3, 0)],
            vec![(1, 0); 16],
            vec![(1, 0), (1, 1), (1, 2)],
            vec![],
        ];
        for p in patterns {
            let mut a = Noc::new(NocKind::PointToPoint);
            let mut b = Noc::new(NocKind::MulticastTree);
            let ra = a.distribute_cycle(&p);
            let rb = b.distribute_cycle(&p);
            assert!(rb <= ra, "{p:?}");
        }
    }

    #[test]
    fn reads_per_cycle_metric() {
        let mut noc = Noc::new(NocKind::PointToPoint);
        noc.distribute_cycle(&[(1, 0), (2, 0)]);
        noc.distribute_cycle(&[(1, 1), (2, 1)]);
        assert!((noc.stats().reads_per_cycle() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cycle_is_free() {
        let mut noc = Noc::new(NocKind::MulticastTree);
        assert_eq!(noc.distribute_cycle(&[]), 0);
        assert_eq!(noc.stats().active_cycles, 0);
    }

    #[test]
    fn collection_counted_separately() {
        let mut noc = Noc::new(NocKind::PointToPoint);
        noc.collect(42);
        assert_eq!(noc.stats().flits_collected, 42);
        assert_eq!(noc.stats().sram_reads, 0);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = NocStats {
            sram_reads: 1,
            flits_delivered: 2,
            flits_collected: 3,
            active_cycles: 4,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.sram_reads, 2);
        assert_eq!(a.active_cycles, 8);
    }
}
