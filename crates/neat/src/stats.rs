//! Per-generation statistics — the raw material of Figs 4, 5, 10(d) and
//! 11(a) of the paper.

use crate::genome::Genome;
use crate::trace::{GenerationTrace, OpCounters};
use std::fmt;

/// Population-health diagnostics streamed on every [`GenerationStats`] (and
/// therefore on every `OwnedGenerationEvent` a session observer or the
/// serve layer's `observe` verb sees) — the live operational signal the
/// continual-learning scenario suite monitors.
///
/// All four fields are pure functions of the evaluated generation's
/// genomes and species assignments, so they are bit-identical at any
/// worker count and across checkpoint/resume, and they participate in
/// [`GenerationStats`] equality (unlike the wall-clock phase timings).
///
/// Archipelago runs merge per-island values: `unique_genomes` sums
/// (per-island uniqueness; a genome shared by two islands counts on
/// both), `largest_species` takes the maximum, and the two entropies are
/// population-weighted means of the per-island values (a *within-island*
/// signal by construction — see `docs/scenarios.md`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PopulationDiagnostics {
    /// Compressed-size ratio of the population's genome-buffer words
    /// under a greedy word-level LZ pass (see
    /// [`PopulationDiagnostics::collect`]): low values mean the gene
    /// streams are mutually redundant (clones, shared structure), values
    /// near the literal ceiling mean high-order diversity that plain
    /// gene counts cannot see. `0.0` for an empty population.
    pub high_order_entropy: f64,
    /// Number of distinct genomes, where identity is a hash over the
    /// sorted gene keys *and* every attribute bit (bias/response/weight
    /// f64 bits, activation/aggregation/type codes, enabled flags) —
    /// elites and unmutated crossover copies collapse, any attribute
    /// perturbation separates.
    pub unique_genomes: usize,
    /// Shannon entropy (nats) of the species size distribution: `0.0`
    /// when one species holds everyone, `ln(k)` when `k` species split
    /// the population evenly.
    pub species_entropy: f64,
    /// Member count of the largest species (0 before speciation).
    pub largest_species: usize,
}

/// Hash-table size for the LZ match probe (one `usize` slot per bucket).
const LZ_TABLE_BITS: u32 = 16;

/// Word budget for the LZ entropy probe: the scan covers at most this
/// many words of the population stream (a deterministic prefix —
/// identical runs scan identical words), so the estimate stays O(cap)
/// when megapopulation gene streams run to millions of words. The cap
/// spans >1000 genomes at realistic sizes — plenty for a redundancy
/// estimate, and far past the window a single-probe LZ match reaches
/// anyway; `docs/scenarios.md` pins it as part of the diagnostics
/// budget. The unique-genome count is **not** capped: every genome is
/// hashed.
const LZ_SCAN_CAP: usize = 1 << 16;

/// FNV-1a offset basis / prime, the same constants the snapshot checksum
/// uses.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-style fold of one 8-byte word in a single xor-multiply (instead
/// of the canonical byte-at-a-time loop): the hash only feeds the
/// unique-genome identity count, where any well-mixing deterministic
/// function serves, and at pop 10⁴ the stream runs to ~10⁶ words — the
/// 8× cheaper fold keeps the diagnostics inside their <5 %-of-eval
/// budget (`docs/scenarios.md`).
fn fnv1a_word(hash: u64, word: u64) -> u64 {
    (hash ^ word).wrapping_mul(FNV_PRIME).rotate_left(29)
}

/// One node gene as diagnostic words — the per-gene layout of the 8-byte
/// hardware encoding widened to carry the exact attribute bits (key/meta
/// word, then the attribute payload). Shared by the identity hash and
/// the LZ entropy probe so the two streams can never drift apart.
fn node_words(n: &crate::gene::NodeGene) -> [u64; 3] {
    [
        ((n.id.value() as u64) << 32)
            | ((n.node_type.to_code() as u64) << 16)
            | ((n.activation.to_code() as u64) << 8)
            | n.aggregation.to_code() as u64,
        n.bias.to_bits(),
        n.response.to_bits(),
    ]
}

/// One connection gene as diagnostic words (see [`node_words`]).
fn conn_words(c: &crate::gene::ConnGene) -> [u64; 3] {
    [
        ((c.key.src.value() as u64) << 32) | c.key.dst.value() as u64,
        c.weight.to_bits(),
        c.enabled as u64,
    ]
}

/// Serializes one genome's gene stream into diagnostic words. Genes are
/// already sorted by key inside a genome, so identical genomes produce
/// identical streams.
fn push_genome_words(genome: &Genome, words: &mut Vec<u64>) {
    for n in genome.node_genes() {
        words.extend_from_slice(&node_words(n));
    }
    for c in genome.conn_genes() {
        words.extend_from_slice(&conn_words(c));
    }
}

/// Identity hash of one genome over exactly the [`push_genome_words`]
/// stream, folded in place — the hot path of the unique-genome count
/// never materializes the words.
fn genome_identity_hash(genome: &Genome) -> u64 {
    let mut hash = FNV_OFFSET;
    for n in genome.node_genes() {
        for w in node_words(n) {
            hash = fnv1a_word(hash, w);
        }
    }
    for c in genome.conn_genes() {
        for w in conn_words(c) {
            hash = fnv1a_word(hash, w);
        }
    }
    hash
}

/// Greedy single-probe LZ estimate over a word stream: each position
/// either extends a back-reference run (found through a 2^16-bucket hash
/// of the word) or emits a literal. Literals are costed at 9 bytes
/// (flag + word), back-reference tokens at 5 (flag + offset + length) —
/// the exact token model is pinned in `docs/scenarios.md`. Returns the
/// estimated compressed byte count.
fn lz_compressed_bytes(words: &[u64]) -> usize {
    let mut table = vec![usize::MAX; 1 << LZ_TABLE_BITS];
    let mut compressed = 0usize;
    let mut i = 0;
    while i < words.len() {
        let h = (words[i]
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_right(32)
            & ((1 << LZ_TABLE_BITS) - 1)) as usize;
        let candidate = table[h];
        table[h] = i;
        if candidate != usize::MAX && words[candidate] == words[i] {
            let mut len = 1;
            while i + len < words.len()
                && candidate + len < i
                && words[candidate + len] == words[i + len]
            {
                len += 1;
            }
            compressed += 5;
            i += len;
        } else {
            compressed += 9;
            i += 1;
        }
    }
    compressed
}

impl PopulationDiagnostics {
    /// Computes the genome-derived diagnostics (`high_order_entropy`,
    /// `unique_genomes`) over one evaluated population. Species fields
    /// start at zero; backends that know the species assignments fill
    /// them with [`PopulationDiagnostics::set_species_sizes`].
    pub fn collect(genomes: &[Genome]) -> PopulationDiagnostics {
        // Every genome is hashed for the identity count (folded in
        // place, no buffer), but only the first `LZ_SCAN_CAP` words are
        // materialized for the entropy probe — the collector never
        // builds the multi-megabyte population stream a pop-10⁴
        // generation would otherwise cost.
        let mut stream: Vec<u64> = Vec::new();
        let mut hashes = Vec::with_capacity(genomes.len());
        for genome in genomes {
            hashes.push(genome_identity_hash(genome));
            if stream.len() < LZ_SCAN_CAP {
                push_genome_words(genome, &mut stream);
                stream.truncate(LZ_SCAN_CAP);
            }
        }
        let high_order_entropy = if stream.is_empty() {
            0.0
        } else {
            lz_compressed_bytes(&stream) as f64 / (stream.len() * 8) as f64
        };
        hashes.sort_unstable();
        hashes.dedup();
        PopulationDiagnostics {
            high_order_entropy,
            unique_genomes: hashes.len(),
            species_entropy: 0.0,
            largest_species: 0,
        }
    }

    /// Fills the species-diversity fields from the member counts of the
    /// evaluated generation's species (empty iterators leave both zero).
    pub fn set_species_sizes(&mut self, sizes: impl Iterator<Item = usize>) {
        let sizes: Vec<usize> = sizes.filter(|&s| s > 0).collect();
        let total: usize = sizes.iter().sum();
        self.largest_species = sizes.iter().copied().max().unwrap_or(0);
        self.species_entropy = if total == 0 {
            0.0
        } else {
            -sizes
                .iter()
                .map(|&s| {
                    let p = s as f64 / total as f64;
                    p * p.ln()
                })
                .sum::<f64>()
        };
    }
}

/// Summary of one generation: fitness, structure and operation counts.
///
/// Equality ignores the wall-clock phase timings (`speciate_ns`,
/// `reproduce_ns`, `eval_ns`): two bit-identical runs produce equal
/// stats even though their clocks differ.
#[derive(Debug, Clone)]
pub struct GenerationStats {
    /// Generation index (0-based).
    pub generation: usize,
    /// Best raw fitness in the generation.
    pub max_fitness: f64,
    /// Mean raw fitness.
    pub mean_fitness: f64,
    /// Worst raw fitness.
    pub min_fitness: f64,
    /// Number of living species.
    pub num_species: usize,
    /// Total node genes across the population (Fig 11(a)).
    pub total_nodes: usize,
    /// Total connection genes across the population (Fig 11(a)).
    pub total_conns: usize,
    /// Node + connection genes across the population (Fig 4(b)).
    pub total_genes: usize,
    /// Genes of the largest genome.
    pub max_genome_genes: usize,
    /// Population memory footprint in the 8-byte hardware gene encoding
    /// (Fig 5(b); the paper reports <1 MB per generation).
    pub memory_bytes: usize,
    /// Reproduction operation tallies for the step that produced the *next*
    /// generation (Fig 5(a)).
    pub ops: OpCounters,
    /// Times the most-reused parent was used (Fig 4(c) GLR metric).
    pub fittest_parent_reuse: usize,
    /// Total MAC operations for one inference pass over the population.
    pub inference_macs: u64,
    /// Environment steps consumed evaluating this generation, summed
    /// order-insensitively across the population (0 for synthetic fitness
    /// functions that report no steps). Filled in by the session backends.
    pub env_steps: u64,
    /// Population-health diagnostics (entropy, uniqueness, species
    /// diversity). Deterministic, so included in equality.
    pub diagnostics: PopulationDiagnostics,
    /// Wall-clock nanoseconds spent in the speciation phase (speciate +
    /// stagnation removal + fitness sharing) of the step that produced
    /// the *next* generation. Excluded from equality.
    pub speciate_ns: u64,
    /// Wall-clock nanoseconds spent in the reproduction phase of the
    /// step that produced the *next* generation. Excluded from equality.
    pub reproduce_ns: u64,
    /// Wall-clock nanoseconds spent evaluating this generation's
    /// genomes. Excluded from equality.
    pub eval_ns: u64,
}

impl PartialEq for GenerationStats {
    fn eq(&self, other: &Self) -> bool {
        // Everything except the phase timings: timings are wall-clock
        // measurements and differ between bit-identical runs.
        self.generation == other.generation
            && self.max_fitness == other.max_fitness
            && self.mean_fitness == other.mean_fitness
            && self.min_fitness == other.min_fitness
            && self.num_species == other.num_species
            && self.total_nodes == other.total_nodes
            && self.total_conns == other.total_conns
            && self.total_genes == other.total_genes
            && self.max_genome_genes == other.max_genome_genes
            && self.memory_bytes == other.memory_bytes
            && self.ops == other.ops
            && self.fittest_parent_reuse == other.fittest_parent_reuse
            && self.inference_macs == other.inference_macs
            && self.env_steps == other.env_steps
            && self.diagnostics == other.diagnostics
    }
}

impl GenerationStats {
    /// Gathers structure statistics from a population of evaluated genomes.
    /// `ops` / `reuse` come from the reproduction step (zero for the final
    /// generation, which produces no children).
    pub fn collect(
        generation: usize,
        genomes: &[Genome],
        num_species: usize,
        trace: Option<&GenerationTrace>,
        inference_macs: u64,
    ) -> GenerationStats {
        let mut max_fitness = f64::NEG_INFINITY;
        let mut min_fitness = f64::INFINITY;
        let mut sum = 0.0;
        let mut total_nodes = 0;
        let mut total_conns = 0;
        let mut max_genome_genes = 0;
        for g in genomes {
            let f = g.fitness().unwrap_or(0.0);
            max_fitness = max_fitness.max(f);
            min_fitness = min_fitness.min(f);
            sum += f;
            total_nodes += g.num_nodes();
            total_conns += g.num_conns();
            max_genome_genes = max_genome_genes.max(g.num_genes());
        }
        let n = genomes.len().max(1);
        let total_genes = total_nodes + total_conns;
        GenerationStats {
            generation,
            max_fitness,
            mean_fitness: sum / n as f64,
            min_fitness,
            num_species,
            total_nodes,
            total_conns,
            total_genes,
            max_genome_genes,
            memory_bytes: total_genes * crate::genome::GENE_BYTES,
            ops: trace.map(|t| t.totals()).unwrap_or_default(),
            fittest_parent_reuse: trace.map(|t| t.fittest_parent_reuse()).unwrap_or(0),
            inference_macs,
            env_steps: 0,
            diagnostics: PopulationDiagnostics::collect(genomes),
            speciate_ns: 0,
            reproduce_ns: 0,
            eval_ns: 0,
        }
    }
}

impl fmt::Display for GenerationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gen {:>4}  fit max/mean/min {:>10.3}/{:>10.3}/{:>10.3}  species {:>3}  genes {:>8}  mem {:>8} B  ops {:>9}  reuse {:>3}",
            self.generation,
            self.max_fitness,
            self.mean_fitness,
            self.min_fitness,
            self.num_species,
            self.total_genes,
            self.memory_bytes,
            self.ops.total(),
            self.fittest_parent_reuse,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NeatConfig;
    use crate::rng::XorWow;

    #[test]
    fn collect_computes_aggregates() {
        let c = NeatConfig::builder(2, 1).build().unwrap();
        let mut r = XorWow::seed_from_u64_value(4);
        let mut genomes: Vec<Genome> = (0..4).map(|k| Genome::initial(k, &c, &mut r)).collect();
        for (i, g) in genomes.iter_mut().enumerate() {
            g.set_fitness(i as f64);
        }
        let s = GenerationStats::collect(3, &genomes, 2, None, 100);
        assert_eq!(s.generation, 3);
        assert_eq!(s.max_fitness, 3.0);
        assert_eq!(s.min_fitness, 0.0);
        assert!((s.mean_fitness - 1.5).abs() < 1e-12);
        assert_eq!(s.num_species, 2);
        // initial genome: 3 nodes + 2 conns = 5 genes each
        assert_eq!(s.total_genes, 20);
        assert_eq!(s.memory_bytes, 160);
        assert_eq!(s.inference_macs, 100);
        assert_eq!(s.fittest_parent_reuse, 0);
    }

    #[test]
    fn clones_compress_and_collapse_to_one_unique_genome() {
        // Random initial weights: zero-weight initial genomes (the paper
        // default) are all identical, which is exactly what this test
        // must tell apart from a varied population.
        let c = NeatConfig::builder(6, 2)
            .initial_weights(crate::config::InitialWeights::Uniform { lo: -1.0, hi: 1.0 })
            .build()
            .unwrap();
        let mut r = XorWow::seed_from_u64_value(9);
        let one = Genome::initial(0, &c, &mut r);
        let clones: Vec<Genome> = (0..32).map(|_| one.clone()).collect();
        let d = PopulationDiagnostics::collect(&clones);
        assert_eq!(d.unique_genomes, 1);
        // 31 of 32 gene streams are pure back-references.
        let varied: Vec<Genome> = (0..32)
            .map(|k| {
                let mut rk = XorWow::seed_from_u64_value(1000 + k);
                Genome::initial(k, &c, &mut rk)
            })
            .collect();
        let dv = PopulationDiagnostics::collect(&varied);
        assert!(
            d.high_order_entropy < dv.high_order_entropy,
            "clones must compress harder than varied genomes: {} vs {}",
            d.high_order_entropy,
            dv.high_order_entropy
        );
        assert!(dv.unique_genomes > 1);
    }

    #[test]
    fn unique_genomes_separates_on_any_attribute_bit() {
        use crate::gene::{ConnGene, NodeGene, NodeId};
        let build = |weight: f64| {
            Genome::from_parts(
                0,
                1,
                1,
                [NodeGene::input(NodeId(0)), NodeGene::output(NodeId(1))],
                [ConnGene::new(NodeId(0), NodeId(1), weight)],
            )
            .unwrap()
        };
        let a = build(0.5);
        // Flip one low-order weight bit: still "equal" to the eye, but a
        // different genome to the diagnostic.
        let b = build(f64::from_bits(0.5f64.to_bits() ^ 1));
        assert_eq!(
            PopulationDiagnostics::collect(&[a.clone(), a.clone()]).unique_genomes,
            1
        );
        assert_eq!(PopulationDiagnostics::collect(&[a, b]).unique_genomes, 2);
    }

    #[test]
    fn species_entropy_is_zero_for_one_species_and_ln_k_for_even_split() {
        let mut d = PopulationDiagnostics::default();
        d.set_species_sizes([12usize].into_iter());
        assert_eq!(d.species_entropy, 0.0);
        assert_eq!(d.largest_species, 12);
        d.set_species_sizes([5usize, 5, 5, 5].into_iter());
        assert!((d.species_entropy - 4.0f64.ln()).abs() < 1e-12);
        assert_eq!(d.largest_species, 5);
        d.set_species_sizes(std::iter::empty());
        assert_eq!(d.species_entropy, 0.0);
        assert_eq!(d.largest_species, 0);
    }

    #[test]
    fn diagnostics_are_deterministic() {
        let c = NeatConfig::builder(4, 1).build().unwrap();
        let genomes: Vec<Genome> = (0..16)
            .map(|k| {
                let mut rk = XorWow::seed_from_u64_value(77 + k);
                Genome::initial(k, &c, &mut rk)
            })
            .collect();
        let a = PopulationDiagnostics::collect(&genomes);
        let b = PopulationDiagnostics::collect(&genomes);
        assert_eq!(a, b);
        assert!(a.high_order_entropy > 0.0 && a.high_order_entropy <= 9.0 / 8.0);
    }

    #[test]
    fn display_is_nonempty() {
        let c = NeatConfig::builder(2, 1).build().unwrap();
        let mut r = XorWow::seed_from_u64_value(4);
        let mut g = Genome::initial(0, &c, &mut r);
        g.set_fitness(1.0);
        let s = GenerationStats::collect(0, &[g], 1, None, 0);
        assert!(!s.to_string().is_empty());
    }
}
