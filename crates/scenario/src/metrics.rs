//! Continual-learning metrics, computed incrementally by a session
//! observer.
//!
//! A [`MetricsRecorder`] watches a session running a [`TaskSequence`]
//! workload and accumulates a [`ContinualMetrics`] value:
//!
//! * the **per-task fitness matrix** — at the end of every task phase
//!   (and once at generation 0 as the baseline row) the generation
//!   champion is probed on *every* task of the plan with fixed probe
//!   seeds ([`TaskPlan::probe_fitness`]), giving the matrix `R[i][j]`
//!   the continual-learning surveys build their metrics from;
//! * **forgetting**, **backward transfer** and **forward transfer**,
//!   derived from the matrix with the survey-standard definitions (see
//!   the methods on [`ContinualMetrics`]);
//! * **recovery time** — every drift event (task switch or within-task
//!   regime change, per [`TaskPlan::is_boundary`]) is timestamped with
//!   the pre-drift population max fitness, and the recorder counts the
//!   generations until the population max climbs back over a
//!   [`RecoveryThreshold`]-derived target.
//!
//! Everything the recorder computes is a pure function of the event
//! stream, and the event stream is bit-identical at any worker count —
//! so the metrics are too. The recorder is shareable (internally an
//! `Arc<Mutex<..>>`): attach one observer to a session, checkpoint the
//! session mid-sequence, attach a second observer from the *same*
//! recorder to the resumed session, and the accumulated metrics equal
//! the uninterrupted run's.
//!
//! [`TaskSequence`]: crate::sequence::TaskSequence
//! [`TaskPlan::probe_fitness`]: crate::sequence::TaskPlan::probe_fitness
//! [`TaskPlan::is_boundary`]: crate::sequence::TaskPlan::is_boundary

use crate::sequence::TaskPlan;
use genesys_neat::{GenerationEvent, Network};
use std::sync::{Arc, Mutex};

/// When a drifted population counts as recovered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryThreshold {
    /// Recovered when the population max fitness is back within
    /// `fraction` of the pre-drift max: the target is
    /// `pre - |pre| * (1 - fraction)`, which works for positive and
    /// negative fitness scales alike (`fraction = 1.0` demands the full
    /// pre-drift level).
    WithinFraction(f64),
    /// Recovered when the population max fitness reaches a fixed value.
    Absolute(f64),
}

impl RecoveryThreshold {
    /// The recovery target for a drift event with pre-drift max `pre`.
    pub fn target(&self, pre: f64) -> f64 {
        match *self {
            RecoveryThreshold::WithinFraction(fraction) => pre - pre.abs() * (1.0 - fraction),
            RecoveryThreshold::Absolute(value) => value,
        }
    }
}

/// One row of the per-task fitness matrix: the generation champion
/// probed on every task of the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeRow {
    /// Scenario generation at which the probe ran.
    pub generation: u64,
    /// `Some(i)`: the row taken at the end of task `i`'s phase.
    /// `None`: the baseline row taken at scenario generation 0, before
    /// any task phase has completed.
    pub after_task: Option<usize>,
    /// `fitness[j]`: probe fitness on task `j` (fixed seeds, un-drifted
    /// task — see [`TaskPlan::probe_fitness`]).
    ///
    /// [`TaskPlan::probe_fitness`]: crate::sequence::TaskPlan::probe_fitness
    pub fitness: Vec<f64>,
}

/// One timestamped drift event and its recovery status.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftEvent {
    /// Scenario generation of the boundary (first generation of the new
    /// world).
    pub generation: u64,
    /// Population max fitness of the last pre-drift generation.
    pub pre_drift_best: f64,
    /// The fitness level that counts as recovered (see
    /// [`RecoveryThreshold::target`]).
    pub target: f64,
    /// Generations from the boundary until the population max reached
    /// the target (`Some(0)`: never dipped below it). `None`: not yet
    /// recovered.
    pub recovery_generations: Option<u64>,
}

/// The accumulated continual-learning record of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinualMetrics {
    /// Number of tasks in the plan (the width of every probe row).
    pub tasks: usize,
    /// Probe rows in chronological order: the per-task fitness matrix.
    pub probes: Vec<ProbeRow>,
    /// `(scenario_generation, population max fitness)` per observed
    /// generation, in event order.
    pub max_fitness: Vec<(u64, f64)>,
    /// Drift events in chronological order.
    pub drift_events: Vec<DriftEvent>,
}

impl ContinualMetrics {
    fn empty(tasks: usize) -> ContinualMetrics {
        ContinualMetrics {
            tasks,
            probes: Vec::new(),
            max_fitness: Vec::new(),
            drift_events: Vec::new(),
        }
    }

    /// The latest probe row taken at the end of task `index`'s phase.
    pub fn task_row(&self, index: usize) -> Option<&ProbeRow> {
        self.probes
            .iter()
            .rev()
            .find(|row| row.after_task == Some(index))
    }

    /// The baseline probe row (scenario generation 0), if recorded.
    pub fn baseline_row(&self) -> Option<&ProbeRow> {
        self.probes.iter().find(|row| row.after_task.is_none())
    }

    /// The most recent probe row.
    pub fn final_row(&self) -> Option<&ProbeRow> {
        self.probes.last()
    }

    /// Forgetting of task `index`: the best probe fitness the population
    /// ever showed on the task (over all rows before the final one)
    /// minus its fitness in the final row. Positive values mean skill
    /// was lost. `None` until at least two probe rows exist.
    pub fn forgetting(&self, index: usize) -> Option<f64> {
        let (earlier, last) = self.probes.split_at(self.probes.len().checked_sub(1)?);
        let last = last.first()?;
        let best_earlier = earlier
            .iter()
            .map(|row| row.fitness[index])
            .fold(f64::NEG_INFINITY, f64::max);
        if best_earlier == f64::NEG_INFINITY {
            return None;
        }
        Some(best_earlier - last.fitness[index])
    }

    /// Mean forgetting over every task except the one the final row was
    /// taken after (the survey convention: the task just trained cannot
    /// have been forgotten yet).
    pub fn mean_forgetting(&self) -> Option<f64> {
        let skip = self.final_row()?.after_task;
        let mut sum = 0.0;
        let mut n = 0usize;
        for index in 0..self.tasks {
            if Some(index) == skip {
                continue;
            }
            if let Some(f) = self.forgetting(index) {
                sum += f;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Backward transfer: mean over previously trained tasks `j` of
    /// `R[final][j] - R[j][j]` — how much later training helped (positive)
    /// or hurt (negative) earlier tasks. `None` until the final row and
    /// at least one earlier task row exist.
    pub fn backward_transfer(&self) -> Option<f64> {
        let last = self.final_row()?;
        let skip = last.after_task;
        let mut sum = 0.0;
        let mut n = 0usize;
        for index in 0..self.tasks {
            if Some(index) == skip {
                continue;
            }
            if let Some(row) = self.task_row(index) {
                if row.generation < last.generation {
                    sum += last.fitness[index] - row.fitness[index];
                    n += 1;
                }
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Forward transfer: mean over tasks `j >= 1` of
    /// `R[j-1][j] - R[baseline][j]` — how much training on earlier tasks
    /// primed a task before it was ever trained on. Requires the
    /// baseline row and at least one applicable task-end row.
    pub fn forward_transfer(&self) -> Option<f64> {
        let baseline = self.baseline_row()?;
        let mut sum = 0.0;
        let mut n = 0usize;
        for index in 1..self.tasks {
            if let Some(row) = self.task_row(index - 1) {
                sum += row.fitness[index] - baseline.fitness[index];
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }
}

struct RecorderState {
    plan: TaskPlan,
    generation_offset: u64,
    probe_episodes: usize,
    probe_seed: u64,
    recovery: RecoveryThreshold,
    last_max: Option<f64>,
    metrics: ContinualMetrics,
}

impl RecorderState {
    fn on_event(&mut self, event: &GenerationEvent<'_>) {
        let g = self.generation_offset + event.stats.generation as u64;
        let max = event.stats.max_fitness;
        // 1. Timestamp a new drift event at this boundary (needs the
        //    pre-drift max, so the very first observed generation can
        //    never open one).
        if self.plan.is_boundary(g) {
            if let Some(pre) = self.last_max {
                let target = self.recovery.target(pre);
                self.metrics.drift_events.push(DriftEvent {
                    generation: g,
                    pre_drift_best: pre,
                    target,
                    recovery_generations: None,
                });
            }
        }
        // 2. Recovery sweep: the current max may close any open event
        //    (including one opened this generation — recovery 0 means
        //    the population never dipped below the target).
        for drift in &mut self.metrics.drift_events {
            if drift.recovery_generations.is_none() && max >= drift.target {
                drift.recovery_generations = Some(g - drift.generation);
            }
        }
        // 3. Probe rows: the baseline at scenario generation 0, and the
        //    end of every task phase.
        let (task, local) = self.plan.task_at(g);
        let baseline = g == 0;
        let task_end = local + 1 == self.plan.tasks()[task].generations;
        if baseline || task_end {
            // Probe the generation champion, not the session-wide best:
            // on a curriculum the fitness scales of different tasks are
            // not comparable, so `best` freezes on whichever task scores
            // highest (CartPole's 200 beats every Acrobot score) and
            // would yield a degenerate matrix. The champion tracks what
            // the population can do *now*.
            if let Some(best) = event.champion.or(event.best) {
                if let Ok(net) = Network::from_genome(best) {
                    let fitness: Vec<f64> = (0..self.plan.tasks().len())
                        .map(|j| {
                            self.plan
                                .probe_fitness(&net, j, self.probe_episodes, self.probe_seed)
                        })
                        .collect();
                    if baseline {
                        self.metrics.probes.push(ProbeRow {
                            generation: g,
                            after_task: None,
                            fitness: fitness.clone(),
                        });
                    }
                    if task_end {
                        self.metrics.probes.push(ProbeRow {
                            generation: g,
                            after_task: Some(task),
                            fitness,
                        });
                    }
                }
            }
        }
        self.metrics.max_fitness.push((g, max));
        self.last_max = Some(max);
    }
}

/// Incremental continual-metrics collector; see the module docs.
///
/// Cloning the recorder (or calling [`MetricsRecorder::observer`] more
/// than once) shares the same accumulator — that is how one metrics
/// record spans a checkpoint/resume pair of sessions.
#[derive(Clone)]
pub struct MetricsRecorder {
    shared: Arc<Mutex<RecorderState>>,
}

impl std::fmt::Debug for MetricsRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.lock().unwrap();
        f.debug_struct("MetricsRecorder")
            .field("tasks", &state.plan.tasks().len())
            .field("probes", &state.metrics.probes.len())
            .field("drift_events", &state.metrics.drift_events.len())
            .finish()
    }
}

impl MetricsRecorder {
    /// Builds a recorder for `plan` with 1 probe episode, probe seed 0,
    /// and the given recovery threshold.
    pub fn new(plan: TaskPlan, recovery: RecoveryThreshold) -> MetricsRecorder {
        let tasks = plan.tasks().len();
        MetricsRecorder {
            shared: Arc::new(Mutex::new(RecorderState {
                plan,
                generation_offset: 0,
                probe_episodes: 1,
                probe_seed: 0,
                recovery,
                last_max: None,
                metrics: ContinualMetrics::empty(tasks),
            })),
        }
    }

    /// Sets the fixed probe-seed/episode-count pair used for every
    /// fitness-matrix probe. Panics if `episodes == 0`.
    pub fn probe(self, episodes: usize, seed: u64) -> MetricsRecorder {
        assert!(episodes > 0, "at least one probe episode required");
        {
            let mut state = self.shared.lock().unwrap();
            state.probe_episodes = episodes;
            state.probe_seed = seed;
        }
        self
    }

    /// Aligns the recorder with a workload running at a nonzero
    /// generation offset (`TaskSequence::with_generation_offset`); both
    /// must agree on the mapping from session to scenario generations.
    pub fn with_generation_offset(self, offset: u64) -> MetricsRecorder {
        self.shared.lock().unwrap().generation_offset = offset;
        self
    }

    /// An observer closure to register with `SessionBuilder::observe`.
    /// Every observer from the same recorder feeds one shared
    /// accumulator.
    pub fn observer(&self) -> impl FnMut(&GenerationEvent<'_>) + Send + 'static {
        let shared = Arc::clone(&self.shared);
        move |event: &GenerationEvent<'_>| {
            shared.lock().unwrap().on_event(event);
        }
    }

    /// A copy of the metrics accumulated so far.
    pub fn snapshot(&self) -> ContinualMetrics {
        self.shared.lock().unwrap().metrics.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::DriftSchedule;
    use crate::sequence::{Task, TaskPlan, TaskSequence};
    use genesys_gym::EnvKind;
    use genesys_neat::{InitialWeights, Session};

    fn metrics_with_rows(rows: Vec<ProbeRow>) -> ContinualMetrics {
        ContinualMetrics {
            tasks: 3,
            probes: rows,
            max_fitness: Vec::new(),
            drift_events: Vec::new(),
        }
    }

    #[test]
    fn matrix_derived_metrics_match_hand_computation() {
        let m = metrics_with_rows(vec![
            ProbeRow {
                generation: 0,
                after_task: None,
                fitness: vec![1.0, 2.0, 3.0],
            },
            ProbeRow {
                generation: 2,
                after_task: Some(0),
                fitness: vec![10.0, 4.0, 3.0],
            },
            ProbeRow {
                generation: 5,
                after_task: Some(1),
                fitness: vec![8.0, 12.0, 5.0],
            },
            ProbeRow {
                generation: 9,
                after_task: Some(2),
                fitness: vec![6.0, 11.0, 20.0],
            },
        ]);
        // Forgetting: best earlier minus final.
        assert_eq!(m.forgetting(0), Some(10.0 - 6.0));
        assert_eq!(m.forgetting(1), Some(12.0 - 11.0));
        // Mean skips the just-trained task 2.
        assert_eq!(m.mean_forgetting(), Some((4.0 + 1.0) / 2.0));
        // Backward transfer: R[final][j] - R[j][j] for j in {0, 1}.
        assert_eq!(
            m.backward_transfer(),
            Some(((6.0 - 10.0) + (11.0 - 12.0)) / 2.0)
        );
        // Forward transfer: R[j-1][j] - baseline[j] for j in {1, 2}.
        assert_eq!(
            m.forward_transfer(),
            Some(((4.0 - 2.0) + (5.0 - 3.0)) / 2.0)
        );
    }

    #[test]
    fn derived_metrics_are_none_without_enough_rows() {
        let empty = metrics_with_rows(vec![]);
        assert_eq!(empty.forgetting(0), None);
        assert_eq!(empty.mean_forgetting(), None);
        assert_eq!(empty.backward_transfer(), None);
        assert_eq!(empty.forward_transfer(), None);
        let one = metrics_with_rows(vec![ProbeRow {
            generation: 0,
            after_task: None,
            fitness: vec![0.0; 3],
        }]);
        assert_eq!(one.forgetting(0), None);
    }

    #[test]
    fn recovery_targets_handle_both_fitness_signs() {
        let within = RecoveryThreshold::WithinFraction(0.9);
        assert!((within.target(100.0) - 90.0).abs() < 1e-12);
        // Negative scales (Acrobot-style): within 10% of |pre| *below*
        // the pre-drift level.
        assert!((within.target(-100.0) - -110.0).abs() < 1e-12);
        assert_eq!(RecoveryThreshold::Absolute(5.0).target(-3.0), 5.0);
    }

    #[test]
    fn recorder_tracks_a_live_session() {
        let plan = TaskPlan::new(
            7,
            vec![
                Task::new(EnvKind::CartPole, 2),
                Task::new(EnvKind::MountainCar, 2).with_drift(DriftSchedule::Sudden { at: 1 }),
            ],
        );
        let mut config = plan.neat_config();
        config.pop_size = 12;
        config = {
            let mut c = config;
            c.initial_weights = InitialWeights::Uniform { lo: -1.0, hi: 1.0 };
            c.target_fitness = None;
            c
        };
        let recorder = MetricsRecorder::new(plan.clone(), RecoveryThreshold::WithinFraction(0.5))
            .probe(2, 1234);
        let mut session = Session::builder(config, 41)
            .unwrap()
            .workload(TaskSequence::new(plan))
            .observe(recorder.observer())
            .build();
        session.run(4);
        let metrics = recorder.snapshot();
        assert_eq!(metrics.max_fitness.len(), 4);
        assert_eq!(metrics.max_fitness[0].0, 0);
        // Rows: baseline at g0, end of task 0 at g1, end of task 1 at g3.
        let kinds: Vec<Option<usize>> = metrics.probes.iter().map(|r| r.after_task).collect();
        assert_eq!(kinds, [None, Some(0), Some(1)]);
        for row in &metrics.probes {
            assert_eq!(row.fitness.len(), 2);
            assert!(row.fitness.iter().all(|f| f.is_finite()));
        }
        // Boundaries at g2 (task switch) and g3 (drift at local 1).
        let at: Vec<u64> = metrics.drift_events.iter().map(|d| d.generation).collect();
        assert_eq!(at, [2, 3]);
        // Deterministic: a second identical run accumulates identical
        // metrics (worker-count invariance is covered by the workspace
        // scenario suite).
        let plan2 = TaskPlan::new(
            7,
            vec![
                Task::new(EnvKind::CartPole, 2),
                Task::new(EnvKind::MountainCar, 2).with_drift(DriftSchedule::Sudden { at: 1 }),
            ],
        );
        let mut config2 = plan2.neat_config();
        config2.pop_size = 12;
        config2.initial_weights = InitialWeights::Uniform { lo: -1.0, hi: 1.0 };
        config2.target_fitness = None;
        let recorder2 = MetricsRecorder::new(plan2.clone(), RecoveryThreshold::WithinFraction(0.5))
            .probe(2, 1234);
        let mut session2 = Session::builder(config2, 41)
            .unwrap()
            .workload(TaskSequence::new(plan2))
            .observe(recorder2.observer())
            .build();
        session2.run(4);
        assert_eq!(metrics, recorder2.snapshot());
    }
}
