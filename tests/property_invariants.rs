//! Property-based tests (proptest) on the core data structures and the
//! invariants the hardware depends on.

use genesys::neat::trace::OpCounters;
use genesys::neat::{
    Activation, Aggregation, Genome, InnovationTracker, NeatConfig, Network, XorWow,
};
use genesys::soc::{align_parents, codec, merge_child, EvePe, PeConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = NeatConfig> {
    (1usize..6, 1usize..4, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(
        |(inputs, outputs, add_n, add_c, del)| {
            NeatConfig::builder(inputs, outputs)
                .pop_size(8)
                .node_add_prob(add_n)
                .conn_add_prob(add_c)
                .node_delete_prob(del)
                .conn_delete_prob(del)
                .build()
                .expect("valid probabilities by construction")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of mutations leaves the genome structurally valid
    /// (no dangling connections, acyclic, interface intact).
    #[test]
    fn mutation_preserves_genome_invariants(
        config in arb_config(),
        seed in any::<u64>(),
        steps in 1usize..40,
    ) {
        let mut rng = XorWow::seed_from_u64_value(seed);
        let mut innov = InnovationTracker::new(config.first_hidden_id());
        let mut genome = Genome::initial(0, &config, &mut rng);
        let mut ops = OpCounters::new();
        for _ in 0..steps {
            genome.mutate(&config, &mut innov, &mut rng, &mut ops);
            prop_assert!(genome.validate().is_ok());
        }
        // And the phenotype always compiles and evaluates finitely.
        let net = Network::from_genome(&genome).expect("valid genome compiles");
        let out = net.activate(&vec![0.25; config.num_inputs]);
        prop_assert_eq!(out.len(), config.num_outputs);
        prop_assert!(out.iter().all(|v| v.is_finite()));
    }

    /// The compiled SoA plan is **bit-identical** to the retained
    /// reference interpreter on arbitrarily evolved genomes drawing from
    /// every activation and aggregation kind, and a reused scratch gives
    /// the same bits as fresh buffers.
    #[test]
    fn compiled_plan_bit_identical_to_reference_interpreter(
        config in arb_config(),
        seed in any::<u64>(),
        steps in 0usize..40,
        x in -2.0f64..2.0,
    ) {
        let mut config = config;
        config.initial_weights = genesys::neat::InitialWeights::Uniform { lo: -2.0, hi: 2.0 };
        config.activation_options = Activation::ALL.to_vec();
        config.aggregation_options = Aggregation::ALL.to_vec();
        config.activation_mutate_rate = 0.5;
        config.aggregation_mutate_rate = 0.5;
        let mut rng = XorWow::seed_from_u64_value(seed);
        let mut innov = InnovationTracker::new(config.first_hidden_id());
        let mut genome = Genome::initial(0, &config, &mut rng);
        let mut ops = OpCounters::new();
        let mut scratch = genesys::neat::Scratch::new();
        let mut reused = vec![0.0f64; config.num_outputs];
        let inputs: Vec<f64> = (0..config.num_inputs)
            .map(|i| x + 0.37 * i as f64)
            .collect();
        for _ in 0..steps {
            genome.mutate(&config, &mut innov, &mut rng, &mut ops);
        }
        let net = Network::from_genome(&genome).expect("valid genome compiles");
        let compiled = net.activate(&inputs);
        let interpreted = genesys::neat::network::reference::activate(&genome, &inputs)
            .expect("acyclic genome interprets");
        net.activate_into(&mut scratch, &inputs, &mut reused);
        prop_assert_eq!(compiled.len(), interpreted.len());
        for ((a, b), c) in compiled.iter().zip(interpreted.iter()).zip(reused.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "compiled vs reference");
            prop_assert_eq!(a.to_bits(), c.to_bits(), "fresh vs reused scratch");
        }
    }

    /// The 64-bit codec round-trips every gene: discrete fields exactly,
    /// continuous fields within half a quantization step.
    #[test]
    fn codec_roundtrip_bounds(
        id in 0u32..16384,
        bias in -31.0f64..31.0,
        response in -31.0f64..31.0,
        weight in -60.0f64..60.0,
        act in 0u8..16,
        agg in 0u8..7,
        enabled in any::<bool>(),
    ) {
        let node = genesys::neat::NodeGene {
            id: genesys::neat::NodeId(id),
            node_type: genesys::neat::NodeType::Hidden,
            bias,
            response,
            activation: Activation::from_code(act),
            aggregation: Aggregation::from_code(agg),
        };
        match codec::decode(codec::encode_node(&node)).unwrap() {
            codec::Gene::Node(d) => {
                prop_assert_eq!(d.id, node.id);
                prop_assert_eq!(d.activation, node.activation);
                prop_assert_eq!(d.aggregation, node.aggregation);
                prop_assert!((d.bias - bias.clamp(-32.0, 32.0)).abs() <= 0.5 / 64.0 + 1e-12);
            }
            codec::Gene::Conn(_) => prop_assert!(false, "kind flipped"),
        }
        let mut conn = genesys::neat::ConnGene::new(
            genesys::neat::NodeId(id),
            genesys::neat::NodeId(id / 2 + 1),
            weight,
        );
        conn.enabled = enabled;
        match codec::decode(codec::encode_conn(&conn)).unwrap() {
            codec::Gene::Conn(d) => {
                prop_assert_eq!(d.key, conn.key);
                prop_assert_eq!(d.enabled, enabled);
                prop_assert!((d.weight - weight.clamp(-64.0, 64.0)).abs() <= 0.5 / 512.0 + 1e-12);
            }
            codec::Gene::Node(_) => prop_assert!(false, "kind flipped"),
        }
    }

    /// Gene Split alignment is complete and ordered: every key of both
    /// parents appears exactly once, in genome-buffer order.
    #[test]
    fn alignment_is_complete_and_sorted(
        seed in any::<u64>(),
        steps_a in 0usize..15,
        steps_b in 0usize..15,
    ) {
        let config = NeatConfig::builder(3, 2).pop_size(4).build().unwrap();
        let mut rng = XorWow::seed_from_u64_value(seed);
        let mut innov = InnovationTracker::new(config.first_hidden_id());
        let mut a = Genome::initial(0, &config, &mut rng);
        let mut b = Genome::initial(1, &config, &mut rng);
        let mut ops = OpCounters::new();
        for _ in 0..steps_a { a.mutate(&config, &mut innov, &mut rng, &mut ops); }
        for _ in 0..steps_b { b.mutate(&config, &mut innov, &mut rng, &mut ops); }
        let pairs = align_parents(&a, &b);
        let total_keys: usize = pairs.len();
        let matching = pairs.iter().filter(|p| p.is_matching()).count();
        // |union| = |A| + |B| - |A ∩ B|
        prop_assert_eq!(total_keys, a.num_genes() + b.num_genes() - matching);
        let keys: Vec<_> = pairs.iter()
            .map(|p| p.fit.or(p.other).unwrap().sort_key())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(keys, sorted);
    }

    /// Streaming any two valid parents through a PE and merging always
    /// yields a valid child genome, whatever the mutation probabilities.
    #[test]
    fn pe_plus_merge_always_yields_valid_children(
        seed in any::<u64>(),
        perturb in 0.0f64..1.0,
        add in 0.0f64..0.5,
        del in 0.0f64..0.5,
        grow in 0usize..10,
    ) {
        let config = NeatConfig::builder(3, 1).pop_size(4).build().unwrap();
        let mut rng = XorWow::seed_from_u64_value(seed);
        let mut innov = InnovationTracker::new(config.first_hidden_id());
        let mut fit = Genome::initial(0, &config, &mut rng);
        let mut other = Genome::initial(1, &config, &mut rng);
        let mut ops = OpCounters::new();
        for _ in 0..grow {
            fit.mutate(&config, &mut innov, &mut rng, &mut ops);
            other.mutate(&config, &mut innov, &mut rng, &mut ops);
        }
        let pe_config = PeConfig {
            crossover_bias: 0.5,
            perturb_prob: perturb,
            weight_power: 0.5,
            attr_power: 0.5,
            weight_limit: 30.0,
            attr_limit: 30.0,
            enable_flip_prob: 0.05,
            activation_mutate_prob: 0.0,
            activation_options: vec![Activation::Sigmoid],
            aggregation_mutate_prob: 0.0,
            aggregation_options: vec![Aggregation::Sum],
            node_delete_prob: del,
            conn_delete_prob: del,
            node_delete_limit: 4,
            node_add_prob: add,
            conn_add_prob: add,
        };
        let mut pe = EvePe::new(pe_config, seed ^ 0xABCD);
        let stream = align_parents(&fit, &other);
        let out = pe.produce_child(&stream);
        let report = merge_child(99, 3, 1, out.genes).expect("merge repairs");
        prop_assert!(report.genome.validate().is_ok());
        // The child network must still compile and run.
        let net = Network::from_genome(&report.genome).expect("acyclic child");
        prop_assert!(net.activate(&[0.1, 0.2, 0.3])[0].is_finite());
    }

    /// Crossover never invents structure: the child's gene keys are a
    /// subset of the fitter parent's.
    #[test]
    fn crossover_child_keys_subset_of_fitter_parent(
        seed in any::<u64>(),
        grow in 0usize..10,
    ) {
        let config = NeatConfig::builder(2, 2).pop_size(4).build().unwrap();
        let mut rng = XorWow::seed_from_u64_value(seed);
        let mut innov = InnovationTracker::new(config.first_hidden_id());
        let mut p1 = Genome::initial(0, &config, &mut rng);
        let mut p2 = Genome::initial(1, &config, &mut rng);
        let mut ops = OpCounters::new();
        for _ in 0..grow {
            p1.mutate(&config, &mut innov, &mut rng, &mut ops);
            p2.mutate(&config, &mut innov, &mut rng, &mut ops);
        }
        let child = Genome::crossover(2, &p1, &p2, 0.5, &mut rng, &mut ops);
        for node in child.nodes() {
            prop_assert!(p1.node(node.id).is_some());
        }
        for conn in child.conns() {
            prop_assert!(p1.conn(conn.key).is_some());
        }
    }

    /// XOR-WOW uniformity sanity: chance(p) hits within generous bounds.
    #[test]
    fn xorwow_chance_statistics(seed in any::<u64>(), p in 0.05f64..0.95) {
        let mut rng = XorWow::seed_from_u64_value(seed);
        let n = 4000;
        let hits = (0..n).filter(|_| rng.chance(p)).count() as f64 / n as f64;
        prop_assert!((hits - p).abs() < 0.06, "p={p}, hits={hits}");
    }

    /// The signature lower bound never exceeds the exact compatibility
    /// distance, for arbitrary genome pairs under arbitrary mutation
    /// histories — the soundness condition the pruned speciation scan
    /// rests on (a violation could change species assignments).
    #[test]
    fn signature_lower_bound_is_sound(
        config in arb_config(),
        seed in any::<u64>(),
        steps_a in 0usize..30,
        steps_b in 0usize..30,
    ) {
        let mut rng = XorWow::seed_from_u64_value(seed);
        let mut innov = InnovationTracker::new(config.first_hidden_id());
        let mut ops = OpCounters::new();
        let mut a = Genome::initial(0, &config, &mut rng);
        let mut b = Genome::initial(1, &config, &mut rng);
        for _ in 0..steps_a {
            a.mutate(&config, &mut innov, &mut rng, &mut ops);
        }
        for _ in 0..steps_b {
            b.mutate(&config, &mut innov, &mut rng, &mut ops);
        }
        let lb = a.distance_lower_bound(&b, &config);
        let d = a.distance(&b, &config);
        // Not `lb <= d`: a NaN distance (impossible here, but the
        // invariant is stated for all inputs) satisfies the bound only
        // when "greater" is the one ordering ruled out.
        prop_assert!(
            lb.partial_cmp(&d) != Some(std::cmp::Ordering::Greater),
            "lower bound {lb} exceeds exact distance {d}"
        );
        // The bound is symmetric, like the distance itself.
        let lb_rev = b.distance_lower_bound(&a, &config);
        prop_assert_eq!(lb.to_bits(), lb_rev.to_bits());
    }

    /// The incrementally-maintained signature equals a from-scratch
    /// recomputation after any mutation sequence, and crossover children
    /// get exact signatures too — so the pruned scan never consults a
    /// stale summary.
    #[test]
    fn incremental_signature_matches_recompute(
        config in arb_config(),
        seed in any::<u64>(),
        steps in 0usize..40,
    ) {
        let mut rng = XorWow::seed_from_u64_value(seed);
        let mut innov = InnovationTracker::new(config.first_hidden_id());
        let mut ops = OpCounters::new();
        let mut a = Genome::initial(0, &config, &mut rng);
        let mut b = Genome::initial(1, &config, &mut rng);
        for _ in 0..steps {
            a.mutate(&config, &mut innov, &mut rng, &mut ops);
            prop_assert_eq!(*a.signature(), a.recompute_signature());
        }
        for _ in 0..steps / 2 {
            b.mutate(&config, &mut innov, &mut rng, &mut ops);
        }
        let child = Genome::crossover(2, &a, &b, 0.5, &mut rng, &mut ops);
        prop_assert_eq!(*child.signature(), child.recompute_signature());
    }
}
