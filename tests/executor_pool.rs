//! Integration tests for the persistent work-stealing evaluation engine:
//! parallel-vs-serial fitness agreement, panic propagation, and pool reuse
//! across generations (the "no per-generation thread spawn" guarantee).

use genesys::neat::{Executor, NeatConfig, Network, Population};
use std::sync::Arc;

fn fitness(net: &Network) -> f64 {
    let cases = [[0.0, 0.0], [0.25, 1.0], [0.5, 0.5], [1.0, 0.0]];
    let mut fit = 4.0;
    for c in &cases {
        let out = net.activate(c)[0];
        fit -= (out - c[0]) * (out - c[0]);
    }
    fit
}

fn config(pop: usize) -> NeatConfig {
    NeatConfig::builder(2, 1).pop_size(pop).build().unwrap()
}

#[test]
fn parallel_and_serial_evaluation_agree() {
    // The acceptance-criterion test: work-stealing evaluation at 1, 4 and
    // 8 workers is bit-identical to serial across whole generations.
    let mut serial = Population::new(config(53), 17);
    let mut serial_stats = Vec::new();
    for _ in 0..4 {
        serial_stats.push(serial.evolve_once(fitness));
    }
    for workers in [1usize, 4, 8] {
        let mut par = Population::new(config(53), 17);
        par.set_executor(Arc::new(Executor::new(workers)));
        for (generation, expect) in serial_stats.iter().enumerate() {
            let got = par.evolve_once(fitness);
            assert_eq!(
                expect.max_fitness, got.max_fitness,
                "gen {generation}, workers {workers}"
            );
            assert_eq!(expect.mean_fitness, got.mean_fitness);
            assert_eq!(expect.total_genes, got.total_genes);
            assert_eq!(expect.ops, got.ops);
        }
    }
}

#[test]
fn pool_is_reused_across_generations() {
    // Per-instance spawn counter + Arc identity: the pool Population uses
    // is never replaced and never grows, no matter how many generations
    // run. (Per-instance, so concurrent sibling tests spawning their own
    // pools cannot perturb the assertion.)
    let mut pop = Population::new(config(40), 9);
    pop.set_parallelism(4);
    let pool = Arc::clone(pop.executor().expect("parallelism enabled"));
    assert_eq!(pool.threads_spawned(), 4);
    for _ in 0..5 {
        pop.evolve_once(fitness);
    }
    assert!(
        Arc::ptr_eq(&pool, pop.executor().unwrap()),
        "evolve_once must not swap the pool"
    );
    assert_eq!(
        pool.threads_spawned(),
        4,
        "evolve_once must never spawn threads: the pool is persistent"
    );
    // An odd population size (not divisible by the worker count) must
    // still evaluate every genome — the old div_ceil chunking left
    // workers idle here; the deque cannot.
    let mut odd = Population::new(config(9), 3);
    odd.set_parallelism(8);
    let odd_pool = Arc::clone(odd.executor().unwrap());
    for _ in 0..3 {
        let stats = odd.evolve_once(fitness);
        assert!(stats.max_fitness.is_finite());
        assert_eq!(odd.genomes().len(), 9);
    }
    assert_eq!(odd_pool.threads_spawned(), 8);
}

#[test]
fn one_pool_shared_by_several_populations() {
    let pool = Arc::new(Executor::new(4));
    let mut results = Vec::new();
    for seed in [1u64, 2, 3] {
        let mut pop = Population::new(config(24), seed);
        pop.set_executor(Arc::clone(&pool));
        results.push(pop.evolve_once(fitness).max_fitness);
    }
    assert_eq!(results.len(), 3);
    assert_eq!(
        pool.threads_spawned(),
        4,
        "sharing one pool across populations spawns nothing new"
    );
}

#[test]
fn worker_panic_propagates_to_caller_and_pool_survives() {
    let mut pop = Population::new(config(32), 5);
    pop.set_parallelism(4);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pop.evaluate(|net| {
            if net.num_macs() > 0 {
                panic!("episode crashed");
            }
            0.0
        })
    }));
    assert!(result.is_err(), "a worker panic must reach the caller");
    // The pool survives the panic: the same population evaluates cleanly.
    let macs = pop.evaluate(fitness);
    assert!(macs > 0);
    assert!(pop.genomes().iter().all(|g| g.fitness().is_some()));
}

#[test]
fn executor_map_preserves_index_order() {
    let pool = Executor::new(8);
    for round in 0..3 {
        let out = pool.map(101, |i| (i as u64) * 3 + round);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 3 + round);
        }
    }
}
