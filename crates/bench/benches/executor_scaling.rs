//! Why the persistent work-stealing executor exists: an imbalanced
//! population (job cost growing quadratically with index, like deep
//! late-generation genomes or long gym episodes) under three schedules:
//!
//! * `serial` — one thread, the lower bound on total work.
//! * `static_chunks` — the pre-executor PLP path: fresh scoped threads per
//!   generation and `div_ceil` index chunking, so the last chunk (holding
//!   all the expensive jobs) serializes the batch and the spawn cost is
//!   paid every iteration.
//! * `work_stealing` — a persistent `genesys_neat::Executor`: threads
//!   spawned once outside the measurement loop, stragglers backfilled by
//!   idle workers stealing queued jobs.
//!
//! On an imbalanced load `work_stealing` should approach `serial /
//! workers`, while `static_chunks` is pinned near the cost of its heaviest
//! chunk (~53 % of serial here, for quadratic costs over 4 chunks). On a
//! single-core machine all three arms converge to serial cost — the gap
//! only opens with real hardware parallelism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genesys_neat::Executor;

const JOBS: usize = 64;
const WORKERS: usize = 4;

/// Quadratically imbalanced cost model: job 63 is ~4096× job 0.
fn job_cost(i: usize) -> u64 {
    (i as u64 + 1) * (i as u64 + 1) * 60
}

/// Deterministic CPU-bound work of `units` arithmetic steps.
fn spin(units: u64) -> u64 {
    let mut acc = 0u64;
    for k in 0..units {
        acc = acc.wrapping_add(std::hint::black_box(k ^ 0x9E37_79B9));
    }
    acc
}

fn bench_imbalanced(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor_imbalanced");
    group.sample_size(40);

    group.bench_function(BenchmarkId::new("serial", JOBS), |b| {
        b.iter(|| (0..JOBS).map(|i| spin(job_cost(i))).sum::<u64>())
    });

    group.bench_function(BenchmarkId::new("static_chunks", WORKERS), |b| {
        b.iter(|| {
            let indices: Vec<usize> = (0..JOBS).collect();
            let chunk = JOBS.div_ceil(WORKERS);
            let mut out = vec![0u64; JOBS];
            crossbeam::thread::scope(|scope| {
                for (idx_chunk, out_chunk) in indices.chunks(chunk).zip(out.chunks_mut(chunk)) {
                    scope.spawn(move |_| {
                        for (i, o) in idx_chunk.iter().zip(out_chunk.iter_mut()) {
                            *o = spin(job_cost(*i));
                        }
                    });
                }
            })
            .expect("chunk threads must not panic");
            out.iter().sum::<u64>()
        })
    });

    // Spawned once, outside the measurement loop — the whole point.
    let pool = Executor::new(WORKERS);
    group.bench_function(BenchmarkId::new("work_stealing", WORKERS), |b| {
        b.iter(|| pool.map(JOBS, |i| spin(job_cost(i))).iter().sum::<u64>())
    });

    group.finish();
}

criterion_group!(benches, bench_imbalanced);
criterion_main!(benches);
