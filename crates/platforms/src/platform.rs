//! Table III: the target system configurations of the evaluation.

use std::fmt;

/// Parallelism strategy used by a platform for a phase (Table III legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelismMode {
    /// Single-threaded.
    Serial,
    /// Population-level parallelism (multi-threading over genomes).
    Plp,
    /// Bulk-synchronous parallelism (GPU kernels over one genome).
    Bsp,
    /// BSP across the whole population at once.
    BspPlp,
    /// GeneSys: PLP for inference, PLP + gene-level parallelism for
    /// evolution.
    PlpGlp,
}

impl fmt::Display for ParallelismMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParallelismMode::Serial => "Serial",
            ParallelismMode::Plp => "PLP",
            ParallelismMode::Bsp => "BSP",
            ParallelismMode::BspPlp => "BSP + PLP",
            ParallelismMode::PlpGlp => "PLP + GLP",
        };
        f.write_str(s)
    }
}

/// Device class of a platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceClass {
    /// Desktop-class CPU (6th-gen i7).
    DesktopCpu,
    /// Embedded CPU (ARM Cortex-A57 on Jetson TX2).
    EmbeddedCpu,
    /// Desktop GPU (NVIDIA GTX 1080).
    DesktopGpu,
    /// Embedded GPU (NVIDIA Tegra on Jetson TX2).
    EmbeddedGpu,
    /// The GeneSys SoC.
    Soc,
}

/// One row of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlatformSpec {
    /// Legend label ("CPU_a" … "GENESYS").
    pub label: &'static str,
    /// Hardware platform description.
    pub hardware: &'static str,
    /// Inference parallelism.
    pub inference: ParallelismMode,
    /// Evolution parallelism.
    pub evolution: ParallelismMode,
    /// Device class (selects the cost model).
    pub class: DeviceClass,
}

/// All nine configurations of Table III, in paper order.
pub const TABLE_III: [PlatformSpec; 9] = [
    PlatformSpec {
        label: "CPU_a",
        hardware: "6th gen i7",
        inference: ParallelismMode::Serial,
        evolution: ParallelismMode::Serial,
        class: DeviceClass::DesktopCpu,
    },
    PlatformSpec {
        label: "CPU_b",
        hardware: "6th gen i7",
        inference: ParallelismMode::Plp,
        evolution: ParallelismMode::Serial,
        class: DeviceClass::DesktopCpu,
    },
    PlatformSpec {
        label: "GPU_a",
        hardware: "Nvidia GTX 1080",
        inference: ParallelismMode::Bsp,
        evolution: ParallelismMode::Plp,
        class: DeviceClass::DesktopGpu,
    },
    PlatformSpec {
        label: "GPU_b",
        hardware: "Nvidia GTX 1080",
        inference: ParallelismMode::BspPlp,
        evolution: ParallelismMode::Plp,
        class: DeviceClass::DesktopGpu,
    },
    PlatformSpec {
        label: "CPU_c",
        hardware: "ARM Cortex A57",
        inference: ParallelismMode::Serial,
        evolution: ParallelismMode::Serial,
        class: DeviceClass::EmbeddedCpu,
    },
    PlatformSpec {
        label: "CPU_d",
        hardware: "ARM Cortex A57",
        inference: ParallelismMode::Plp,
        evolution: ParallelismMode::Serial,
        class: DeviceClass::EmbeddedCpu,
    },
    PlatformSpec {
        label: "GPU_c",
        hardware: "Nvidia Tegra",
        inference: ParallelismMode::Bsp,
        evolution: ParallelismMode::Plp,
        class: DeviceClass::EmbeddedGpu,
    },
    PlatformSpec {
        label: "GPU_d",
        hardware: "Nvidia Tegra",
        inference: ParallelismMode::BspPlp,
        evolution: ParallelismMode::Plp,
        class: DeviceClass::EmbeddedGpu,
    },
    PlatformSpec {
        label: "GENESYS",
        hardware: "GENESYS",
        inference: ParallelismMode::Plp,
        evolution: ParallelismMode::PlpGlp,
        class: DeviceClass::Soc,
    },
];

/// Looks up a Table III row by label.
pub fn platform_by_label(label: &str) -> Option<&'static PlatformSpec> {
    TABLE_III.iter().find(|p| p.label == label)
}

/// Workload statistics extracted from an actual NEAT run; every baseline
/// cost model is driven by these measured counts (see `DESIGN.md` §4 on
/// the trace-driven substitution for the paper's physical measurements).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Workload label (e.g. "CartPole_v0").
    pub label: String,
    /// Population size.
    pub pop_size: usize,
    /// Environment steps per generation, summed over the population.
    pub env_steps: u64,
    /// Inference MACs per generation (all steps, all genomes).
    pub inference_macs: u64,
    /// Crossover + mutation operations per generation.
    pub evolution_ops: u64,
    /// Total genes in the population.
    pub total_genes: u64,
    /// Node count of the largest genome.
    pub max_nodes: usize,
    /// Mean nodes per genome.
    pub mean_nodes: f64,
}

impl WorkloadProfile {
    /// Population memory footprint in the 8-byte hardware encoding.
    pub fn genesys_footprint_bytes(&self) -> u64 {
        self.total_genes * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_nine_rows_in_paper_order() {
        assert_eq!(TABLE_III.len(), 9);
        assert_eq!(TABLE_III[0].label, "CPU_a");
        assert_eq!(TABLE_III[8].label, "GENESYS");
    }

    #[test]
    fn lookup_by_label() {
        let gpu_b = platform_by_label("GPU_b").unwrap();
        assert_eq!(gpu_b.inference, ParallelismMode::BspPlp);
        assert_eq!(gpu_b.class, DeviceClass::DesktopGpu);
        assert!(platform_by_label("TPU").is_none());
    }

    #[test]
    fn genesys_uses_glp() {
        let g = platform_by_label("GENESYS").unwrap();
        assert_eq!(g.evolution, ParallelismMode::PlpGlp);
    }

    #[test]
    fn modes_display_like_the_paper_legend() {
        assert_eq!(ParallelismMode::BspPlp.to_string(), "BSP + PLP");
        assert_eq!(ParallelismMode::PlpGlp.to_string(), "PLP + GLP");
    }

    #[test]
    fn footprint_is_eight_bytes_per_gene() {
        let w = WorkloadProfile {
            label: "x".into(),
            pop_size: 150,
            env_steps: 1000,
            inference_macs: 10_000,
            evolution_ops: 5_000,
            total_genes: 1_000,
            max_nodes: 10,
            mean_nodes: 8.0,
        };
        assert_eq!(w.genesys_footprint_bytes(), 8_000);
    }
}
