//! Versioned binary checkpoints — the genome-buffer wire format, extended
//! to the **full evolution state**.
//!
//! [`crate::codec`] defines the 64-bit gene word the SoC stores in SRAM
//! (Fig 6). A [`crate::codec::encode_population`] image captures genomes alone;
//! continuous learning needs more: the species bookkeeping, the innovation
//! counter, the PRNG stream and the seed/generation/key counters, so that
//! a run restored after a power cycle continues **bit-identically** (see
//! `genesys_neat::session`). This module serializes a complete
//! [`RunState`] into a self-describing image of 64-bit words:
//!
//! ```text
//! [0] magic  [1] version  [2] payload length  [3] state kind
//! kind 0 (monolithic):
//!   [4..]    config · counters · RNG · genomes · species · best genome
//! kind 1 (archipelago, format v3):
//!   [4..]    global config · seed · generation · migration epoch ·
//!            workload state · island count · one monolithic body per island
//! [last]     FNV-1a checksum over everything before it
//! ```
//!
//! The redundant *migration epoch* word (`generation /
//! migration_interval`) is a cross-check: an image whose epoch disagrees
//! with its generation counter is rejected as
//! [`SnapshotError::Malformed`] rather than silently resuming off the
//! migration schedule.
//!
//! Genes are stored as **snapshot-local wide gene words** (since format
//! v2): the hardware SRAM word of Fig 6 reserves only 14 bits per node
//! id, which megapopulation runs overflow, so checkpoints carry their own
//! 64-bit layout with 31-bit id fields:
//!
//! ```text
//! node word:  [63]=0  [62:61] type code  [60:48] reserved (zero)
//!             [47:40] activation code    [39:32] aggregation code
//!             [31:0]  node id            (id ≤ SNAPSHOT_MAX_NODE_ID)
//! conn word:  [63]=1  [62] enabled  [61:31] src id  [30:0] dst id
//! ```
//!
//! The exact `f64` bit patterns of the continuous attributes follow each
//! word — any quantized image would break bit-identical resume of a
//! *software* run. A node gene is `[gene word, bias bits, response
//! bits]`; a connection gene is `[gene word, weight bits]`. The hardware
//! codec ([`crate::codec`], 14-bit ids, fixed-point attributes) is a
//! separate format and is unchanged.
//!
//! # Version policy
//!
//! [`SNAPSHOT_VERSION`] is bumped on any layout change; decoders reject
//! images from other versions with [`SnapshotError::UnsupportedVersion`]
//! rather than guessing. **All prior versions are rejected, not
//! migrated**: v1 reused the quantized hardware gene word (14-bit ids)
//! and predates the megapopulation config knobs
//! (`species_representative_cap`, `eval_batch`); v2 predates the state
//! kind word and the island config knobs
//! (`islands`/`migration_interval`/`migration_k`), so a v2 image cannot
//! say which backend it checkpoints; v3 predates the `speciate_exact`
//! speciation-kernel toggle. Decoding any of them returns
//! `UnsupportedVersion(v)`. Corrupt input of any shape — truncation, bit
//! flips (caught by the checksum), garbage — returns a typed
//! [`SnapshotError`] and never panics.
//!
//! # Save / resume round trip
//!
//! ```
//! use genesys_core::snapshot::{snapshot_from_bytes, snapshot_to_bytes};
//! use genesys_neat::{EvalContext, NeatConfig, Network, Session};
//!
//! let config = NeatConfig::builder(2, 1).pop_size(12).build()?;
//! let fitness = |ctx: EvalContext, net: &Network| {
//!     net.activate(&[(ctx.seed() % 11) as f64 / 11.0, 0.5])[0]
//! };
//! let mut session = Session::builder(config, 99)?.workload(fitness).build();
//! session.run(2);
//!
//! // Checkpoint to bytes (write these to disk), then restore.
//! let bytes = snapshot_to_bytes(&session.export_state())?;
//! let restored = snapshot_from_bytes(&bytes)?;
//! let mut resumed = Session::resume(restored)?.workload(fitness).build();
//!
//! session.run(2);
//! resumed.run(2);
//! assert_eq!(session.genomes(), resumed.genomes()); // bit-identical
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::codec::DecodeError;
use genesys_neat::gene::{ConnGene, ConnKey, NodeGene, NodeType};
use genesys_neat::trace::OpCounters;
use genesys_neat::{
    Activation, Aggregation, ArchipelagoState, BestSummary, EvolutionState, GenerationStats,
    Genome, InitialWeights, NeatConfig, NodeId, OwnedGenerationEvent, PopulationDiagnostics,
    RunState, SessionError, Species, SpeciesId,
};
use std::error::Error;
use std::fmt;

/// First word of every snapshot image: `"GENESNAP"` in ASCII.
pub const SNAPSHOT_MAGIC: u64 = 0x4745_4E45_534E_4150;
/// Current wire-format version. Bumped on any layout change; see the
/// module docs for the compatibility policy (v1–v3 images are
/// rejected).
pub const SNAPSHOT_VERSION: u64 = 4;
/// First word of every standalone config image: `"GENECONF"` in ASCII.
/// Config images share the snapshot envelope (magic, version, declared
/// length, FNV-1a checksum) and version with the full snapshot format —
/// the config layout is a slice of the snapshot layout, so a config
/// layout change is by definition a snapshot layout change.
pub const CONFIG_MAGIC: u64 = 0x4745_4E45_434F_4E46;
/// First word of every serialized [`OwnedGenerationEvent`]: `"GENEVENT"`
/// in ASCII.
pub const EVENT_MAGIC: u64 = 0x4745_4E45_5645_4E54;
/// First word of every serialized [`MigrantBatch`]: `"GENEMIGR"` in
/// ASCII. Migrant batches share the snapshot envelope and version (they
/// embed snapshot genome records, so a record layout change is by
/// definition a snapshot layout change).
pub const MIGRANT_MAGIC: u64 = 0x4745_4E45_4D49_4752;
/// Wire-format version of serialized generation events. Independent of
/// [`SNAPSHOT_VERSION`] (events carry statistics, not genomes); the same
/// policy applies — any layout change bumps it, other versions are
/// rejected with [`SnapshotError::UnsupportedVersion`]. v1 predates the
/// per-phase timing words (`speciate_ns`/`reproduce_ns`/`eval_ns`); v2
/// predates the population-diagnostics words (`high_order_entropy`,
/// `unique_genomes`, `species_entropy`, `largest_species`).
pub const EVENT_VERSION: u64 = 3;
/// Largest node id the snapshot gene words can carry (31-bit id fields —
/// far beyond the hardware codec's 14-bit `codec::MAX_NODE_ID`, so
/// megapopulation runs checkpoint without overflow).
pub const SNAPSHOT_MAX_NODE_ID: u32 = (1 << 31) - 1;

/// Typed decoding/encoding failure. Corrupt input always lands here —
/// never in a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The image does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The image's version word is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion(u64),
    /// The image ended before the structure it declares.
    Truncated {
        /// Word offset at which more data was expected.
        offset: usize,
    },
    /// The payload does not hash to the trailing checksum word (bit flips,
    /// torn writes).
    ChecksumMismatch,
    /// A declared length is inconsistent with the image size.
    LengthMismatch,
    /// A gene word failed to decode.
    Gene(DecodeError),
    /// A structurally well-formed record produced an invalid value.
    Malformed(&'static str),
    /// A decoded genome failed structural validation.
    InvalidGenome(String),
    /// The decoded state failed cross-field validation.
    InvalidState(String),
    /// A node id does not fit the snapshot wire format's 31-bit id field.
    NodeIdOverflow {
        /// The offending id.
        id: u32,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a GeneSys snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Truncated { offset } => {
                write!(f, "snapshot truncated at word {offset}")
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::LengthMismatch => write!(f, "snapshot length field mismatch"),
            SnapshotError::Gene(e) => write!(f, "gene word: {e}"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::InvalidGenome(e) => write!(f, "invalid genome: {e}"),
            SnapshotError::InvalidState(e) => write!(f, "invalid state: {e}"),
            SnapshotError::NodeIdOverflow { id } => {
                write!(
                    f,
                    "node id {id} exceeds the {SNAPSHOT_MAX_NODE_ID} snapshot wire-format limit"
                )
            }
        }
    }
}

impl Error for SnapshotError {}

impl From<DecodeError> for SnapshotError {
    fn from(e: DecodeError) -> Self {
        SnapshotError::Gene(e)
    }
}

// ---------------------------------------------------------------------------
// Checksum: FNV-1a over the little-endian bytes of every preceding word.
// Not cryptographic — it detects the accidental corruption class (bit
// flips, truncated/torn writes), which is the failure mode of a checkpoint
// file.

fn fnv1a(words: &[u64]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for w in words {
        for byte in w.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

// ---------------------------------------------------------------------------
// Snapshot gene words (module-doc layout). These deliberately do NOT reuse
// `codec::encode_node`/`encode_conn`: the hardware word has 14-bit id
// fields, the snapshot word 31-bit ones.

const CONN_ID_MASK: u64 = (1 << 31) - 1;

fn encode_node_word(node: &NodeGene) -> u64 {
    let mut w = 0u64;
    w |= u64::from(node.node_type.to_code() & 0b11) << 61;
    w |= u64::from(node.activation.to_code()) << 40;
    w |= u64::from(node.aggregation.to_code()) << 32;
    w |= u64::from(node.id.0);
    w
}

fn encode_conn_word(conn: &ConnGene) -> u64 {
    let mut w = 1u64 << 63;
    w |= u64::from(conn.enabled) << 62;
    w |= u64::from(conn.key.src.0) << 31;
    w |= u64::from(conn.key.dst.0);
    w
}

/// Decodes a node word; `bias`/`response` are filled by the caller from
/// the trailing f64 words.
fn decode_node_word(word: u64) -> Result<NodeGene, SnapshotError> {
    if word >> 63 != 0 {
        return Err(SnapshotError::Malformed("expected a node gene word"));
    }
    let type_code = ((word >> 61) & 0b11) as u8;
    if type_code == 0b11 {
        return Err(SnapshotError::Malformed("reserved node type"));
    }
    if (word >> 48) & 0x1FFF != 0 {
        return Err(SnapshotError::Malformed("reserved node bits set"));
    }
    let id = (word & 0xFFFF_FFFF) as u32;
    if id > SNAPSHOT_MAX_NODE_ID {
        return Err(SnapshotError::Malformed("node id out of range"));
    }
    Ok(NodeGene {
        id: NodeId(id),
        node_type: NodeType::from_code(type_code),
        bias: 0.0,
        response: 0.0,
        activation: Activation::from_code(((word >> 40) & 0xFF) as u8),
        aggregation: Aggregation::from_code(((word >> 32) & 0xFF) as u8),
    })
}

/// Decodes a conn word; `weight` is filled by the caller.
fn decode_conn_word(word: u64) -> Result<ConnGene, SnapshotError> {
    if word >> 63 != 1 {
        return Err(SnapshotError::Malformed("expected a conn gene word"));
    }
    let src = ((word >> 31) & CONN_ID_MASK) as u32;
    let dst = (word & CONN_ID_MASK) as u32;
    Ok(ConnGene {
        key: ConnKey::new(NodeId(src), NodeId(dst)),
        weight: 0.0,
        enabled: (word >> 62) & 1 == 1,
    })
}

// ---------------------------------------------------------------------------
// Encoding

fn push_f64(words: &mut Vec<u64>, v: f64) {
    words.push(v.to_bits());
}

fn encode_config(words: &mut Vec<u64>, c: &NeatConfig) {
    words.push(c.num_inputs as u64);
    words.push(c.num_outputs as u64);
    words.push(c.pop_size as u64);
    match c.initial_weights {
        InitialWeights::Zero => {
            words.push(0);
            words.push(0);
            words.push(0);
        }
        InitialWeights::Uniform { lo, hi } => {
            words.push(1);
            push_f64(words, lo);
            push_f64(words, hi);
        }
        InitialWeights::Gaussian { stdev } => {
            words.push(2);
            push_f64(words, stdev);
            words.push(0);
        }
    }
    for v in [
        c.weight_mutate_rate,
        c.weight_replace_rate,
        c.weight_perturb_power,
        c.weight_min,
        c.weight_max,
        c.bias_mutate_rate,
        c.bias_replace_rate,
        c.bias_perturb_power,
        c.bias_min,
        c.bias_max,
        c.response_mutate_rate,
        c.response_replace_rate,
        c.response_perturb_power,
        c.response_min,
        c.response_max,
        c.activation_mutate_rate,
        c.aggregation_mutate_rate,
        c.enabled_mutate_rate,
        c.conn_add_prob,
        c.conn_delete_prob,
        c.node_add_prob,
        c.node_delete_prob,
        c.compatibility_threshold,
        c.compatibility_disjoint_coefficient,
        c.compatibility_weight_coefficient,
        c.survival_threshold,
        c.crossover_prob,
    ] {
        push_f64(words, v);
    }
    for v in [
        c.node_delete_limit,
        c.max_stagnation,
        c.species_elitism,
        c.elitism,
        c.min_species_size,
        c.species_representative_cap,
        c.eval_batch,
        c.islands,
        c.migration_interval,
        c.migration_k,
    ] {
        words.push(v as u64);
    }
    words.push(c.activation_options.len() as u64);
    for a in &c.activation_options {
        words.push(u64::from(a.to_code()));
    }
    words.push(c.aggregation_options.len() as u64);
    for a in &c.aggregation_options {
        words.push(u64::from(a.to_code()));
    }
    match c.target_fitness {
        Some(t) => {
            words.push(1);
            push_f64(words, t);
        }
        None => {
            words.push(0);
            words.push(0);
        }
    }
    words.push(u64::from(c.speciate_exact));
}

fn encode_genome_record(words: &mut Vec<u64>, g: &Genome) -> Result<(), SnapshotError> {
    words.push(g.key());
    words.push(((g.num_nodes() as u64) << 32) | g.num_conns() as u64);
    match g.fitness() {
        Some(f) => {
            words.push(1);
            push_f64(words, f);
        }
        None => {
            words.push(0);
            words.push(0);
        }
    }
    for node in g.nodes() {
        if node.id.0 > SNAPSHOT_MAX_NODE_ID {
            return Err(SnapshotError::NodeIdOverflow { id: node.id.0 });
        }
        words.push(encode_node_word(node));
        push_f64(words, node.bias);
        push_f64(words, node.response);
    }
    for conn in g.conns() {
        if conn.key.src.0 > SNAPSHOT_MAX_NODE_ID || conn.key.dst.0 > SNAPSHOT_MAX_NODE_ID {
            return Err(SnapshotError::NodeIdOverflow {
                id: conn.key.src.0.max(conn.key.dst.0),
            });
        }
        words.push(encode_conn_word(conn));
        push_f64(words, conn.weight);
    }
    Ok(())
}

fn encode_species_record(words: &mut Vec<u64>, s: &Species) -> Result<(), SnapshotError> {
    words.push(u64::from(s.id.0));
    words.push(s.created_at as u64);
    words.push(s.last_improved as u64);
    push_f64(words, s.best_fitness);
    push_f64(words, s.adjusted_fitness);
    words.push(s.members.len() as u64);
    for &m in &s.members {
        words.push(m as u64);
    }
    encode_genome_record(words, &s.representative)
}

/// State-kind word of a monolithic ([`EvolutionState`]) snapshot body.
const KIND_MONOLITHIC: u64 = 0;
/// State-kind word of an archipelago ([`ArchipelagoState`]) snapshot body.
const KIND_ARCHIPELAGO: u64 = 1;

/// Appends one [`EvolutionState`] body (config · counters · RNG ·
/// genomes · species · best genome) — the payload of a monolithic
/// snapshot, and the per-island repeating unit of an archipelago one.
fn encode_state_body(words: &mut Vec<u64>, state: &EvolutionState) -> Result<(), SnapshotError> {
    encode_config(words, &state.config);
    words.push(state.seed);
    words.push(state.generation);
    words.push(state.next_key);
    words.push(u64::from(state.innovation_next_node));
    words.push(u64::from(state.species_next_id));
    words.push(state.workload_state);
    let (x, counter) = state.rng_state;
    for w in x {
        words.push(u64::from(w));
    }
    words.push(u64::from(counter));
    words.push(state.genomes.len() as u64);
    for g in &state.genomes {
        encode_genome_record(words, g)?;
    }
    words.push(state.species.len() as u64);
    for s in &state.species {
        encode_species_record(words, s)?;
    }
    match &state.best_ever {
        Some(g) => {
            words.push(1);
            encode_genome_record(words, g)?;
        }
        None => words.push(0),
    }
    Ok(())
}

/// Serializes a complete run state — monolithic or archipelago — into
/// the versioned word image (the kind word selects the body layout).
///
/// # Errors
///
/// Returns [`SnapshotError::NodeIdOverflow`] if a genome exceeds the
/// snapshot gene word's 31-bit node-id space ([`SNAPSHOT_MAX_NODE_ID`]).
pub fn encode_snapshot(state: &RunState) -> Result<Vec<u64>, SnapshotError> {
    let mut words = vec![SNAPSHOT_MAGIC, SNAPSHOT_VERSION, 0];
    match state {
        RunState::Monolithic(state) => {
            words.push(KIND_MONOLITHIC);
            encode_state_body(&mut words, state)?;
        }
        RunState::Archipelago(state) => {
            words.push(KIND_ARCHIPELAGO);
            encode_config(&mut words, &state.config);
            words.push(state.seed);
            words.push(state.generation);
            // Redundant epoch word, cross-checked on decode (module docs).
            words.push(state.generation / state.config.migration_interval.max(1) as u64);
            words.push(state.workload_state);
            words.push(state.islands.len() as u64);
            for island in &state.islands {
                encode_state_body(&mut words, island)?;
            }
        }
    }
    Ok(seal_envelope(words))
}

// ---------------------------------------------------------------------------
// Decoding

struct Cursor<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self) -> Result<u64, SnapshotError> {
        let w = self
            .words
            .get(self.pos)
            .copied()
            .ok_or(SnapshotError::Truncated { offset: self.pos })?;
        self.pos += 1;
        Ok(w)
    }

    fn take_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take()?))
    }

    fn take_usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.take()?).map_err(|_| SnapshotError::Malformed("usize overflow"))
    }

    /// Reads a count that is about to drive `per_item`-word reads,
    /// rejecting counts the remaining image cannot possibly hold (so a
    /// corrupted count cannot trigger an absurd allocation).
    fn take_count(&mut self, per_item: usize) -> Result<usize, SnapshotError> {
        let count = self.take_usize()?;
        let remaining = self.words.len().saturating_sub(self.pos);
        if count > remaining / per_item.max(1) {
            return Err(SnapshotError::Truncated { offset: self.pos });
        }
        Ok(count)
    }
}

fn decode_config(c: &mut Cursor<'_>) -> Result<NeatConfig, SnapshotError> {
    let num_inputs = c.take_usize()?;
    let num_outputs = c.take_usize()?;
    let pop_size = c.take_usize()?;
    let initial_weights = match c.take()? {
        0 => {
            c.take()?;
            c.take()?;
            InitialWeights::Zero
        }
        1 => InitialWeights::Uniform {
            lo: c.take_f64()?,
            hi: c.take_f64()?,
        },
        2 => {
            let stdev = c.take_f64()?;
            c.take()?;
            InitialWeights::Gaussian { stdev }
        }
        _ => return Err(SnapshotError::Malformed("initial-weights tag")),
    };
    let mut f = [0.0f64; 27];
    for slot in &mut f {
        *slot = c.take_f64()?;
    }
    let node_delete_limit = c.take_usize()?;
    let max_stagnation = c.take_usize()?;
    let species_elitism = c.take_usize()?;
    let elitism = c.take_usize()?;
    let min_species_size = c.take_usize()?;
    let species_representative_cap = c.take_usize()?;
    let eval_batch = c.take_usize()?;
    let islands = c.take_usize()?;
    let migration_interval = c.take_usize()?;
    let migration_k = c.take_usize()?;
    let n_act = c.take_count(1)?;
    let mut activation_options = Vec::with_capacity(n_act);
    for _ in 0..n_act {
        let code = c.take()?;
        if code > u64::from(u8::MAX) {
            return Err(SnapshotError::Malformed("activation code"));
        }
        activation_options.push(Activation::from_code(code as u8));
    }
    let n_agg = c.take_count(1)?;
    let mut aggregation_options = Vec::with_capacity(n_agg);
    for _ in 0..n_agg {
        let code = c.take()?;
        if code > u64::from(u8::MAX) {
            return Err(SnapshotError::Malformed("aggregation code"));
        }
        aggregation_options.push(Aggregation::from_code(code as u8));
    }
    let target_fitness = match c.take()? {
        0 => {
            c.take()?;
            None
        }
        1 => Some(c.take_f64()?),
        _ => return Err(SnapshotError::Malformed("target-fitness flag")),
    };
    let speciate_exact = match c.take()? {
        0 => false,
        1 => true,
        _ => return Err(SnapshotError::Malformed("speciate-exact flag")),
    };
    Ok(NeatConfig {
        num_inputs,
        num_outputs,
        pop_size,
        initial_weights,
        weight_mutate_rate: f[0],
        weight_replace_rate: f[1],
        weight_perturb_power: f[2],
        weight_min: f[3],
        weight_max: f[4],
        bias_mutate_rate: f[5],
        bias_replace_rate: f[6],
        bias_perturb_power: f[7],
        bias_min: f[8],
        bias_max: f[9],
        response_mutate_rate: f[10],
        response_replace_rate: f[11],
        response_perturb_power: f[12],
        response_min: f[13],
        response_max: f[14],
        activation_mutate_rate: f[15],
        aggregation_mutate_rate: f[16],
        enabled_mutate_rate: f[17],
        conn_add_prob: f[18],
        conn_delete_prob: f[19],
        node_add_prob: f[20],
        node_delete_prob: f[21],
        compatibility_threshold: f[22],
        compatibility_disjoint_coefficient: f[23],
        compatibility_weight_coefficient: f[24],
        survival_threshold: f[25],
        crossover_prob: f[26],
        node_delete_limit,
        max_stagnation,
        species_elitism,
        elitism,
        min_species_size,
        species_representative_cap,
        eval_batch,
        islands,
        migration_interval,
        migration_k,
        activation_options,
        aggregation_options,
        target_fitness,
        speciate_exact,
    })
}

fn decode_genome_record(
    c: &mut Cursor<'_>,
    num_inputs: usize,
    num_outputs: usize,
) -> Result<Genome, SnapshotError> {
    let key = c.take()?;
    let shape = c.take()?;
    let num_nodes = (shape >> 32) as usize;
    let num_conns = (shape & 0xFFFF_FFFF) as usize;
    let fitness = match c.take()? {
        0 => {
            c.take()?;
            None
        }
        1 => Some(c.take_f64()?),
        _ => return Err(SnapshotError::Malformed("fitness flag")),
    };
    // 3 words per node, 2 per conn: reject shapes the image cannot hold.
    let remaining = c.words.len().saturating_sub(c.pos);
    if num_nodes
        .checked_mul(3)
        .and_then(|n| num_conns.checked_mul(2).map(|m| n + m))
        .is_none_or(|needed| needed > remaining)
    {
        return Err(SnapshotError::Truncated { offset: c.pos });
    }
    let mut nodes: Vec<NodeGene> = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        let mut node = decode_node_word(c.take()?)?;
        // The word carries the discrete fields; the exact f64 bit
        // patterns of the continuous attributes follow it.
        node.bias = c.take_f64()?;
        node.response = c.take_f64()?;
        nodes.push(node);
    }
    let mut conns: Vec<ConnGene> = Vec::with_capacity(num_conns);
    for _ in 0..num_conns {
        let mut conn = decode_conn_word(c.take()?)?;
        conn.weight = c.take_f64()?;
        conns.push(conn);
    }
    let mut genome = Genome::from_parts(key, num_inputs, num_outputs, nodes, conns)
        .map_err(|e| SnapshotError::InvalidGenome(e.to_string()))?;
    if let Some(f) = fitness {
        genome.set_fitness(f);
    }
    Ok(genome)
}

fn decode_species_record(
    c: &mut Cursor<'_>,
    num_inputs: usize,
    num_outputs: usize,
) -> Result<Species, SnapshotError> {
    let id = c.take()?;
    if id > u64::from(u32::MAX) {
        return Err(SnapshotError::Malformed("species id"));
    }
    let created_at = c.take_usize()?;
    let last_improved = c.take_usize()?;
    let best_fitness = c.take_f64()?;
    let adjusted_fitness = c.take_f64()?;
    let n_members = c.take_count(1)?;
    let mut members = Vec::with_capacity(n_members);
    for _ in 0..n_members {
        members.push(c.take_usize()?);
    }
    let representative = decode_genome_record(c, num_inputs, num_outputs)?;
    Ok(Species {
        id: SpeciesId(id as u32),
        representative,
        members,
        created_at,
        last_improved,
        best_fitness,
        adjusted_fitness,
    })
}

/// Decodes one [`EvolutionState`] body (the inverse of
/// [`encode_state_body`]). Cross-field validation happens at the
/// [`RunState`] level once the whole image is consumed.
fn decode_state_body(c: &mut Cursor<'_>) -> Result<EvolutionState, SnapshotError> {
    let config = decode_config(c)?;
    let seed = c.take()?;
    let generation = c.take()?;
    let next_key = c.take()?;
    let innovation_next_node = c.take()?;
    let species_next_id = c.take()?;
    if innovation_next_node > u64::from(u32::MAX) || species_next_id > u64::from(u32::MAX) {
        return Err(SnapshotError::Malformed("id counter"));
    }
    let workload_state = c.take()?;
    let mut x = [0u32; 5];
    for slot in &mut x {
        let w = c.take()?;
        if w > u64::from(u32::MAX) {
            return Err(SnapshotError::Malformed("rng word"));
        }
        *slot = w as u32;
    }
    let counter = c.take()?;
    if counter > u64::from(u32::MAX) {
        return Err(SnapshotError::Malformed("rng counter"));
    }

    // Minimum genome record: key + shape + fitness flag/bits = 4 words.
    let n_genomes = c.take_count(4)?;
    let mut genomes = Vec::with_capacity(n_genomes);
    for _ in 0..n_genomes {
        genomes.push(decode_genome_record(
            c,
            config.num_inputs,
            config.num_outputs,
        )?);
    }
    // Minimum species record: 6 fixed words + a 4-word representative.
    let n_species = c.take_count(10)?;
    let mut species = Vec::with_capacity(n_species);
    for _ in 0..n_species {
        species.push(decode_species_record(
            c,
            config.num_inputs,
            config.num_outputs,
        )?);
    }
    let best_ever = match c.take()? {
        0 => None,
        1 => Some(decode_genome_record(
            c,
            config.num_inputs,
            config.num_outputs,
        )?),
        _ => return Err(SnapshotError::Malformed("best-genome flag")),
    };
    Ok(EvolutionState {
        config,
        genomes,
        species,
        species_next_id: species_next_id as u32,
        innovation_next_node: innovation_next_node as u32,
        rng_state: (x, counter as u32),
        seed,
        generation,
        next_key,
        best_ever,
        workload_state,
    })
}

/// Deserializes a snapshot image produced by [`encode_snapshot`],
/// verifying magic, version, declared length, checksum and the
/// archipelago epoch cross-check, and re-validating the decoded state's
/// cross-field invariants.
///
/// # Errors
///
/// Any malformed, truncated or corrupted input returns a typed
/// [`SnapshotError`]; this function never panics on adversarial bytes.
pub fn decode_snapshot(words: &[u64]) -> Result<RunState, SnapshotError> {
    let mut c = open_envelope(words, SNAPSHOT_MAGIC, SNAPSHOT_VERSION)?;
    let state = match c.take()? {
        KIND_MONOLITHIC => RunState::Monolithic(Box::new(decode_state_body(&mut c)?)),
        KIND_ARCHIPELAGO => {
            let config = decode_config(&mut c)?;
            let seed = c.take()?;
            let generation = c.take()?;
            let epoch = c.take()?;
            if epoch != generation / config.migration_interval.max(1) as u64 {
                return Err(SnapshotError::Malformed("migration epoch"));
            }
            let workload_state = c.take()?;
            // Minimum island body: a config (dozens of words) + counters;
            // 10 is a safe lower bound for the count sanity check.
            let n_islands = c.take_count(10)?;
            let mut islands = Vec::with_capacity(n_islands);
            for _ in 0..n_islands {
                islands.push(decode_state_body(&mut c)?);
            }
            RunState::Archipelago(Box::new(ArchipelagoState {
                config,
                seed,
                generation,
                islands,
                workload_state,
            }))
        }
        _ => return Err(SnapshotError::Malformed("state kind")),
    };
    close_envelope(&c)?;
    state
        .validate()
        .map_err(|e: SessionError| SnapshotError::InvalidState(e.to_string()))?;
    Ok(state)
}

/// Little-endian byte image of a word image.
fn words_to_bytes(words: &[u64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(words.len() * 8);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    bytes
}

/// Inverse of [`words_to_bytes`]; a length that is not a whole number of
/// words is truncation.
fn bytes_to_words(bytes: &[u8]) -> Result<Vec<u64>, SnapshotError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(SnapshotError::Truncated {
            offset: bytes.len() / 8,
        });
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact yields 8 bytes")))
        .collect())
}

/// Serializes a state to bytes (the word image, little-endian) — what a
/// checkpoint file holds.
///
/// # Errors
///
/// See [`encode_snapshot`].
pub fn snapshot_to_bytes(state: &RunState) -> Result<Vec<u8>, SnapshotError> {
    Ok(words_to_bytes(&encode_snapshot(state)?))
}

/// Deserializes a checkpoint file's bytes.
///
/// # Errors
///
/// Returns [`SnapshotError::Truncated`] if the length is not a whole
/// number of words; otherwise see [`decode_snapshot`].
pub fn snapshot_from_bytes(bytes: &[u8]) -> Result<RunState, SnapshotError> {
    decode_snapshot(&bytes_to_words(bytes)?)
}

// ---------------------------------------------------------------------------
// Migrant batches: the multi-process wire form of an island migration.
// In-process archipelagos hand `Genome` values across directly
// (`genesys_neat::island`); a distributed deployment ships this image on
// the ring edge instead. See `docs/islands.md`.

/// One island-migration payload: the ring edge it travels
/// (`from_island → to_island` at `epoch`) plus the emigrant genomes,
/// encoded as snapshot gene records.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrantBatch {
    /// Migration epoch (`generation / migration_interval`) the batch
    /// belongs to.
    pub epoch: u64,
    /// Ring index of the sending island.
    pub from_island: u64,
    /// Ring index of the receiving island (`(from + 1) % islands`).
    pub to_island: u64,
    /// Genome input arity (genome records do not carry the interface).
    pub num_inputs: usize,
    /// Genome output arity.
    pub num_outputs: usize,
    /// The emigrants, best-first as selected by the sending island.
    pub genomes: Vec<Genome>,
}

/// Serializes a migrant batch into a self-describing word image sharing
/// the snapshot envelope (magic [`MIGRANT_MAGIC`], version
/// [`SNAPSHOT_VERSION`], declared length, FNV-1a checksum).
///
/// # Errors
///
/// Returns [`SnapshotError::NodeIdOverflow`] if a genome exceeds the
/// snapshot gene word's 31-bit node-id space.
pub fn encode_migrant_batch(batch: &MigrantBatch) -> Result<Vec<u64>, SnapshotError> {
    let mut words = vec![MIGRANT_MAGIC, SNAPSHOT_VERSION, 0];
    words.push(batch.epoch);
    words.push(batch.from_island);
    words.push(batch.to_island);
    words.push(batch.num_inputs as u64);
    words.push(batch.num_outputs as u64);
    words.push(batch.genomes.len() as u64);
    for g in &batch.genomes {
        encode_genome_record(&mut words, g)?;
    }
    Ok(seal_envelope(words))
}

/// Deserializes a migrant batch produced by [`encode_migrant_batch`],
/// verifying the envelope and every genome record.
///
/// # Errors
///
/// Any malformed, truncated or corrupted input returns a typed
/// [`SnapshotError`]; this function never panics on adversarial bytes.
pub fn decode_migrant_batch(words: &[u64]) -> Result<MigrantBatch, SnapshotError> {
    let mut c = open_envelope(words, MIGRANT_MAGIC, SNAPSHOT_VERSION)?;
    let epoch = c.take()?;
    let from_island = c.take()?;
    let to_island = c.take()?;
    let num_inputs = c.take_usize()?;
    let num_outputs = c.take_usize()?;
    // Minimum genome record: key + shape + fitness flag/bits = 4 words.
    let n = c.take_count(4)?;
    let mut genomes = Vec::with_capacity(n);
    for _ in 0..n {
        genomes.push(decode_genome_record(&mut c, num_inputs, num_outputs)?);
    }
    close_envelope(&c)?;
    Ok(MigrantBatch {
        epoch,
        from_island,
        to_island,
        num_inputs,
        num_outputs,
        genomes,
    })
}

/// Byte form of [`encode_migrant_batch`] (little-endian words).
///
/// # Errors
///
/// See [`encode_migrant_batch`].
pub fn migrant_batch_to_bytes(batch: &MigrantBatch) -> Result<Vec<u8>, SnapshotError> {
    Ok(words_to_bytes(&encode_migrant_batch(batch)?))
}

/// Byte form of [`decode_migrant_batch`].
///
/// # Errors
///
/// See [`decode_migrant_batch`].
pub fn migrant_batch_from_bytes(bytes: &[u8]) -> Result<MigrantBatch, SnapshotError> {
    decode_migrant_batch(&bytes_to_words(bytes)?)
}

// ---------------------------------------------------------------------------
// Standalone images: config and generation events. Both wrap their payload
// in the snapshot envelope — magic, version, declared payload length,
// trailing FNV-1a checksum — so corrupt input of any shape is a typed
// error, never a panic, exactly like full snapshots.

/// Verifies an image's envelope (`magic`/`version` words, declared
/// length, trailing checksum) and returns a cursor positioned on the
/// first payload word.
fn open_envelope<'a>(
    words: &'a [u64],
    magic: u64,
    version: u64,
) -> Result<Cursor<'a>, SnapshotError> {
    let mut c = Cursor { words, pos: 0 };
    if c.take()? != magic {
        return Err(SnapshotError::BadMagic);
    }
    let got = c.take()?;
    if got != version {
        return Err(SnapshotError::UnsupportedVersion(got));
    }
    let payload_len = c.take_usize()?;
    let expected_len = payload_len
        .checked_add(4)
        .ok_or(SnapshotError::LengthMismatch)?;
    if words.len() != expected_len {
        return Err(if words.len() < expected_len {
            SnapshotError::Truncated {
                offset: words.len(),
            }
        } else {
            SnapshotError::LengthMismatch
        });
    }
    let (payload, checksum) = words.split_at(words.len() - 1);
    if fnv1a(payload) != checksum[0] {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok(c)
}

/// Requires the cursor to have consumed the entire payload (everything
/// but the checksum word).
fn close_envelope(c: &Cursor<'_>) -> Result<(), SnapshotError> {
    if c.pos != c.words.len() - 1 {
        return Err(SnapshotError::LengthMismatch);
    }
    Ok(())
}

/// Seals an image under construction: fixes up the payload-length word
/// (index 2) and appends the checksum.
fn seal_envelope(mut words: Vec<u64>) -> Vec<u64> {
    words[2] = (words.len() - 3) as u64;
    words.push(fnv1a(&words));
    words
}

/// Serializes a [`NeatConfig`] alone into a self-describing word image —
/// the payload format of configuration-bearing wire verbs
/// (`genesys_serve`'s `submit`), using the exact field layout snapshots
/// embed.
pub fn encode_config_image(config: &NeatConfig) -> Vec<u64> {
    let mut words = vec![CONFIG_MAGIC, SNAPSHOT_VERSION, 0];
    encode_config(&mut words, config);
    seal_envelope(words)
}

/// Deserializes a config image produced by [`encode_config_image`],
/// verifying the envelope and re-validating the decoded configuration.
///
/// # Errors
///
/// Any malformed, truncated or corrupted input returns a typed
/// [`SnapshotError`]; an image that decodes structurally but fails
/// [`NeatConfig::validate`] returns [`SnapshotError::InvalidState`].
pub fn decode_config_image(words: &[u64]) -> Result<NeatConfig, SnapshotError> {
    let mut c = open_envelope(words, CONFIG_MAGIC, SNAPSHOT_VERSION)?;
    let config = decode_config(&mut c)?;
    close_envelope(&c)?;
    config
        .validate()
        .map_err(|e| SnapshotError::InvalidState(e.to_string()))?;
    Ok(config)
}

/// Byte form of [`encode_config_image`] (little-endian words).
pub fn config_to_bytes(config: &NeatConfig) -> Vec<u8> {
    words_to_bytes(&encode_config_image(config))
}

/// Byte form of [`decode_config_image`].
///
/// # Errors
///
/// See [`decode_config_image`].
pub fn config_from_bytes(bytes: &[u8]) -> Result<NeatConfig, SnapshotError> {
    decode_config_image(&bytes_to_words(bytes)?)
}

/// Serializes an [`OwnedGenerationEvent`] into a self-describing word
/// image — the push-channel payload of `genesys_serve`'s `observe` verb.
/// The image is fixed-size (34 or 39 words): events are allocation-bounded
/// by design, so the wire form is too.
pub fn encode_event(event: &OwnedGenerationEvent) -> Vec<u64> {
    let mut words = vec![EVENT_MAGIC, EVENT_VERSION, 0];
    let s = &event.stats;
    words.push(s.generation as u64);
    push_f64(&mut words, s.max_fitness);
    push_f64(&mut words, s.mean_fitness);
    push_f64(&mut words, s.min_fitness);
    for v in [
        s.num_species,
        s.total_nodes,
        s.total_conns,
        s.total_genes,
        s.max_genome_genes,
        s.memory_bytes,
        s.fittest_parent_reuse,
    ] {
        words.push(v as u64);
    }
    for v in [
        s.ops.crossover,
        s.ops.perturb,
        s.ops.add_node,
        s.ops.add_conn,
        s.ops.delete_node,
        s.ops.delete_conn,
        s.inference_macs,
        s.env_steps,
        s.speciate_ns,
        s.reproduce_ns,
        s.eval_ns,
    ] {
        words.push(v);
    }
    push_f64(&mut words, s.diagnostics.high_order_entropy);
    words.push(s.diagnostics.unique_genomes as u64);
    push_f64(&mut words, s.diagnostics.species_entropy);
    words.push(s.diagnostics.largest_species as u64);
    match &event.best {
        Some(b) => {
            words.push(1);
            words.push(b.key);
            match b.fitness {
                Some(f) => {
                    words.push(1);
                    push_f64(&mut words, f);
                }
                None => {
                    words.push(0);
                    words.push(0);
                }
            }
            words.push(b.nodes as u64);
            words.push(b.conns as u64);
        }
        None => words.push(0),
    }
    seal_envelope(words)
}

/// Deserializes an event image produced by [`encode_event`].
///
/// # Errors
///
/// Any malformed, truncated or corrupted input returns a typed
/// [`SnapshotError`]; this function never panics on adversarial bytes.
pub fn decode_event(words: &[u64]) -> Result<OwnedGenerationEvent, SnapshotError> {
    let mut c = open_envelope(words, EVENT_MAGIC, EVENT_VERSION)?;
    let generation = c.take_usize()?;
    let max_fitness = c.take_f64()?;
    let mean_fitness = c.take_f64()?;
    let min_fitness = c.take_f64()?;
    let num_species = c.take_usize()?;
    let total_nodes = c.take_usize()?;
    let total_conns = c.take_usize()?;
    let total_genes = c.take_usize()?;
    let max_genome_genes = c.take_usize()?;
    let memory_bytes = c.take_usize()?;
    let fittest_parent_reuse = c.take_usize()?;
    let ops = OpCounters {
        crossover: c.take()?,
        perturb: c.take()?,
        add_node: c.take()?,
        add_conn: c.take()?,
        delete_node: c.take()?,
        delete_conn: c.take()?,
    };
    let inference_macs = c.take()?;
    let env_steps = c.take()?;
    let speciate_ns = c.take()?;
    let reproduce_ns = c.take()?;
    let eval_ns = c.take()?;
    let diagnostics = PopulationDiagnostics {
        high_order_entropy: c.take_f64()?,
        unique_genomes: c.take_usize()?,
        species_entropy: c.take_f64()?,
        largest_species: c.take_usize()?,
    };
    let best = match c.take()? {
        0 => None,
        1 => {
            let key = c.take()?;
            let fitness = match c.take()? {
                0 => {
                    c.take()?;
                    None
                }
                1 => Some(c.take_f64()?),
                _ => return Err(SnapshotError::Malformed("best-fitness flag")),
            };
            Some(BestSummary {
                key,
                fitness,
                nodes: c.take_usize()?,
                conns: c.take_usize()?,
            })
        }
        _ => return Err(SnapshotError::Malformed("best-summary flag")),
    };
    close_envelope(&c)?;
    Ok(OwnedGenerationEvent {
        stats: GenerationStats {
            generation,
            max_fitness,
            mean_fitness,
            min_fitness,
            num_species,
            total_nodes,
            total_conns,
            total_genes,
            max_genome_genes,
            memory_bytes,
            ops,
            fittest_parent_reuse,
            inference_macs,
            env_steps,
            diagnostics,
            speciate_ns,
            reproduce_ns,
            eval_ns,
        },
        best,
    })
}

/// Byte form of [`encode_event`] (little-endian words).
pub fn event_to_bytes(event: &OwnedGenerationEvent) -> Vec<u8> {
    words_to_bytes(&encode_event(event))
}

/// Byte form of [`decode_event`].
///
/// # Errors
///
/// See [`decode_event`].
pub fn event_from_bytes(bytes: &[u8]) -> Result<OwnedGenerationEvent, SnapshotError> {
    decode_event(&bytes_to_words(bytes)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesys_neat::{EvalContext, Network, Session};

    fn test_config(islands: usize) -> NeatConfig {
        NeatConfig::builder(3, 2)
            .pop_size(14)
            .islands(islands)
            .migration_interval(2)
            .migration_k(1)
            .node_add_prob(0.6)
            .conn_add_prob(0.6)
            .target_fitness(Some(1e9))
            .build()
            .unwrap()
    }

    fn test_fitness(ctx: EvalContext, net: &Network) -> f64 {
        let x = (ctx.seed() % 13) as f64 / 13.0;
        net.activate(&[x, 0.5, 1.0 - x]).iter().sum()
    }

    fn evolved_run_state(seed: u64, generations: usize, islands: usize) -> RunState {
        let mut s = Session::builder(test_config(islands), seed)
            .unwrap()
            .workload(test_fitness)
            .build();
        s.run(generations);
        s.export_state()
    }

    fn evolved_state(seed: u64, generations: usize) -> RunState {
        evolved_run_state(seed, generations, 1)
    }

    #[test]
    fn roundtrip_is_exact() {
        let state = evolved_state(7, 5);
        let words = encode_snapshot(&state).unwrap();
        let back = decode_snapshot(&words).unwrap();
        assert_eq!(state, back);
        // And a fixed point: re-encoding the decoded state yields the
        // same bytes.
        assert_eq!(words, encode_snapshot(&back).unwrap());
    }

    #[test]
    fn bytes_roundtrip_is_exact() {
        let state = evolved_state(21, 4);
        let bytes = snapshot_to_bytes(&state).unwrap();
        let back = snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(state, back);
    }

    #[test]
    fn every_truncation_errors_and_never_panics() {
        let state = evolved_state(3, 3);
        let words = encode_snapshot(&state).unwrap();
        for len in 0..words.len() {
            assert!(
                decode_snapshot(&words[..len]).is_err(),
                "prefix of {len} words must not decode"
            );
        }
        let bytes = snapshot_to_bytes(&state).unwrap();
        for len in (0..bytes.len()).step_by(7) {
            assert!(snapshot_from_bytes(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let state = evolved_state(9, 3);
        let words = encode_snapshot(&state).unwrap();
        // Every word, one flipped bit each (cycling bit positions keeps
        // the test fast while touching every region of the image).
        for (i, bit) in (0..words.len()).map(|i| (i, (i * 13) % 64)) {
            let mut corrupt = words.clone();
            corrupt[i] ^= 1u64 << bit;
            assert!(
                decode_snapshot(&corrupt).is_err(),
                "flip of bit {bit} in word {i} must not decode"
            );
        }
    }

    #[test]
    fn garbage_input_errors() {
        assert_eq!(
            decode_snapshot(&[]).unwrap_err(),
            SnapshotError::Truncated { offset: 0 }
        );
        assert_eq!(
            decode_snapshot(&[1, 2, 3]).unwrap_err(),
            SnapshotError::BadMagic
        );
        let mut rng = genesys_neat::XorWow::seed_from_u64_value(5);
        for _ in 0..50 {
            let words: Vec<u64> = (0..64)
                .map(|_| (u64::from(rng.next_u32_value()) << 32) | u64::from(rng.next_u32_value()))
                .collect();
            assert!(decode_snapshot(&words).is_err());
        }
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let state = evolved_state(11, 2);
        let mut words = encode_snapshot(&state).unwrap();
        words[1] = SNAPSHOT_VERSION + 1;
        // Recompute the checksum so the version check itself is what trips.
        let n = words.len();
        words[n - 1] = fnv1a(&words[..n - 1]);
        assert_eq!(
            decode_snapshot(&words).unwrap_err(),
            SnapshotError::UnsupportedVersion(SNAPSHOT_VERSION + 1)
        );
    }

    /// `state.genomes[0]` with an extra hidden node of the given id,
    /// installed as `best_ever`.
    fn with_forged_id(state: RunState, id: u32) -> RunState {
        let RunState::Monolithic(mut state) = state else {
            panic!("forged-id helper expects a monolithic state");
        };
        let config = &state.config;
        let forged = Genome::from_parts(
            999,
            config.num_inputs,
            config.num_outputs,
            state.genomes[0].nodes().copied().chain(std::iter::once(
                genesys_neat::NodeGene::hidden(genesys_neat::NodeId(id)),
            )),
            state.genomes[0].conns().copied(),
        )
        .unwrap();
        state.best_ever = Some(forged);
        RunState::Monolithic(state)
    }

    #[test]
    fn node_id_overflow_is_a_typed_error() {
        // Beyond the 31-bit snapshot wire limit.
        let state = with_forged_id(evolved_state(2, 1), SNAPSHOT_MAX_NODE_ID + 1);
        assert!(matches!(
            encode_snapshot(&state),
            Err(SnapshotError::NodeIdOverflow { .. })
        ));
    }

    #[test]
    fn ids_beyond_the_hardware_limit_roundtrip() {
        // v1 reused the hardware gene word and failed here; the v2
        // snapshot words carry 31-bit ids, so megapopulation-sized node
        // ids checkpoint exactly.
        use crate::codec::MAX_NODE_ID as HW_MAX_NODE_ID;
        for id in [HW_MAX_NODE_ID + 1, 1 << 20, SNAPSHOT_MAX_NODE_ID] {
            let state = with_forged_id(evolved_state(2, 1), id);
            let words = encode_snapshot(&state).unwrap();
            let back = decode_snapshot(&words).unwrap();
            assert_eq!(state, back, "id {id}");
        }
    }

    #[test]
    fn v1_images_are_rejected() {
        let state = evolved_state(6, 2);
        let mut words = encode_snapshot(&state).unwrap();
        words[1] = 1;
        // Recompute the checksum so the version check itself is what trips.
        let n = words.len();
        words[n - 1] = fnv1a(&words[..n - 1]);
        assert_eq!(
            decode_snapshot(&words).unwrap_err(),
            SnapshotError::UnsupportedVersion(1)
        );
    }

    #[test]
    fn v2_images_are_rejected() {
        // v2 predates the state kind word and the island config knobs, so
        // it is rejected like v1, not migrated.
        let state = evolved_state(6, 2);
        let mut words = encode_snapshot(&state).unwrap();
        words[1] = 2;
        let n = words.len();
        words[n - 1] = fnv1a(&words[..n - 1]);
        assert_eq!(
            decode_snapshot(&words).unwrap_err(),
            SnapshotError::UnsupportedVersion(2)
        );
    }

    #[test]
    fn archipelago_snapshot_roundtrips_and_resumes() {
        let state = evolved_run_state(19, 3, 3);
        assert!(state.as_archipelago().is_some());
        let words = encode_snapshot(&state).unwrap();
        let back = decode_snapshot(&words).unwrap();
        assert_eq!(state, back);
        assert_eq!(words, encode_snapshot(&back).unwrap());
        // Truncation and bit flips stay typed errors for the new body.
        for len in (0..words.len()).step_by(11) {
            assert!(decode_snapshot(&words[..len]).is_err());
        }
        for (i, bit) in (0..words.len()).map(|i| (i, (i * 13) % 64)) {
            let mut corrupt = words.clone();
            corrupt[i] ^= 1u64 << bit;
            assert!(decode_snapshot(&corrupt).is_err());
        }
        // A decoded archipelago checkpoint resumes bit-identically.
        let mut resumed = Session::resume(back)
            .unwrap()
            .workload(test_fitness)
            .build();
        let mut full = Session::builder(test_config(3), 19)
            .unwrap()
            .workload(test_fitness)
            .build();
        full.run(3 + 2);
        resumed.run(2);
        assert_eq!(full.genomes(), resumed.genomes());
    }

    #[test]
    fn archipelago_epoch_cross_check_is_enforced() {
        let state = evolved_run_state(19, 3, 3);
        let words = encode_snapshot(&state).unwrap();
        // The epoch word sits right after config/seed/generation in the
        // archipelago body; find it by re-encoding with a poked epoch.
        let config_len = {
            let mut w = Vec::new();
            encode_config(&mut w, state.config());
            w.len()
        };
        let epoch_index = 3 + 1 + config_len + 2;
        let mut corrupt = words.clone();
        corrupt[epoch_index] += 1;
        let n = corrupt.len();
        corrupt[n - 1] = fnv1a(&corrupt[..n - 1]);
        assert_eq!(
            decode_snapshot(&corrupt).unwrap_err(),
            SnapshotError::Malformed("migration epoch")
        );
    }

    #[test]
    fn unknown_state_kind_is_rejected() {
        let state = evolved_state(5, 1);
        let mut words = encode_snapshot(&state).unwrap();
        words[3] = 9;
        let n = words.len();
        words[n - 1] = fnv1a(&words[..n - 1]);
        assert_eq!(
            decode_snapshot(&words).unwrap_err(),
            SnapshotError::Malformed("state kind")
        );
    }

    #[test]
    fn migrant_batch_roundtrips() {
        let state = evolved_state(12, 2);
        let state = state.as_monolithic().unwrap();
        let batch = MigrantBatch {
            epoch: 4,
            from_island: 2,
            to_island: 3,
            num_inputs: state.config.num_inputs,
            num_outputs: state.config.num_outputs,
            genomes: state.genomes[..3].to_vec(),
        };
        let words = encode_migrant_batch(&batch).unwrap();
        assert_eq!(decode_migrant_batch(&words).unwrap(), batch);
        assert_eq!(
            migrant_batch_from_bytes(&migrant_batch_to_bytes(&batch).unwrap()).unwrap(),
            batch
        );
        // A migrant batch is not a snapshot (magic distinguishes).
        assert_eq!(
            decode_snapshot(&words).unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let state = evolved_state(4, 2);
        let mut words = encode_snapshot(&state).unwrap();
        words.push(0xDEAD_BEEF);
        assert!(decode_snapshot(&words).is_err());
    }

    #[test]
    fn config_image_roundtrips_and_rejects_corruption() {
        let config = evolved_state(8, 1).config().clone();
        let words = encode_config_image(&config);
        assert_eq!(decode_config_image(&words).unwrap(), config);
        assert_eq!(
            config_from_bytes(&config_to_bytes(&config)).unwrap(),
            config
        );
        // Truncation of every prefix is a typed error, never a panic.
        for len in 0..words.len() {
            assert!(decode_config_image(&words[..len]).is_err());
        }
        // Bit flips are caught.
        for (i, bit) in (0..words.len()).map(|i| (i, (i * 17) % 64)) {
            let mut corrupt = words.clone();
            corrupt[i] ^= 1u64 << bit;
            assert!(decode_config_image(&corrupt).is_err());
        }
        // A snapshot image is not a config image (magic distinguishes).
        let snap = encode_snapshot(&evolved_state(8, 1)).unwrap();
        assert_eq!(
            decode_config_image(&snap).unwrap_err(),
            SnapshotError::BadMagic
        );
        // A structurally valid image carrying an invalid config is typed.
        let mut bad = config.clone();
        bad.pop_size = 0;
        let mut words = vec![CONFIG_MAGIC, SNAPSHOT_VERSION, 0];
        encode_config(&mut words, &bad);
        let words = seal_envelope(words);
        assert!(matches!(
            decode_config_image(&words),
            Err(SnapshotError::InvalidState(_))
        ));
    }

    #[test]
    fn event_image_roundtrips_and_rejects_corruption() {
        let state = evolved_state(15, 3);
        let state = state.as_monolithic().unwrap();
        let best = state.best_ever.as_ref().unwrap();
        let mut event = OwnedGenerationEvent {
            stats: GenerationStats::collect(2, &state.genomes, state.species.len(), None, 77),
            best: Some(BestSummary::of(best)),
        };
        event.stats.env_steps = 123;
        for e in [
            event.clone(),
            OwnedGenerationEvent {
                best: None,
                ..event.clone()
            },
        ] {
            let words = encode_event(&e);
            assert_eq!(decode_event(&words).unwrap(), e);
            assert_eq!(event_from_bytes(&event_to_bytes(&e)).unwrap(), e);
            for len in 0..words.len() {
                assert!(decode_event(&words[..len]).is_err());
            }
            for (i, bit) in (0..words.len()).map(|i| (i, (i * 29) % 64)) {
                let mut corrupt = words.clone();
                corrupt[i] ^= 1u64 << bit;
                assert!(decode_event(&corrupt).is_err());
            }
        }
        // Event version policy mirrors the snapshot one.
        let mut words = encode_event(&event);
        words[1] = EVENT_VERSION + 1;
        let n = words.len();
        words[n - 1] = fnv1a(&words[..n - 1]);
        assert_eq!(
            decode_event(&words).unwrap_err(),
            SnapshotError::UnsupportedVersion(EVENT_VERSION + 1)
        );
    }
}
