//! Machine-speed calibration probe for the bench-regression gate.
//!
//! `calibration/spin` times a fixed, dependency-free integer workload that
//! never changes with the codebase. Its ratio between two bench runs
//! therefore measures only the *machine* (CPU model, frequency scaling,
//! CI-runner class), not the code. `bench_compare` uses that ratio to
//! rescale the committed baseline before gating, so a baseline recorded on
//! one machine remains meaningful on another: a runner that is uniformly
//! 2× slower sees every benchmark (including this one) at ~2×, and the
//! normalized deltas stay near zero. The probe itself is excluded from the
//! regression check — by construction it cannot regress from a code change.

use criterion::{criterion_group, criterion_main, Criterion};

/// Fixed integer workload: a xorshift-style scramble over a constant trip
/// count. DO NOT change this routine or the trip count — every committed
/// baseline depends on it staying identical.
fn spin_probe() -> u64 {
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    for _ in 0..200_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    x
}

fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration");
    group.sample_size(60);
    group.bench_function("spin", |b| b.iter(|| criterion::black_box(spin_probe())));
    group.finish();
}

criterion_group!(benches, bench_calibration);
criterion_main!(benches);
