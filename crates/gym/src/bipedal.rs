//! Bipedal walker: evolve locomotion for a two-legged robot.
//!
//! Reduced-order substitute for gym's Box2D `BipedalWalker`: a planar
//! torso with two 2-joint legs on flat terrain. What the GeneSys study
//! needs from this workload is its *interface scale* — a 24-component
//! observation (Table I: "twenty four floating point numbers") driving
//! large genomes — and a shaped locomotion reward (forward progress minus
//! torque cost, fall = -100). The contact/propulsion model is simplified
//! (stance-leg thrust proportional to hip torque while the foot is down)
//! but preserves the control problem's character: the two legs must
//! alternate to make progress.

use crate::env::{ActionKind, Environment};
use genesys_neat::XorWow;

const DT: f64 = 0.05;
const TORQUE_SCALE: f64 = 2.0;
const FALL_ANGLE: f64 = 0.8;
const GOAL_DISTANCE: f64 = 30.0;
const LIDAR_RAYS: usize = 10;

#[derive(Debug, Clone, Copy, Default)]
struct Leg {
    hip: f64,
    hip_vel: f64,
    knee: f64,
    knee_vel: f64,
    contact: bool,
}

/// The bipedal walker environment.
#[derive(Debug, Clone)]
pub struct Bipedal {
    rng: XorWow,
    x: f64,
    vx: f64,
    y: f64,
    vy: f64,
    angle: f64,
    vangle: f64,
    legs: [Leg; 2],
    steps: usize,
    done: bool,
}

impl Bipedal {
    /// Episode step limit (gym uses 1600).
    pub const MAX_STEPS: usize = 1600;

    /// Creates a walker seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        let mut env = Bipedal {
            rng: XorWow::seed_from_u64_value(seed ^ 0xB1BE_DA10),
            x: 0.0,
            vx: 0.0,
            y: 1.0,
            vy: 0.0,
            angle: 0.0,
            vangle: 0.0,
            legs: [Leg::default(); 2],
            steps: 0,
            done: false,
        };
        env.reset();
        env
    }

    /// Horizontal distance covered so far.
    pub fn distance(&self) -> f64 {
        self.x
    }

    fn write_observation(&self, obs: &mut [f64]) {
        assert_eq!(obs.len(), 24, "Bipedal emits 24 observation components");
        obs[0] = self.angle;
        obs[1] = self.vangle;
        obs[2] = self.vx;
        obs[3] = self.vy;
        for (i, leg) in self.legs.iter().enumerate() {
            let base = 4 + 5 * i;
            obs[base] = leg.hip;
            obs[base + 1] = leg.hip_vel;
            obs[base + 2] = leg.knee;
            obs[base + 3] = leg.knee_vel;
            obs[base + 4] = if leg.contact { 1.0 } else { 0.0 };
        }
        // Flat terrain: the 10 lidar returns are the constant ground
        // distance under each ray angle.
        for i in 0..LIDAR_RAYS {
            let ray = 0.1 + 0.1 * i as f64;
            obs[14 + i] = (self.y / ray.cos()).min(2.0);
        }
    }
}

impl Environment for Bipedal {
    fn name(&self) -> &'static str {
        "BipedalWalker"
    }

    fn observation_dim(&self) -> usize {
        24
    }

    fn action_dim(&self) -> usize {
        4
    }

    fn action_kind(&self) -> ActionKind {
        ActionKind::Continuous(4)
    }

    fn reset_into(&mut self, obs: &mut [f64]) {
        self.x = 0.0;
        self.vx = 0.0;
        self.y = 1.0;
        self.vy = 0.0;
        self.angle = self.rng.uniform(-0.02, 0.02);
        self.vangle = 0.0;
        for (i, leg) in self.legs.iter_mut().enumerate() {
            leg.hip = self.rng.uniform(-0.05, 0.05);
            leg.hip_vel = 0.0;
            leg.knee = 0.0;
            leg.knee_vel = 0.0;
            leg.contact = i == 0;
        }
        self.steps = 0;
        self.done = false;
        self.write_observation(obs);
    }

    fn step_into(&mut self, action: &[f64], obs: &mut [f64]) -> (f64, bool) {
        assert_eq!(action.len(), 4, "Bipedal takes four torque outputs");
        if self.done {
            self.write_observation(obs);
            return (0.0, true);
        }
        // Map sigmoid-range outputs to torques in [-1, 1].
        let torque: [f64; 4] =
            std::array::from_fn(|j| ((action[j] - 0.5) * 2.0).clamp(-1.0, 1.0) * TORQUE_SCALE);
        let mut torque_cost = 0.0;
        let mut thrust = 0.0;
        for (i, leg) in self.legs.iter_mut().enumerate() {
            let hip_t = torque[2 * i];
            let knee_t = torque[2 * i + 1];
            torque_cost += hip_t.abs() + knee_t.abs();
            leg.hip_vel += hip_t * DT * 4.0;
            leg.knee_vel += knee_t * DT * 4.0;
            // joint damping and limits
            leg.hip_vel *= 0.97;
            leg.knee_vel *= 0.97;
            leg.hip = (leg.hip + leg.hip_vel * DT).clamp(-1.2, 1.2);
            leg.knee = (leg.knee + leg.knee_vel * DT).clamp(-1.4, 0.2);
            // Stance model: a leg is in contact while swung back past the
            // torso and the knee is near extension.
            leg.contact = leg.hip < 0.15 && leg.knee > -0.5;
            if leg.contact {
                // Pushing the hip backwards while planted propels the torso.
                thrust += (-hip_t).max(0.0) * 0.35;
            }
        }
        let any_contact = self.legs.iter().any(|l| l.contact);
        // Torso dynamics.
        self.vx += (thrust - 0.08 * self.vx) * DT * 4.0;
        self.vy += if any_contact {
            -self.vy * 0.5
        } else {
            -9.8 * DT * 0.15
        };
        self.x += self.vx * DT;
        self.y = (self.y + self.vy * DT).clamp(0.4, 1.4);
        // Unbalanced leg phases tip the torso.
        let imbalance = self.legs[0].hip - self.legs[1].hip;
        self.vangle += (0.12 * imbalance - 0.8 * self.angle) * DT;
        self.vangle *= 0.98;
        self.angle += self.vangle * DT;
        self.steps += 1;

        let fell = self.angle.abs() > FALL_ANGLE || self.y <= 0.45;
        let reached = self.x >= GOAL_DISTANCE;
        self.done = fell || reached || self.steps >= Self::MAX_STEPS;

        let mut reward = self.vx * DT * 13.0 - 0.003 * torque_cost;
        if fell {
            reward -= 100.0;
        }
        self.write_observation(obs);
        (reward, self.done)
    }

    fn max_steps(&self) -> usize {
        Self::MAX_STEPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(seed: u64, policy: impl Fn(usize, &[f64]) -> [f64; 4]) -> (f64, f64) {
        let mut env = Bipedal::new(seed);
        let mut obs = env.reset();
        let mut total = 0.0;
        let mut t = 0;
        loop {
            let a = policy(t, &obs);
            let s = env.step(&a);
            total += s.reward;
            obs = s.observation;
            t += 1;
            if s.done {
                break;
            }
        }
        (total, env.distance())
    }

    #[test]
    fn observation_is_24_floats() {
        let mut env = Bipedal::new(1);
        assert_eq!(env.reset().len(), 24);
    }

    #[test]
    fn idle_walker_goes_nowhere() {
        let (_, dist) = run(2, |_, _| [0.5; 4]);
        assert!(
            dist.abs() < 1.0,
            "zero torque should not move far, got {dist}"
        );
    }

    #[test]
    fn alternating_gait_moves_forward() {
        // Push hips in antiphase with a slow square wave.
        let (_, dist) = run(3, |t, _| {
            let phase = (t / 30) % 2 == 0;
            if phase {
                [0.1, 0.5, 0.9, 0.5]
            } else {
                [0.9, 0.5, 0.1, 0.5]
            }
        });
        assert!(
            dist > 1.0,
            "alternating gait should make progress, got {dist}"
        );
    }

    #[test]
    fn gait_beats_idle_in_reward() {
        let (idle, _) = run(4, |_, _| [0.5; 4]);
        let (gait, _) = run(4, |t, _| {
            if (t / 30) % 2 == 0 {
                [0.1, 0.5, 0.9, 0.5]
            } else {
                [0.9, 0.5, 0.1, 0.5]
            }
        });
        assert!(gait > idle, "gait {gait} vs idle {idle}");
    }

    #[test]
    fn episode_always_terminates() {
        let mut env = Bipedal::new(5);
        env.reset();
        let mut steps = 0;
        while !env.step(&[0.6, 0.4, 0.5, 0.5]).done {
            steps += 1;
            assert!(steps <= Bipedal::MAX_STEPS + 1);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Bipedal::new(6);
        let mut b = Bipedal::new(6);
        a.reset();
        b.reset();
        for _ in 0..100 {
            assert_eq!(a.step(&[0.7, 0.3, 0.5, 0.5]), b.step(&[0.7, 0.3, 0.5, 0.5]));
        }
    }
}
