//! Reproduction traces.
//!
//! The paper drives its hardware evaluation from traces of the evolution
//! phase: "Each line on the trace captures the generation, the child gene
//! and genome id, the type of operation — mutation or crossover, and the
//! parameters changed or added or deleted" (Section VI-A). These types are
//! that trace. The EvE model in `genesys-core` replays them cycle-by-cycle,
//! and the Fig 5(a) experiment histograms them.

/// Kind of a reproduction operation, matching Fig 3(d) and the four EvE PE
/// pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Per-gene attribute selection from two parents (Crossover Engine).
    Crossover,
    /// Attribute perturbation (Perturbation Engine).
    Perturb,
    /// Node insertion (Add Gene Engine).
    AddNode,
    /// Connection insertion (Add Gene Engine).
    AddConn,
    /// Node deletion (Delete Gene Engine).
    DeleteNode,
    /// Connection deletion (Delete Gene Engine).
    DeleteConn,
}

impl OpKind {
    /// All operation kinds.
    pub const ALL: [OpKind; 6] = [
        OpKind::Crossover,
        OpKind::Perturb,
        OpKind::AddNode,
        OpKind::AddConn,
        OpKind::DeleteNode,
        OpKind::DeleteConn,
    ];

    /// True for the structural/attribute *mutations* (everything except
    /// crossover).
    pub fn is_mutation(self) -> bool {
        self != OpKind::Crossover
    }
}

/// One recorded reproduction operation (a "line" of the paper's trace).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReproductionOp {
    /// Which engine performed the op.
    pub kind: OpKind,
    /// How many genes/attributes the op touched.
    pub count: u64,
}

/// Tallies of reproduction operations for one child genome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Gene-pair alignments processed by the crossover engine.
    pub crossover: u64,
    /// Attribute perturbations applied.
    pub perturb: u64,
    /// Node genes inserted.
    pub add_node: u64,
    /// Connection genes inserted.
    pub add_conn: u64,
    /// Node genes deleted.
    pub delete_node: u64,
    /// Connection genes deleted.
    pub delete_conn: u64,
}

impl OpCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        OpCounters::default()
    }

    /// Total operations of all kinds.
    pub fn total(&self) -> u64 {
        self.crossover
            + self.perturb
            + self.add_node
            + self.add_conn
            + self.delete_node
            + self.delete_conn
    }

    /// Total mutation operations (everything but crossover).
    pub fn mutations(&self) -> u64 {
        self.total() - self.crossover
    }

    /// Adds another tally into this one.
    pub fn merge(&mut self, other: &OpCounters) {
        self.crossover += other.crossover;
        self.perturb += other.perturb;
        self.add_node += other.add_node;
        self.add_conn += other.add_conn;
        self.delete_node += other.delete_node;
        self.delete_conn += other.delete_conn;
    }

    /// Records `count` operations of the given kind.
    pub fn record(&mut self, kind: OpKind, count: u64) {
        match kind {
            OpKind::Crossover => self.crossover += count,
            OpKind::Perturb => self.perturb += count,
            OpKind::AddNode => self.add_node += count,
            OpKind::AddConn => self.add_conn += count,
            OpKind::DeleteNode => self.delete_node += count,
            OpKind::DeleteConn => self.delete_conn += count,
        }
    }

    /// Reads the tally for one kind.
    pub fn count(&self, kind: OpKind) -> u64 {
        match kind {
            OpKind::Crossover => self.crossover,
            OpKind::Perturb => self.perturb,
            OpKind::AddNode => self.add_node,
            OpKind::AddConn => self.add_conn,
            OpKind::DeleteNode => self.delete_node,
            OpKind::DeleteConn => self.delete_conn,
        }
    }
}

/// Trace of the creation of one child genome.
#[derive(Debug, Clone, PartialEq)]
pub struct ChildTrace {
    /// Index of the child within the new generation.
    pub child_index: usize,
    /// Index of the fitter parent within the previous generation.
    pub parent1: usize,
    /// Index of the other parent (equals `parent1` for asexual
    /// reproduction / elite copies).
    pub parent2: usize,
    /// Number of parent gene pairs streamed through the PE for this child
    /// (node genes first, then connection genes — the EvE dataflow order).
    pub genes_streamed: u64,
    /// Operation tallies.
    pub ops: OpCounters,
    /// True if the child is an unmodified elite copy (bypasses the PE).
    pub is_elite: bool,
}

/// Trace of one full reproduction step (generation `n` → `n+1`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GenerationTrace {
    /// Generation index that *produced* these children.
    pub generation: usize,
    /// Per-child traces, in child index order.
    pub children: Vec<ChildTrace>,
}

impl GenerationTrace {
    /// Aggregate operation tallies across all children.
    pub fn totals(&self) -> OpCounters {
        let mut total = OpCounters::new();
        for child in &self.children {
            total.merge(&child.ops);
        }
        total
    }

    /// Total crossover + mutation ops — the quantity Fig 5(a) histograms.
    pub fn total_ops(&self) -> u64 {
        self.totals().total()
    }

    /// How many children reused the single most-used parent — the
    /// genome-level-reuse (GLR) statistic of Fig 4(c).
    pub fn fittest_parent_reuse(&self) -> usize {
        use std::collections::HashMap;
        let mut uses: HashMap<usize, usize> = HashMap::new();
        for child in &self.children {
            if child.is_elite {
                continue;
            }
            *uses.entry(child.parent1).or_insert(0) += 1;
            if child.parent2 != child.parent1 {
                *uses.entry(child.parent2).or_insert(0) += 1;
            }
        }
        uses.values().copied().max().unwrap_or(0)
    }

    /// Count of distinct parents referenced by the trace.
    pub fn distinct_parents(&self) -> usize {
        use std::collections::HashSet;
        let mut parents = HashSet::new();
        for child in &self.children {
            if !child.is_elite {
                parents.insert(child.parent1);
                parents.insert(child.parent2);
            }
        }
        parents.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn child(idx: usize, p1: usize, p2: usize, elite: bool) -> ChildTrace {
        ChildTrace {
            child_index: idx,
            parent1: p1,
            parent2: p2,
            genes_streamed: 10,
            ops: OpCounters {
                crossover: 10,
                perturb: 3,
                add_node: 1,
                add_conn: 0,
                delete_node: 0,
                delete_conn: 1,
            },
            is_elite: elite,
        }
    }

    #[test]
    fn counters_total_and_mutations() {
        let c = OpCounters {
            crossover: 10,
            perturb: 5,
            add_node: 1,
            add_conn: 2,
            delete_node: 3,
            delete_conn: 4,
        };
        assert_eq!(c.total(), 25);
        assert_eq!(c.mutations(), 15);
    }

    #[test]
    fn record_and_count_roundtrip() {
        let mut c = OpCounters::new();
        for (i, kind) in OpKind::ALL.iter().enumerate() {
            c.record(*kind, i as u64 + 1);
        }
        for (i, kind) in OpKind::ALL.iter().enumerate() {
            assert_eq!(c.count(*kind), i as u64 + 1);
        }
    }

    #[test]
    fn reuse_counts_most_used_parent() {
        let trace = GenerationTrace {
            generation: 0,
            children: vec![
                child(0, 7, 3, false),
                child(1, 7, 2, false),
                child(2, 7, 7, false),
                child(3, 1, 2, false),
                child(4, 7, 1, true), // elite: ignored
            ],
        };
        assert_eq!(trace.fittest_parent_reuse(), 3);
        assert_eq!(trace.distinct_parents(), 4);
    }

    #[test]
    fn totals_merge_children() {
        let trace = GenerationTrace {
            generation: 1,
            children: vec![child(0, 0, 1, false), child(1, 0, 1, false)],
        };
        assert_eq!(trace.totals().crossover, 20);
        assert_eq!(trace.total_ops(), 30);
    }

    #[test]
    fn op_kind_mutation_predicate() {
        assert!(!OpKind::Crossover.is_mutation());
        assert!(OpKind::Perturb.is_mutation());
        assert!(OpKind::AddNode.is_mutation());
    }
}
