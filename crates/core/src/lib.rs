//! # genesys-core — the GeneSys SoC simulator
//!
//! A functional + cycle-level model of the GeneSys system-on-chip
//! (Samajdar et al., MICRO 2018): the first system to perform evolutionary
//! learning **and** inference on the same chip.
//!
//! * [`codec`] — the 64-bit gene word of Fig 6 (one SRAM word per gene).
//! * [`pe`] — the EvE processing element: crossover → perturbation →
//!   delete-gene → add-gene (Fig 7), functional and quantized.
//! * [`stream`] — Gene Split (parent alignment) and Gene Merge (child
//!   assembly + validity repair).
//! * [`selector`] — the CPU-side Gene Selector: fitness sharing,
//!   thresholding, parent pairing, and GLR-aware greedy PE allocation.
//! * [`eve`] — the Evolution Engine: PE rounds, NoC traffic, SRAM
//!   accounting; plus trace replay (the paper's own evaluation method).
//! * [`adam`] — the inference engine: wavefront packing onto a 32×32
//!   systolic MAC array.
//! * [`noc`] — point-to-point buses vs. the multicast tree (Fig 11(b)).
//! * [`sram`] — the 48-bank genome buffer with energy counters.
//! * [`energy`] — 15 nm area/power/energy models calibrated to Fig 8.
//! * [`soc`] — the ten-step generation walkthrough of Section IV-B; the
//!   [`GenesysSoc`] also implements the session `Backend`, so hardware
//!   runs are driven by the same `genesys_neat::Session` loop as software.
//! * [`snapshot`] — the versioned binary checkpoint format (the gene-word
//!   encoding extended to the full evolution state) behind bit-identical
//!   save/resume.
//!
//! # Quickstart: hardware-evolve CartPole
//!
//! ```
//! use genesys_core::{GenesysSoc, SocConfig};
//! use genesys_gym::{CartPole, Environment};
//! use genesys_neat::NeatConfig;
//!
//! let neat = NeatConfig::builder(4, 1).pop_size(16).build()?;
//! let mut soc = GenesysSoc::new(SocConfig::default().with_num_eve_pes(8), neat, 1);
//! let mut factory = |i: usize| -> Box<dyn Environment> { Box::new(CartPole::new(i as u64)) };
//! let report = soc.run_generation(&mut factory);
//! assert!(report.energy.total() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod adam;
pub mod codec;
pub mod config;
pub mod energy;
pub mod eve;
pub mod noc;
pub mod pe;
pub mod selector;
pub mod snapshot;
pub mod soc;
pub mod sram;
pub mod stream;

pub use adam::{inference_timing, naive_inference_timing, AdamConfig, AdamReport};
pub use codec::{
    decode, decode_genome, decode_population, encode, encode_genome, encode_population,
    quantize_genome, Gene,
};
pub use config::SocConfig;
pub use energy::{AreaBreakdown, EnergyBreakdown, GatingModel, PowerBreakdown, TechModel};
pub use eve::{replay_trace, replay_trace_with_policy, EveEngine, EveReport, ReplayReport};
pub use noc::{Noc, NocKind, NocStats};
pub use pe::{EvePe, PeConfig, PeCycles};
pub use selector::{allocate_pes, select_parents, AllocPolicy, MatingPlan, PeSchedule};
pub use snapshot::{
    decode_migrant_batch, decode_snapshot, encode_migrant_batch, encode_snapshot,
    migrant_batch_from_bytes, migrant_batch_to_bytes, snapshot_from_bytes, snapshot_to_bytes,
    MigrantBatch, SnapshotError, MIGRANT_MAGIC, SNAPSHOT_MAGIC, SNAPSHOT_MAX_NODE_ID,
    SNAPSHOT_VERSION,
};
pub use soc::{GenerationReport, GenesysSoc};
pub use sram::{GenomeBuffer, SramConfig, SramStats};
pub use stream::{align_parents, merge_child, AlignedPair, MergeReport};
