//! Asynchronous island evolution — dropping the global generation barrier.
//!
//! The megapopulation backend evolves one shared [`Population`]: every
//! generation is a sequence of population-wide phases (evaluate →
//! speciate → reproduce) separated by implicit barriers, so the slowest
//! genome of each phase gates every worker. An [`Archipelago`] removes
//! that barrier by splitting the population into `config.islands`
//! independent islands. Each island is a self-contained evolution unit —
//! its own species set, innovation tracker and RNG stream, seeded by
//! [`island_seed`]`(seed, island)` — and one island's *entire* generation
//! (evaluation, speciation, reproduction) is a single unit of work on the
//! shared [`Executor`]. Workers never wait at a phase boundary for other
//! islands: a fast island's worker steals the next island job instead of
//! idling, which is where the multi-worker speedup comes from.
//!
//! # Migration
//!
//! Islands exchange genomes on a deterministic schedule: every
//! `config.migration_interval` generations (a *migration epoch*), each
//! island sends clones of its top `config.migration_k` genomes (ranked by
//! fitness `total_cmp`, index on ties — RNG-free) to its ring successor
//! `(i + 1) % islands`, where they replace the worst residents. The
//! exchange is simultaneous: every emigrant is selected from the
//! pre-migration state, so the outcome is independent of island
//! processing order. Within a migration generation the schedule is keyed
//! purely by `(seed, epoch, island)` — never by wall-clock progress — so
//! results remain **bit-identical at any worker count**. For
//! multi-process deployments, `genesys_core::snapshot` defines a migrant
//! batch codec that carries the same clones as snapshot gene words; the
//! in-process exchange hands [`Genome`] values across directly.
//!
//! So that a migrant's hidden-node ids can never collide with ids its new
//! island later assigns to *different* splits, the islands' hidden-node id
//! spaces are disjoint: island `i` of `n` allocates ids from the residue
//! class `first_hidden_id + i (mod n)`
//! ([`InnovationTracker::set_stride`](crate::InnovationTracker::set_stride)).
//! Two islands discovering the same split still receive different ids —
//! the standard island-model relaxation of NEAT's global innovation
//! numbering, traded for barrier-free scheduling.
//!
//! # Determinism trade
//!
//! Per-genome evaluation seeds are derived from the *island-local* triple
//! `(island_seed(base_seed, island), generation, island_index)` — the
//! epoch-granular seed derivation recorded in the determinism-trade
//! ledger of [`crate::reproduction`]. The payoff: island 0's seed equals
//! the monolithic seed, so an archipelago with `--islands 1` is
//! **bit-identical to the monolithic backend**, generation by generation
//! (the equivalence test below pins this).
//!
//! See `docs/islands.md` for the pinned topology, schedule and seed
//! derivation.

use crate::config::NeatConfig;
use crate::executor::Executor;
use crate::genome::Genome;
use crate::population::Population;
use crate::session::{Backend, EvalContext, Evaluator, EvolutionState, RunState, SessionError};
use crate::stats::GenerationStats;
use crate::trace::{GenerationTrace, OpCounters};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Derives island `i`'s private base seed from the run's seed: a
/// SplitMix64-style mix (the [`EvalContext::seed`] constants), except that
/// **island 0 keeps the run seed unchanged** so a 1-island archipelago is
/// bit-identical to the monolithic backend.
pub fn island_seed(seed: u64, island: usize) -> u64 {
    if island == 0 {
        return seed;
    }
    let mut z = seed ^ (island as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The complete checkpoint of an [`Archipelago`] at a generation
/// boundary: the global knobs plus one full [`EvolutionState`] per
/// island. Restoring it and evolving N more generations is bit-identical
/// to never stopping, at any worker count — including checkpoints taken
/// mid-migration-epoch (the schedule is a pure function of the generation
/// counter). Serialized by `genesys_core::snapshot` as format v3.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchipelagoState {
    /// The run's global configuration (`pop_size` is the *total*
    /// population; `islands`/`migration_interval`/`migration_k` drive the
    /// split and the schedule).
    pub config: NeatConfig,
    /// The run's base seed (root of every island seed).
    pub seed: u64,
    /// Global generation counter (the next generation to evaluate).
    pub generation: u64,
    /// Per-island evolution state, in ring order. Island configs carry
    /// the per-island population share with `islands = 1`.
    pub islands: Vec<EvolutionState>,
    /// Opaque workload state (`Evaluator::state`).
    pub workload_state: u64,
}

impl ArchipelagoState {
    /// Validates internal consistency: the global config, the island
    /// count, the population split, and every per-island state.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`SessionError`].
    pub fn validate(&self) -> Result<(), SessionError> {
        self.config.validate().map_err(SessionError::Config)?;
        if self.islands.is_empty() {
            return Err(SessionError::EmptyState);
        }
        if self.islands.len() != self.config.islands {
            return Err(SessionError::PopulationSizeMismatch {
                config: self.config.islands,
                genomes: self.islands.len(),
            });
        }
        let total: usize = self.islands.iter().map(|s| s.genomes.len()).sum();
        if total != self.config.pop_size {
            return Err(SessionError::PopulationSizeMismatch {
                config: self.config.pop_size,
                genomes: total,
            });
        }
        for island in &self.islands {
            island.validate()?;
        }
        Ok(())
    }
}

/// Builds island `i`'s configuration: the global config with this
/// island's population share (`pop/n`, the first `pop % n` islands taking
/// one extra) and `islands = 1` (an island never recursively splits).
fn island_config(config: &NeatConfig, island: usize) -> NeatConfig {
    let n = config.islands;
    let base = config.pop_size / n;
    let extra = config.pop_size % n;
    let mut c = config.clone();
    c.pop_size = base + usize::from(island < extra);
    c.islands = 1;
    c
}

/// The island-model backend: `config.islands` self-contained
/// [`Population`]s scheduled as independent whole-generation jobs on one
/// shared [`Executor`], with deterministic ring migration every
/// `config.migration_interval` generations. See the [module docs](self).
#[derive(Debug)]
pub struct Archipelago {
    config: NeatConfig,
    seed: u64,
    generation: u64,
    islands: Vec<Population>,
    executor: Option<Arc<Executor>>,
    /// Concatenated view of every island's genomes (ring order), refreshed
    /// after each step so [`Backend::genomes`] can return one slice.
    genomes: Vec<Genome>,
}

impl Archipelago {
    /// Creates generation 0: the total population split across
    /// `config.islands` islands, island `i` seeded with
    /// [`island_seed`]`(seed, i)`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation; construct configs through
    /// [`NeatConfig::builder`] to catch errors earlier.
    pub fn new(config: NeatConfig, seed: u64) -> Self {
        config.validate().expect("invalid NeatConfig");
        let islands: Vec<Population> = (0..config.islands)
            .map(|i| {
                let mut island = Population::new(island_config(&config, i), island_seed(seed, i));
                island.set_innovation_stride(i as u32, config.islands as u32);
                island
            })
            .collect();
        let mut archipelago = Archipelago {
            config,
            seed,
            generation: 0,
            islands,
            executor: None,
            genomes: Vec::new(),
        };
        archipelago.refresh_genome_cache();
        archipelago
    }

    /// Rebuilds an archipelago from an exported state; the exact inverse
    /// of its [`Backend::export_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`SessionError`] if the state fails validation.
    pub fn from_state(state: ArchipelagoState) -> Result<Self, SessionError> {
        state.validate()?;
        let ArchipelagoState {
            config,
            seed,
            generation,
            islands,
            workload_state: _,
        } = state;
        let n = islands.len();
        let islands = islands
            .into_iter()
            .enumerate()
            .map(|(i, state)| {
                let mut island = Population::from_state(state)?;
                island.set_innovation_stride(i as u32, n as u32);
                Ok(island)
            })
            .collect::<Result<Vec<_>, SessionError>>()?;
        let mut archipelago = Archipelago {
            config,
            seed,
            generation,
            islands,
            executor: None,
            genomes: Vec::new(),
        };
        archipelago.refresh_genome_cache();
        Ok(archipelago)
    }

    /// The islands, in ring order.
    pub fn islands(&self) -> &[Population] {
        &self.islands
    }

    /// Trace of island 0's most recent reproduction step, if any — the
    /// representative trace the bench harness samples (each island keeps
    /// its own).
    pub fn last_trace(&self) -> Option<&GenerationTrace> {
        self.islands.first().and_then(Population::last_trace)
    }

    /// Is the generation about to be evaluated a migration generation?
    /// A pure function of the generation counter (never of wall-clock
    /// progress), so checkpoints taken mid-epoch resume on schedule.
    fn migration_due(&self) -> bool {
        self.islands.len() > 1
            && (self.generation + 1).is_multiple_of(self.config.migration_interval as u64)
    }

    /// Runs `f(i, island_i)` for every island — one whole-island job per
    /// executor task when a pool is attached, in index order otherwise.
    /// Islands hold no executor of their own (executor entry is
    /// non-reentrant), so each island's internal phases run serially
    /// inside its job; cross-island concurrency is the parallelism.
    fn run_islands<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut Population) -> R + Sync,
    {
        match &self.executor {
            Some(pool) => pool.map_mut(&mut self.islands, f),
            None => self
                .islands
                .iter_mut()
                .enumerate()
                .map(|(i, island)| f(i, island))
                .collect(),
        }
    }

    /// Simultaneous ring exchange: island `i`'s top `k` (selected from the
    /// pre-migration state) replace island `(i + 1) % n`'s worst. Serial
    /// and RNG-free — its cost is `k` genome clones per island, amortized
    /// over `migration_interval` generations.
    fn migrate(&mut self) {
        let n = self.islands.len();
        let k = self.config.migration_k;
        let emigrants: Vec<Vec<Genome>> = self
            .islands
            .iter()
            .map(|island| island.select_emigrants(k))
            .collect();
        for (from, batch) in emigrants.into_iter().enumerate() {
            self.islands[(from + 1) % n].integrate_migrants(&batch);
        }
    }

    /// Refreshes the concatenated genome cache from the islands,
    /// reusing the cached genomes' gene storage when the shape allows.
    fn refresh_genome_cache(&mut self) {
        let total: usize = self.islands.iter().map(|i| i.genomes().len()).sum();
        if self.genomes.len() == total {
            let mut slot = 0;
            for island in &self.islands {
                for g in island.genomes() {
                    self.genomes[slot].clone_from(g);
                    slot += 1;
                }
            }
        } else {
            self.genomes.clear();
            self.genomes.reserve(total);
            for island in &self.islands {
                self.genomes.extend(island.genomes().iter().cloned());
            }
        }
    }

    /// Merges per-island generation statistics into one population-wide
    /// entry: extrema over islands, means weighted by island population,
    /// everything else summed.
    fn merge_stats(&self, per_island: Vec<GenerationStats>) -> GenerationStats {
        let mut merged = GenerationStats {
            generation: self.generation as usize,
            max_fitness: f64::NEG_INFINITY,
            mean_fitness: 0.0,
            min_fitness: f64::INFINITY,
            num_species: 0,
            total_nodes: 0,
            total_conns: 0,
            total_genes: 0,
            max_genome_genes: 0,
            memory_bytes: 0,
            ops: OpCounters::default(),
            fittest_parent_reuse: 0,
            inference_macs: 0,
            env_steps: 0,
            diagnostics: crate::stats::PopulationDiagnostics::default(),
            speciate_ns: 0,
            reproduce_ns: 0,
            eval_ns: 0,
        };
        let mut weighted_sum = 0.0;
        let mut total_pop = 0usize;
        // Entropies merge as population-weighted means of the per-island
        // values (a within-island signal; see `docs/scenarios.md`).
        let mut entropy_sum = 0.0;
        let mut species_entropy_sum = 0.0;
        for (stats, island) in per_island.iter().zip(self.islands.iter()) {
            let pop = island.genomes().len();
            merged.max_fitness = merged.max_fitness.max(stats.max_fitness);
            merged.min_fitness = merged.min_fitness.min(stats.min_fitness);
            weighted_sum += stats.mean_fitness * pop as f64;
            total_pop += pop;
            merged.num_species += stats.num_species;
            merged.total_nodes += stats.total_nodes;
            merged.total_conns += stats.total_conns;
            merged.total_genes += stats.total_genes;
            merged.max_genome_genes = merged.max_genome_genes.max(stats.max_genome_genes);
            merged.memory_bytes += stats.memory_bytes;
            merged.ops.crossover += stats.ops.crossover;
            merged.ops.perturb += stats.ops.perturb;
            merged.ops.add_node += stats.ops.add_node;
            merged.ops.add_conn += stats.ops.add_conn;
            merged.ops.delete_node += stats.ops.delete_node;
            merged.ops.delete_conn += stats.ops.delete_conn;
            merged.fittest_parent_reuse =
                merged.fittest_parent_reuse.max(stats.fittest_parent_reuse);
            merged.inference_macs += stats.inference_macs;
            merged.env_steps += stats.env_steps;
            merged.diagnostics.unique_genomes += stats.diagnostics.unique_genomes;
            merged.diagnostics.largest_species = merged
                .diagnostics
                .largest_species
                .max(stats.diagnostics.largest_species);
            entropy_sum += stats.diagnostics.high_order_entropy * pop as f64;
            species_entropy_sum += stats.diagnostics.species_entropy * pop as f64;
            merged.speciate_ns += stats.speciate_ns;
            merged.reproduce_ns += stats.reproduce_ns;
            merged.eval_ns += stats.eval_ns;
        }
        merged.mean_fitness = weighted_sum / total_pop.max(1) as f64;
        if per_island.len() == 1 {
            // Exactly one island: copy its entropies bit-for-bit instead
            // of round-tripping through the weighting (×pop/÷pop is not
            // exact in floating point, and `--islands 1` must stay
            // bit-identical to the monolithic backend).
            merged.diagnostics.high_order_entropy = per_island[0].diagnostics.high_order_entropy;
            merged.diagnostics.species_entropy = per_island[0].diagnostics.species_entropy;
        } else {
            merged.diagnostics.high_order_entropy = entropy_sum / total_pop.max(1) as f64;
            merged.diagnostics.species_entropy = species_entropy_sum / total_pop.max(1) as f64;
        }
        merged
    }
}

/// Evaluates one island's generation through the workload: every genome
/// gets an [`EvalContext`] keyed by the island's private seed, the global
/// generation, and its island-local index. Returns evaluation side
/// tallies for the post-migration [`Population::finish_generation`].
fn evaluate_island(
    island: &mut Population,
    workload: &dyn Evaluator,
    island_base: u64,
    generation: u64,
) -> (u64, u64, u64) {
    let eval_start = std::time::Instant::now();
    let env_steps = AtomicU64::new(0);
    let macs = island.evaluate_indexed(|index, net| {
        let evaluation = workload.evaluate(
            EvalContext {
                base_seed: island_base,
                generation,
                index: index as u64,
            },
            net,
        );
        env_steps.fetch_add(evaluation.env_steps, Ordering::Relaxed);
        evaluation.fitness
    });
    (
        macs,
        env_steps.load(Ordering::Relaxed),
        eval_start.elapsed().as_nanos() as u64,
    )
}

impl Backend for Archipelago {
    fn step(&mut self, workload: &dyn Evaluator, base_seed: u64) -> GenerationStats {
        let generation = self.generation;
        let per_island = if self.migration_due() {
            // Migration generation: evaluate everywhere, exchange on the
            // pre-reproduction state, then finish every island. The
            // exchange is the only cross-island synchronization point and
            // it occurs once per migration_interval generations.
            let evals = self.run_islands(|i, island| {
                evaluate_island(island, workload, island_seed(base_seed, i), generation)
            });
            self.migrate();
            self.run_islands(|i, island| {
                let (macs, env_steps, eval_ns) = evals[i];
                let mut stats = island.finish_generation(macs, eval_ns);
                stats.env_steps = env_steps;
                stats
            })
        } else {
            // Common case: one indivisible job per island, no cross-island
            // barrier between evaluation and reproduction.
            self.run_islands(|i, island| {
                let (macs, env_steps, eval_ns) =
                    evaluate_island(island, workload, island_seed(base_seed, i), generation);
                let mut stats = island.finish_generation(macs, eval_ns);
                stats.env_steps = env_steps;
                stats
            })
        };
        let merged = self.merge_stats(per_island);
        self.generation += 1;
        self.refresh_genome_cache();
        merged
    }

    fn generation(&self) -> usize {
        self.generation as usize
    }

    fn genomes(&self) -> &[Genome] {
        &self.genomes
    }

    fn best_genome(&self) -> Option<&Genome> {
        // Fold with a strict `>`: the first island wins ties, independent
        // of scheduling order.
        let mut best: Option<&Genome> = None;
        for island in &self.islands {
            if let Some(candidate) = island.best_genome() {
                let better = match best {
                    None => true,
                    Some(current) => {
                        candidate.fitness().unwrap_or(f64::NEG_INFINITY)
                            > current.fitness().unwrap_or(f64::NEG_INFINITY)
                    }
                };
                if better {
                    best = Some(candidate);
                }
            }
        }
        best
    }

    fn champion(&self) -> Option<&Genome> {
        // Same strict-`>` fold as `best_genome`: the first island wins
        // ties, independent of scheduling order.
        let mut champion: Option<&Genome> = None;
        for island in &self.islands {
            if let Some(candidate) = island.champion() {
                let better = match champion {
                    None => true,
                    Some(current) => {
                        candidate.fitness().unwrap_or(f64::NEG_INFINITY)
                            > current.fitness().unwrap_or(f64::NEG_INFINITY)
                    }
                };
                if better {
                    champion = Some(candidate);
                }
            }
        }
        champion
    }

    fn neat_config(&self) -> &NeatConfig {
        &self.config
    }

    fn set_executor(&mut self, pool: Arc<Executor>) {
        self.executor = Some(pool);
    }

    fn export_state(&self) -> RunState {
        RunState::Archipelago(Box::new(ArchipelagoState {
            config: self.config.clone(),
            seed: self.seed,
            generation: self.generation,
            islands: self.islands.iter().map(Population::export_state).collect(),
            workload_state: 0,
        }))
    }

    fn import_state(&mut self, state: RunState) -> Result<(), SessionError> {
        match state {
            RunState::Archipelago(state) => {
                let executor = self.executor.take();
                *self = Archipelago::from_state(*state)?;
                self.executor = executor;
                Ok(())
            }
            RunState::Monolithic(_) => Err(SessionError::BackendMismatch),
        }
    }
}

/// The run-surface backend: a [`Population`] when `config.islands <= 1`,
/// an [`Archipelago`] otherwise — what [`crate::Session::builder`] and
/// [`crate::Session::resume`] construct, so every session (and the
/// serving layer above it) gets islands from the config alone.
// One backend exists per session and is held by value for its whole
// lifetime — the variant size asymmetry never multiplies across a
// collection, so boxing would only add a pointer chase to every step.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum EvolutionBackend {
    /// One shared population (`config.islands <= 1`).
    Monolithic(Population),
    /// Independent islands on one shared executor.
    Archipelago(Archipelago),
}

impl EvolutionBackend {
    /// Builds the backend the config asks for.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation; construct configs through
    /// [`NeatConfig::builder`] to catch errors earlier.
    pub fn new(config: NeatConfig, seed: u64) -> Self {
        if config.islands <= 1 {
            EvolutionBackend::Monolithic(Population::new(config, seed))
        } else {
            EvolutionBackend::Archipelago(Archipelago::new(config, seed))
        }
    }

    /// Rebuilds the backend a checkpoint was taken from: a monolithic
    /// state restores a [`Population`], an archipelago state an
    /// [`Archipelago`].
    ///
    /// # Errors
    ///
    /// Returns a [`SessionError`] if the state fails validation.
    pub fn from_state(state: RunState) -> Result<Self, SessionError> {
        match state {
            RunState::Monolithic(s) => {
                Ok(EvolutionBackend::Monolithic(Population::from_state(*s)?))
            }
            RunState::Archipelago(s) => {
                Ok(EvolutionBackend::Archipelago(Archipelago::from_state(*s)?))
            }
        }
    }

    /// Trace of the most recent reproduction step (island 0's for an
    /// archipelago), if any.
    pub fn last_trace(&self) -> Option<&GenerationTrace> {
        match self {
            EvolutionBackend::Monolithic(p) => p.last_trace(),
            EvolutionBackend::Archipelago(a) => a.last_trace(),
        }
    }
}

impl Backend for EvolutionBackend {
    fn step(&mut self, workload: &dyn Evaluator, base_seed: u64) -> GenerationStats {
        match self {
            EvolutionBackend::Monolithic(p) => Backend::step(p, workload, base_seed),
            EvolutionBackend::Archipelago(a) => a.step(workload, base_seed),
        }
    }

    fn generation(&self) -> usize {
        match self {
            EvolutionBackend::Monolithic(p) => Backend::generation(p),
            EvolutionBackend::Archipelago(a) => Backend::generation(a),
        }
    }

    fn genomes(&self) -> &[Genome] {
        match self {
            EvolutionBackend::Monolithic(p) => Backend::genomes(p),
            EvolutionBackend::Archipelago(a) => Backend::genomes(a),
        }
    }

    fn best_genome(&self) -> Option<&Genome> {
        match self {
            EvolutionBackend::Monolithic(p) => Backend::best_genome(p),
            EvolutionBackend::Archipelago(a) => Backend::best_genome(a),
        }
    }

    fn champion(&self) -> Option<&Genome> {
        match self {
            EvolutionBackend::Monolithic(p) => Backend::champion(p),
            EvolutionBackend::Archipelago(a) => Backend::champion(a),
        }
    }

    fn neat_config(&self) -> &NeatConfig {
        match self {
            EvolutionBackend::Monolithic(p) => p.config(),
            EvolutionBackend::Archipelago(a) => Backend::neat_config(a),
        }
    }

    fn set_executor(&mut self, pool: Arc<Executor>) {
        match self {
            EvolutionBackend::Monolithic(p) => Backend::set_executor(p, pool),
            EvolutionBackend::Archipelago(a) => Backend::set_executor(a, pool),
        }
    }

    fn export_state(&self) -> RunState {
        match self {
            EvolutionBackend::Monolithic(p) => Backend::export_state(p),
            EvolutionBackend::Archipelago(a) => Backend::export_state(a),
        }
    }

    fn import_state(&mut self, state: RunState) -> Result<(), SessionError> {
        // Unlike a bare Population or Archipelago, the run-surface enum
        // accepts either kind: the state dictates the variant.
        *self = EvolutionBackend::from_state(state)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::session::Session;

    fn proxy(ctx: EvalContext, net: &Network) -> f64 {
        let x = (ctx.seed() % 101) as f64 / 101.0;
        let out = net.activate(&[x, 1.0 - x])[0];
        1.0 - (out - x) * (out - x)
    }

    fn island_config_of(pop: usize, islands: usize) -> NeatConfig {
        NeatConfig::builder(2, 1)
            .pop_size(pop)
            .islands(islands)
            .migration_interval(3)
            .migration_k(1)
            .build()
            .unwrap()
    }

    #[test]
    fn island_seed_is_identity_for_island_zero() {
        for seed in [0u64, 1, 42, u64::MAX] {
            assert_eq!(island_seed(seed, 0), seed);
            assert_ne!(island_seed(seed, 1), island_seed(seed, 2));
        }
    }

    #[test]
    fn population_split_covers_the_whole_population() {
        let config = island_config_of(26, 4);
        let a = Archipelago::new(config, 7);
        let sizes: Vec<usize> = a.islands().iter().map(|i| i.genomes().len()).collect();
        assert_eq!(sizes, vec![7, 7, 6, 6]);
        assert_eq!(Backend::genomes(&a).len(), 26);
    }

    #[test]
    fn single_island_archipelago_equals_monolithic() {
        let config = island_config_of(24, 1);
        let mut mono = Session::builder(config.clone(), 9)
            .unwrap()
            .workload(proxy)
            .build();
        let mut arch = Archipelago::new(config, 9);
        for _ in 0..5 {
            let mono_stats = mono.step();
            let arch_stats = arch.step(&proxy, 9);
            assert_eq!(mono_stats, arch_stats);
        }
        assert_eq!(mono.genomes(), Backend::genomes(&arch));
    }

    #[test]
    fn archipelago_is_bit_identical_across_worker_counts() {
        let reference = {
            let mut a = Archipelago::new(island_config_of(32, 4), 17);
            for _ in 0..7 {
                a.step(&proxy, 17);
            }
            a
        };
        for workers in [1usize, 4, 8] {
            let mut a = Archipelago::new(island_config_of(32, 4), 17);
            a.set_executor(Arc::new(Executor::new(workers)));
            for _ in 0..7 {
                a.step(&proxy, 17);
            }
            assert_eq!(
                Backend::genomes(&a),
                Backend::genomes(&reference),
                "workers={workers}"
            );
            assert_eq!(Backend::export_state(&a), Backend::export_state(&reference));
        }
    }

    #[test]
    fn migration_moves_genomes_around_the_ring() {
        // With migration every 3 generations and k=1, islands exchange
        // their champions; the archipelago must keep population sizes
        // intact and stay deterministic.
        let mut a = Archipelago::new(island_config_of(24, 3), 5);
        for _ in 0..6 {
            a.step(&proxy, 5);
        }
        let sizes: Vec<usize> = a.islands().iter().map(|i| i.genomes().len()).collect();
        assert_eq!(sizes, vec![8, 8, 8]);
        // Genome keys stay island-unique after re-keying.
        for island in a.islands() {
            let mut keys: Vec<u64> = island.genomes().iter().map(Genome::key).collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), island.genomes().len());
        }
    }

    #[test]
    fn checkpoint_mid_epoch_resumes_bit_identically() {
        // Interrupt between two migration epochs (interval 3, stop at 4):
        // the resumed run must hit the same migration generations.
        let mut full = Archipelago::new(island_config_of(32, 4), 23);
        for _ in 0..8 {
            full.step(&proxy, 23);
        }

        let mut head = Archipelago::new(island_config_of(32, 4), 23);
        for _ in 0..4 {
            head.step(&proxy, 23);
        }
        let state = Backend::export_state(&head);
        drop(head);
        let mut tail = EvolutionBackend::from_state(state).unwrap();
        for _ in 0..4 {
            tail.step(&proxy, 23);
        }
        assert_eq!(Backend::genomes(&full), Backend::genomes(&tail));
        assert_eq!(Backend::export_state(&full), Backend::export_state(&tail));
    }

    #[test]
    fn wrong_state_kind_is_a_backend_mismatch() {
        let mut arch = Archipelago::new(island_config_of(16, 2), 3);
        let mut mono = Population::new(island_config_of(16, 1), 3);
        let mono_state = Backend::export_state(&mono);
        let arch_state = Backend::export_state(&arch);
        assert_eq!(
            arch.import_state(mono_state.clone()),
            Err(SessionError::BackendMismatch)
        );
        assert_eq!(
            Backend::import_state(&mut mono, arch_state.clone()),
            Err(SessionError::BackendMismatch)
        );
        // The run-surface enum accepts both and switches variant.
        let mut backend = EvolutionBackend::new(island_config_of(16, 1), 3);
        backend.import_state(arch_state).unwrap();
        assert!(matches!(backend, EvolutionBackend::Archipelago(_)));
        backend.import_state(mono_state).unwrap();
        assert!(matches!(backend, EvolutionBackend::Monolithic(_)));
    }

    #[test]
    fn session_builds_an_archipelago_from_the_config() {
        let mut s = Session::builder(island_config_of(24, 3), 31)
            .unwrap()
            .workload(proxy)
            .build();
        assert!(matches!(s.backend(), EvolutionBackend::Archipelago(_)));
        let report = s.run(4);
        assert_eq!(report.history.len(), 4);
        assert_eq!(s.generation(), 4);
        assert_eq!(s.genomes().len(), 24);
        assert!(report.best.is_some());

        // And resume through the session surface is bit-identical.
        let state = s.export_state();
        let mut resumed = Session::resume(state).unwrap().workload(proxy).build();
        s.run(3);
        resumed.run(3);
        assert_eq!(s.genomes(), resumed.genomes());
    }

    #[test]
    fn archipelago_state_validation_catches_corruption() {
        let a = Archipelago::new(island_config_of(24, 3), 2);
        let RunState::Archipelago(good) = Backend::export_state(&a) else {
            panic!("archipelago exports an archipelago state");
        };
        assert!(good.validate().is_ok());

        let mut missing = good.clone();
        missing.islands.pop();
        assert!(matches!(
            missing.validate(),
            Err(SessionError::PopulationSizeMismatch { .. })
        ));

        let mut short = good.clone();
        short.islands[0].genomes.pop();
        assert!(short.validate().is_err());

        let mut empty = good;
        empty.islands.clear();
        assert!(matches!(empty.validate(), Err(SessionError::EmptyState)));
    }
}
