//! Design-space exploration: how many EvE PEs does a workload need, and
//! what does the interconnect buy? (The Fig 8/11 questions, as a library
//! user would ask them.)
//!
//! The profiling run goes through the session API with a synthetic
//! closure workload (no environment: fitness is a pure function of the
//! network), then the recorded reproduction trace drives the EvE replay
//! model across PE counts and NoC topologies.
//!
//! Run with: `cargo run --release --example design_space`

use genesys::neat::{EvalContext, Genome, NeatConfig, Network, Session, SpeciesSet, XorWow};
use genesys::soc::{
    allocate_pes, replay_trace, replay_trace_with_policy, select_parents, AllocPolicy,
    GenomeBuffer, NocKind, SocConfig, TechModel,
};

fn main() {
    // Profile one reproduction step of a LunarLander-sized population.
    let config = NeatConfig::builder(8, 1)
        .pop_size(150)
        .build()
        .expect("valid");
    let mut session = Session::builder(config.clone(), 11)
        .expect("valid config")
        .workload(|_ctx: EvalContext, net: &Network| net.activate(&[0.1; 8])[0])
        .build();
    let parent_sizes: Vec<usize> = session.genomes().iter().map(Genome::num_genes).collect();
    session.step();
    let trace = session.backend().last_trace().expect("reproduced").clone();
    let child_sizes: Vec<usize> = session.genomes().iter().map(Genome::num_genes).collect();

    let tech = TechModel::default();
    println!("EvE PEs | NoC        | cycles | evo time | SRAM reads | power mW | area mm2");
    println!("--------+------------+--------+----------+------------+----------+---------");
    for &pes in &[2usize, 8, 32, 128, 256] {
        for noc in [NocKind::PointToPoint, NocKind::MulticastTree] {
            let soc = SocConfig::default().with_num_eve_pes(pes).with_noc(noc);
            let mut buffer = GenomeBuffer::new(soc.sram);
            buffer.set_resident(parent_sizes.iter().sum::<usize>() * 2);
            let report = replay_trace(&trace, &parent_sizes, &child_sizes, pes, noc, &mut buffer);
            println!(
                "{:>7} | {:<10} | {:>6} | {:>6.2}us | {:>10} | {:>8.1} | {:>7.2}",
                pes,
                noc.to_string(),
                report.cycles,
                report.cycles as f64 * tech.cycle_time_s() * 1e6,
                report.noc.sram_reads,
                soc.roofline_power_mw(),
                soc.area_mm2(),
            );
        }
    }

    // And the allocation-policy ablation: does GLR-aware scheduling matter?
    // (Narrow rounds make the grouping effect visible: with 8-child rounds
    // a greedy schedule touches fewer distinct parents per round.)
    println!("\nPE allocation policy (8 PEs, multicast tree):");
    let mut genomes = session.genomes().to_vec();
    for (i, g) in genomes.iter_mut().enumerate() {
        g.set_fitness((i % 13) as f64);
    }
    let mut species = SpeciesSet::new();
    let mut rng = XorWow::seed_from_u64_value(3);
    let plans = select_parents(&genomes, &mut species, &config, 0, &mut rng);
    for policy in [AllocPolicy::Greedy, AllocPolicy::RoundRobin] {
        let schedule = allocate_pes(&plans, 8, policy);
        let sizes: Vec<usize> = genomes.iter().map(Genome::num_genes).collect();
        // Re-express the plans as a trace for the replay model.
        let trace = genesys::neat::GenerationTrace {
            generation: 0,
            children: plans
                .iter()
                .map(|p| genesys::neat::trace::ChildTrace {
                    child_index: p.child_index,
                    parent1: p.fit_parent,
                    parent2: p.other_parent,
                    genes_streamed: sizes[p.fit_parent] as u64,
                    ops: Default::default(),
                    is_elite: p.is_elite,
                })
                .collect(),
        };
        let mut buffer = GenomeBuffer::new(SocConfig::default().sram);
        let report = replay_trace_with_policy(
            &trace,
            &sizes,
            &sizes,
            8,
            NocKind::MulticastTree,
            policy,
            &mut buffer,
        );
        println!(
            "  {:?}: {} rounds, {} SRAM reads",
            policy,
            schedule.rounds.len(),
            report.noc.sram_reads
        );
    }
}
