//! Evolution as a service: the full wire-protocol lifecycle against a
//! live session server — **submit → step → observe → checkpoint → evict
//! → resume** — over a real TCP socket, ending with the server's
//! trademark guarantee: the multiplexed, evicted, resumed trajectory is
//! **byte-identical** to one uninterrupted direct `Session` run.
//!
//! The server side is three lines: start a [`Server`] (scheduler thread +
//! shared executor), bind a listener, and hand both to
//! [`genesys::serve::net::serve`] on a thread. Everything after that goes
//! through [`WireClient`] — the same length-prefixed frames any non-Rust
//! client would speak.
//!
//! Run with: `cargo run --release --example evolution_service`

use genesys::neat::{NeatConfig, Session};
use genesys::serve::net::serve;
use genesys::serve::{Reply, Request, Server, ServerConfig, WireClient, WorkloadSpec};
use genesys::soc::snapshot_to_bytes;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const SEED: u64 = 7;
const GENERATIONS: u32 = 6;

fn config() -> NeatConfig {
    NeatConfig::builder(4, 1)
        .pop_size(24)
        .build()
        .expect("valid config")
}

/// The drifting workload: the world regenerates every `period`
/// generations, so a checkpoint must capture mid-drift state exactly.
fn workload() -> WorkloadSpec {
    WorkloadSpec::Drifting {
        world_seed: SEED,
        period: 2,
        episodes_per_generation: 8,
    }
}

fn main() {
    // -- Server side: scheduler + executor + TCP front end. ------------
    let spill = std::env::temp_dir().join(format!("genesys-evo-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill);
    let server = Server::start(ServerConfig::new(&spill).max_resident(8)).expect("server starts");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let shutdown = Arc::new(AtomicBool::new(false));
    let net_thread = {
        let client = server.client();
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || serve(&client, listener, &shutdown))
    };
    println!("session server listening on {addr}\n");

    // -- Client side: nothing below here touches server internals. -----
    let mut wire = WireClient::connect(addr).expect("connect");

    // submit: a seed, a workload tag, and a config image go over the
    // wire; a session id comes back.
    let Reply::Submitted { session, .. } = wire
        .call(&Request::Submit {
            seed: SEED,
            workload: workload(),
            config: Box::new(config()),
        })
        .expect("submit")
    else {
        panic!("expected Submitted");
    };
    println!("submitted session {session} (drifting workload, pop 24)");

    // step: exactly N generations — no target-fitness early exit; when
    // to stop is the client's decision, made from the observed stream.
    wire.call(&Request::Step {
        session,
        generations: GENERATIONS / 2,
    })
    .expect("step");

    // observe: drain the buffered per-generation events.
    let Reply::Events { events, .. } = wire
        .call(&Request::Observe { session, max: 32 })
        .expect("observe")
    else {
        panic!("expected Events");
    };
    println!("gen | best fitness | mean fitness | species");
    for event in &events {
        let s = &event.stats;
        println!(
            "{:>3} | {:>12.3} | {:>12.3} | {:>7}",
            s.generation, s.max_fitness, s.mean_fitness, s.num_species
        );
    }

    // checkpoint: the session's full state as portable snapshot bytes.
    let Reply::Snapshot { image, .. } = wire.call(&Request::Checkpoint { session }).expect("ckpt")
    else {
        panic!("expected Snapshot");
    };
    println!(
        "\ncheckpoint: {} bytes at generation {}",
        image.len(),
        GENERATIONS / 2
    );

    // evict: spill to disk, freeing the resident slot. The session stays
    // addressable — stepping it later would rehydrate transparently; here
    // we go further and pretend the server died entirely.
    wire.call(&Request::Evict { session }).expect("evict");
    println!("evicted session {session} (state now lives on disk, zero RAM)");

    // resume: hand the checkpoint to a *fresh* session id, as a migrated
    // client or a second server would.
    let Reply::Submitted {
        session: resumed, ..
    } = wire
        .call(&Request::Resume {
            workload: workload(),
            snapshot: image,
        })
        .expect("resume")
    else {
        panic!("expected Submitted");
    };
    wire.call(&Request::Step {
        session: resumed,
        generations: GENERATIONS - GENERATIONS / 2,
    })
    .expect("step resumed");
    let Reply::Snapshot { image: served, .. } = wire
        .call(&Request::Checkpoint { session: resumed })
        .expect("final ckpt")
    else {
        panic!("expected Snapshot");
    };
    println!("resumed as session {resumed}, stepped to generation {GENERATIONS}");

    // The guarantee: server-mediated checkpoint/evict/resume is invisible
    // to the trajectory. One uninterrupted direct run, same seed, same
    // step() loop — byte-for-byte the same state.
    let mut direct = Session::builder(config(), SEED)
        .expect("valid config")
        .workload(workload().build())
        .build();
    for _ in 0..GENERATIONS {
        direct.step();
    }
    let direct_image = snapshot_to_bytes(&direct.export_state()).expect("snapshot");
    assert_eq!(
        served, direct_image,
        "served trajectory must be bit-identical to the direct run"
    );
    println!(
        "\nbit-identity: served checkpoint == direct run ({} bytes) ✓",
        served.len()
    );

    shutdown.store(true, Ordering::Relaxed);
    net_thread.join().expect("join").expect("serve loop");
    drop(server);
    let _ = std::fs::remove_dir_all(&spill);
}
