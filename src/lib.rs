//! Umbrella crate for the GeneSys reproduction.
//!
//! This crate re-exports the workspace members under one roof so that the
//! runnable examples and the integration tests can address the whole system
//! through a single dependency:
//!
//! * [`neat`] — the NEAT neuro-evolution algorithm (genes, genomes,
//!   speciation, reproduction).
//! * [`gym`] — the environment suite from Table I of the paper.
//! * [`soc`] — the GeneSys SoC simulator (EvE, ADAM, SRAM, NoC, energy).
//! * [`platforms`] — CPU/GPU/DQN baseline cost models (Tables II and III).
//!
//! # Quickstart
//!
//! ```
//! use genesys::neat::{NeatConfig, Population};
//! use genesys::gym::{CartPole, Environment};
//!
//! let config = NeatConfig::for_env("cartpole", 4, 1);
//! let mut pop = Population::new(config, 42);
//! let stats = pop.evolve_once(|net| {
//!     let mut env = CartPole::new(7);
//!     genesys::gym::rollout(net, &mut env, 200)
//! });
//! assert!(stats.max_fitness >= 0.0);
//! ```

pub use genesys_core as soc;
pub use genesys_gym as gym;
pub use genesys_neat as neat;
pub use genesys_platforms as platforms;
