//! Offline shim for the `criterion` 0.5 API surface used by this
//! workspace's benches.
//!
//! The container building this repo has no registry access, so this crate
//! stands in for criterion: call-site compatible (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`), with a measurement loop that
//! warms up, then times each iteration individually and reports
//! **min / mean / p95** wall-clock per iteration (plus throughput over the
//! mean when declared). No plots or HTML reports — swap for crates.io
//! criterion to get those.
//!
//! # Machine-readable output for regression gating
//!
//! When the `GENESYS_BENCH_JSON` environment variable names a file, every
//! benchmark appends one JSON line to it:
//!
//! ```text
//! {"id":"group/bench","min_ns":123,"mean_ns":140,"p95_ns":160,"iters":18}
//! ```
//!
//! CI runs `cargo bench` with this set, then feeds the file to the
//! `bench_compare` bin in `crates/bench`, which fails the build if any
//! benchmark's **min** (the most scheduling-noise-resistant statistic)
//! regresses beyond a threshold against the committed baseline.

#![deny(missing_docs)]

use std::fmt;
use std::io::Write;
use std::time::{Duration, Instant};

/// Per-benchmark statistics over the individually-timed iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Fastest observed iteration, seconds.
    pub min_s: f64,
    /// Mean iteration time, seconds.
    pub mean_s: f64,
    /// 95th-percentile iteration time, seconds (nearest-rank).
    pub p95_s: f64,
    /// Number of measured iterations.
    pub iters: u64,
}

impl Stats {
    /// Computes min/mean/p95 from raw per-iteration samples. Returns `None`
    /// for an empty sample set.
    pub fn from_samples(samples: &[Duration]) -> Option<Stats> {
        if samples.is_empty() {
            return None;
        }
        let mut secs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
        secs.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let n = secs.len();
        // Nearest-rank p95: the smallest sample ≥ 95 % of the distribution.
        let p95_rank = ((0.95 * n as f64).ceil() as usize).clamp(1, n);
        Some(Stats {
            min_s: secs[0],
            mean_s: secs.iter().sum::<f64>() / n as f64,
            p95_s: secs[p95_rank - 1],
            iters: n as u64,
        })
    }
}

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput declaration for a benchmark (affects reporting only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A parameter-only id, for groups whose name carries the function.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then up to `sample_size`
    /// individually-timed iterations (each its own sample, so min/mean/p95
    /// are well-defined). The batch is cut short once it exceeds the
    /// per-benchmark time budget so heavy routines (whole NEAT
    /// generations) stay tractable. The budget is sized so that even
    /// ~50 ms routines collect a full sample set: the regression gate
    /// compares *minimum* times, and a minimum over a handful of samples
    /// is easily poisoned by one scheduler burst on a shared runner.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let budget = Duration::from_millis(1000);
        let start = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if start.elapsed() > budget {
                break;
            }
        }
    }
}

/// Top-level benchmark driver (a skeletal `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = group_name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_one(None, &id.into(), sample_size, None, f);
        self
    }
}

/// A group of benchmarks sharing a name and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            Some(&self.name),
            &id.into(),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            Some(&self.name),
            &id.into(),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (reporting is already flushed per benchmark).
    pub fn finish(self) {}
}

fn run_one<F>(
    group: Option<&str>,
    id: &BenchmarkId,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    match Stats::from_samples(&bencher.samples) {
        Some(stats) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  ({:.3e} elem/s)", n as f64 / stats.mean_s)
                }
                Some(Throughput::Bytes(n)) => format!("  ({:.3e} B/s)", n as f64 / stats.mean_s),
                None => String::new(),
            };
            println!(
                "  {label:<40} min {:.3e}  mean {:.3e}  p95 {:.3e} s/iter over {} iters{rate}",
                stats.min_s, stats.mean_s, stats.p95_s, stats.iters
            );
            write_json_line(&label, stats);
        }
        None => println!("  {label:<40} (no measurement: Bencher::iter never called)"),
    }
}

/// Appends one JSON line for `label` to the file named by the
/// `GENESYS_BENCH_JSON` environment variable, if set. Failures to write are
/// reported to stderr but do not fail the benchmark run.
fn write_json_line(label: &str, stats: Stats) {
    let Ok(path) = std::env::var("GENESYS_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    // Core count travels with every record so regression tooling can tell
    // "slower machine" apart from "fewer cores" (multithreaded benches
    // scale with the latter, which a single-thread calibration probe
    // cannot normalize away).
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let line = format!(
        "{{\"id\":\"{escaped}\",\"min_ns\":{},\"mean_ns\":{},\"p95_ns\":{},\"iters\":{},\"cores\":{cores}}}\n",
        (stats.min_s * 1e9).round() as u64,
        (stats.mean_s * 1e9).round() as u64,
        (stats.p95_s * 1e9).round() as u64,
        stats.iters
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| file.write_all(line.as_bytes()));
    if let Err(err) = written {
        eprintln!("warning: could not append bench result to {path}: {err}");
    }
}

/// Declares a function that runs the listed benchmark targets
/// (`criterion_group!(benches, bench_a, bench_b);`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` to run one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(1));
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // warm-up + up to sample_size measured iterations
        assert!(calls >= 2);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let data = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::from_parameter(3), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("Tree").to_string(), "Tree");
    }

    #[test]
    fn stats_min_mean_p95() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let stats = Stats::from_samples(&samples).unwrap();
        assert_eq!(stats.iters, 100);
        assert!((stats.min_s - 1e-6).abs() < 1e-12);
        assert!((stats.mean_s - 50.5e-6).abs() < 1e-10);
        assert!((stats.p95_s - 95e-6).abs() < 1e-10, "{}", stats.p95_s);
    }

    #[test]
    fn stats_single_sample_and_empty() {
        let one = Stats::from_samples(&[Duration::from_millis(3)]).unwrap();
        assert_eq!(one.min_s, one.mean_s);
        assert_eq!(one.min_s, one.p95_s);
        assert_eq!(one.iters, 1);
        assert!(Stats::from_samples(&[]).is_none());
    }

    #[test]
    fn json_lines_written_when_env_set() {
        let path = std::env::temp_dir().join(format!("bench_json_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // Env vars are process-global; fine here because tests in this
        // crate run in one process and no other test reads this var.
        std::env::set_var("GENESYS_BENCH_JSON", &path);
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("json");
        group.sample_size(3);
        group.bench_function("probe", |b| b.iter(|| black_box(2u64.pow(10))));
        group.finish();
        std::env::remove_var("GENESYS_BENCH_JSON");
        let contents = std::fs::read_to_string(&path).expect("json file written");
        let _ = std::fs::remove_file(&path);
        // Other tests may race on the env var and append their own lines;
        // find ours instead of assuming it is first.
        let line = contents
            .lines()
            .find(|l| l.contains("json/probe"))
            .expect("one line for this bench");
        assert!(line.starts_with("{\"id\":\"json/probe\",\"min_ns\":"));
        assert!(line.contains("\"mean_ns\":"));
        assert!(line.contains("\"p95_ns\":"));
        assert!(line.contains("\"cores\":"));
        assert!(line.ends_with('}'));
    }
}
