//! Wall-clock cost of one software NEAT generation (evaluation via a
//! synthetic fitness plus reproduction), serial vs PLP-threaded — the
//! software half of the paper's Table III CPU rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genesys_neat::{NeatConfig, Network, Population};

fn proxy_fitness(net: &Network) -> f64 {
    let mut fit = 0.0;
    for case in [
        [0.1, 0.9, 0.2, 0.8],
        [0.5, 0.5, 0.5, 0.5],
        [0.9, 0.1, 0.8, 0.2],
    ] {
        fit += net.activate(&case)[0];
    }
    fit
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("neat_generation");
    for &pop_size in &[50usize, 150] {
        group.bench_with_input(BenchmarkId::new("serial", pop_size), &pop_size, |b, &n| {
            let config = NeatConfig::builder(4, 1).pop_size(n).build().unwrap();
            let mut pop = Population::new(config, 1);
            b.iter(|| pop.evolve_once(proxy_fitness));
        });
        group.bench_with_input(
            BenchmarkId::new("plp_4_threads", pop_size),
            &pop_size,
            |b, &n| {
                let config = NeatConfig::builder(4, 1).pop_size(n).build().unwrap();
                let mut pop = Population::new(config, 1);
                pop.set_parallelism(4);
                b.iter(|| pop.evolve_once(proxy_fitness));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
