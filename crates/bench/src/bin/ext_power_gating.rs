//! Extension experiment: clock/power gating under realistic environment
//! interaction rates (Section VI-D's closing observation).
//!
//! The paper's simulated environments respond instantly; real robots
//! respond at tens of Hz. The shorter GeneSys's compute window, the longer
//! the gated idle window, and the lower the average power.
//!
//! Usage: `ext_power_gating [--pop N] [--generations N] [--seed N]`

use genesys_bench::{genesys_cost, print_table, run_workload, ExperimentArgs};
use genesys_core::{GatingModel, SocConfig};
use genesys_gym::EnvKind;

fn main() {
    let args = ExperimentArgs::parse();
    let pop = args.pop_or(64);
    let generations = args.generations_or(6);

    let soc = SocConfig::default();
    let gating = GatingModel::default();
    let active_mw = soc.roofline_power_mw();

    eprintln!("profiling LunarLander for the compute window...");
    let run = run_workload(
        EnvKind::LunarLander,
        generations,
        args.base_seed(5),
        Some(pop),
    );
    let cost = genesys_cost(&run, &soc);
    let busy_s = cost.inference_s + cost.evolution_s;

    // Environment interaction rates: instant (paper), 100 Hz control loop,
    // 10 Hz robot, 1 Hz slow process. Idle time = steps / rate.
    let rows: Vec<Vec<String>> = [
        ("instant (paper)", f64::INFINITY),
        ("1 kHz", 1e3),
        ("100 Hz", 1e2),
        ("10 Hz", 1e1),
    ]
    .iter()
    .map(|&(label, rate)| {
        let idle_s = if rate.is_infinite() {
            0.0
        } else {
            run.env_steps_per_gen / rate
        };
        let avg = gating.average_power_mw(active_mw, busy_s, idle_s);
        let duty = busy_s / (busy_s + idle_s).max(1e-30);
        vec![
            label.to_string(),
            format!("{:.3}", busy_s * 1e3),
            format!("{:.1}", idle_s * 1e3),
            format!("{:.4}%", duty * 100.0),
            format!("{avg:.1}"),
            format!("{:.0}x", active_mw / avg.max(1e-12)),
        ]
    })
    .collect();

    print_table(
        "Power gating vs environment interaction rate (per generation)",
        &["Env rate", "busy ms", "idle ms", "duty", "avg mW", "saving"],
        &rows,
    );
    println!(
        "\nGating model: {:.0}% leakage while gated, {} wake cycles.",
        gating.idle_power_fraction * 100.0,
        gating.wake_overhead_cycles
    );
    println!(
        "Duty cycle for a 10x average-power win: {:.2}%.",
        gating.ten_x_duty_cycle() * 100.0
    );
}
