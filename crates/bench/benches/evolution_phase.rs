//! Wall-clock cost of the evolution phase in isolation — speciation
//! (compatibility-distance clustering) and reproduction (plan/execute
//! child construction) — serial vs executor-parallel. This is the phase
//! the GeneSys paper accelerates with the EvE PE array; the software
//! pipeline must not serialize the generation loop on it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genesys_neat::reproduction::reproduce_into;
use genesys_neat::trace::OpCounters;
use genesys_neat::{Executor, Genome, InnovationTracker, NeatConfig, SpeciesSet, XorWow};

/// An evaluated, structurally diverged population plus its speciation —
/// the state the evolution phase starts from each generation.
fn evolved_state(pop: usize) -> (Vec<Genome>, NeatConfig, SpeciesSet, u32) {
    let c = NeatConfig::builder(6, 2).pop_size(pop).build().unwrap();
    let mut rng = XorWow::seed_from_u64_value(42);
    let mut innov = InnovationTracker::new(c.first_hidden_id());
    let mut genomes: Vec<Genome> = (0..pop as u64)
        .map(|k| Genome::initial(k, &c, &mut rng))
        .collect();
    let mut ops = OpCounters::new();
    for (i, g) in genomes.iter_mut().enumerate() {
        // Diverge a third of the population structurally so speciation
        // has real clustering work and children have hidden nodes.
        if i % 3 == 0 {
            for _ in 0..4 {
                g.mutate_add_node(&mut innov, &mut rng, &mut ops);
                g.mutate_attributes(&c, &mut rng, &mut ops);
            }
        }
        g.set_fitness(((i * 37 + 11) % 29) as f64);
    }
    let mut species = SpeciesSet::new();
    species.speciate(&genomes, &c, 0);
    species.share_fitness(&genomes);
    (genomes, c, species, innov.next_node_id())
}

fn bench_evolution_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("evolution_phase");
    for &pop in &[64usize, 150] {
        let (genomes, config, species, next_node) = evolved_state(pop);

        group.bench_with_input(BenchmarkId::new("speciate", pop), &pop, |b, _| {
            let mut set = species.clone();
            b.iter(|| {
                set.speciate(&genomes, &config, 1);
            });
        });

        let run_reproduce = |pool: Option<&Executor>, arena: &mut Vec<Genome>| {
            let mut innov = InnovationTracker::new(next_node);
            let mut rng = XorWow::seed_from_u64_value(7);
            let mut key = 100_000;
            reproduce_into(
                &genomes, &species, &config, &mut innov, &mut rng, 1, &mut key, 99, pool, arena,
                None,
            )
        };

        group.bench_with_input(BenchmarkId::new("reproduce_serial", pop), &pop, |b, _| {
            let mut arena: Vec<Genome> = Vec::new();
            b.iter(|| run_reproduce(None, &mut arena));
        });

        group.bench_with_input(BenchmarkId::new("reproduce_pool4", pop), &pop, |b, _| {
            let pool = Executor::new(4);
            let mut arena: Vec<Genome> = Vec::new();
            b.iter(|| run_reproduce(Some(&pool), &mut arena));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_evolution_phase);
criterion_main!(benches);
