//! # genesys-scenario — the continual-learning scenario suite
//!
//! The paper's continuous-learning story (§VII: evolution recovering
//! after the world changes under it) packaged as a library that composes
//! **any** environment family from `genesys_gym` into parameterized
//! continual-learning workloads, plus the metrics that make the
//! resulting runs comparable:
//!
//! * [`DriftSchedule`] — when the world changes: sudden, cyclic, linear,
//!   or compound schedules, each a pure function from generation index
//!   to regime label. [`DriftedEnv`] turns a regime into a deterministic
//!   observation-space (sensor gain/polarity) transform over any
//!   [`Environment`](genesys_gym::Environment).
//! * [`TaskSequence`] — ordered environment-family curricula
//!   (e.g. CartPole → Acrobot → LunarLander) behind one fixed genome
//!   interface, with per-task [`IoAdapter`]s mapping each task's
//!   observation/action spaces onto it. A session `Evaluator` whose only
//!   workload state is a single `u64`, so `Session::resume` continues a
//!   curriculum mid-sequence (or mid-drift) **bit-identically**.
//! * [`ContinualMetrics`] — the per-task fitness matrix (fixed-seed
//!   probes of the generation champion at every task boundary), forgetting /
//!   backward / forward transfer with the survey-standard definitions,
//!   and recovery-time-to-threshold after every drift event; accumulated
//!   incrementally by a [`MetricsRecorder`] observer.
//!
//! Every quantity in this crate is a pure function of `(plan, seeds,
//! generation)` — never of worker count, evaluation order, or checkpoint
//! placement — so scenario runs inherit the workspace's bit-identical
//! determinism contract end to end. Population-level observability
//! (genome-buffer compressibility, unique-genome counts, species
//! diversity) lives in `genesys_neat::PopulationDiagnostics` and flows
//! through every `GenerationStats` / serve-layer event; this crate adds
//! the scenario-level view on top. `docs/scenarios.md` pins the exact
//! semantics.
//!
//! # Quickstart
//!
//! ```
//! use genesys_scenario::{
//!     DriftSchedule, MetricsRecorder, RecoveryThreshold, Task, TaskPlan, TaskSequence,
//! };
//! use genesys_gym::EnvKind;
//! use genesys_neat::Session;
//!
//! let plan = TaskPlan::new(
//!     7,
//!     vec![
//!         Task::new(EnvKind::CartPole, 2),
//!         Task::new(EnvKind::MountainCar, 2).with_drift(DriftSchedule::Sudden { at: 1 }),
//!     ],
//! );
//! let mut config = plan.neat_config();
//! config.pop_size = 12;
//! let recorder = MetricsRecorder::new(plan.clone(), RecoveryThreshold::WithinFraction(0.9));
//! let mut session = Session::builder(config, 42)?
//!     .workload(TaskSequence::new(plan))
//!     .observe(recorder.observer())
//!     .build();
//! session.run(4);
//! let metrics = recorder.snapshot();
//! assert_eq!(metrics.probes.len(), 3, "baseline + one row per task");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod drift;
pub mod metrics;
pub mod sequence;

pub use drift::{regime_gains, DriftSchedule, DriftedEnv};
pub use metrics::{ContinualMetrics, DriftEvent, MetricsRecorder, ProbeRow, RecoveryThreshold};
pub use sequence::{adapted_episode, AdapterScratch, IoAdapter, Task, TaskPlan, TaskSequence};
