//! Feed-forward phenotype of a genome, compiled into a flat evaluation plan.
//!
//! NEAT phenotypes are irregular acyclic graphs, not layered MLPs. This
//! module compiles a [`Genome`] into an evaluation plan: nodes sorted into
//! **topological wavefronts** (every node's enabled predecessors live in
//! strictly earlier wavefronts). Wavefronts serve two purposes:
//!
//! 1. Software evaluation ([`Network::activate_into`]) walks them in order.
//! 2. They are exactly the "well formed input vectors" the paper's
//!    vectorize routine packs for ADAM's systolic array (Section IV-D) —
//!    `genesys-core` consumes the compiled plan directly through
//!    [`Network::layer_eval_ranges`] / [`Network::incoming_edges`] for its
//!    cycle model.
//!
//! # The compiled plan
//!
//! The plan is structure-of-arrays, mirroring how EvE/ADAM execute
//! gene-level operations out of fixed buffers with no heap: per non-input
//! node, parallel arrays hold the value slot, bias, response, activation
//! and aggregation, and one flat CSR-style `(source slot, weight)` edge
//! array with per-node offsets replaces the nested `Vec`-of-`Vec`s an
//! interpreter would chase. Aggregation is folded directly into the edge
//! walk, so no per-node temporary is materialized.
//!
//! # Zero-allocation evaluation and the determinism contract
//!
//! [`Network::activate_into`] performs **no heap allocation in steady
//! state**: all mutable state lives in a caller-owned [`Scratch`] whose
//! buffers grow to the largest network evaluated through them and are then
//! reused — including [`Aggregation::Median`] nodes, whose sort runs
//! in place inside the scratch buffer at any fan-in. The numerics are
//! **bit-identical** to the
//! retained reference interpreter ([`reference::activate`]) and to the
//! pre-compilation implementation: edges are walked in the same order the
//! genome stores them, and every aggregation fold uses the same operation
//! order, so fitness values are reproducible across the compiled and
//! interpreted paths and across any worker count (see
//! `crate::executor`'s determinism contract).

use crate::activation::Activation;
use crate::aggregation::Aggregation;
use crate::error::GenomeError;
use crate::gene::{NodeId, NodeType};
use crate::genome::Genome;
use std::collections::HashMap;

/// Reusable evaluation workspace for [`Network::activate_into`].
///
/// # Ownership rules
///
/// A `Scratch` is plain mutable state with no ties to any particular
/// network: one instance may be reused across calls, episodes and
/// networks of different sizes (buffers grow to the largest network seen
/// and are retained). It must not be shared between concurrent
/// evaluations — give each worker thread its own (e.g. via
/// `crate::executor::WorkerLocal`). Contents carry no information between
/// calls; reuse affects performance only, never results.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// Node value slots (`Network::total_slots` entries while evaluating).
    values: Vec<f64>,
    /// Sort buffer for [`Aggregation::Median`] nodes.
    sorted: Vec<f64>,
}

impl Scratch {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Scratch {
        Scratch::default()
    }
}

/// Reusable workspace for [`Network::activate_batch_into`] — the batched
/// counterpart of [`Scratch`], with the same ownership rules (reuse across
/// calls, networks and batch sizes; never share between concurrent
/// evaluations; contents carry no information between calls).
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// Node value slots × batch lanes, batch innermost
    /// (`values[slot * batch + lane]`).
    values: Vec<f64>,
    /// Per-lane aggregation accumulator (`batch` entries while folding).
    acc: Vec<f64>,
    /// Sort buffer for [`Aggregation::Median`] nodes (one lane at a time).
    sorted: Vec<f64>,
}

impl BatchScratch {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }
}

/// Reusable compilation workspace for [`Network::compile_into`]: a
/// compiled [`Network`] plus every internal buffer the compiler needs.
///
/// Compiling a genome through a plan produces exactly the network
/// [`Network::from_genome`] would, but all buffers — the plan's SoA
/// arrays and the compiler's CSR adjacency / wavefront scratch — are
/// retained and reused across compiles, so recompiling a same-shaped
/// genome (an unchanged elite carried into the next generation) performs
/// **zero heap allocation** in steady state (proved by
/// `tests/zero_alloc.rs`).
///
/// # Ownership rules
///
/// Same as [`Scratch`]: one instance may be reused across genomes of any
/// shape (buffers grow to the largest genome seen), must not be shared
/// between concurrent compiles (give each worker its own, e.g. via
/// `crate::executor::WorkerLocal`), and carries no information between
/// calls — reuse affects performance only, never results.
#[derive(Debug, Clone, Default)]
pub struct NetworkPlan {
    /// The compiled network (meaningful after a successful compile).
    net: Network,
    /// Per-slot remaining in-degree during Kahn layering.
    indegree: Vec<usize>,
    /// CSR offsets into `out_targets` per source slot (`num_nodes + 1`).
    out_offsets: Vec<usize>,
    /// Destination slots of enabled edges, grouped by source slot.
    out_targets: Vec<usize>,
    /// CSR offsets into `in_edges` per destination slot (`num_nodes + 1`).
    in_offsets: Vec<usize>,
    /// `(source slot, weight)` edges grouped by destination slot, in
    /// genome connection order within each group.
    in_edges: Vec<(usize, f64)>,
    /// `(src slot, dst slot, weight)` per enabled connection, in genome
    /// connection order.
    conn_slots: Vec<(usize, usize, f64)>,
    /// CSR fill cursors.
    cursor: Vec<usize>,
    /// Current Kahn wavefront (slot indices; slot order == id order).
    frontier: Vec<usize>,
    /// Next Kahn wavefront.
    next: Vec<usize>,
    /// Inner layer vectors reclaimed from the previous compile.
    spare_layers: Vec<Vec<NodeId>>,
}

impl NetworkPlan {
    /// Creates an empty plan (buffers grow on first compile).
    pub fn new() -> NetworkPlan {
        NetworkPlan::default()
    }

    /// The most recently compiled network. A fresh plan holds an empty
    /// network; after a failed compile the contents are unspecified.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Consumes the plan, keeping only the compiled network.
    pub fn into_network(self) -> Network {
        self.net
    }
}

/// A compiled, immutable, reusable phenotype.
///
/// ```
/// use genesys_neat::{Genome, NeatConfig, Network, Scratch, XorWow};
/// let config = NeatConfig::builder(2, 1).build()?;
/// let genome = Genome::initial(0, &config, &mut XorWow::seed_from_u64_value(1));
/// let net = Network::from_genome(&genome)?;
/// // Allocation-free hot path: reuse the scratch and output buffers.
/// let mut scratch = Scratch::new();
/// let mut out = [0.0f64; 1];
/// net.activate_into(&mut scratch, &[0.5, -0.5], &mut out);
/// // Convenience wrapper (allocates per call):
/// assert_eq!(net.activate(&[0.5, -0.5]), out);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Network {
    num_inputs: usize,
    num_outputs: usize,
    total_slots: usize,
    // ---- compiled plan: SoA over non-input nodes, topological order ----
    /// Value slot each eval node writes.
    slots: Vec<usize>,
    biases: Vec<f64>,
    responses: Vec<f64>,
    activations: Vec<Activation>,
    aggregations: Vec<Aggregation>,
    /// CSR offsets into `edges`: eval node `i` owns
    /// `edges[edge_offsets[i]..edge_offsets[i + 1]]`.
    edge_offsets: Vec<usize>,
    /// Flat `(source value slot, weight)` array for all enabled edges.
    edges: Vec<(usize, f64)>,
    /// Per-wavefront `(start, end)` ranges over the eval arrays (entry 0 is
    /// the input wavefront and covers only its source-free non-input nodes).
    layer_ranges: Vec<(usize, usize)>,
    output_slots: Vec<usize>,
    layers: Vec<Vec<NodeId>>,
    num_macs: u64,
}

impl Network {
    /// Compiles a genome into a network.
    ///
    /// Convenience wrapper over [`Network::compile_into`]: builds a fresh
    /// [`NetworkPlan`] per call. Hot loops that recompile genomes every
    /// generation (the evaluation fan-out) should hold a per-worker plan
    /// and call `compile_into` directly — recompiling a same-shaped genome
    /// through a warm plan allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::Cycle`] if the enabled connection graph is not
    /// acyclic (cannot happen for genomes produced by this crate, which
    /// maintain the feed-forward invariant, but hardware-decoded genomes go
    /// through here too).
    pub fn from_genome(genome: &Genome) -> Result<Network, GenomeError> {
        let mut plan = NetworkPlan::new();
        Network::compile_into(&mut plan, genome)?;
        Ok(plan.into_network())
    }

    /// Compiles `genome` into `plan`'s retained buffers — the buffer-reuse
    /// counterpart of [`Network::from_genome`], producing a bit-identical
    /// plan (same slots, edges, wavefronts and fold order) without the
    /// per-call HashMaps and `Vec`-of-`Vec` adjacency the one-shot
    /// compiler allocates. Node lookup is a binary search over the
    /// genome's id-sorted gene cluster; adjacency lives in two reusable
    /// CSR buffers filled in genome connection order.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::Cycle`] if the enabled connection graph is
    /// not acyclic. On error the plan's network contents are unspecified,
    /// but the plan itself stays reusable.
    pub fn compile_into(plan: &mut NetworkPlan, genome: &Genome) -> Result<(), GenomeError> {
        let nodes = genome.node_genes();
        let n = nodes.len();
        // The gene cluster is sorted by id, so slot order == id order and
        // lookup is a binary search (no hash map).
        let slot_of = |id: NodeId| -> usize {
            nodes
                .binary_search_by_key(&id, |node| node.id)
                .expect("validated genome: every edge endpoint is a node")
        };

        let NetworkPlan {
            net,
            indegree,
            out_offsets,
            out_targets,
            in_offsets,
            in_edges,
            conn_slots,
            cursor,
            frontier,
            next,
            spare_layers,
        } = plan;

        // Pass 1 over enabled connections: CSR histograms + slot/weight
        // triples (so pass 2 never re-searches the gene cluster).
        indegree.clear();
        indegree.resize(n, 0);
        out_offsets.clear();
        out_offsets.resize(n + 1, 0);
        in_offsets.clear();
        in_offsets.resize(n + 1, 0);
        conn_slots.clear();
        let mut num_macs = 0u64;
        for conn in genome.conns().filter(|c| c.enabled) {
            let src = slot_of(conn.key.src);
            let dst = slot_of(conn.key.dst);
            conn_slots.push((src, dst, conn.weight));
            out_offsets[src + 1] += 1;
            in_offsets[dst + 1] += 1;
            indegree[dst] += 1;
            num_macs += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }

        // Pass 2: stable CSR fills. Per-destination edge order is exactly
        // the genome's connection order (bit-identical aggregation folds
        // versus the reference interpreter).
        out_targets.clear();
        out_targets.resize(num_macs as usize, 0);
        in_edges.clear();
        in_edges.resize(num_macs as usize, (0, 0.0));
        cursor.clear();
        cursor.extend_from_slice(&out_offsets[..n]);
        for &(src, dst, _) in conn_slots.iter() {
            out_targets[cursor[src]] = dst;
            cursor[src] += 1;
        }
        cursor.clear();
        cursor.extend_from_slice(&in_offsets[..n]);
        for &(src, dst, weight) in conn_slots.iter() {
            in_edges[cursor[dst]] = (src, weight);
            cursor[dst] += 1;
        }

        // Reclaim the previous compile's layer vectors, then reset the
        // compiled arrays (capacity retained).
        spare_layers.append(&mut net.layers);
        net.slots.clear();
        net.biases.clear();
        net.responses.clear();
        net.activations.clear();
        net.aggregations.clear();
        net.edge_offsets.clear();
        net.edges.clear();
        net.layer_ranges.clear();
        net.output_slots.clear();
        net.edge_offsets.push(0);

        // Kahn wavefronts over slots. Sorting slots reproduces the NodeId
        // sort of the one-shot compiler (slot order == id order), and each
        // wavefront is flattened straight into the SoA plan.
        frontier.clear();
        for (slot, d) in indegree.iter().enumerate() {
            if *d == 0 {
                frontier.push(slot);
            }
        }
        let mut processed = 0usize;
        while !frontier.is_empty() {
            next.clear();
            let start = net.slots.len();
            let mut layer = spare_layers.pop().unwrap_or_default();
            layer.clear();
            for &slot in frontier.iter() {
                processed += 1;
                for &dst in &out_targets[out_offsets[slot]..out_offsets[slot + 1]] {
                    indegree[dst] -= 1;
                    if indegree[dst] == 0 {
                        next.push(dst);
                    }
                }
                let node = &nodes[slot];
                layer.push(node.id);
                if node.node_type == NodeType::Input {
                    continue;
                }
                net.slots.push(slot);
                net.biases.push(node.bias);
                net.responses.push(node.response);
                net.activations.push(node.activation);
                net.aggregations.push(node.aggregation);
                net.edges
                    .extend_from_slice(&in_edges[in_offsets[slot]..in_offsets[slot + 1]]);
                net.edge_offsets.push(net.edges.len());
            }
            net.layer_ranges.push((start, net.slots.len()));
            net.layers.push(layer);
            next.sort_unstable();
            std::mem::swap(frontier, next);
        }
        if processed != n {
            return Err(GenomeError::Cycle);
        }

        net.num_inputs = genome.num_inputs();
        net.num_outputs = genome.num_outputs();
        net.total_slots = n;
        net.num_macs = num_macs;
        for o in 0..genome.num_outputs() {
            net.output_slots
                .push(slot_of(NodeId((genome.num_inputs() + o) as u32)));
        }
        // Input nodes occupy the first ids; slot i == input i.
        debug_assert!((0..genome.num_inputs()).all(|i| slot_of(NodeId(i as u32)) == i));
        Ok(())
    }

    /// Evaluates the network on one observation, writing the output node
    /// values (in output-id order) into `outputs`. This is the
    /// zero-allocation hot path: `scratch` and `outputs` are reused by the
    /// caller across steps, episodes and networks.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the genome's input count or
    /// `outputs.len()` from its output count.
    pub fn activate_into(&self, scratch: &mut Scratch, inputs: &[f64], outputs: &mut [f64]) {
        assert_eq!(
            inputs.len(),
            self.num_inputs,
            "observation size must match the genome interface"
        );
        assert_eq!(
            outputs.len(),
            self.num_outputs,
            "output buffer size must match the genome interface"
        );
        let Scratch { values, sorted } = scratch;
        values.clear();
        values.resize(self.total_slots, 0.0);
        // Input node ids are 0..num_inputs and the sorted gene cluster
        // slots them first, so slot i == input i.
        values[..self.num_inputs].copy_from_slice(inputs);
        for i in 0..self.slots.len() {
            let edges = &self.edges[self.edge_offsets[i]..self.edge_offsets[i + 1]];
            // Aggregation folded into the edge walk; fold order and empty
            // cases match `Aggregation::apply` bit for bit.
            let agg = if edges.is_empty() {
                match self.aggregations[i] {
                    Aggregation::Product => 1.0,
                    _ => 0.0,
                }
            } else {
                match self.aggregations[i] {
                    Aggregation::Sum => edges.iter().fold(0.0, |acc, &(s, w)| acc + w * values[s]),
                    Aggregation::Product => {
                        edges.iter().fold(1.0, |acc, &(s, w)| acc * (w * values[s]))
                    }
                    Aggregation::Max => edges.iter().fold(f64::NEG_INFINITY, |acc, &(s, w)| {
                        f64::max(acc, w * values[s])
                    }),
                    Aggregation::Min => edges
                        .iter()
                        .fold(f64::INFINITY, |acc, &(s, w)| f64::min(acc, w * values[s])),
                    Aggregation::Mean => {
                        edges.iter().fold(0.0, |acc, &(s, w)| acc + w * values[s])
                            / edges.len() as f64
                    }
                    Aggregation::MaxAbs => edges.iter().fold(0.0, |best: f64, &(s, w)| {
                        let v = w * values[s];
                        if v.abs() > best.abs() {
                            v
                        } else {
                            best
                        }
                    }),
                    Aggregation::Median => {
                        sorted.clear();
                        sorted.extend(edges.iter().map(|&(s, w)| w * values[s]));
                        // Stable in-place insertion sort in the Scratch
                        // buffer: allocation-free at ANY fan-in (stdlib
                        // `sort_by` allocates beyond its on-stack merge
                        // threshold) and bit-identical to the reference's
                        // stable sort — `>` never reorders ±0.0 ties or
                        // NaN, so even poisoned inputs degrade
                        // deterministically instead of panicking.
                        for i in 1..sorted.len() {
                            let mut j = i;
                            while j > 0 && sorted[j - 1] > sorted[j] {
                                sorted.swap(j - 1, j);
                                j -= 1;
                            }
                        }
                        let mid = sorted.len() / 2;
                        if sorted.len() % 2 == 1 {
                            sorted[mid]
                        } else {
                            0.5 * (sorted[mid - 1] + sorted[mid])
                        }
                    }
                }
            };
            values[self.slots[i]] =
                self.activations[i].apply(self.biases[i] + self.responses[i] * agg);
        }
        for (out, &slot) in outputs.iter_mut().zip(&self.output_slots) {
            *out = values[slot];
        }
    }

    /// Evaluates `batch` observations in lockstep over the compiled plan,
    /// with the batch as the **innermost SoA dimension**: `inputs` holds
    /// observation element `i` of lane `b` at `inputs[i * batch + b]`, and
    /// outputs land at `outputs[o * batch + b]`. The edge walk then runs
    /// edges-outer / lanes-inner over contiguous lane runs, which the
    /// compiler autovectorizes — this is the software mirror of the ADAM
    /// PE array evaluating a wavefront across many genomes at once.
    ///
    /// Every lane's fold applies the exact per-lane operation order of
    /// [`Network::activate_into`], so each lane is **bit-identical** to a
    /// scalar evaluation of the same observation; batching is purely a
    /// throughput knob. Zero heap allocation in steady state: all mutable
    /// state lives in the caller-owned [`BatchScratch`].
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`, `inputs.len() != num_inputs * batch`, or
    /// `outputs.len() != num_outputs * batch`.
    pub fn activate_batch_into(
        &self,
        scratch: &mut BatchScratch,
        batch: usize,
        inputs: &[f64],
        outputs: &mut [f64],
    ) {
        assert!(batch > 0, "batch must be non-empty");
        assert_eq!(
            inputs.len(),
            self.num_inputs * batch,
            "observation block size must match the genome interface × batch"
        );
        assert_eq!(
            outputs.len(),
            self.num_outputs * batch,
            "output block size must match the genome interface × batch"
        );
        let BatchScratch {
            values,
            acc,
            sorted,
        } = scratch;
        values.clear();
        values.resize(self.total_slots * batch, 0.0);
        acc.clear();
        acc.resize(batch, 0.0);
        // Slot i == input i (sorted gene cluster), so the input block maps
        // straight onto the first `num_inputs` slot runs.
        values[..self.num_inputs * batch].copy_from_slice(inputs);
        for i in 0..self.slots.len() {
            let edges = &self.edges[self.edge_offsets[i]..self.edge_offsets[i + 1]];
            if edges.is_empty() {
                let constant = match self.aggregations[i] {
                    Aggregation::Product => 1.0,
                    _ => 0.0,
                };
                acc.fill(constant);
            } else {
                // Edges-outer / lanes-inner: each lane sees the exact fold
                // order of the scalar path, and the inner loop walks two
                // contiguous `batch`-long runs (source lane run, acc).
                match self.aggregations[i] {
                    Aggregation::Sum => {
                        acc.fill(0.0);
                        for &(s, w) in edges {
                            let src = &values[s * batch..(s + 1) * batch];
                            for (a, &v) in acc.iter_mut().zip(src) {
                                *a += w * v;
                            }
                        }
                    }
                    Aggregation::Product => {
                        acc.fill(1.0);
                        for &(s, w) in edges {
                            let src = &values[s * batch..(s + 1) * batch];
                            for (a, &v) in acc.iter_mut().zip(src) {
                                *a *= w * v;
                            }
                        }
                    }
                    Aggregation::Max => {
                        acc.fill(f64::NEG_INFINITY);
                        for &(s, w) in edges {
                            let src = &values[s * batch..(s + 1) * batch];
                            for (a, &v) in acc.iter_mut().zip(src) {
                                *a = f64::max(*a, w * v);
                            }
                        }
                    }
                    Aggregation::Min => {
                        acc.fill(f64::INFINITY);
                        for &(s, w) in edges {
                            let src = &values[s * batch..(s + 1) * batch];
                            for (a, &v) in acc.iter_mut().zip(src) {
                                *a = f64::min(*a, w * v);
                            }
                        }
                    }
                    Aggregation::Mean => {
                        acc.fill(0.0);
                        for &(s, w) in edges {
                            let src = &values[s * batch..(s + 1) * batch];
                            for (a, &v) in acc.iter_mut().zip(src) {
                                *a += w * v;
                            }
                        }
                        let count = edges.len() as f64;
                        for a in acc.iter_mut() {
                            // Same `sum / len` division as the scalar fold.
                            *a /= count;
                        }
                    }
                    Aggregation::MaxAbs => {
                        acc.fill(0.0);
                        for &(s, w) in edges {
                            let src = &values[s * batch..(s + 1) * batch];
                            for (a, &v) in acc.iter_mut().zip(src) {
                                let v = w * v;
                                if v.abs() > a.abs() {
                                    *a = v;
                                }
                            }
                        }
                    }
                    Aggregation::Median => {
                        // Lanes-outer: the in-place insertion sort works on
                        // one lane's gathered fan-in at a time, identical
                        // to the scalar path.
                        for (b, a) in acc.iter_mut().enumerate() {
                            sorted.clear();
                            sorted.extend(edges.iter().map(|&(s, w)| w * values[s * batch + b]));
                            for i in 1..sorted.len() {
                                let mut j = i;
                                while j > 0 && sorted[j - 1] > sorted[j] {
                                    sorted.swap(j - 1, j);
                                    j -= 1;
                                }
                            }
                            let mid = sorted.len() / 2;
                            *a = if sorted.len() % 2 == 1 {
                                sorted[mid]
                            } else {
                                0.5 * (sorted[mid - 1] + sorted[mid])
                            };
                        }
                    }
                }
            }
            let base = self.slots[i] * batch;
            let bias = self.biases[i];
            let response = self.responses[i];
            let activation = self.activations[i];
            for (b, &a) in acc.iter().enumerate() {
                values[base + b] = activation.apply(bias + response * a);
            }
        }
        for (o, &slot) in self.output_slots.iter().enumerate() {
            outputs[o * batch..(o + 1) * batch]
                .copy_from_slice(&values[slot * batch..(slot + 1) * batch]);
        }
    }

    /// Evaluates the network on one observation, returning the output node
    /// values in output-id order.
    ///
    /// Compatibility wrapper over [`Network::activate_into`]: allocates a
    /// fresh [`Scratch`] and output `Vec` per call. Hot loops should hold
    /// their own buffers and call `activate_into` directly.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the genome's input count.
    pub fn activate(&self, inputs: &[f64]) -> Vec<f64> {
        let mut scratch = Scratch::new();
        let mut outputs = vec![0.0f64; self.num_outputs];
        self.activate_into(&mut scratch, inputs, &mut outputs);
        outputs
    }

    /// Number of input nodes.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output nodes.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Topological wavefronts (layer 0 = inputs and source-free nodes).
    /// These are the vertex batches ADAM evaluates per matrix–vector pass.
    pub fn layers(&self) -> &[Vec<NodeId>] {
        &self.layers
    }

    /// Per-wavefront `(start, end)` index ranges over the compiled eval
    /// arrays, parallel to [`Network::layers`]. Entry 0 covers only the
    /// source-free **non-input** members of wavefront 0 (usually empty);
    /// for `l ≥ 1` the range length equals `layers()[l].len()`. This is
    /// the view `genesys-core`'s ADAM cycle model packs from.
    pub fn layer_eval_ranges(&self) -> &[(usize, usize)] {
        &self.layer_ranges
    }

    /// Number of compiled (non-input) nodes in the plan.
    pub fn num_eval_nodes(&self) -> usize {
        self.slots.len()
    }

    /// The `(source value slot, weight)` edges feeding compiled node
    /// `eval` (an index into the ranges of
    /// [`Network::layer_eval_ranges`]), in genome connection order.
    pub fn incoming_edges(&self, eval: usize) -> &[(usize, f64)] {
        &self.edges[self.edge_offsets[eval]..self.edge_offsets[eval + 1]]
    }

    /// Multiply-accumulate operations per inference (one per enabled
    /// connection) — the op count used by Table II and the Fig 9 cost
    /// models.
    pub fn num_macs(&self) -> u64 {
        self.num_macs
    }

    /// Total number of nodes (value slots).
    pub fn num_nodes(&self) -> usize {
        self.total_slots
    }
}

pub mod reference {
    //! Reference interpreter retained as the oracle for the compiled plan.
    //!
    //! Evaluates a genome the way the pre-compilation `Network` did: walk
    //! the wavefronts, gather each node's weighted inputs into a temporary
    //! and apply [`Aggregation::apply`]. Slow and allocating by design —
    //! property tests assert the compiled SoA plan is bit-identical to
    //! this on arbitrary evolved genomes.

    use super::*;

    /// Evaluates `genome` on `inputs` without compiling a plan, returning
    /// the output node values in output-id order.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::Cycle`] if the enabled connection graph is
    /// cyclic.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the genome's input count.
    pub fn activate(genome: &Genome, inputs: &[f64]) -> Result<Vec<f64>, GenomeError> {
        assert_eq!(
            inputs.len(),
            genome.num_inputs(),
            "observation size must match the genome interface"
        );
        let mut slot_of: HashMap<NodeId, usize> = HashMap::new();
        for (slot, node) in genome.nodes().enumerate() {
            slot_of.insert(node.id, slot);
        }
        let mut indegree: HashMap<NodeId, usize> = genome.nodes().map(|n| (n.id, 0)).collect();
        let mut out_edges: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        let mut incoming: HashMap<NodeId, Vec<(usize, f64)>> = HashMap::new();
        for conn in genome.conns().filter(|c| c.enabled) {
            *indegree.get_mut(&conn.key.dst).expect("validated genome") += 1;
            out_edges
                .entry(conn.key.src)
                .or_default()
                .push(conn.key.dst);
            incoming
                .entry(conn.key.dst)
                .or_default()
                .push((slot_of[&conn.key.src], conn.weight));
        }
        let mut frontier: Vec<NodeId> = genome
            .nodes()
            .filter(|n| indegree[&n.id] == 0)
            .map(|n| n.id)
            .collect();
        frontier.sort_unstable();
        let mut order: Vec<NodeId> = Vec::new();
        while !frontier.is_empty() {
            let mut next: Vec<NodeId> = Vec::new();
            for &id in &frontier {
                order.push(id);
                if let Some(dsts) = out_edges.get(&id) {
                    for &dst in dsts {
                        let d = indegree.get_mut(&dst).expect("node present");
                        *d -= 1;
                        if *d == 0 {
                            next.push(dst);
                        }
                    }
                }
            }
            next.sort_unstable();
            frontier = next;
        }
        if order.len() != genome.num_nodes() {
            return Err(GenomeError::Cycle);
        }

        let mut values = vec![0.0f64; genome.num_nodes()];
        values[..genome.num_inputs()].copy_from_slice(inputs);
        let mut weighted: Vec<f64> = Vec::new();
        for id in &order {
            let node = genome.node(*id).expect("node present");
            if node.node_type == NodeType::Input {
                continue;
            }
            weighted.clear();
            if let Some(inc) = incoming.get(id) {
                weighted.extend(inc.iter().map(|&(slot, w)| w * values[slot]));
            }
            let agg = node.aggregation.apply(&weighted);
            values[slot_of[id]] = node.activation.apply(node.bias + node.response * agg);
        }
        Ok((0..genome.num_outputs())
            .map(|o| values[slot_of[&NodeId((genome.num_inputs() + o) as u32)]])
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InitialWeights, NeatConfig};
    use crate::gene::{ConnGene, NodeGene};
    use crate::innovation::InnovationTracker;
    use crate::rng::XorWow;
    use crate::trace::OpCounters;

    fn cfg() -> NeatConfig {
        NeatConfig::builder(2, 1).build().unwrap()
    }

    #[test]
    fn zero_weight_initial_net_outputs_sigmoid_of_zero() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(1));
        let net = Network::from_genome(&g).unwrap();
        let out = net.activate(&[1.0, -1.0]);
        assert!(
            (out[0] - 0.5).abs() < 1e-12,
            "zero weights ⇒ sigmoid(0) = 0.5"
        );
    }

    #[test]
    fn hand_built_network_computes_weighted_sum() {
        // 2 inputs -> 1 output with weights 2 and -1, identity activation.
        let mut nodes = vec![
            NodeGene::input(NodeId(0)),
            NodeGene::input(NodeId(1)),
            NodeGene::output(NodeId(2)),
        ];
        nodes[2].activation = Activation::Identity;
        nodes[2].bias = 0.25;
        let conns = vec![
            ConnGene::new(NodeId(0), NodeId(2), 2.0),
            ConnGene::new(NodeId(1), NodeId(2), -1.0),
        ];
        let g = Genome::from_parts(0, 2, 1, nodes, conns).unwrap();
        let net = Network::from_genome(&g).unwrap();
        let out = net.activate(&[3.0, 4.0]);
        assert!((out[0] - (0.25 + 2.0 * 3.0 - 4.0)).abs() < 1e-12);
    }

    #[test]
    fn hidden_node_forms_second_wavefront() {
        let mut nodes = vec![
            NodeGene::input(NodeId(0)),
            NodeGene::output(NodeId(1)),
            NodeGene::hidden(NodeId(2)),
        ];
        nodes[1].activation = Activation::Identity;
        nodes[2].activation = Activation::Identity;
        let conns = vec![
            ConnGene::new(NodeId(0), NodeId(2), 3.0),
            ConnGene::new(NodeId(2), NodeId(1), 2.0),
        ];
        let g = Genome::from_parts(0, 1, 1, nodes, conns).unwrap();
        let net = Network::from_genome(&g).unwrap();
        assert_eq!(net.layers().len(), 3);
        assert_eq!(net.layer_eval_ranges(), &[(0, 0), (0, 1), (1, 2)]);
        let out = net.activate(&[1.5]);
        assert!((out[0] - 9.0).abs() < 1e-12, "1.5 * 3 * 2 = 9");
        assert_eq!(net.num_macs(), 2);
    }

    #[test]
    fn disabled_connections_do_not_contribute() {
        let mut nodes = vec![NodeGene::input(NodeId(0)), NodeGene::output(NodeId(1))];
        nodes[1].activation = Activation::Identity;
        let mut conn = ConnGene::new(NodeId(0), NodeId(1), 5.0);
        conn.enabled = false;
        let g = Genome::from_parts(0, 1, 1, nodes, vec![conn]).unwrap();
        let net = Network::from_genome(&g).unwrap();
        assert_eq!(net.activate(&[2.0])[0], 0.0);
        assert_eq!(net.num_macs(), 0);
    }

    #[test]
    #[should_panic(expected = "observation size")]
    fn wrong_input_arity_panics() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(1));
        let net = Network::from_genome(&g).unwrap();
        let _ = net.activate(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "output buffer size")]
    fn wrong_output_arity_panics() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(1));
        let net = Network::from_genome(&g).unwrap();
        net.activate_into(&mut Scratch::new(), &[1.0, 2.0], &mut [0.0, 0.0]);
    }

    #[test]
    fn evolved_genomes_compile_and_activate() {
        let mut c = cfg();
        c.initial_weights = InitialWeights::Uniform { lo: -1.0, hi: 1.0 };
        let mut r = XorWow::seed_from_u64_value(9);
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut g = Genome::initial(0, &c, &mut r);
        for _ in 0..200 {
            let mut ops = OpCounters::new();
            g.mutate(&c, &mut innov, &mut r, &mut ops);
            let net = Network::from_genome(&g).expect("mutated genome stays acyclic");
            let out = net.activate(&[0.3, -0.7]);
            assert_eq!(out.len(), 1);
            assert!(out[0].is_finite());
        }
    }

    #[test]
    fn scratch_reuse_across_networks_matches_fresh_buffers() {
        // One Scratch reused across many differently-sized networks and
        // aggregations must give the same bits as fresh buffers each call.
        let mut c = cfg();
        c.initial_weights = InitialWeights::Uniform { lo: -1.0, hi: 1.0 };
        c.activation_options = Activation::ALL.to_vec();
        c.aggregation_options = Aggregation::ALL.to_vec();
        c.activation_mutate_rate = 0.5;
        c.aggregation_mutate_rate = 0.5;
        let mut r = XorWow::seed_from_u64_value(77);
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut g = Genome::initial(0, &c, &mut r);
        let mut scratch = Scratch::new();
        let mut out = [0.0f64];
        let mut ops = OpCounters::new();
        for _ in 0..120 {
            g.mutate(&c, &mut innov, &mut r, &mut ops);
            let net = Network::from_genome(&g).unwrap();
            net.activate_into(&mut scratch, &[0.3, -0.7], &mut out);
            let fresh = net.activate(&[0.3, -0.7]);
            assert_eq!(out[0].to_bits(), fresh[0].to_bits());
        }
    }

    #[test]
    fn compiled_plan_matches_reference_interpreter() {
        let mut c = cfg();
        c.initial_weights = InitialWeights::Uniform { lo: -2.0, hi: 2.0 };
        c.activation_options = Activation::ALL.to_vec();
        c.aggregation_options = Aggregation::ALL.to_vec();
        c.activation_mutate_rate = 0.4;
        c.aggregation_mutate_rate = 0.4;
        let mut r = XorWow::seed_from_u64_value(5);
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut g = Genome::initial(0, &c, &mut r);
        let mut ops = OpCounters::new();
        for _ in 0..150 {
            g.mutate(&c, &mut innov, &mut r, &mut ops);
            let net = Network::from_genome(&g).unwrap();
            let compiled = net.activate(&[0.9, -1.3]);
            let interpreted = reference::activate(&g, &[0.9, -1.3]).unwrap();
            assert_eq!(compiled.len(), interpreted.len());
            for (a, b) in compiled.iter().zip(interpreted.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "compiled vs reference");
            }
        }
    }

    #[test]
    fn product_fold_is_bit_identical_to_weighted_products() {
        // Regression: the fold must multiply by the *weighted input*
        // (acc * (w * v)), not regroup as (acc * w) * v — the two round
        // differently about half the time at fan-in >= 2.
        let weights = [1.73, -0.481, 2.9];
        let inputs = [1.8126, -0.4810, -1.7371];
        let mut nodes = vec![
            NodeGene::input(NodeId(0)),
            NodeGene::input(NodeId(1)),
            NodeGene::input(NodeId(2)),
            NodeGene::output(NodeId(3)),
        ];
        nodes[3].activation = Activation::Identity;
        nodes[3].aggregation = Aggregation::Product;
        let conns = vec![
            ConnGene::new(NodeId(0), NodeId(3), weights[0]),
            ConnGene::new(NodeId(1), NodeId(3), weights[1]),
            ConnGene::new(NodeId(2), NodeId(3), weights[2]),
        ];
        let g = Genome::from_parts(0, 3, 1, nodes, conns).unwrap();
        let net = Network::from_genome(&g).unwrap();
        let compiled = net.activate(&inputs)[0];
        let interpreted = reference::activate(&g, &inputs).unwrap()[0];
        let explicit = Activation::Identity.apply(
            ((weights[0] * inputs[0]) * (weights[1] * inputs[1])) * (weights[2] * inputs[2]),
        );
        assert_eq!(compiled.to_bits(), interpreted.to_bits());
        assert_eq!(compiled.to_bits(), explicit.to_bits());
    }

    #[test]
    fn median_insertion_sort_matches_reference_at_high_fan_in() {
        // Fan-ins above the stdlib sort's on-stack threshold (~20) used to
        // allocate; the in-place insertion sort must stay bit-identical to
        // the reference interpreter's stable `sort_by` at every size.
        for fan_in in [1usize, 2, 5, 21, 64] {
            let mut nodes: Vec<NodeGene> = (0..fan_in)
                .map(|i| NodeGene::input(NodeId(i as u32)))
                .collect();
            let mut out = NodeGene::output(NodeId(fan_in as u32));
            out.activation = Activation::Identity;
            out.aggregation = Aggregation::Median;
            nodes.push(out);
            let conns: Vec<ConnGene> = (0..fan_in)
                .map(|i| {
                    // Deterministic weights with repeats, negatives and
                    // signed zeros to exercise tie handling.
                    let w = match i % 5 {
                        0 => 0.0,
                        1 => -0.0,
                        2 => 1.25,
                        3 => -2.5,
                        _ => 1.25,
                    };
                    ConnGene::new(NodeId(i as u32), NodeId(fan_in as u32), w)
                })
                .collect();
            let g = Genome::from_parts(0, fan_in, 1, nodes, conns).unwrap();
            let net = Network::from_genome(&g).unwrap();
            let inputs: Vec<f64> = (0..fan_in).map(|i| (i as f64) - 7.5).collect();
            let compiled = net.activate(&inputs)[0];
            let interpreted = reference::activate(&g, &inputs).unwrap()[0];
            assert_eq!(compiled.to_bits(), interpreted.to_bits(), "fan_in={fan_in}");
        }
    }

    #[test]
    fn empty_aggregation_cases_match_apply_semantics() {
        // A hidden node with no enabled incoming edges aggregates to 0.0
        // (Product: 1.0), matching `Aggregation::apply` on an empty slice.
        for (agg, want) in [(Aggregation::Product, 1.0), (Aggregation::Max, 0.0)] {
            let mut nodes = vec![NodeGene::input(NodeId(0)), NodeGene::output(NodeId(1))];
            nodes[1].activation = Activation::Identity;
            nodes[1].aggregation = agg;
            let g = Genome::from_parts(0, 1, 1, nodes, vec![]).unwrap();
            let net = Network::from_genome(&g).unwrap();
            assert_eq!(net.activate(&[2.0])[0], want, "{agg}");
        }
    }

    /// Satellite oracle: every lane of `activate_batch_into` must be
    /// bit-identical to a scalar `activate_into` of the same observation,
    /// across all activation/aggregation kinds and batch sizes 1..64 —
    /// the same property-style sweep as `compiled_plan_matches_reference`.
    #[test]
    fn batched_activation_is_bit_identical_to_scalar() {
        let mut c = cfg();
        c.initial_weights = InitialWeights::Uniform { lo: -2.0, hi: 2.0 };
        c.activation_options = Activation::ALL.to_vec();
        c.aggregation_options = Aggregation::ALL.to_vec();
        c.activation_mutate_rate = 0.4;
        c.aggregation_mutate_rate = 0.4;
        let mut r = XorWow::seed_from_u64_value(21);
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut g = Genome::initial(0, &c, &mut r);
        let mut ops = OpCounters::new();
        let mut scalar = Scratch::new();
        let mut batched = BatchScratch::new();
        for batch in 1usize..64 {
            // Keep evolving so every batch size sees a different plan.
            g.mutate(&c, &mut innov, &mut r, &mut ops);
            let net = Network::from_genome(&g).unwrap();
            // inputs[i * batch + b]: distinct observation per lane.
            let inputs: Vec<f64> = (0..net.num_inputs() * batch)
                .map(|k| ((k * 37 + 11) % 23) as f64 / 7.0 - 1.5)
                .collect();
            let mut outputs = vec![0.0f64; net.num_outputs() * batch];
            net.activate_batch_into(&mut batched, batch, &inputs, &mut outputs);
            let mut obs = vec![0.0f64; net.num_inputs()];
            let mut out = vec![0.0f64; net.num_outputs()];
            for b in 0..batch {
                for (i, o) in obs.iter_mut().enumerate() {
                    *o = inputs[i * batch + b];
                }
                net.activate_into(&mut scalar, &obs, &mut out);
                for (o, &want) in out.iter().enumerate() {
                    assert_eq!(
                        outputs[o * batch + b].to_bits(),
                        want.to_bits(),
                        "batch={batch} lane={b} output={o}"
                    );
                }
            }
        }
    }

    /// Every aggregation kind at high fan-in (past the wide-lane and
    /// median-sort edge cases), batched vs scalar.
    #[test]
    fn batched_aggregations_match_scalar_at_high_fan_in() {
        const FAN_IN: usize = 24;
        const BATCH: usize = 9;
        for agg in Aggregation::ALL {
            let mut nodes: Vec<NodeGene> = (0..FAN_IN)
                .map(|i| NodeGene::input(NodeId(i as u32)))
                .collect();
            let mut out = NodeGene::output(NodeId(FAN_IN as u32));
            out.activation = Activation::Identity;
            out.aggregation = agg;
            nodes.push(out);
            let conns: Vec<ConnGene> = (0..FAN_IN)
                .map(|i| {
                    let w = match i % 5 {
                        0 => 0.0,
                        1 => -0.0,
                        2 => 1.25,
                        3 => -2.5,
                        _ => 1.25,
                    };
                    ConnGene::new(NodeId(i as u32), NodeId(FAN_IN as u32), w)
                })
                .collect();
            let g = Genome::from_parts(0, FAN_IN, 1, nodes, conns).unwrap();
            let net = Network::from_genome(&g).unwrap();
            let inputs: Vec<f64> = (0..FAN_IN * BATCH)
                .map(|k| ((k * 31 + 7) % 17) as f64 - 8.0)
                .collect();
            let mut outputs = vec![0.0f64; BATCH];
            net.activate_batch_into(&mut BatchScratch::new(), BATCH, &inputs, &mut outputs);
            let mut scratch = Scratch::new();
            let mut obs = vec![0.0f64; FAN_IN];
            let mut out = [0.0f64];
            for b in 0..BATCH {
                for (i, o) in obs.iter_mut().enumerate() {
                    *o = inputs[i * BATCH + b];
                }
                net.activate_into(&mut scratch, &obs, &mut out);
                assert_eq!(
                    outputs[b].to_bits(),
                    out[0].to_bits(),
                    "{agg} lane {b} of {BATCH}"
                );
            }
        }
    }

    #[test]
    fn batch_scratch_reuse_across_networks_and_sizes_matches_fresh() {
        let mut c = cfg();
        c.initial_weights = InitialWeights::Uniform { lo: -1.0, hi: 1.0 };
        let mut r = XorWow::seed_from_u64_value(33);
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut g = Genome::initial(0, &c, &mut r);
        let mut ops = OpCounters::new();
        let mut reused = BatchScratch::new();
        for step in 0..40 {
            g.mutate(&c, &mut innov, &mut r, &mut ops);
            let net = Network::from_genome(&g).unwrap();
            let batch = 1 + (step * 7) % 13;
            let inputs: Vec<f64> = (0..net.num_inputs() * batch)
                .map(|k| (k as f64).sin())
                .collect();
            let mut a = vec![0.0f64; net.num_outputs() * batch];
            let mut b = a.clone();
            net.activate_batch_into(&mut reused, batch, &inputs, &mut a);
            net.activate_batch_into(&mut BatchScratch::new(), batch, &inputs, &mut b);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    #[should_panic(expected = "batch must be non-empty")]
    fn zero_batch_panics() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(1));
        let net = Network::from_genome(&g).unwrap();
        net.activate_batch_into(&mut BatchScratch::new(), 0, &[], &mut []);
    }

    #[test]
    #[should_panic(expected = "observation block size")]
    fn wrong_batch_input_arity_panics() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(1));
        let net = Network::from_genome(&g).unwrap();
        net.activate_batch_into(&mut BatchScratch::new(), 2, &[1.0, 2.0], &mut [0.0, 0.0]);
    }

    /// The buffer-reuse compiler must produce exactly the network the
    /// one-shot compiler does — same plan arrays, wavefronts and edge
    /// order — for arbitrary evolved genomes, with one plan reused across
    /// all of them.
    #[test]
    fn compile_into_matches_from_genome_with_reused_plan() {
        let mut c = cfg();
        c.initial_weights = InitialWeights::Uniform { lo: -2.0, hi: 2.0 };
        c.activation_options = Activation::ALL.to_vec();
        c.aggregation_options = Aggregation::ALL.to_vec();
        c.activation_mutate_rate = 0.4;
        c.aggregation_mutate_rate = 0.4;
        let mut r = XorWow::seed_from_u64_value(13);
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut g = Genome::initial(0, &c, &mut r);
        let mut ops = OpCounters::new();
        let mut plan = NetworkPlan::new();
        for _ in 0..150 {
            g.mutate(&c, &mut innov, &mut r, &mut ops);
            Network::compile_into(&mut plan, &g).unwrap();
            let fresh = Network::from_genome(&g).unwrap();
            assert_eq!(plan.network(), &fresh, "reused plan vs one-shot compile");
        }
    }

    #[test]
    fn plan_reuse_across_interface_shapes_leaves_no_stale_state() {
        // Shrinking the genome between compiles must not leak the larger
        // plan's slots, layers or edges into the smaller network.
        let big_cfg = NeatConfig::builder(7, 3).build().unwrap();
        let small_cfg = cfg();
        let mut r = XorWow::seed_from_u64_value(8);
        let big = Genome::initial(0, &big_cfg, &mut r);
        let small = Genome::initial(1, &small_cfg, &mut r);
        let mut plan = NetworkPlan::new();
        for g in [&big, &small, &big, &small] {
            Network::compile_into(&mut plan, g).unwrap();
            assert_eq!(plan.network(), &Network::from_genome(g).unwrap());
        }
        assert_eq!(plan.network().num_inputs(), 2);
        assert_eq!(plan.network().num_nodes(), small.num_nodes());
    }

    #[test]
    fn layer_zero_contains_all_inputs() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(2));
        let net = Network::from_genome(&g).unwrap();
        assert!(net.layers()[0].contains(&NodeId(0)));
        assert!(net.layers()[0].contains(&NodeId(1)));
        assert_eq!(net.layer_eval_ranges().len(), net.layers().len());
        assert_eq!(net.layer_eval_ranges()[0], (0, 0), "inputs compile away");
    }

    #[test]
    fn plan_edges_cover_every_enabled_conn() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(3));
        let net = Network::from_genome(&g).unwrap();
        let total: usize = (0..net.num_eval_nodes())
            .map(|e| net.incoming_edges(e).len())
            .sum();
        assert_eq!(total as u64, net.num_macs());
    }

    #[test]
    fn mac_count_matches_enabled_conns() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(3));
        let net = Network::from_genome(&g).unwrap();
        assert_eq!(
            net.num_macs() as usize,
            g.conns().filter(|c| c.enabled).count()
        );
    }
}
