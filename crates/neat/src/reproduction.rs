//! Reproduction: selection, elitism, offspring allocation, crossover and
//! mutation — the work the GeneSys Gene Selector + EvE perform each
//! generation (walkthrough steps 7–10).

use crate::config::NeatConfig;
use crate::genome::Genome;
use crate::innovation::InnovationTracker;
use crate::rng::XorWow;
use crate::species::SpeciesSet;
use crate::trace::{ChildTrace, GenerationTrace, OpCounters};

/// Result of one reproduction step.
#[derive(Debug)]
pub struct ReproductionReport {
    /// The next generation's genomes.
    pub offspring: Vec<Genome>,
    /// The reproduction trace (consumed by the hardware model and Fig 5(a)).
    pub trace: GenerationTrace,
}

/// Allocates offspring counts to species proportionally to their
/// fitness-shared adjusted fitness, with a floor of
/// `min_species_size.max(elitism)` per species, normalized to `pop_size`.
pub fn allocate_offspring(adjusted: &[f64], pop_size: usize, min_size: usize) -> Vec<usize> {
    if adjusted.is_empty() {
        return Vec::new();
    }
    let total: f64 = adjusted.iter().sum();
    let mut alloc: Vec<usize> = if total <= 0.0 {
        // Degenerate: share equally.
        vec![(pop_size / adjusted.len()).max(min_size); adjusted.len()]
    } else {
        adjusted
            .iter()
            .map(|af| ((af / total) * pop_size as f64).round() as usize)
            .map(|n| n.max(min_size))
            .collect()
    };
    // Normalize the rounded total back to exactly pop_size: trim from the
    // largest allocations, pad the smallest.
    loop {
        let sum: usize = alloc.iter().sum();
        if sum == pop_size {
            break;
        }
        if sum > pop_size {
            let i = alloc
                .iter()
                .enumerate()
                .max_by_key(|&(_, &n)| n)
                .map(|(i, _)| i)
                .expect("non-empty");
            if alloc[i] > min_size {
                alloc[i] -= 1;
            } else {
                // Every species is at the floor; steal anyway to respect
                // pop_size exactly.
                alloc[i] = alloc[i].saturating_sub(1);
            }
        } else {
            let i = alloc
                .iter()
                .enumerate()
                .min_by_key(|&(_, &n)| n)
                .map(|(i, _)| i)
                .expect("non-empty");
            alloc[i] += 1;
        }
    }
    alloc
}

/// Produces the next generation from an evaluated, speciated population.
///
/// Within each species, members are ranked by raw fitness; the top
/// [`NeatConfig::elitism`] genomes are copied verbatim, and the top
/// [`NeatConfig::survival_threshold`] fraction form the parent pool ("only
/// individuals above a certain fitness threshold are allowed to participate
/// in reproduction"). Children are produced by crossover of two parents
/// (probability [`NeatConfig::crossover_prob`]) or cloning, followed by
/// mutation.
pub fn reproduce(
    genomes: &[Genome],
    species: &SpeciesSet,
    config: &NeatConfig,
    innovations: &mut InnovationTracker,
    rng: &mut XorWow,
    generation: usize,
    next_key: &mut u64,
) -> ReproductionReport {
    innovations.begin_generation();
    let adjusted: Vec<f64> = species.iter().map(|s| s.adjusted_fitness).collect();
    let floor = config.min_species_size.max(config.elitism);
    let alloc = allocate_offspring(&adjusted, config.pop_size, floor);

    let mut offspring: Vec<Genome> = Vec::with_capacity(config.pop_size);
    let mut children: Vec<ChildTrace> = Vec::with_capacity(config.pop_size);

    for (s, &spawn) in species.iter().zip(alloc.iter()) {
        if spawn == 0 {
            continue;
        }
        // Rank members by raw fitness, best first.
        let mut ranked: Vec<usize> = s.members.clone();
        ranked.sort_by(|&a, &b| {
            let fa = genomes[a].fitness().unwrap_or(f64::NEG_INFINITY);
            let fb = genomes[b].fitness().unwrap_or(f64::NEG_INFINITY);
            fb.partial_cmp(&fa).expect("finite fitness")
        });
        let mut remaining = spawn;

        // Elites pass through unchanged (and skip the EvE PEs entirely).
        for &elite_idx in ranked.iter().take(config.elitism.min(remaining)) {
            let mut elite = genomes[elite_idx].clone();
            elite.set_key(*next_key);
            *next_key += 1;
            children.push(ChildTrace {
                child_index: offspring.len(),
                parent1: elite_idx,
                parent2: elite_idx,
                genes_streamed: elite.num_genes() as u64,
                ops: OpCounters::new(),
                is_elite: true,
            });
            offspring.push(elite);
        }
        remaining = remaining.saturating_sub(config.elitism.min(remaining));

        // Parent pool: the surviving top fraction, at least two if possible.
        let pool_size = ((ranked.len() as f64 * config.survival_threshold).ceil() as usize)
            .clamp(1, ranked.len());
        let pool = &ranked[..pool_size.max(2.min(ranked.len()))];

        for _ in 0..remaining {
            let p1 = pool[rng.below(pool.len())];
            let p2 = pool[rng.below(pool.len())];
            let mut ops = OpCounters::new();
            let sexual = p1 != p2 && rng.chance(config.crossover_prob);
            let mut child = if sexual {
                // Order parents by fitness: parent1 must be the fitter one.
                let (hi, lo) = if genomes[p1].fitness() >= genomes[p2].fitness() {
                    (p1, p2)
                } else {
                    (p2, p1)
                };
                Genome::crossover(*next_key, &genomes[hi], &genomes[lo], 0.5, rng, &mut ops)
            } else {
                let mut clone = genomes[p1].clone();
                clone.set_key(*next_key);
                // A cloned child still streams through the PE (its genes are
                // "crossed" with themselves in hardware terms).
                ops.crossover += clone.num_genes() as u64;
                clone
            };
            *next_key += 1;
            child.mutate(config, innovations, rng, &mut ops);
            let genes_streamed = genomes[p1].num_genes().max(genomes[p2].num_genes()) as u64;
            children.push(ChildTrace {
                child_index: offspring.len(),
                parent1: p1,
                parent2: if sexual { p2 } else { p1 },
                genes_streamed,
                ops,
                is_elite: false,
            });
            offspring.push(child);
        }
    }

    // Guard against rounding leaving us short (e.g. all species died):
    // top-up by mutating clones of the global best.
    if offspring.len() < config.pop_size {
        let best = genomes
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.fitness()
                    .unwrap_or(f64::NEG_INFINITY)
                    .partial_cmp(&b.fitness().unwrap_or(f64::NEG_INFINITY))
                    .expect("finite fitness")
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        while offspring.len() < config.pop_size {
            let mut ops = OpCounters::new();
            let mut child = genomes[best].clone();
            child.set_key(*next_key);
            *next_key += 1;
            ops.crossover += child.num_genes() as u64;
            child.mutate(config, innovations, rng, &mut ops);
            children.push(ChildTrace {
                child_index: offspring.len(),
                parent1: best,
                parent2: best,
                genes_streamed: child.num_genes() as u64,
                ops,
                is_elite: false,
            });
            offspring.push(child);
        }
    }
    offspring.truncate(config.pop_size);
    children.truncate(config.pop_size);

    ReproductionReport {
        offspring,
        trace: GenerationTrace {
            generation,
            children,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(
        pop: usize,
    ) -> (
        Vec<Genome>,
        SpeciesSet,
        NeatConfig,
        InnovationTracker,
        XorWow,
    ) {
        let c = NeatConfig::builder(3, 1).pop_size(pop).build().unwrap();
        let mut rng = XorWow::seed_from_u64_value(42);
        let mut genomes: Vec<Genome> = (0..pop as u64)
            .map(|k| Genome::initial(k, &c, &mut rng))
            .collect();
        for (i, g) in genomes.iter_mut().enumerate() {
            g.set_fitness(i as f64);
        }
        let mut species = SpeciesSet::new();
        species.speciate(&genomes, &c, 0);
        species.share_fitness(&genomes);
        let innov = InnovationTracker::new(c.first_hidden_id());
        (genomes, species, c, innov, rng)
    }

    #[test]
    fn allocation_sums_to_pop_size() {
        for (adjusted, pop) in [
            (vec![0.5, 0.3, 0.2], 150usize),
            (vec![1.0], 10),
            (vec![0.0, 0.0], 20),
            (vec![0.9, 0.05, 0.03, 0.02], 7),
        ] {
            let alloc = allocate_offspring(&adjusted, pop, 2);
            assert_eq!(alloc.iter().sum::<usize>(), pop, "{adjusted:?}");
        }
    }

    #[test]
    fn allocation_respects_proportionality() {
        let alloc = allocate_offspring(&[0.8, 0.2], 100, 2);
        assert!(alloc[0] > alloc[1]);
    }

    #[test]
    fn reproduce_produces_exactly_pop_size() {
        let (genomes, species, c, mut innov, mut rng) = setup(30);
        let mut key = 1000;
        let report = reproduce(&genomes, &species, &c, &mut innov, &mut rng, 0, &mut key);
        assert_eq!(report.offspring.len(), 30);
        assert_eq!(report.trace.children.len(), 30);
    }

    #[test]
    fn elites_are_preserved_verbatim() {
        let (genomes, species, c, mut innov, mut rng) = setup(30);
        let mut key = 1000;
        let report = reproduce(&genomes, &species, &c, &mut innov, &mut rng, 0, &mut key);
        let elite_traces: Vec<&ChildTrace> = report
            .trace
            .children
            .iter()
            .filter(|t| t.is_elite)
            .collect();
        assert!(!elite_traces.is_empty());
        for t in elite_traces {
            let child = &report.offspring[t.child_index];
            let parent = &genomes[t.parent1];
            assert_eq!(child.num_genes(), parent.num_genes());
            assert_eq!(t.ops.total(), 0, "elites bypass the PEs");
        }
    }

    #[test]
    fn children_are_valid_genomes() {
        let (genomes, species, c, mut innov, mut rng) = setup(50);
        let mut key = 0;
        let report = reproduce(&genomes, &species, &c, &mut innov, &mut rng, 0, &mut key);
        for child in &report.offspring {
            assert!(child.validate().is_ok());
        }
    }

    #[test]
    fn trace_records_crossover_work() {
        let (genomes, species, c, mut innov, mut rng) = setup(50);
        let mut key = 0;
        let report = reproduce(&genomes, &species, &c, &mut innov, &mut rng, 0, &mut key);
        let totals = report.trace.totals();
        assert!(totals.crossover > 0, "non-elite children stream genes");
        assert!(
            report.trace.total_ops() > totals.crossover,
            "mutations occurred"
        );
    }

    #[test]
    fn parents_come_from_top_fraction() {
        let (genomes, species, c, mut innov, mut rng) = setup(50);
        let mut key = 0;
        let report = reproduce(&genomes, &species, &c, &mut innov, &mut rng, 0, &mut key);
        // With one species of 50 and survival 0.2, parents are the top 10
        // (fitness 40..49).
        for t in report.trace.children.iter().filter(|t| !t.is_elite) {
            assert!(genomes[t.parent1].fitness().unwrap() >= 40.0);
            assert!(genomes[t.parent2].fitness().unwrap() >= 40.0);
        }
    }

    #[test]
    fn unique_keys_assigned() {
        let (genomes, species, c, mut innov, mut rng) = setup(20);
        let mut key = 500;
        let report = reproduce(&genomes, &species, &c, &mut innov, &mut rng, 0, &mut key);
        let mut keys: Vec<u64> = report.offspring.iter().map(|g| g.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 20, "genome keys must be unique");
        assert!(key >= 520);
    }

    #[test]
    fn reuse_statistic_positive_with_small_pool() {
        let (genomes, species, c, mut innov, mut rng) = setup(60);
        let mut key = 0;
        let report = reproduce(&genomes, &species, &c, &mut innov, &mut rng, 0, &mut key);
        // 60 children from a pool of 12 parents: some parent is reused.
        assert!(report.trace.fittest_parent_reuse() >= 5);
    }
}
