//! End-to-end guarantees of the session server: interleaved multi-tenant
//! stepping with checkpoint/evict/resume is **bit-identical** to direct
//! `Session` runs at any worker count, and the TCP layer answers corrupt
//! frames with typed errors without dying.

use genesys::gym::EnvKind;
use genesys::neat::{NeatConfig, Session};
use genesys::serve::net::serve;
use genesys::serve::protocol::{decode_reply, encode_request, take_frame};
use genesys::serve::{Reply, Request, ServeError, Server, ServerConfig, WireClient, WorkloadSpec};
use genesys::soc::snapshot_to_bytes;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const GENERATIONS: u32 = 6;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("genesys-serve-itest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The tenant mix: different workload shapes and seeds, so eviction and
/// rehydration must round-trip heterogeneous state (including the
/// drifting workload's episode offset).
fn tenants() -> Vec<(u64, WorkloadSpec, NeatConfig)> {
    let mut cartpole = EnvKind::CartPole.neat_config();
    cartpole.pop_size = 8;
    let synth = NeatConfig::builder(3, 2).pop_size(10).build().unwrap();
    let drift_cfg = NeatConfig::builder(4, 1).pop_size(8).build().unwrap();
    let mut out = Vec::new();
    for (i, seed) in [11u64, 23, 37, 41, 53, 67].iter().enumerate() {
        let (workload, config) = match i % 3 {
            0 => (WorkloadSpec::Synthetic, synth.clone()),
            1 => (
                WorkloadSpec::Env {
                    kind: EnvKind::CartPole,
                    episodes: 1,
                    batch: 1,
                },
                cartpole.clone(),
            ),
            _ => (
                WorkloadSpec::Drifting {
                    world_seed: *seed,
                    period: 2,
                    episodes_per_generation: 8,
                },
                drift_cfg.clone(),
            ),
        };
        out.push((*seed, workload, config));
    }
    out
}

fn direct_image(seed: u64, workload: &WorkloadSpec, config: &NeatConfig) -> Vec<u8> {
    let mut s = Session::builder(config.clone(), seed)
        .unwrap()
        .workload(workload.build())
        .build();
    // step() rather than run(): the server's Step verb runs exactly n
    // generations (no target-fitness early exit — convergence gating is
    // the client's call), so the direct baseline must do the same.
    for _ in 0..GENERATIONS {
        s.step();
    }
    snapshot_to_bytes(&s.export_state()).unwrap()
}

/// Runs the full tenant mix through a server whose resident cap (2) is
/// far below the session count (6), driving sessions from three OS
/// threads with interleaved step batches plus explicit mid-run evictions.
/// Returns the final checkpoint image of every session.
fn server_images(threads: usize) -> Vec<Vec<u8>> {
    let tag = format!("mix-{threads}");
    let server = Server::start(
        ServerConfig::new(temp_dir(&tag))
            .max_resident(2)
            .threads(threads),
    )
    .unwrap();
    let client = server.client();

    let mut ids = Vec::new();
    for (seed, workload, config) in tenants() {
        match client
            .call(Request::Submit {
                seed,
                workload,
                config: Box::new(config),
            })
            .unwrap()
        {
            Reply::Submitted { session, .. } => ids.push(session),
            other => panic!("expected Submitted, got {other:?}"),
        }
    }

    // Three drivers, two sessions each, stepping in small interleaved
    // batches (2+1+3 = GENERATIONS) with an explicit eviction between
    // batches — per-session totals are fixed, so the cross-tenant
    // schedule is free to vary without affecting any trajectory.
    std::thread::scope(|scope| {
        for pair in ids.chunks(2) {
            let client = client.clone();
            scope.spawn(move || {
                for batch in [2u32, 1, 3] {
                    for &session in pair {
                        match client
                            .call(Request::Step {
                                session,
                                generations: batch,
                            })
                            .unwrap()
                        {
                            Reply::Stepped { .. } => {}
                            other => panic!("expected Stepped, got {other:?}"),
                        }
                    }
                    // Evicting one of the pair mid-run forces an extra
                    // spill/rehydrate cycle beyond cap pressure.
                    match client.call(Request::Evict { session: pair[0] }).unwrap() {
                        Reply::Evicted { .. } => {}
                        other => panic!("expected Evicted, got {other:?}"),
                    }
                }
            });
        }
    });

    let stats = match client.call(Request::Stats).unwrap() {
        Reply::Stats(stats) => stats,
        other => panic!("expected Stats, got {other:?}"),
    };
    assert_eq!(stats.sessions, ids.len() as u64);
    assert!(
        stats.evictions > 0,
        "resident cap 2 under 6 sessions must evict"
    );
    assert!(
        stats.rehydrations > 0,
        "stepping an evicted session must rehydrate"
    );
    assert_eq!(stats.generations, ids.len() as u64 * u64::from(GENERATIONS));

    ids.iter()
        .map(
            |&session| match client.call(Request::Checkpoint { session }).unwrap() {
                Reply::Snapshot { image, .. } => image,
                other => panic!("expected Snapshot, got {other:?}"),
            },
        )
        .collect()
}

#[test]
fn interleaved_multi_tenant_stepping_is_bit_identical_to_direct_runs() {
    let expected: Vec<Vec<u8>> = tenants()
        .iter()
        .map(|(seed, workload, config)| direct_image(*seed, workload, config))
        .collect();
    for threads in [1usize, 4] {
        let images = server_images(threads);
        assert_eq!(images.len(), expected.len());
        for (i, (got, want)) in images.iter().zip(&expected).enumerate() {
            assert_eq!(
                got, want,
                "tenant {i} diverged from its direct run at {threads} workers"
            );
        }
    }
}

#[test]
fn resumed_checkpoints_continue_bit_identically_across_servers() {
    // Checkpoint a drifting session on one server, resume it on another
    // (cross-process migration in miniature), and compare the combined
    // trajectory with one uninterrupted direct run.
    let (seed, workload, config) = tenants().remove(5);
    let first = Server::start(ServerConfig::new(temp_dir("migrate-a"))).unwrap();
    let client = first.client();
    let Reply::Submitted { session, .. } = client
        .call(Request::Submit {
            seed,
            workload,
            config: Box::new(config.clone()),
        })
        .unwrap()
    else {
        panic!("expected Submitted")
    };
    client
        .call(Request::Step {
            session,
            generations: 2,
        })
        .unwrap();
    let Reply::Snapshot { image, .. } = client.call(Request::Checkpoint { session }).unwrap()
    else {
        panic!("expected Snapshot")
    };
    drop(first);

    let second = Server::start(ServerConfig::new(temp_dir("migrate-b"))).unwrap();
    let client = second.client();
    let Reply::Submitted { session, .. } = client
        .call(Request::Resume {
            workload,
            snapshot: image,
        })
        .unwrap()
    else {
        panic!("expected Submitted")
    };
    client
        .call(Request::Step {
            session,
            generations: 4,
        })
        .unwrap();
    let Reply::Snapshot { image, .. } = client.call(Request::Checkpoint { session }).unwrap()
    else {
        panic!("expected Snapshot")
    };

    assert_eq!(image, direct_image(seed, &workload, &config));
}

#[test]
fn corrupt_wire_frames_get_typed_replies_and_the_server_survives() {
    let server = Server::start(ServerConfig::new(temp_dir("wire"))).unwrap();
    let client = server.client();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = Arc::new(AtomicBool::new(false));
    let net_thread = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || serve(&client, listener, &shutdown))
    };

    // A well-framed body with a bad protocol version: typed error reply,
    // connection stays usable.
    let mut raw = TcpStream::connect(addr).unwrap();
    let garbage_body = [0xFFu8; 9];
    raw.write_all(&(garbage_body.len() as u32).to_le_bytes())
        .unwrap();
    raw.write_all(&garbage_body).unwrap();
    raw.flush().unwrap();
    let (_, result) = read_one_reply(&mut raw);
    match result {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, 102, "BadVersion"),
        other => panic!("expected Remote BadVersion, got {other:?}"),
    }
    // Same connection, now a valid request: the server answered garbage
    // without dropping the framing-intact connection.
    raw.write_all(&encode_request(9, &Request::Stats)).unwrap();
    let (id, result) = read_one_reply(&mut raw);
    assert_eq!(id, 9);
    assert!(matches!(result, Ok(Reply::Stats(_))));

    // An oversize length prefix loses framing: error reply, then close.
    let mut bad = TcpStream::connect(addr).unwrap();
    bad.write_all(&u32::MAX.to_le_bytes()).unwrap();
    bad.flush().unwrap();
    let (_, result) = read_one_reply(&mut bad);
    match result {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, 101, "Oversize"),
        other => panic!("expected Remote Oversize, got {other:?}"),
    }
    let mut rest = Vec::new();
    bad.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection closes after framing loss");

    // Meanwhile real work over the wire still matches a direct run.
    let (seed, workload, config) = tenants().remove(0);
    let mut wire = WireClient::connect(addr).unwrap();
    let Reply::Submitted { session, .. } = wire
        .call(&Request::Submit {
            seed,
            workload,
            config: Box::new(config.clone()),
        })
        .unwrap()
    else {
        panic!("expected Submitted")
    };
    wire.call(&Request::Step {
        session,
        generations: GENERATIONS,
    })
    .unwrap();
    let Reply::Snapshot { image, .. } = wire.call(&Request::Checkpoint { session }).unwrap() else {
        panic!("expected Snapshot")
    };
    assert_eq!(image, direct_image(seed, &workload, &config));

    shutdown.store(true, Ordering::Relaxed);
    net_thread.join().unwrap().unwrap();
}

/// Blocking read of exactly one reply frame from a raw socket.
fn read_one_reply(stream: &mut TcpStream) -> (u32, Result<Reply, ServeError>) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(body) = take_frame(&mut buf).unwrap() {
            return decode_reply(&body).unwrap();
        }
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "peer closed before a full reply arrived");
        buf.extend_from_slice(&chunk[..n]);
    }
}
