//! Genomes: collections of genes describing one neural network.
//!
//! A genome stores its node and connection genes in ordered maps keyed by
//! gene key, mirroring the hardware genome buffer layout: "the genes are
//! stored in two logical clusters, one for each type; within each cluster,
//! the genes are stored by sorting them in ascending order of IDs"
//! (Section IV-C5). Iterating [`Genome::nodes`] then [`Genome::conns`]
//! therefore reproduces the exact stream order the Gene Split block feeds
//! to the EvE PEs.

use crate::activation::Activation;
use crate::aggregation::Aggregation;
use crate::config::{InitialWeights, NeatConfig};
use crate::error::GenomeError;
use crate::gene::{ConnGene, ConnKey, NodeGene, NodeId, NodeType};
use crate::innovation::InnovationTracker;
use crate::rng::XorWow;
use crate::trace::OpCounters;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Bytes per gene in the hardware encoding (64-bit gene word, Fig 6).
pub const GENE_BYTES: usize = 8;

/// One individual: a collection of node and connection genes plus the
/// fitness it earned in the environment.
#[derive(Debug, Clone, PartialEq)]
pub struct Genome {
    key: u64,
    nodes: BTreeMap<NodeId, NodeGene>,
    conns: BTreeMap<ConnKey, ConnGene>,
    num_inputs: usize,
    num_outputs: usize,
    fitness: Option<f64>,
}

impl Genome {
    /// Creates the paper's initial topology: every input connected to every
    /// output, no hidden nodes, connection weights per
    /// [`NeatConfig::initial_weights`] (the paper uses zero).
    pub fn initial(key: u64, config: &NeatConfig, rng: &mut XorWow) -> Self {
        let mut nodes = BTreeMap::new();
        for i in 0..config.num_inputs {
            let id = NodeId(i as u32);
            nodes.insert(id, NodeGene::input(id));
        }
        for o in 0..config.num_outputs {
            let id = NodeId(config.first_output_id() + o as u32);
            nodes.insert(id, NodeGene::output(id));
        }
        let mut conns = BTreeMap::new();
        for i in 0..config.num_inputs {
            for o in 0..config.num_outputs {
                let src = NodeId(i as u32);
                let dst = NodeId(config.first_output_id() + o as u32);
                let weight = match config.initial_weights {
                    InitialWeights::Zero => 0.0,
                    InitialWeights::Uniform { lo, hi } => rng.uniform(lo, hi),
                    InitialWeights::Gaussian { stdev } => rng.next_gaussian() * stdev,
                };
                conns.insert(ConnKey::new(src, dst), ConnGene::new(src, dst, weight));
            }
        }
        Genome {
            key,
            nodes,
            conns,
            num_inputs: config.num_inputs,
            num_outputs: config.num_outputs,
            fitness: None,
        }
    }

    /// Assembles a genome from raw parts, validating the structural
    /// invariants (used by the hardware Gene Merge block when a child
    /// genome is written back to the genome buffer).
    ///
    /// # Errors
    ///
    /// Returns a [`GenomeError`] if a connection dangles, terminates at an
    /// input, the graph is cyclic, or an interface node is missing.
    pub fn from_parts(
        key: u64,
        num_inputs: usize,
        num_outputs: usize,
        nodes: impl IntoIterator<Item = NodeGene>,
        conns: impl IntoIterator<Item = ConnGene>,
    ) -> Result<Self, GenomeError> {
        let nodes: BTreeMap<NodeId, NodeGene> = nodes.into_iter().map(|n| (n.id, n)).collect();
        let conns: BTreeMap<ConnKey, ConnGene> = conns.into_iter().map(|c| (c.key, c)).collect();
        let genome = Genome {
            key,
            nodes,
            conns,
            num_inputs,
            num_outputs,
            fitness: None,
        };
        genome.validate()?;
        Ok(genome)
    }

    /// Checks every structural invariant.
    ///
    /// # Errors
    ///
    /// See [`Genome::from_parts`].
    pub fn validate(&self) -> Result<(), GenomeError> {
        for i in 0..(self.num_inputs + self.num_outputs) as u32 {
            if !self.nodes.contains_key(&NodeId(i)) {
                return Err(GenomeError::MissingInterfaceNode { id: i });
            }
        }
        for conn in self.conns.values() {
            if !self.nodes.contains_key(&conn.key.src) || !self.nodes.contains_key(&conn.key.dst) {
                return Err(GenomeError::DanglingConnection {
                    src: conn.key.src.0,
                    dst: conn.key.dst.0,
                });
            }
            if self.node_type(conn.key.dst) == Some(NodeType::Input) {
                return Err(GenomeError::ConnectionIntoInput {
                    dst: conn.key.dst.0,
                });
            }
        }
        if self.has_cycle() {
            return Err(GenomeError::Cycle);
        }
        Ok(())
    }

    // ---------------------------------------------------------------- access

    /// Population-unique identifier of this genome.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Re-keys the genome (used when cloning elites into a new generation).
    pub fn set_key(&mut self, key: u64) {
        self.key = key;
    }

    /// Fitness earned in the environment, if evaluated.
    pub fn fitness(&self) -> Option<f64> {
        self.fitness
    }

    /// Records the fitness obtained from the environment.
    pub fn set_fitness(&mut self, fitness: f64) {
        self.fitness = Some(fitness);
    }

    /// Number of input nodes.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output nodes.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Iterates node genes in ascending id order (the genome-buffer order).
    pub fn nodes(&self) -> impl Iterator<Item = &NodeGene> {
        self.nodes.values()
    }

    /// Iterates connection genes in ascending key order.
    pub fn conns(&self) -> impl Iterator<Item = &ConnGene> {
        self.conns.values()
    }

    /// Looks up a node gene.
    pub fn node(&self, id: NodeId) -> Option<&NodeGene> {
        self.nodes.get(&id)
    }

    /// Looks up a connection gene.
    pub fn conn(&self, key: ConnKey) -> Option<&ConnGene> {
        self.conns.get(&key)
    }

    /// Structural role of a node, if present.
    pub fn node_type(&self, id: NodeId) -> Option<NodeType> {
        self.nodes.get(&id).map(|n| n.node_type)
    }

    /// Number of node genes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of connection genes.
    pub fn num_conns(&self) -> usize {
        self.conns.len()
    }

    /// Total gene count (the Fig 4(b) metric).
    pub fn num_genes(&self) -> usize {
        self.nodes.len() + self.conns.len()
    }

    /// Memory footprint in the 64-bit hardware encoding (Fig 5(b) metric).
    pub fn memory_bytes(&self) -> usize {
        self.num_genes() * GENE_BYTES
    }

    /// Ids of hidden nodes.
    pub fn hidden_node_ids(&self) -> Vec<NodeId> {
        self.nodes
            .values()
            .filter(|n| n.node_type == NodeType::Hidden)
            .map(|n| n.id)
            .collect()
    }

    /// Largest node id present (used by the PE's node-id registers).
    pub fn max_node_id(&self) -> u32 {
        self.nodes.keys().next_back().map_or(0, |id| id.0)
    }

    // ------------------------------------------------------------- mutation

    /// Applies the full NEAT mutation suite to this genome: attribute
    /// perturbations and the structural add/delete operators of Fig 3(d).
    /// Operation tallies are recorded into `ops`.
    pub fn mutate(
        &mut self,
        config: &NeatConfig,
        innovations: &mut InnovationTracker,
        rng: &mut XorWow,
        ops: &mut OpCounters,
    ) {
        if rng.chance(config.node_add_prob) {
            self.mutate_add_node(innovations, rng, ops);
        }
        if rng.chance(config.node_delete_prob) {
            self.mutate_delete_node(config, rng, ops);
        }
        if rng.chance(config.conn_add_prob) {
            self.mutate_add_conn(rng, ops);
        }
        if rng.chance(config.conn_delete_prob) {
            self.mutate_delete_conn(rng, ops);
        }
        self.mutate_attributes(config, rng, ops);
    }

    /// Perturbs (or replaces) the continuous and discrete attributes of all
    /// genes — the Perturbation Engine's work.
    pub fn mutate_attributes(
        &mut self,
        config: &NeatConfig,
        rng: &mut XorWow,
        ops: &mut OpCounters,
    ) {
        for node in self.nodes.values_mut() {
            if node.node_type == NodeType::Input {
                continue;
            }
            if rng.chance(config.bias_mutate_rate) {
                node.bias = if rng.chance(config.bias_replace_rate) {
                    rng.uniform(config.bias_min, config.bias_max)
                } else {
                    (node.bias + rng.next_gaussian() * config.bias_perturb_power)
                        .clamp(config.bias_min, config.bias_max)
                };
                ops.perturb += 1;
            }
            if rng.chance(config.response_mutate_rate) {
                node.response = if rng.chance(config.response_replace_rate) {
                    rng.uniform(config.response_min, config.response_max)
                } else {
                    (node.response + rng.next_gaussian() * config.response_perturb_power)
                        .clamp(config.response_min, config.response_max)
                };
                ops.perturb += 1;
            }
            if rng.chance(config.activation_mutate_rate) {
                node.activation = Activation::random(rng, &config.activation_options);
                ops.perturb += 1;
            }
            if rng.chance(config.aggregation_mutate_rate) {
                node.aggregation = Aggregation::random(rng, &config.aggregation_options);
                ops.perturb += 1;
            }
        }
        for conn in self.conns.values_mut() {
            if rng.chance(config.weight_mutate_rate) {
                conn.weight = if rng.chance(config.weight_replace_rate) {
                    rng.uniform(config.weight_min, config.weight_max)
                } else {
                    (conn.weight + rng.next_gaussian() * config.weight_perturb_power)
                        .clamp(config.weight_min, config.weight_max)
                };
                ops.perturb += 1;
            }
            if rng.chance(config.enabled_mutate_rate) {
                conn.enabled = !conn.enabled;
                ops.perturb += 1;
            }
        }
    }

    /// Splits a random enabled connection `s->d` into `s->new` and
    /// `new->d`, disabling the original — the classic NEAT add-node.
    pub fn mutate_add_node(
        &mut self,
        innovations: &mut InnovationTracker,
        rng: &mut XorWow,
        ops: &mut OpCounters,
    ) {
        let enabled: Vec<ConnKey> = self
            .conns
            .values()
            .filter(|c| c.enabled)
            .map(|c| c.key)
            .collect();
        if enabled.is_empty() {
            return;
        }
        let key = enabled[rng.below(enabled.len())];
        let new_id = innovations.node_for_split(key);
        if self.nodes.contains_key(&new_id) {
            // The same split already occurred in this genome (possible when
            // crossover merged a parent that had it); skip.
            return;
        }
        let old_weight = self.conns[&key].weight;
        self.conns
            .get_mut(&key)
            .expect("key from iteration")
            .enabled = false;
        self.nodes.insert(new_id, NodeGene::hidden(new_id));
        // Per the paper's Add-Gene engine: "two new connection genes are
        // generated". Input-side weight 1 preserves the signal; output-side
        // inherits the old weight.
        let up = ConnGene::new(key.src, new_id, 1.0);
        let down = ConnGene::new(new_id, key.dst, old_weight);
        self.conns.insert(up.key, up);
        self.conns.insert(down.key, down);
        ops.add_node += 1;
        ops.add_conn += 2;
    }

    /// Adds a new connection between two previously unconnected nodes,
    /// keeping the graph acyclic (inference must remain "processing an
    /// acyclic directed graph").
    pub fn mutate_add_conn(&mut self, rng: &mut XorWow, ops: &mut OpCounters) {
        let sources: Vec<NodeId> = self.nodes.keys().copied().collect();
        let sinks: Vec<NodeId> = self
            .nodes
            .values()
            .filter(|n| n.node_type != NodeType::Input)
            .map(|n| n.id)
            .collect();
        if sources.is_empty() || sinks.is_empty() {
            return;
        }
        // Bounded retry: candidate pairs may be duplicates or create cycles.
        for _ in 0..16 {
            let src = sources[rng.below(sources.len())];
            let dst = sinks[rng.below(sinks.len())];
            if src == dst {
                continue;
            }
            let key = ConnKey::new(src, dst);
            if let Some(existing) = self.conns.get_mut(&key) {
                if !existing.enabled {
                    existing.enabled = true;
                    ops.perturb += 1;
                    return;
                }
                continue;
            }
            if self.would_create_cycle(src, dst) {
                continue;
            }
            let weight = rng.uniform(-1.0, 1.0);
            self.conns.insert(key, ConnGene::new(src, dst, weight));
            ops.add_conn += 1;
            return;
        }
    }

    /// Deletes a random hidden node and every connection touching it,
    /// respecting the per-generation deletion ceiling
    /// ([`NeatConfig::node_delete_limit`]) the hardware enforces to "keep
    /// the genome alive".
    pub fn mutate_delete_node(
        &mut self,
        config: &NeatConfig,
        rng: &mut XorWow,
        ops: &mut OpCounters,
    ) {
        if ops.delete_node as usize >= config.node_delete_limit {
            return;
        }
        let hidden = self.hidden_node_ids();
        if hidden.is_empty() {
            return;
        }
        let victim = hidden[rng.below(hidden.len())];
        self.nodes.remove(&victim);
        let stale: Vec<ConnKey> = self
            .conns
            .keys()
            .filter(|k| k.src == victim || k.dst == victim)
            .copied()
            .collect();
        // Pruning "dangling connections" is exactly what the hardware does
        // by comparing stored deleted-node IDs against the conn stream.
        for key in &stale {
            self.conns.remove(key);
        }
        ops.delete_node += 1;
        ops.delete_conn += stale.len() as u64;
    }

    /// Deletes a random connection gene.
    pub fn mutate_delete_conn(&mut self, rng: &mut XorWow, ops: &mut OpCounters) {
        if self.conns.is_empty() {
            return;
        }
        let keys: Vec<ConnKey> = self.conns.keys().copied().collect();
        let key = keys[rng.below(keys.len())];
        self.conns.remove(&key);
        ops.delete_conn += 1;
    }

    /// Would inserting `src -> dst` create a cycle? (Is `src` reachable
    /// from `dst` through existing connections?)
    pub fn would_create_cycle(&self, src: NodeId, dst: NodeId) -> bool {
        if src == dst {
            return true;
        }
        let mut adjacency: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for key in self.conns.keys() {
            adjacency.entry(key.src).or_default().push(key.dst);
        }
        let mut stack = vec![dst];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == src {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = adjacency.get(&n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    }

    fn has_cycle(&self) -> bool {
        // Kahn's algorithm: if topological elimination leaves nodes with
        // in-degree > 0, a cycle exists.
        let mut indegree: BTreeMap<NodeId, usize> = self.nodes.keys().map(|&id| (id, 0)).collect();
        let mut adjacency: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for key in self.conns.keys() {
            *indegree.entry(key.dst).or_insert(0) += 1;
            adjacency.entry(key.src).or_default().push(key.dst);
        }
        let mut queue: Vec<NodeId> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&id, _)| id)
            .collect();
        let mut visited = 0usize;
        while let Some(n) = queue.pop() {
            visited += 1;
            if let Some(next) = adjacency.get(&n) {
                for &m in next {
                    let d = indegree.get_mut(&m).expect("node in map");
                    *d -= 1;
                    if *d == 0 {
                        queue.push(m);
                    }
                }
            }
        }
        visited != self.nodes.len()
    }

    // ------------------------------------------------------------ crossover

    /// Produces a child by crossing two parents, `parent1` being the fitter
    /// one. Matching genes take each *attribute* independently from either
    /// parent with probability `bias` of favouring `parent1` (the
    /// programmable bias of the hardware Crossover Engine; default 0.5);
    /// disjoint and excess genes come from the fitter parent, as in classic
    /// NEAT. Crossover op counts are recorded into `ops`.
    pub fn crossover(
        key: u64,
        parent1: &Genome,
        parent2: &Genome,
        bias: f64,
        rng: &mut XorWow,
        ops: &mut OpCounters,
    ) -> Genome {
        debug_assert_eq!(parent1.num_inputs, parent2.num_inputs);
        debug_assert_eq!(parent1.num_outputs, parent2.num_outputs);
        let mut nodes = BTreeMap::new();
        for n1 in parent1.nodes.values() {
            let child = match parent2.nodes.get(&n1.id) {
                Some(n2) => {
                    // Per-attribute cherry-pick, one PRNG draw per attribute
                    // (the four comparators of the Crossover Engine).
                    let mut c = *n1;
                    if !rng.chance(bias) {
                        c.bias = n2.bias;
                    }
                    if !rng.chance(bias) {
                        c.response = n2.response;
                    }
                    if !rng.chance(bias) {
                        c.activation = n2.activation;
                    }
                    if !rng.chance(bias) {
                        c.aggregation = n2.aggregation;
                    }
                    c
                }
                None => *n1, // disjoint/excess: fitter parent wins
            };
            nodes.insert(child.id, child);
            ops.crossover += 1;
        }
        let mut conns = BTreeMap::new();
        for c1 in parent1.conns.values() {
            let child = match parent2.conns.get(&c1.key) {
                Some(c2) => {
                    let mut c = *c1;
                    if !rng.chance(bias) {
                        c.weight = c2.weight;
                    }
                    if !rng.chance(bias) {
                        c.enabled = c2.enabled;
                    }
                    c
                }
                None => *c1,
            };
            // Guard: a gene inherited from parent2's attribute mix always has
            // parent1's key, and parent1 contains both endpoints.
            conns.insert(child.key, child);
            ops.crossover += 1;
        }
        Genome {
            key,
            nodes,
            conns,
            num_inputs: parent1.num_inputs,
            num_outputs: parent1.num_outputs,
            fitness: None,
        }
    }

    // ------------------------------------------------------------- distance

    /// Compatibility distance used for speciation (Section II-D), following
    /// the `neat-python` formulation: node distance plus connection
    /// distance, each `(weight_coeff * Σ attribute distance of matching
    /// genes + disjoint_coeff * #non-matching) / max gene count`.
    pub fn distance(&self, other: &Genome, config: &NeatConfig) -> f64 {
        let cd = config.compatibility_disjoint_coefficient;
        let cw = config.compatibility_weight_coefficient;

        let mut node_dist = 0.0;
        let mut disjoint_nodes = 0usize;
        for n2 in other.nodes.values() {
            match self.nodes.get(&n2.id) {
                Some(n1) => node_dist += n1.attribute_distance(n2) * cw,
                None => disjoint_nodes += 1,
            }
        }
        disjoint_nodes += self
            .nodes
            .keys()
            .filter(|id| !other.nodes.contains_key(id))
            .count();
        let max_nodes = self.nodes.len().max(other.nodes.len()).max(1);
        node_dist = (node_dist + cd * disjoint_nodes as f64) / max_nodes as f64;

        let mut conn_dist = 0.0;
        let mut disjoint_conns = 0usize;
        for c2 in other.conns.values() {
            match self.conns.get(&c2.key) {
                Some(c1) => conn_dist += c1.attribute_distance(c2) * cw,
                None => disjoint_conns += 1,
            }
        }
        disjoint_conns += self
            .conns
            .keys()
            .filter(|key| !other.conns.contains_key(key))
            .count();
        let max_conns = self.conns.len().max(other.conns.len()).max(1);
        conn_dist = (conn_dist + cd * disjoint_conns as f64) / max_conns as f64;

        node_dist + conn_dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NeatConfig {
        NeatConfig::builder(3, 2).build().unwrap()
    }

    fn rng() -> XorWow {
        XorWow::seed_from_u64_value(12345)
    }

    #[test]
    fn initial_genome_is_fully_connected_with_zero_weights() {
        let c = cfg();
        let g = Genome::initial(0, &c, &mut rng());
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_conns(), 6);
        assert!(g.conns().all(|conn| conn.weight == 0.0 && conn.enabled));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn initial_genome_uniform_weights_in_range() {
        let mut c = cfg();
        c.initial_weights = InitialWeights::Uniform { lo: -2.0, hi: 2.0 };
        let g = Genome::initial(0, &c, &mut rng());
        assert!(g.conns().all(|conn| (-2.0..2.0).contains(&conn.weight)));
    }

    #[test]
    fn memory_footprint_is_eight_bytes_per_gene() {
        let g = Genome::initial(0, &cfg(), &mut rng());
        assert_eq!(g.memory_bytes(), g.num_genes() * 8);
    }

    #[test]
    fn add_node_splits_a_connection() {
        let c = cfg();
        let mut g = Genome::initial(0, &c, &mut rng());
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut ops = OpCounters::new();
        let before_conns = g.num_conns();
        g.mutate_add_node(&mut innov, &mut rng(), &mut ops);
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_conns(), before_conns + 2);
        assert_eq!(ops.add_node, 1);
        assert_eq!(ops.add_conn, 2);
        assert_eq!(g.conns().filter(|c| !c.enabled).count(), 1);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn add_conn_keeps_graph_acyclic() {
        let c = cfg();
        let mut g = Genome::initial(0, &c, &mut rng());
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut ops = OpCounters::new();
        let mut r = rng();
        for _ in 0..50 {
            g.mutate_add_node(&mut innov, &mut r, &mut ops);
            g.mutate_add_conn(&mut r, &mut ops);
            assert!(g.validate().is_ok());
        }
    }

    #[test]
    fn delete_node_prunes_dangling_connections() {
        let c = cfg();
        let mut g = Genome::initial(0, &c, &mut rng());
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut ops = OpCounters::new();
        let mut r = rng();
        g.mutate_add_node(&mut innov, &mut r, &mut ops);
        assert_eq!(g.hidden_node_ids().len(), 1);
        g.mutate_delete_node(&c, &mut r, &mut ops);
        assert_eq!(g.hidden_node_ids().len(), 0);
        assert!(g.validate().is_ok(), "no dangling connections may remain");
        assert_eq!(ops.delete_node, 1);
        assert!(ops.delete_conn >= 2);
    }

    #[test]
    fn delete_node_respects_limit() {
        let mut c = cfg();
        c.node_delete_limit = 0;
        let mut g = Genome::initial(0, &c, &mut rng());
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut ops = OpCounters::new();
        let mut r = rng();
        g.mutate_add_node(&mut innov, &mut r, &mut ops);
        let nodes_before = g.num_nodes();
        ops = OpCounters::new();
        g.mutate_delete_node(&c, &mut r, &mut ops);
        assert_eq!(g.num_nodes(), nodes_before, "limit 0 forbids deletion");
    }

    #[test]
    fn delete_conn_removes_one() {
        let mut g = Genome::initial(0, &cfg(), &mut rng());
        let before = g.num_conns();
        let mut ops = OpCounters::new();
        g.mutate_delete_conn(&mut rng(), &mut ops);
        assert_eq!(g.num_conns(), before - 1);
        assert_eq!(ops.delete_conn, 1);
    }

    #[test]
    fn crossover_of_identical_parents_is_identity_structure() {
        let c = cfg();
        let p = Genome::initial(7, &c, &mut rng());
        let mut ops = OpCounters::new();
        let child = Genome::crossover(8, &p, &p, 0.5, &mut rng(), &mut ops);
        assert_eq!(child.num_nodes(), p.num_nodes());
        assert_eq!(child.num_conns(), p.num_conns());
        assert_eq!(ops.crossover as usize, p.num_genes());
        assert!(child.validate().is_ok());
    }

    #[test]
    fn crossover_takes_disjoint_from_fitter_parent() {
        let c = cfg();
        let mut r = rng();
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut ops = OpCounters::new();
        let base = Genome::initial(0, &c, &mut r);
        let mut fit = base.clone();
        fit.mutate_add_node(&mut innov, &mut r, &mut ops);
        // fit has extra structure; base does not.
        let child = Genome::crossover(1, &fit, &base, 0.5, &mut r, &mut ops);
        assert_eq!(child.num_nodes(), fit.num_nodes());
        assert_eq!(child.num_conns(), fit.num_conns());
        let child2 = Genome::crossover(2, &base, &fit, 0.5, &mut r, &mut ops);
        assert_eq!(child2.num_nodes(), base.num_nodes());
    }

    #[test]
    fn crossover_bias_one_copies_parent1_attributes() {
        let c = cfg();
        let mut r = rng();
        let mut p1 = Genome::initial(0, &c, &mut r);
        let mut p2 = Genome::initial(1, &c, &mut r);
        let mut ops = OpCounters::new();
        p1.mutate_attributes(&c, &mut r, &mut ops);
        p2.mutate_attributes(&c, &mut r, &mut ops);
        let child = Genome::crossover(2, &p1, &p2, 1.0, &mut r, &mut ops);
        for conn in child.conns() {
            assert_eq!(conn.weight, p1.conn(conn.key).unwrap().weight);
        }
    }

    #[test]
    fn distance_zero_for_identical_and_positive_for_diverged() {
        let c = cfg();
        let mut r = rng();
        let g1 = Genome::initial(0, &c, &mut r);
        assert_eq!(g1.distance(&g1.clone(), &c), 0.0);
        let mut g2 = g1.clone();
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut ops = OpCounters::new();
        g2.mutate_add_node(&mut innov, &mut r, &mut ops);
        g2.mutate_attributes(&c, &mut r, &mut ops);
        let d = g1.distance(&g2, &c);
        assert!(d > 0.0);
        assert!(
            (g1.distance(&g2, &c) - g2.distance(&g1, &c)).abs() < 1e-12,
            "symmetric"
        );
    }

    #[test]
    fn from_parts_rejects_dangling_connection() {
        let c = cfg();
        let g = Genome::initial(0, &c, &mut rng());
        let nodes: Vec<NodeGene> = g.nodes().copied().collect();
        let mut conns: Vec<ConnGene> = g.conns().copied().collect();
        conns.push(ConnGene::new(NodeId(0), NodeId(99), 1.0));
        let err = Genome::from_parts(1, 3, 2, nodes, conns).unwrap_err();
        assert!(matches!(
            err,
            GenomeError::DanglingConnection { dst: 99, .. }
        ));
    }

    #[test]
    fn from_parts_rejects_connection_into_input() {
        let c = cfg();
        let g = Genome::initial(0, &c, &mut rng());
        let nodes: Vec<NodeGene> = g.nodes().copied().collect();
        let mut conns: Vec<ConnGene> = g.conns().copied().collect();
        conns.push(ConnGene::new(NodeId(3), NodeId(0), 1.0));
        let err = Genome::from_parts(1, 3, 2, nodes, conns).unwrap_err();
        assert!(matches!(err, GenomeError::ConnectionIntoInput { dst: 0 }));
    }

    #[test]
    fn from_parts_rejects_cycle() {
        let c = cfg();
        let g = Genome::initial(0, &c, &mut rng());
        let mut nodes: Vec<NodeGene> = g.nodes().copied().collect();
        nodes.push(NodeGene::hidden(NodeId(10)));
        nodes.push(NodeGene::hidden(NodeId(11)));
        let mut conns: Vec<ConnGene> = g.conns().copied().collect();
        conns.push(ConnGene::new(NodeId(10), NodeId(11), 1.0));
        conns.push(ConnGene::new(NodeId(11), NodeId(10), 1.0));
        let err = Genome::from_parts(1, 3, 2, nodes, conns).unwrap_err();
        assert_eq!(err, GenomeError::Cycle);
    }

    #[test]
    fn from_parts_rejects_missing_interface() {
        let c = cfg();
        let g = Genome::initial(0, &c, &mut rng());
        let nodes: Vec<NodeGene> = g.nodes().skip(1).copied().collect();
        let err = Genome::from_parts(1, 3, 2, nodes, Vec::new()).unwrap_err();
        assert_eq!(err, GenomeError::MissingInterfaceNode { id: 0 });
    }

    #[test]
    fn full_mutate_preserves_invariants() {
        let c = cfg();
        let mut r = rng();
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut g = Genome::initial(0, &c, &mut r);
        for gen in 0..100 {
            let mut ops = OpCounters::new();
            innov.begin_generation();
            g.mutate(&c, &mut innov, &mut r, &mut ops);
            assert!(
                g.validate().is_ok(),
                "invariants violated at iteration {gen}"
            );
        }
    }

    #[test]
    fn max_node_id_tracks_additions() {
        let c = cfg();
        let mut r = rng();
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut g = Genome::initial(0, &c, &mut r);
        assert_eq!(g.max_node_id(), 4);
        let mut ops = OpCounters::new();
        g.mutate_add_node(&mut innov, &mut r, &mut ops);
        assert_eq!(g.max_node_id(), 5);
    }
}
