//! Feed-forward phenotype of a genome.
//!
//! NEAT phenotypes are irregular acyclic graphs, not layered MLPs. This
//! module compiles a [`Genome`] into an evaluation plan: nodes sorted into
//! **topological wavefronts** (every node's enabled predecessors live in
//! strictly earlier wavefronts). Wavefronts serve two purposes:
//!
//! 1. Software evaluation ([`Network::activate`]) walks them in order.
//! 2. They are exactly the "well formed input vectors" the paper's
//!    vectorize routine packs for ADAM's systolic array (Section IV-D) —
//!    `genesys-core` reuses [`Network::layers`] for its cycle model.

use crate::activation::Activation;
use crate::aggregation::Aggregation;
use crate::error::GenomeError;
use crate::gene::{NodeId, NodeType};
use crate::genome::Genome;
use std::collections::HashMap;

/// Evaluation recipe for one non-input node.
#[derive(Debug, Clone)]
struct NodeEval {
    /// Value-slot index this node writes.
    slot: usize,
    bias: f64,
    response: f64,
    activation: Activation,
    aggregation: Aggregation,
    /// `(value slot, weight)` of each enabled incoming connection.
    incoming: Vec<(usize, f64)>,
}

/// A compiled, immutable, reusable phenotype.
///
/// ```
/// use genesys_neat::{Genome, NeatConfig, Network, XorWow};
/// let config = NeatConfig::builder(2, 1).build()?;
/// let genome = Genome::initial(0, &config, &mut XorWow::seed_from_u64_value(1));
/// let net = Network::from_genome(&genome)?;
/// let out = net.activate(&[0.5, -0.5]);
/// assert_eq!(out.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    num_inputs: usize,
    num_outputs: usize,
    total_slots: usize,
    evals: Vec<NodeEval>,
    output_slots: Vec<usize>,
    layers: Vec<Vec<NodeId>>,
    num_macs: u64,
}

impl Network {
    /// Compiles a genome into a network.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::Cycle`] if the enabled connection graph is not
    /// acyclic (cannot happen for genomes produced by this crate, which
    /// maintain the feed-forward invariant, but hardware-decoded genomes go
    /// through here too).
    pub fn from_genome(genome: &Genome) -> Result<Network, GenomeError> {
        let mut slot_of: HashMap<NodeId, usize> = HashMap::new();
        for (slot, node) in genome.nodes().enumerate() {
            slot_of.insert(node.id, slot);
        }

        // Enabled-edge adjacency and in-degrees for Kahn layering.
        let mut indegree: HashMap<NodeId, usize> = genome.nodes().map(|n| (n.id, 0)).collect();
        let mut out_edges: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        let mut incoming: HashMap<NodeId, Vec<(usize, f64)>> = HashMap::new();
        let mut num_macs = 0u64;
        for conn in genome.conns().filter(|c| c.enabled) {
            *indegree.get_mut(&conn.key.dst).expect("validated genome") += 1;
            out_edges
                .entry(conn.key.src)
                .or_default()
                .push(conn.key.dst);
            incoming
                .entry(conn.key.dst)
                .or_default()
                .push((slot_of[&conn.key.src], conn.weight));
            num_macs += 1;
        }

        // Wavefront 0 holds the inputs plus any source-free node.
        let mut frontier: Vec<NodeId> = genome
            .nodes()
            .filter(|n| indegree[&n.id] == 0)
            .map(|n| n.id)
            .collect();
        frontier.sort_unstable();
        let mut layers: Vec<Vec<NodeId>> = Vec::new();
        let mut order: Vec<NodeId> = Vec::new();
        let mut processed = 0usize;
        while !frontier.is_empty() {
            let mut next: Vec<NodeId> = Vec::new();
            for &id in &frontier {
                processed += 1;
                order.push(id);
                if let Some(dsts) = out_edges.get(&id) {
                    for &dst in dsts {
                        let d = indegree.get_mut(&dst).expect("node present");
                        *d -= 1;
                        if *d == 0 {
                            next.push(dst);
                        }
                    }
                }
            }
            next.sort_unstable();
            layers.push(std::mem::take(&mut frontier));
            frontier = next;
        }
        if processed != genome.num_nodes() {
            return Err(GenomeError::Cycle);
        }

        let evals: Vec<NodeEval> = order
            .iter()
            .filter_map(|id| {
                let node = genome.node(*id).expect("node present");
                if node.node_type == NodeType::Input {
                    return None;
                }
                Some(NodeEval {
                    slot: slot_of[id],
                    bias: node.bias,
                    response: node.response,
                    activation: node.activation,
                    aggregation: node.aggregation,
                    incoming: incoming.remove(id).unwrap_or_default(),
                })
            })
            .collect();

        let output_slots: Vec<usize> = (0..genome.num_outputs())
            .map(|o| slot_of[&NodeId((genome.num_inputs() + o) as u32)])
            .collect();
        // Input nodes occupy the first ids; map observation k to its slot.
        let mut input_slots: Vec<usize> = (0..genome.num_inputs())
            .map(|i| slot_of[&NodeId(i as u32)])
            .collect();
        input_slots.sort_unstable();
        debug_assert!(input_slots.windows(2).all(|w| w[1] == w[0] + 1));

        Ok(Network {
            num_inputs: genome.num_inputs(),
            num_outputs: genome.num_outputs(),
            total_slots: genome.num_nodes(),
            evals,
            output_slots,
            layers,
            num_macs,
        })
    }

    /// Evaluates the network on one observation, returning the output node
    /// values in output-id order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the genome's input count.
    pub fn activate(&self, inputs: &[f64]) -> Vec<f64> {
        assert_eq!(
            inputs.len(),
            self.num_inputs,
            "observation size must match the genome interface"
        );
        let mut values = vec![0.0f64; self.total_slots];
        // Input node ids are 0..num_inputs and BTreeMap iteration slots them
        // first, so slot i == input i.
        values[..self.num_inputs].copy_from_slice(inputs);
        let mut weighted: Vec<f64> = Vec::with_capacity(16);
        for eval in &self.evals {
            weighted.clear();
            weighted.extend(eval.incoming.iter().map(|&(slot, w)| w * values[slot]));
            let agg = eval.aggregation.apply(&weighted);
            values[eval.slot] = eval.activation.apply(eval.bias + eval.response * agg);
        }
        self.output_slots.iter().map(|&s| values[s]).collect()
    }

    /// Number of input nodes.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output nodes.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Topological wavefronts (layer 0 = inputs and source-free nodes).
    /// These are the vertex batches ADAM evaluates per matrix–vector pass.
    pub fn layers(&self) -> &[Vec<NodeId>] {
        &self.layers
    }

    /// Multiply-accumulate operations per inference (one per enabled
    /// connection) — the op count used by Table II and the Fig 9 cost
    /// models.
    pub fn num_macs(&self) -> u64 {
        self.num_macs
    }

    /// Total number of nodes (value slots).
    pub fn num_nodes(&self) -> usize {
        self.total_slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InitialWeights, NeatConfig};
    use crate::gene::{ConnGene, NodeGene};
    use crate::innovation::InnovationTracker;
    use crate::rng::XorWow;
    use crate::trace::OpCounters;

    fn cfg() -> NeatConfig {
        NeatConfig::builder(2, 1).build().unwrap()
    }

    #[test]
    fn zero_weight_initial_net_outputs_sigmoid_of_zero() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(1));
        let net = Network::from_genome(&g).unwrap();
        let out = net.activate(&[1.0, -1.0]);
        assert!(
            (out[0] - 0.5).abs() < 1e-12,
            "zero weights ⇒ sigmoid(0) = 0.5"
        );
    }

    #[test]
    fn hand_built_network_computes_weighted_sum() {
        // 2 inputs -> 1 output with weights 2 and -1, identity activation.
        let mut nodes = vec![
            NodeGene::input(NodeId(0)),
            NodeGene::input(NodeId(1)),
            NodeGene::output(NodeId(2)),
        ];
        nodes[2].activation = Activation::Identity;
        nodes[2].bias = 0.25;
        let conns = vec![
            ConnGene::new(NodeId(0), NodeId(2), 2.0),
            ConnGene::new(NodeId(1), NodeId(2), -1.0),
        ];
        let g = Genome::from_parts(0, 2, 1, nodes, conns).unwrap();
        let net = Network::from_genome(&g).unwrap();
        let out = net.activate(&[3.0, 4.0]);
        assert!((out[0] - (0.25 + 2.0 * 3.0 - 4.0)).abs() < 1e-12);
    }

    #[test]
    fn hidden_node_forms_second_wavefront() {
        let mut nodes = vec![
            NodeGene::input(NodeId(0)),
            NodeGene::output(NodeId(1)),
            NodeGene::hidden(NodeId(2)),
        ];
        nodes[1].activation = Activation::Identity;
        nodes[2].activation = Activation::Identity;
        let conns = vec![
            ConnGene::new(NodeId(0), NodeId(2), 3.0),
            ConnGene::new(NodeId(2), NodeId(1), 2.0),
        ];
        let g = Genome::from_parts(0, 1, 1, nodes, conns).unwrap();
        let net = Network::from_genome(&g).unwrap();
        assert_eq!(net.layers().len(), 3);
        let out = net.activate(&[1.5]);
        assert!((out[0] - 9.0).abs() < 1e-12, "1.5 * 3 * 2 = 9");
        assert_eq!(net.num_macs(), 2);
    }

    #[test]
    fn disabled_connections_do_not_contribute() {
        let mut nodes = vec![NodeGene::input(NodeId(0)), NodeGene::output(NodeId(1))];
        nodes[1].activation = Activation::Identity;
        let mut conn = ConnGene::new(NodeId(0), NodeId(1), 5.0);
        conn.enabled = false;
        let g = Genome::from_parts(0, 1, 1, nodes, vec![conn]).unwrap();
        let net = Network::from_genome(&g).unwrap();
        assert_eq!(net.activate(&[2.0])[0], 0.0);
        assert_eq!(net.num_macs(), 0);
    }

    #[test]
    #[should_panic(expected = "observation size")]
    fn wrong_input_arity_panics() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(1));
        let net = Network::from_genome(&g).unwrap();
        let _ = net.activate(&[1.0]);
    }

    #[test]
    fn evolved_genomes_compile_and_activate() {
        let mut c = cfg();
        c.initial_weights = InitialWeights::Uniform { lo: -1.0, hi: 1.0 };
        let mut r = XorWow::seed_from_u64_value(9);
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let mut g = Genome::initial(0, &c, &mut r);
        for _ in 0..200 {
            let mut ops = OpCounters::new();
            g.mutate(&c, &mut innov, &mut r, &mut ops);
            let net = Network::from_genome(&g).expect("mutated genome stays acyclic");
            let out = net.activate(&[0.3, -0.7]);
            assert_eq!(out.len(), 1);
            assert!(out[0].is_finite());
        }
    }

    #[test]
    fn layer_zero_contains_all_inputs() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(2));
        let net = Network::from_genome(&g).unwrap();
        assert!(net.layers()[0].contains(&NodeId(0)));
        assert!(net.layers()[0].contains(&NodeId(1)));
    }

    #[test]
    fn mac_count_matches_enabled_conns() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(3));
        let net = Network::from_genome(&g).unwrap();
        assert_eq!(
            net.num_macs() as usize,
            g.conns().filter(|c| c.enabled).count()
        );
    }
}
