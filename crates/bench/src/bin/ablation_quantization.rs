//! Ablation: does the 64-bit fixed-point gene encoding (Q5.6 attributes,
//! Q6.9 weights) hurt evolution quality? Software float NEAT vs the
//! hardware loop (which round-trips every attribute through the codec)
//! on CartPole, across seeds.
//!
//! Usage: `ablation_quantization [--runs N] [--generations N] [--pop N]`

use genesys_bench::print_table;
use genesys_core::{GenesysSoc, SocConfig};
use genesys_gym::{rollout, CartPole, Environment};
use genesys_neat::{NeatConfig, Population};
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs = genesys_bench::arg_usize(&args, "--runs", 3);
    let generations = genesys_bench::arg_usize(&args, "--generations", 12);
    let pop = genesys_bench::arg_usize(&args, "--pop", 48);

    let mut rows = Vec::new();
    let mut float_total = 0.0;
    let mut quant_total = 0.0;
    for seed in 0..runs as u64 {
        // Float software evolution.
        let config = NeatConfig::builder(4, 1).pop_size(pop).build().unwrap();
        let mut sw = Population::new(config.clone(), seed);
        let counter = AtomicU64::new(seed * 10_000);
        let mut best_float = f64::MIN;
        for _ in 0..generations {
            let stats = sw.evolve_once(|net| {
                let s = counter.fetch_add(1, Ordering::Relaxed);
                let mut env = CartPole::new(s);
                rollout(net, &mut env, 1)
            });
            best_float = best_float.max(stats.max_fitness);
        }

        // Quantized hardware evolution (same config, same seed).
        let mut soc = GenesysSoc::new(SocConfig::default().with_num_eve_pes(64), config, seed);
        let mut factory =
            |i: usize| -> Box<dyn Environment> { Box::new(CartPole::new(seed * 1000 + i as u64)) };
        let mut best_quant = f64::MIN;
        for _ in 0..generations {
            best_quant = best_quant.max(soc.run_generation(&mut factory).max_fitness);
        }

        float_total += best_float;
        quant_total += best_quant;
        rows.push(vec![
            format!("{seed}"),
            format!("{best_float:.1}"),
            format!("{best_quant:.1}"),
        ]);
    }
    rows.push(vec![
        "mean".to_string(),
        format!("{:.1}", float_total / runs as f64),
        format!("{:.1}", quant_total / runs as f64),
    ]);
    print_table(
        "Quantization ablation: best CartPole fitness after N generations",
        &[
            "Seed",
            "float (software NEAT)",
            "Q5.6/Q6.9 (EvE hardware loop)",
        ],
        &rows,
    );
    println!("\nExpectation: the fixed-point loop tracks the float loop — NEAT's");
    println!("search is perturbation-driven and robust to ~0.002 weight grids.");
}
