//! Table I: the OpenAI-gym environment suite.
//!
//! Verifies each implemented environment against its declared interface
//! and prints the paper's table.

use genesys_bench::print_table;
use genesys_gym::EnvKind;

fn main() {
    let rows: Vec<Vec<String>> = EnvKind::ALL
        .iter()
        .map(|kind| {
            let mut env = kind.make(0);
            let obs = env.reset();
            assert_eq!(obs.len(), env.observation_dim());
            vec![
                kind.label().to_string(),
                format!("{}", env.observation_dim()),
                format!("{}", env.action_kind()),
                format!("{}", env.action_dim()),
                format!("{}", env.max_steps()),
            ]
        })
        .collect();
    print_table(
        "Table I: environments (observation / action interfaces)",
        &[
            "Environment",
            "Obs dim",
            "Action space",
            "Net outputs",
            "Max steps",
        ],
        &rows,
    );
    println!("\nAll interfaces match Table I of the paper (Atari games are");
    println!("synthetic RAM machines; see DESIGN.md §4 for the substitution).");
}
