//! The EvE processing element: a four-stage gene pipeline (Fig 7).
//!
//! Stages, in order: **Crossover Engine** (per-attribute parent selection
//! against a programmable bias), **Perturbation Engine** (probability-gated
//! attribute perturbation with limit-and-quantize), **Delete Gene Engine**
//! (probability- and threshold-gated node deletion plus dangling-connection
//! pruning via the node-ID registers), **Add Gene Engine** (node insertion
//! by connection splitting; two-cycle connection insertion).
//!
//! The PE is *functional*: streaming two aligned parents through it
//! produces the child's genes, with every continuous attribute snapped to
//! the 64-bit gene word's fixed-point grid — the SoC evolves quantized
//! genomes. It also keeps the cycle accounting used by the EvE engine
//! model.

use crate::codec::{quantize_attr, quantize_weight, Gene};
use crate::stream::AlignedPair;
use genesys_neat::gene::{ConnGene, NodeGene, NodeId, NodeType};
use genesys_neat::trace::OpCounters;
use genesys_neat::{Activation, Aggregation, NeatConfig, XorWow};

/// Per-PE configuration registers: "Config: Crossover and Mutation
/// (Perturb, Add, Delete) Probability" (Fig 7).
#[derive(Debug, Clone, PartialEq)]
pub struct PeConfig {
    /// Crossover bias toward the fitter parent (default 0.5: "the ability
    /// to program the bias, depending on which of the two parents
    /// contributes more attributes").
    pub crossover_bias: f64,
    /// Per-attribute perturbation probability.
    pub perturb_prob: f64,
    /// Gaussian perturbation power for weights.
    pub weight_power: f64,
    /// Gaussian perturbation power for biases/responses.
    pub attr_power: f64,
    /// Weight clamp (the "Limit" in limit-and-quantize).
    pub weight_limit: f64,
    /// Bias/response clamp.
    pub attr_limit: f64,
    /// Probability of toggling a connection's enabled flag.
    pub enable_flip_prob: f64,
    /// Probability of re-drawing a node's activation.
    pub activation_mutate_prob: f64,
    /// Available activations.
    pub activation_options: Vec<Activation>,
    /// Probability of re-drawing a node's aggregation.
    pub aggregation_mutate_prob: f64,
    /// Available aggregations.
    pub aggregation_options: Vec<Aggregation>,
    /// Per-gene node deletion probability.
    pub node_delete_prob: f64,
    /// Per-gene connection deletion probability.
    pub conn_delete_prob: f64,
    /// Node deletions allowed per child ("if a threshold amount of nodes
    /// are previously deleted, no more deletion happens in order to keep
    /// the genome alive").
    pub node_delete_limit: usize,
    /// Per-connection-gene node-insertion probability.
    pub node_add_prob: f64,
    /// Per-connection-gene connection-insertion probability (arms the
    /// two-cycle add mechanism).
    pub conn_add_prob: f64,
}

impl PeConfig {
    /// Derives PE configuration registers from a NEAT config, scaling the
    /// per-genome structural probabilities down to per-gene rates so that
    /// the *expected* number of structural mutations per child matches the
    /// software algorithm (the hardware applies its probabilities at every
    /// streamed gene; the software applies them once per genome).
    pub fn from_neat(config: &NeatConfig, genes_per_child: usize) -> Self {
        let per_gene = |p: f64| (p / genes_per_child.max(1) as f64).min(1.0);
        PeConfig {
            crossover_bias: 0.5,
            perturb_prob: config.weight_mutate_rate,
            weight_power: config.weight_perturb_power,
            attr_power: config.bias_perturb_power,
            weight_limit: config.weight_max,
            attr_limit: config.bias_max,
            enable_flip_prob: config.enabled_mutate_rate,
            activation_mutate_prob: config.activation_mutate_rate,
            activation_options: config.activation_options.clone(),
            aggregation_mutate_prob: config.aggregation_mutate_rate,
            aggregation_options: config.aggregation_options.clone(),
            node_delete_prob: per_gene(config.node_delete_prob),
            conn_delete_prob: per_gene(config.conn_delete_prob),
            node_delete_limit: config.node_delete_limit,
            node_add_prob: per_gene(config.node_add_prob),
            conn_add_prob: per_gene(config.conn_add_prob),
        }
    }
}

/// Cycle counts for one child streamed through a PE.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeCycles {
    /// Control/fitness load cycles before streaming ("it takes 2 cycles to
    /// load the parents' fitness values and other control information").
    pub setup: u64,
    /// One cycle per streamed gene pair.
    pub stream: u64,
    /// Extra cycles spent by the two-cycle connection-add mechanism.
    pub add_extra: u64,
    /// Pipeline drain (4 stages).
    pub drain: u64,
}

impl PeCycles {
    /// Total cycles.
    pub fn total(&self) -> u64 {
        self.setup + self.stream + self.add_extra + self.drain
    }
}

/// Result of producing one child genome in a PE.
#[derive(Debug)]
pub struct PeOutput {
    /// Child genes in stream order (Gene Merge sorts and validates them).
    pub genes: Vec<Gene>,
    /// Operation tallies (for trace cross-checks).
    pub ops: OpCounters,
    /// Cycle accounting.
    pub cycles: PeCycles,
}

/// The node-ID register file of Fig 7: deleted ids, the running max id,
/// and the pending source of the two-cycle connection add.
#[derive(Debug, Default)]
struct NodeIdRegs {
    deleted: Vec<NodeId>,
    max_id: u32,
    pending_src: Option<NodeId>,
}

/// One EvE processing element.
#[derive(Debug)]
pub struct EvePe {
    config: PeConfig,
    prng: XorWow,
}

impl EvePe {
    /// Creates a PE with its own PRNG stream (the shared PRNG block fans
    /// out per-PE streams).
    pub fn new(config: PeConfig, prng_seed: u64) -> Self {
        EvePe {
            config,
            prng: XorWow::seed_from_u64_value(prng_seed),
        }
    }

    /// Configuration registers.
    pub fn config(&self) -> &PeConfig {
        &self.config
    }

    /// Streams one child: consumes the aligned parent pairs and emits the
    /// child's genes. Node genes must precede connection genes in `stream`
    /// (the Gene Split order), which is what lets the delete/add engines
    /// maintain valid node-ID registers.
    pub fn produce_child(&mut self, stream: &[AlignedPair]) -> PeOutput {
        let mut regs = NodeIdRegs::default();
        let mut ops = OpCounters::new();
        let mut out: Vec<Gene> = Vec::with_capacity(stream.len());
        let mut add_extra = 0u64;

        for pair in stream {
            // ---- Stage 1: crossover -------------------------------------
            let Some(gene) = self.crossover(pair, &mut ops) else {
                continue; // gene only in the less-fit parent: dropped
            };
            // ---- Stage 2: perturbation ----------------------------------
            let gene = self.perturb(gene, &mut ops);
            // ---- Stage 3: delete ----------------------------------------
            let Some(gene) = self.delete(gene, &mut regs, &mut ops) else {
                continue;
            };
            // ---- Stage 4: add -------------------------------------------
            self.add(gene, &mut regs, &mut ops, &mut out, &mut add_extra);
        }

        let cycles = PeCycles {
            setup: 2,
            stream: stream.len() as u64,
            add_extra,
            drain: 4,
        };
        PeOutput {
            genes: out,
            ops,
            cycles,
        }
    }

    fn crossover(&mut self, pair: &AlignedPair, ops: &mut OpCounters) -> Option<Gene> {
        let bias = self.config.crossover_bias;
        ops.crossover += 1;
        match (pair.fit, pair.other) {
            (Some(Gene::Node(a)), Some(Gene::Node(b))) => {
                // Four attribute comparators, one PRNG draw each.
                let mut child = a;
                if !self.prng.chance(bias) {
                    child.bias = b.bias;
                }
                if !self.prng.chance(bias) {
                    child.response = b.response;
                }
                if !self.prng.chance(bias) {
                    child.activation = b.activation;
                }
                if !self.prng.chance(bias) {
                    child.aggregation = b.aggregation;
                }
                Some(Gene::Node(child))
            }
            (Some(Gene::Conn(a)), Some(Gene::Conn(b))) => {
                let mut child = a;
                if !self.prng.chance(bias) {
                    child.weight = b.weight;
                }
                if !self.prng.chance(bias) {
                    child.enabled = b.enabled;
                }
                Some(Gene::Conn(child))
            }
            // Disjoint/excess genes: inherited from the fitter parent only.
            (Some(g), None) => Some(g),
            (None, _) => None,
            // Kind mismatch cannot occur: node and conn key spaces are
            // aligned separately by Gene Split.
            (Some(_), Some(_)) => unreachable!("gene split aligns kinds"),
        }
    }

    fn perturb(&mut self, gene: Gene, ops: &mut OpCounters) -> Gene {
        match gene {
            Gene::Node(mut n) => {
                if n.node_type != NodeType::Input {
                    if self.prng.chance(self.config.perturb_prob) {
                        let delta = self.prng.next_gaussian() * self.config.attr_power;
                        n.bias = quantize_attr(
                            (n.bias + delta).clamp(-self.config.attr_limit, self.config.attr_limit),
                        );
                        ops.perturb += 1;
                    }
                    if self.config.activation_mutate_prob > 0.0
                        && self.prng.chance(self.config.activation_mutate_prob)
                    {
                        n.activation =
                            Activation::random(&mut self.prng, &self.config.activation_options);
                        ops.perturb += 1;
                    }
                    if self.config.aggregation_mutate_prob > 0.0
                        && self.prng.chance(self.config.aggregation_mutate_prob)
                    {
                        n.aggregation =
                            Aggregation::random(&mut self.prng, &self.config.aggregation_options);
                        ops.perturb += 1;
                    }
                }
                Gene::Node(n)
            }
            Gene::Conn(mut c) => {
                if self.prng.chance(self.config.perturb_prob) {
                    let delta = self.prng.next_gaussian() * self.config.weight_power;
                    c.weight = quantize_weight(
                        (c.weight + delta)
                            .clamp(-self.config.weight_limit, self.config.weight_limit),
                    );
                    ops.perturb += 1;
                }
                if self.prng.chance(self.config.enable_flip_prob) {
                    c.enabled = !c.enabled;
                    ops.perturb += 1;
                }
                Gene::Conn(c)
            }
        }
    }

    fn delete(&mut self, gene: Gene, regs: &mut NodeIdRegs, ops: &mut OpCounters) -> Option<Gene> {
        match gene {
            Gene::Node(n) => {
                regs.max_id = regs.max_id.max(n.id.0);
                let deletable = n.node_type == NodeType::Hidden
                    && regs.deleted.len() < self.config.node_delete_limit;
                if deletable && self.prng.chance(self.config.node_delete_prob) {
                    // "the node is nullified and its ID is stored"
                    regs.deleted.push(n.id);
                    ops.delete_node += 1;
                    None
                } else {
                    Some(Gene::Node(n))
                }
            }
            Gene::Conn(c) => {
                // "This ID is later compared with the source and destination
                // IDs of any of the connection genes to ensure no dangling
                // connection exist."
                if regs.deleted.contains(&c.key.src) || regs.deleted.contains(&c.key.dst) {
                    ops.delete_conn += 1;
                    return None;
                }
                if self.prng.chance(self.config.conn_delete_prob) {
                    ops.delete_conn += 1;
                    return None;
                }
                Some(Gene::Conn(c))
            }
        }
    }

    fn add(
        &mut self,
        gene: Gene,
        regs: &mut NodeIdRegs,
        ops: &mut OpCounters,
        out: &mut Vec<Gene>,
        add_extra: &mut u64,
    ) {
        match gene {
            Gene::Node(n) => out.push(Gene::Node(n)),
            Gene::Conn(c) => {
                // Node insertion: split the incoming connection. "the logic
                // inserts a new gene with default attributes and a node ID
                // greater than any other node present in the network.
                // Additionally two new connection genes are generated and
                // the incoming connection gene is dropped."
                if self.prng.chance(self.config.node_add_prob) {
                    regs.max_id += 1;
                    let new_id = NodeId(regs.max_id);
                    out.push(Gene::Node(NodeGene::hidden(new_id)));
                    out.push(Gene::Conn(ConnGene::new(c.key.src, new_id, 1.0)));
                    out.push(Gene::Conn(ConnGene::new(new_id, c.key.dst, c.weight)));
                    ops.add_node += 1;
                    ops.add_conn += 2;
                    return;
                }
                // Two-cycle connection insertion: a stored source from a
                // previous gene pairs with this gene's destination.
                if let Some(src) = regs.pending_src.take() {
                    if src != c.key.dst && !regs.deleted.contains(&src) {
                        out.push(Gene::Conn(ConnGene::with_default_attributes(
                            src, c.key.dst,
                        )));
                        ops.add_conn += 1;
                        *add_extra += 1;
                    }
                }
                if self.prng.chance(self.config.conn_add_prob) {
                    regs.pending_src = Some(c.key.src);
                }
                out.push(Gene::Conn(c));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{align_parents, merge_child};
    use genesys_neat::{Genome, NeatConfig};

    fn cfg() -> NeatConfig {
        NeatConfig::builder(3, 2).build().unwrap()
    }

    fn pe_config_off() -> PeConfig {
        // All mutation disabled: PE acts as a pure crossover pipe.
        PeConfig {
            crossover_bias: 0.5,
            perturb_prob: 0.0,
            weight_power: 0.5,
            attr_power: 0.5,
            weight_limit: 30.0,
            attr_limit: 30.0,
            enable_flip_prob: 0.0,
            activation_mutate_prob: 0.0,
            activation_options: vec![Activation::Sigmoid],
            aggregation_mutate_prob: 0.0,
            aggregation_options: vec![Aggregation::Sum],
            node_delete_prob: 0.0,
            conn_delete_prob: 0.0,
            node_delete_limit: 8,
            node_add_prob: 0.0,
            conn_add_prob: 0.0,
        }
    }

    #[test]
    fn pure_crossover_of_identical_parents_is_identity() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(1));
        let mut pe = EvePe::new(pe_config_off(), 9);
        let stream = align_parents(&g, &g.clone());
        let out = pe.produce_child(&stream);
        assert_eq!(out.genes.len(), g.num_genes());
        assert_eq!(out.ops.crossover as usize, g.num_genes());
        assert_eq!(out.ops.mutations(), 0);
        let merged = merge_child(1, 3, 2, out.genes).unwrap();
        assert_eq!(merged.genome.num_genes(), g.num_genes());
    }

    #[test]
    fn cycle_accounting_matches_stream_length() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(1));
        let mut pe = EvePe::new(pe_config_off(), 9);
        let stream = align_parents(&g, &g.clone());
        let out = pe.produce_child(&stream);
        assert_eq!(out.cycles.setup, 2);
        assert_eq!(out.cycles.stream as usize, stream.len());
        assert_eq!(out.cycles.drain, 4);
        assert_eq!(out.cycles.total(), 2 + stream.len() as u64 + 4);
    }

    #[test]
    fn node_add_splits_incoming_connection() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(1));
        let mut config = pe_config_off();
        config.node_add_prob = 1.0; // force a split on the first conn gene
        config.node_delete_limit = 0;
        let mut pe = EvePe::new(config, 9);
        let stream = align_parents(&g, &g.clone());
        let out = pe.produce_child(&stream);
        assert!(out.ops.add_node >= 1);
        assert_eq!(out.ops.add_conn, out.ops.add_node * 2);
        let merged = merge_child(1, 3, 2, out.genes).unwrap();
        assert!(merged.genome.num_nodes() > g.num_nodes());
        assert!(merged.genome.validate().is_ok());
    }

    #[test]
    fn new_node_ids_exceed_existing_max() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(1));
        let max_before = g.max_node_id();
        let mut config = pe_config_off();
        config.node_add_prob = 0.5;
        let mut pe = EvePe::new(config, 10);
        let out = pe.produce_child(&align_parents(&g, &g.clone()));
        for gene in &out.genes {
            if let Gene::Node(n) = gene {
                if n.node_type == NodeType::Hidden {
                    assert!(n.id.0 > max_before);
                }
            }
        }
    }

    #[test]
    fn delete_respects_limit_and_prunes_dangling() {
        let c = cfg();
        let mut rng = XorWow::seed_from_u64_value(3);
        let mut innov = genesys_neat::InnovationTracker::new(c.first_hidden_id());
        let mut g = Genome::initial(0, &c, &mut rng);
        let mut ops = genesys_neat::trace::OpCounters::new();
        for _ in 0..5 {
            g.mutate_add_node(&mut innov, &mut rng, &mut ops);
        }
        let mut config = pe_config_off();
        config.node_delete_prob = 1.0;
        config.node_delete_limit = 2;
        let mut pe = EvePe::new(config, 11);
        let out = pe.produce_child(&align_parents(&g, &g.clone()));
        assert_eq!(out.ops.delete_node, 2, "threshold caps deletions");
        let merged = merge_child(1, 3, 2, out.genes).unwrap();
        assert!(merged.genome.validate().is_ok(), "no dangling connections");
    }

    #[test]
    fn two_cycle_conn_add_emits_valid_connections() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(1));
        let mut config = pe_config_off();
        config.conn_add_prob = 1.0;
        let mut pe = EvePe::new(config, 12);
        let out = pe.produce_child(&align_parents(&g, &g.clone()));
        assert!(
            out.ops.add_conn > 0,
            "arming every cycle must add something"
        );
        assert!(out.cycles.add_extra > 0);
        let merged = merge_child(1, 3, 2, out.genes).unwrap();
        assert!(merged.genome.validate().is_ok());
    }

    #[test]
    fn perturbation_quantizes_to_codec_grid() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(1));
        let mut config = pe_config_off();
        config.perturb_prob = 1.0;
        let mut pe = EvePe::new(config, 13);
        let out = pe.produce_child(&align_parents(&g, &g.clone()));
        for gene in &out.genes {
            if let Gene::Conn(c) = gene {
                assert_eq!(c.weight, quantize_weight(c.weight), "on-grid weight");
            }
        }
        assert!(out.ops.perturb > 0);
    }

    #[test]
    fn deterministic_given_prng_seed() {
        let g = Genome::initial(0, &cfg(), &mut XorWow::seed_from_u64_value(1));
        let mut config = pe_config_off();
        config.perturb_prob = 0.5;
        config.node_add_prob = 0.1;
        let stream = align_parents(&g, &g.clone());
        let mut pe1 = EvePe::new(config.clone(), 77);
        let mut pe2 = EvePe::new(config, 77);
        let o1 = pe1.produce_child(&stream);
        let o2 = pe2.produce_child(&stream);
        assert_eq!(o1.genes, o2.genes);
        assert_eq!(o1.ops, o2.ops);
    }

    #[test]
    fn fitter_parent_dominates_disjoint_inheritance() {
        let c = cfg();
        let mut rng = XorWow::seed_from_u64_value(5);
        let mut innov = genesys_neat::InnovationTracker::new(c.first_hidden_id());
        let base = Genome::initial(0, &c, &mut rng);
        let mut grown = base.clone();
        let mut ops = genesys_neat::trace::OpCounters::new();
        grown.mutate_add_node(&mut innov, &mut rng, &mut ops);
        let mut pe = EvePe::new(pe_config_off(), 6);
        // grown is the fitter parent: child inherits its extra structure.
        let out = pe.produce_child(&align_parents(&grown, &base));
        assert_eq!(out.genes.len(), grown.num_genes());
        // base is the fitter parent: extra structure is dropped.
        let out = pe.produce_child(&align_parents(&base, &grown));
        assert_eq!(out.genes.len(), base.num_genes());
    }

    #[test]
    fn pe_config_from_neat_scales_structural_rates() {
        let c = cfg();
        let pc = PeConfig::from_neat(&c, 100);
        assert!((pc.node_add_prob - c.node_add_prob / 100.0).abs() < 1e-12);
        assert!((pc.conn_delete_prob - c.conn_delete_prob / 100.0).abs() < 1e-12);
        assert_eq!(pc.node_delete_limit, c.node_delete_limit);
    }
}
