//! The GeneSys SoC: the full closed learning loop of Section IV-B.
//!
//! One [`GenesysSoc::run_generation`] call executes the walkthrough's ten
//! steps: genomes are mapped onto ADAM (1), interact with their
//! environment instances (2–5), rewards become fitness (6), the CPU-side
//! selector picks parents (7), Gene Split streams them into the EvE PEs
//! (8–9), and Gene Merge writes the children back to the genome buffer
//! (10). The children are produced *functionally* by the PE pipeline —
//! quantized, hardware-semantics evolution — while every phase is also
//! accounted in cycles and energy.
//!
//! Step 7 runs the same serial planning pass
//! (`genesys_neat::reproduction::plan_offspring`) as the software
//! pipeline's staged reproduction, so the PE rounds scheduled here and the
//! software executor's per-child jobs execute one identical offspring
//! plan — the software path mirrors the EvE PE round structure one job
//! per child.

use crate::adam::{inference_timing, AdamReport};
use crate::config::SocConfig;
use crate::energy::EnergyBreakdown;
use crate::eve::{EveEngine, MergeDrops};
use crate::pe::PeConfig;
use crate::selector::{allocate_pes, select_parents};
use crate::sram::{GenomeBuffer, SramStats};
use genesys_gym::{episode_into, Environment, RolloutScratch};
use genesys_neat::trace::OpCounters;
use genesys_neat::{
    Backend, EvalContext, Evaluator, EvolutionState, GenerationStats, Genome, NeatConfig, Network,
    RunState, SessionError, SpeciesSet, XorWow,
};

/// Inference-phase accounting (walkthrough steps 1–6).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InferencePhase {
    /// Environment steps executed across the population.
    pub env_steps: u64,
    /// ADAM timing, accumulated over all inferences.
    pub adam: AdamReport,
    /// Serialized inference cycles for the generation.
    pub cycles: u64,
}

/// Evolution-phase accounting (walkthrough steps 7–10).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvolutionPhase {
    /// EvE cycles for the generation.
    pub cycles: u64,
    /// Reproduction operations performed by the PEs.
    pub ops: OpCounters,
    /// SRAM reads issued by the gene-distribution NoC.
    pub noc_sram_reads: u64,
    /// Gene flits delivered to PEs.
    pub noc_flits: u64,
    /// Gene Merge repairs.
    pub drops: MergeDrops,
    /// PE rounds.
    pub rounds: usize,
    /// CPU cycles spent in the selector.
    pub selector_cpu_cycles: u64,
}

/// Report for one full generation on the SoC.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationReport {
    /// Generation index that was evaluated.
    pub generation: usize,
    /// Best raw fitness.
    pub max_fitness: f64,
    /// Mean raw fitness.
    pub mean_fitness: f64,
    /// Living species after speciation.
    pub num_species: usize,
    /// Total genes across the population.
    pub total_genes: usize,
    /// Genome-buffer footprint (8 B/gene).
    pub memory_bytes: usize,
    /// Steps 1–6.
    pub inference: InferencePhase,
    /// Steps 7–10.
    pub evolution: EvolutionPhase,
    /// Buffer counters for the generation.
    pub sram: SramStats,
    /// Energy accounting.
    pub energy: EnergyBreakdown,
    /// Inference wall time at the SoC clock, seconds.
    pub inference_runtime_s: f64,
    /// Evolution wall time at the SoC clock, seconds.
    pub evolution_runtime_s: f64,
}

/// The GeneSys system-on-chip.
#[derive(Debug)]
pub struct GenesysSoc {
    soc: SocConfig,
    neat: NeatConfig,
    genomes: Vec<Genome>,
    species: SpeciesSet,
    rng: XorWow,
    seed: u64,
    generation: usize,
    next_key: u64,
    best_ever: Option<Genome>,
    last_report: Option<GenerationReport>,
}

impl GenesysSoc {
    /// Boots the SoC with generation 0 resident in the genome buffer.
    ///
    /// # Panics
    ///
    /// Panics if `neat` fails validation.
    pub fn new(soc: SocConfig, neat: NeatConfig, seed: u64) -> Self {
        neat.validate().expect("invalid NeatConfig");
        let mut rng = XorWow::seed_from_u64_value(seed);
        let genomes: Vec<Genome> = (0..neat.pop_size as u64)
            .map(|k| Genome::initial(k, &neat, &mut rng))
            .collect();
        GenesysSoc {
            next_key: neat.pop_size as u64,
            soc,
            neat,
            genomes,
            species: SpeciesSet::new(),
            rng,
            seed,
            generation: 0,
            best_ever: None,
            last_report: None,
        }
    }

    /// Boots the SoC from a checkpointed [`RunState`] (e.g. decoded by
    /// [`crate::snapshot`]) instead of generation 0 — the power-cycle
    /// half of the continuous-learning story: the genome buffer contents,
    /// species state and PRNG stream continue exactly where they stopped.
    ///
    /// # Errors
    ///
    /// Returns a [`SessionError`] if the state fails validation, or
    /// [`SessionError::BackendMismatch`] for an archipelago checkpoint
    /// (the SoC models one shared genome buffer).
    pub fn from_state(soc: SocConfig, state: RunState) -> Result<Self, SessionError> {
        let neat = NeatConfig::builder(1, 1).build().expect("placeholder");
        let mut booted = GenesysSoc {
            soc,
            neat,
            genomes: Vec::new(),
            species: SpeciesSet::new(),
            rng: XorWow::seed_from_u64_value(0),
            seed: 0,
            generation: 0,
            next_key: 0,
            best_ever: None,
            last_report: None,
        };
        Backend::import_state(&mut booted, state)?;
        Ok(booted)
    }

    /// Current generation index.
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// Genomes currently resident in the genome buffer.
    pub fn genomes(&self) -> &[Genome] {
        &self.genomes
    }

    /// The SoC configuration.
    pub fn config(&self) -> &SocConfig {
        &self.soc
    }

    /// The NEAT configuration programmed by the CPU.
    pub fn neat_config(&self) -> &NeatConfig {
        &self.neat
    }

    /// Best genome observed so far.
    pub fn best_genome(&self) -> Option<&Genome> {
        self.best_ever.as_ref()
    }

    /// Trace of the most recent generation's full SoC accounting (cycles,
    /// energy, NoC traffic), however the generation was driven — directly
    /// or through the session [`Backend`] interface.
    pub fn last_report(&self) -> Option<&GenerationReport> {
        self.last_report.as_ref()
    }

    /// Runs one generation against environments produced by `env_factory`
    /// (one instance per genome — the paper's "n Environment Instances").
    ///
    /// Compatibility shim over the evaluator-driven generation loop; the
    /// session path ([`Backend::step`]) drives the same ten steps through
    /// a `genesys_neat::Session` workload instead.
    pub fn run_generation(
        &mut self,
        env_factory: &mut dyn FnMut(usize) -> Box<dyn Environment>,
    ) -> GenerationReport {
        // One buffer set for the whole generation: the rollout hot loop
        // allocates nothing per step (the software mirror of ADAM running
        // out of fixed SRAM buffers).
        let mut scratch = RolloutScratch::new();
        let episodes = self.soc.episodes_per_eval.max(1);
        let (report, _stats) = self.run_generation_inner(&mut |idx, net| {
            let mut env = env_factory(idx);
            let mut fitness = 0.0;
            let mut steps = 0u64;
            for _ in 0..episodes {
                let (episode_fitness, episode_steps) =
                    episode_into(net, env.as_mut(), &mut scratch);
                fitness += episode_fitness;
                steps += episode_steps;
            }
            (fitness / episodes as f64, steps)
        });
        report
    }

    /// The ten-step generation walkthrough, driven by any per-genome
    /// evaluation returning `(fitness, env_steps)`. Returns the full SoC
    /// accounting plus the software-comparable generation statistics.
    fn run_generation_inner(
        &mut self,
        eval: &mut dyn FnMut(usize, &Network) -> (f64, u64),
    ) -> (GenerationReport, GenerationStats) {
        let tech = self.soc.tech;
        let mut buffer = GenomeBuffer::new(self.soc.sram);
        let total_genes: usize = self.genomes.iter().map(Genome::num_genes).sum();
        // Parents stay resident while children are written: double buffer.
        buffer.set_resident(total_genes * 2);

        // ---- Steps 1–6: inference + fitness --------------------------------
        let mut inference = InferencePhase::default();
        let mut best_idx = 0usize;
        let mut best_fit = f64::NEG_INFINITY;
        let mut fitness_sum = 0.0;
        let mut one_pass_macs = 0u64;
        for idx in 0..self.genomes.len() {
            let genome = &self.genomes[idx];
            let net = Network::from_genome(genome).expect("resident genomes are valid");
            let timing = inference_timing(&net, &self.soc.adam);
            one_pass_macs += net.num_macs();
            // Step 1: map the genome over the MAC units (one pass of its
            // genes from the buffer).
            buffer.read_genes(genome.num_genes() as u64);
            let (fitness, steps) = eval(idx, &net);
            // Steps 2–5: every environment step is one packed inference.
            inference.env_steps += steps;
            inference.cycles += steps * timing.total_cycles();
            let mut acc = timing;
            acc.array_cycles *= steps;
            acc.vectorize_cycles *= steps;
            acc.macs *= steps;
            inference.adam.merge(&acc);
            // Per-step input-vector staging reads.
            buffer.read_genes(steps * net.num_nodes() as u64);
            // Step 6: fitness is augmented to the genome in SRAM.
            self.genomes[idx].set_fitness(fitness);
            buffer.write_genes(1);
            fitness_sum += fitness;
            if fitness > best_fit {
                best_fit = fitness;
                best_idx = idx;
            }
        }
        inference.adam.utilization = if inference.adam.array_cycles > 0 {
            inference.adam.macs as f64
                / (inference.adam.array_cycles as f64 * self.soc.adam.num_macs() as f64)
        } else {
            0.0
        };
        if self
            .best_ever
            .as_ref()
            .and_then(Genome::fitness)
            .is_none_or(|f| best_fit > f)
        {
            self.best_ever = Some(self.genomes[best_idx].clone());
        }

        // ---- Step 7: selection (CPU) ----------------------------------------
        let plans = select_parents(
            &self.genomes,
            &mut self.species,
            &self.neat,
            self.generation,
            &mut self.rng,
        );
        // Selector cost model: rank + threshold scan per genome.
        let selector_cpu_cycles = (self.genomes.len() as u64) * 64;

        // ---- Steps 8–10: EvE reproduction ----------------------------------
        let schedule = allocate_pes(&plans, self.soc.num_eve_pes, self.soc.alloc_policy);
        let mean_genes = (total_genes / self.genomes.len().max(1)).max(1);
        let pe_config = PeConfig::from_neat(&self.neat, mean_genes);
        let mut engine = EveEngine::new(
            self.soc.num_eve_pes,
            pe_config,
            self.soc.noc_kind,
            self.soc.prng_seed ^ (self.generation as u64) << 32,
        );
        let report = engine.reproduce(
            &self.genomes,
            &plans,
            &schedule,
            &mut buffer,
            &mut self.next_key,
        );
        let evolution = EvolutionPhase {
            cycles: report.cycles,
            ops: report.ops,
            noc_sram_reads: report.noc.sram_reads,
            noc_flits: report.noc.flits_delivered + report.noc.flits_collected,
            drops: report.drops,
            rounds: report.rounds,
            selector_cpu_cycles,
        };

        // ---- Energy ----------------------------------------------------------
        let energy = EnergyBreakdown {
            eve_uj: evolution.ops.crossover as f64 * tech.e_pe_gene_pj / 1e6,
            adam_uj: inference.adam.macs as f64 * tech.e_mac_pj / 1e6,
            sram_uj: buffer.energy_uj(),
            noc_uj: evolution.noc_flits as f64 * tech.e_noc_flit_pj / 1e6,
            cpu_uj: (selector_cpu_cycles + inference.adam.vectorize_cycles) as f64
                * tech.e_cpu_cycle_pj
                / 1e6,
        };

        let num_species = self.species.len();
        let result = GenerationReport {
            generation: self.generation,
            max_fitness: best_fit,
            mean_fitness: fitness_sum / self.genomes.len().max(1) as f64,
            num_species,
            total_genes,
            memory_bytes: total_genes * 8,
            inference,
            evolution,
            sram: *buffer.stats(),
            energy,
            inference_runtime_s: inference.cycles as f64 * tech.cycle_time_s(),
            evolution_runtime_s: report.cycles as f64 * tech.cycle_time_s(),
        };
        // Software-comparable statistics of the *evaluated* generation
        // (gathered before the children overwrite the genome buffer).
        let mut stats = GenerationStats::collect(
            self.generation,
            &self.genomes,
            num_species,
            None,
            one_pass_macs,
        );
        stats.ops = result.evolution.ops;
        stats.env_steps = result.inference.env_steps;
        stats
            .diagnostics
            .set_species_sizes(self.species.iter().map(|s| s.members.len()));
        stats.fittest_parent_reuse = {
            // Same statistic GenerationTrace::fittest_parent_reuse reports
            // for the software path, computed from the mating plans.
            let mut uses: std::collections::HashMap<usize, usize> =
                std::collections::HashMap::new();
            for plan in plans.iter().filter(|p| !p.is_elite) {
                *uses.entry(plan.fit_parent).or_insert(0) += 1;
                if plan.other_parent != plan.fit_parent {
                    *uses.entry(plan.other_parent).or_insert(0) += 1;
                }
            }
            uses.values().copied().max().unwrap_or(0)
        };
        self.genomes = report.children;
        self.generation += 1;
        self.last_report = Some(result.clone());
        (result, stats)
    }

    /// Runs generations until the NEAT target fitness is reached or
    /// `max_generations` have been evaluated. Returns the per-generation
    /// reports and whether the target was reached.
    pub fn run_until(
        &mut self,
        max_generations: usize,
        env_factory: &mut dyn FnMut(usize) -> Box<dyn Environment>,
    ) -> (Vec<GenerationReport>, bool) {
        let mut reports = Vec::new();
        for _ in 0..max_generations {
            let report = self.run_generation(env_factory);
            let hit = self
                .neat
                .target_fitness
                .is_some_and(|t| report.max_fitness >= t);
            reports.push(report);
            if hit {
                return (reports, true);
            }
        }
        (reports, false)
    }
}

/// The hardware half of the session API: a `genesys_neat::Session` can
/// drive the SoC model through the same loop as a software
/// [`genesys_neat::Population`] — `Session::on(GenesysSoc::new(..), seed)`.
///
/// Evaluation is serial (the SoC's environment instances are physical, not
/// worker threads), so [`Backend::set_executor`] is a no-op.
///
/// On this path the **workload owns evaluation**, including the episode
/// count: configure repeats through the evaluator (e.g.
/// `EpisodeEvaluator::episodes(n)`), not through
/// [`SocConfig::episodes_per_eval`] — that knob applies only to the
/// env-factory shim [`GenesysSoc::run_generation`], whose per-genome
/// environments the session workload replaces.
impl Backend for GenesysSoc {
    fn step(&mut self, workload: &dyn Evaluator, base_seed: u64) -> GenerationStats {
        let generation = self.generation as u64;
        let (_report, stats) = self.run_generation_inner(&mut |index, net| {
            let evaluation = workload.evaluate(
                EvalContext {
                    base_seed,
                    generation,
                    index: index as u64,
                },
                net,
            );
            (evaluation.fitness, evaluation.env_steps)
        });
        stats
    }

    fn generation(&self) -> usize {
        self.generation
    }

    fn genomes(&self) -> &[Genome] {
        &self.genomes
    }

    fn best_genome(&self) -> Option<&Genome> {
        self.best_ever.as_ref()
    }

    fn neat_config(&self) -> &NeatConfig {
        &self.neat
    }

    fn export_state(&self) -> RunState {
        // The SoC has no global innovation tracker — the EvE PEs assign
        // node ids from the gene words themselves — so the persisted
        // counter is the witness of every id in the state: the resident
        // genomes, but also the species representatives and the best-ever
        // genome, which are past-generation individuals that may retain
        // ids deletion has since removed from the living population. A
        // software resume would otherwise re-issue those ids for new
        // structural innovations and alias distinct genes.
        let innovation_next_node = self
            .genomes
            .iter()
            .chain(self.species.iter().map(|s| &s.representative))
            .chain(self.best_ever.as_ref())
            .map(Genome::max_node_id)
            .max()
            .map_or(self.neat.first_hidden_id(), |id| {
                (id + 1).max(self.neat.first_hidden_id())
            });
        RunState::Monolithic(Box::new(EvolutionState {
            config: self.neat.clone(),
            genomes: self.genomes.clone(),
            species: self.species.iter().cloned().collect(),
            species_next_id: self.species.next_species_id(),
            innovation_next_node,
            rng_state: self.rng.state(),
            seed: self.seed,
            generation: self.generation as u64,
            next_key: self.next_key,
            best_ever: self.best_ever.clone(),
            workload_state: 0,
        }))
    }

    fn import_state(&mut self, state: RunState) -> Result<(), SessionError> {
        // The SoC models one shared genome buffer; archipelago
        // checkpoints have no hardware equivalent yet.
        let RunState::Monolithic(state) = state else {
            return Err(SessionError::BackendMismatch);
        };
        state.validate()?;
        self.neat = state.config;
        self.genomes = state.genomes;
        self.species = SpeciesSet::from_parts(state.species, state.species_next_id);
        self.rng = XorWow::from_state(state.rng_state.0, state.rng_state.1);
        self.seed = state.seed;
        self.generation = state.generation as usize;
        self.next_key = state.next_key;
        self.best_ever = state.best_ever;
        self.last_report = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesys_gym::{CartPole, EnvKind};

    fn small_soc(pop: usize) -> GenesysSoc {
        let neat = NeatConfig::builder(4, 1)
            .pop_size(pop)
            .target_fitness(Some(195.0))
            .build()
            .unwrap();
        GenesysSoc::new(SocConfig::default().with_num_eve_pes(16), neat, 42)
    }

    #[test]
    fn one_generation_produces_full_report() {
        let mut soc = small_soc(20);
        let mut factory = |i: usize| -> Box<dyn Environment> { Box::new(CartPole::new(i as u64)) };
        let report = soc.run_generation(&mut factory);
        assert_eq!(report.generation, 0);
        assert!(
            report.max_fitness >= 1.0,
            "CartPole always earns some reward"
        );
        assert!(report.inference.env_steps > 0);
        assert!(report.inference.adam.macs > 0);
        assert!(report.evolution.cycles > 0);
        assert!(report.energy.total() > 0.0);
        assert_eq!(soc.generation(), 1);
        assert_eq!(soc.genomes().len(), 20);
    }

    #[test]
    fn genomes_stay_valid_across_generations() {
        let mut soc = small_soc(16);
        let mut factory = |i: usize| -> Box<dyn Environment> { Box::new(CartPole::new(i as u64)) };
        for _ in 0..5 {
            soc.run_generation(&mut factory);
            for g in soc.genomes() {
                assert!(g.validate().is_ok());
            }
        }
    }

    #[test]
    fn hardware_evolution_improves_cartpole_fitness() {
        let mut soc = small_soc(48);
        let mut factory = |i: usize| -> Box<dyn Environment> { Box::new(CartPole::new(i as u64)) };
        let first = soc.run_generation(&mut factory).max_fitness;
        let mut best = first;
        for _ in 0..20 {
            best = best.max(soc.run_generation(&mut factory).max_fitness);
        }
        assert!(
            best > first,
            "20 generations of hardware evolution should improve on {first}, best {best}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut soc = small_soc(16);
            let mut factory =
                |i: usize| -> Box<dyn Environment> { Box::new(CartPole::new(i as u64)) };
            let mut out = Vec::new();
            for _ in 0..3 {
                let r = soc.run_generation(&mut factory);
                out.push((r.max_fitness, r.total_genes, r.evolution.cycles));
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_respects_generation_budget() {
        let mut soc = small_soc(10);
        let mut factory = |i: usize| -> Box<dyn Environment> { Box::new(CartPole::new(i as u64)) };
        let (reports, _) = soc.run_until(4, &mut factory);
        assert!(reports.len() <= 4);
    }

    #[test]
    fn quantized_genomes_round_trip_the_codec() {
        use crate::codec::{decode_genome, encode_genome};
        let mut soc = small_soc(12);
        let mut factory = |i: usize| -> Box<dyn Environment> { Box::new(CartPole::new(i as u64)) };
        soc.run_generation(&mut factory);
        // Children produced by the PEs carry only representable attribute
        // values, so an encode/decode round trip is lossless.
        for g in soc.genomes() {
            let words = encode_genome(g);
            let back = decode_genome(g.key(), g.num_inputs(), g.num_outputs(), &words).unwrap();
            for (a, b) in g.conns().zip(back.conns()) {
                assert_eq!(a.weight, b.weight);
            }
        }
    }

    #[test]
    fn session_drives_the_soc_backend() {
        use genesys_gym::EpisodeEvaluator;
        use genesys_neat::Session;
        let neat = NeatConfig::builder(4, 1).pop_size(12).build().unwrap();
        let soc = GenesysSoc::new(SocConfig::default().with_num_eve_pes(8), neat, 5);
        let mut session = Session::on(soc, 5)
            .workload(EpisodeEvaluator::new(EnvKind::CartPole))
            .build();
        let report = session.run(3);
        assert_eq!(report.history.len(), 3);
        assert!(report.history[0].env_steps > 0);
        assert!(report.history[0].ops.total() > 0, "EvE ops accounted");
        assert!(session.backend().last_report().is_some());
        assert_eq!(session.generation(), 3);
    }

    #[test]
    fn soc_session_resume_is_bit_identical() {
        use genesys_gym::EpisodeEvaluator;
        use genesys_neat::Session;
        let neat = || NeatConfig::builder(4, 1).pop_size(10).build().unwrap();
        let soc_config = || SocConfig::default().with_num_eve_pes(8);
        let workload = || EpisodeEvaluator::new(EnvKind::CartPole);

        let mut full = Session::on(GenesysSoc::new(soc_config(), neat(), 13), 13)
            .workload(workload())
            .build();
        let full_report = full.run(4);

        let mut head = Session::on(GenesysSoc::new(soc_config(), neat(), 13), 13)
            .workload(workload())
            .build();
        head.run(2);
        let state = head.export_state();
        let seed = state.seed();
        let restored = GenesysSoc::from_state(soc_config(), state).expect("valid state");
        let mut tail = Session::on(restored, seed).workload(workload()).build();
        let tail_report = tail.run(2);

        assert_eq!(&full_report.history[2..], &tail_report.history[..]);
        assert_eq!(full.genomes(), tail.genomes());
    }

    #[test]
    fn works_with_every_suite_env() {
        for kind in [EnvKind::MountainCar, EnvKind::Acrobot] {
            let neat = kind.neat_config();
            let (inputs, outputs) = kind.interface();
            let small = NeatConfig::builder(inputs, outputs)
                .pop_size(8)
                .conn_add_prob(neat.conn_add_prob)
                .build()
                .unwrap();
            let mut soc = GenesysSoc::new(SocConfig::default().with_num_eve_pes(4), small, 7);
            let mut factory = move |i: usize| -> Box<dyn Environment> { kind.make(i as u64) };
            let report = soc.run_generation(&mut factory);
            assert!(report.inference.env_steps > 0, "{}", kind.label());
        }
    }
}
