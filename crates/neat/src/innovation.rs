//! Innovation tracking: global node-id assignment.
//!
//! NEAT aligns genes across genomes by *key* (node id, or `(src, dst)` for
//! connections). For this to be meaningful, the same structural innovation
//! must receive the same key everywhere in the population. The tracker hands
//! out fresh node ids from a global counter and memoizes "split of
//! connection `s->d`" so that two genomes splitting the same connection in
//! the same generation receive the same hidden-node id — keeping them
//! compatible for speciation and crossover, exactly as `neat-python` does.
//!
//! # Two-pass assignment for parallel reproduction
//!
//! The global tracker is inherently serial: the id a split receives depends
//! on every split that came before it. To build children in parallel (the
//! executor-driven reproduction pipeline of [`crate::reproduction`]), each
//! child instead mutates against a private [`SplitRecorder`], which hands
//! out **provisional** ids (from [`PROVISIONAL_NODE_BASE`] upward, far above
//! any real id) and records the requested splits in allocation order. A
//! second, serial pass then walks the children in canonical child order and
//! resolves every request through the real [`InnovationTracker`] — so the
//! global memo ("same split, same generation, same id") is applied in an
//! order independent of which worker built which child. Both id sources
//! implement [`InnovationSource`], which is what
//! [`Genome::mutate`](crate::Genome::mutate) is generic over.

use crate::gene::{ConnKey, NodeId};
use std::collections::HashMap;

/// Hands out node ids for structural innovations (add-node splits) during
/// mutation. Implemented by the global [`InnovationTracker`] (serial path)
/// and by the per-child [`SplitRecorder`] (parallel plan/execute path).
pub trait InnovationSource {
    /// Returns the node id for splitting connection `key`; the same key
    /// must yield the same id when asked twice by the same source.
    fn node_for_split(&mut self, key: ConnKey) -> NodeId;
}

/// First provisional node id handed out by a [`SplitRecorder`]. Real ids
/// stay far below this (the tracker counts up from the interface size), so
/// provisional ids always sort after every real id — which keeps the
/// in-genome gene order during a parallel child build consistent with the
/// order after the serial assignment pass remaps them.
pub const PROVISIONAL_NODE_BASE: u32 = 1 << 31;

/// Per-child innovation recorder for the parallel reproduction path.
///
/// Hands out provisional node ids (base + allocation index) and records the
/// `(split key, provisional id)` pairs in allocation order. Requests with
/// the same key reuse the same provisional id, mirroring the tracker's
/// per-generation memo at child scope. After the child is built, the serial
/// assignment pass maps each provisional id to the real id via
/// [`InnovationTracker::node_for_split`] in canonical child order.
#[derive(Debug, Clone, Default)]
pub struct SplitRecorder {
    requests: Vec<(ConnKey, NodeId)>,
}

impl SplitRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        SplitRecorder::default()
    }

    /// The recorded `(split key, provisional id)` pairs, in allocation
    /// order — the order the serial pass must resolve them in.
    pub fn requests(&self) -> &[(ConnKey, NodeId)] {
        &self.requests
    }

    /// True when no split was requested.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Consumes the recorder, returning the request list (allocation
    /// order preserved).
    pub fn into_requests(self) -> Vec<(ConnKey, NodeId)> {
        self.requests
    }

    /// Forgets all requests so the recorder can serve another child.
    pub fn clear(&mut self) {
        self.requests.clear();
    }
}

impl InnovationSource for SplitRecorder {
    fn node_for_split(&mut self, key: ConnKey) -> NodeId {
        if let Some(&(_, id)) = self.requests.iter().find(|&&(k, _)| k == key) {
            return id;
        }
        let id = NodeId(PROVISIONAL_NODE_BASE + self.requests.len() as u32);
        self.requests.push((key, id));
        id
    }
}

/// Hands out node ids and memoizes per-generation structural innovations.
#[derive(Debug, Clone)]
pub struct InnovationTracker {
    next_node: u32,
    /// Distance between consecutive fresh ids. 1 for a monolithic
    /// population; in an archipelago, island `i` of `n` uses stride `n`
    /// with `next_node ≡ first_hidden_id + i (mod n)`, so the islands'
    /// hidden-node id spaces are disjoint and migrant genomes can never
    /// carry an id a future local split would reuse for a different node.
    stride: u32,
    split_memo: HashMap<ConnKey, NodeId>,
}

impl InnovationTracker {
    /// Creates a tracker whose first fresh node id is `first_hidden_id`
    /// (ids below that belong to the fixed input/output interface).
    pub fn new(first_hidden_id: u32) -> Self {
        InnovationTracker {
            next_node: first_hidden_id,
            stride: 1,
            split_memo: HashMap::new(),
        }
    }

    /// Restricts fresh ids to the residue class of `first` modulo
    /// `stride`, advancing the counter to the smallest in-class id not
    /// already handed out. Used by the archipelago backend to give each
    /// island a disjoint hidden-node id space (`first = first_hidden_id +
    /// island`, `stride = num_islands`); a counter restored from a
    /// checkpoint is already in class, so re-applying the stride after
    /// [`crate::Population::from_state`] is a no-op on the counter.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn set_stride(&mut self, first: u32, stride: u32) {
        assert!(stride > 0, "innovation stride must be positive");
        self.stride = stride;
        if self.next_node < first {
            self.next_node = first;
        } else {
            let over = (self.next_node - first) % stride;
            if over != 0 {
                self.next_node += stride - over;
            }
        }
    }

    /// Returns the node id for splitting connection `key`, reusing the id
    /// if the same split already happened this generation.
    pub fn node_for_split(&mut self, key: ConnKey) -> NodeId {
        if let Some(&id) = self.split_memo.get(&key) {
            return id;
        }
        let id = self.fresh_node();
        self.split_memo.insert(key, id);
        id
    }

    /// Unconditionally allocates a fresh node id (the next id in this
    /// tracker's residue class).
    pub fn fresh_node(&mut self) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += self.stride;
        id
    }

    /// Highest node id handed out so far plus one.
    pub fn next_node_id(&self) -> u32 {
        self.next_node
    }

    /// Clears the split memo; call at each generation boundary so innovation
    /// reuse stays within a generation (the `neat-python` convention).
    pub fn begin_generation(&mut self) {
        self.split_memo.clear();
    }

    /// Ensures the counter is beyond `id` (used when genomes are imported
    /// from outside, e.g. decoded from the hardware genome buffer),
    /// staying within the tracker's residue class.
    pub fn witness(&mut self, id: NodeId) {
        if id.0 >= self.next_node {
            let steps = (id.0 - self.next_node) / self.stride + 1;
            self.next_node += steps * self.stride;
        }
    }
}

impl InnovationSource for InnovationTracker {
    fn node_for_split(&mut self, key: ConnKey) -> NodeId {
        InnovationTracker::node_for_split(self, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_sequential() {
        let mut t = InnovationTracker::new(10);
        assert_eq!(t.fresh_node(), NodeId(10));
        assert_eq!(t.fresh_node(), NodeId(11));
        assert_eq!(t.next_node_id(), 12);
    }

    #[test]
    fn strided_trackers_hand_out_disjoint_ids() {
        let mut a = InnovationTracker::new(10);
        a.set_stride(10, 3);
        let mut b = InnovationTracker::new(10);
        b.set_stride(11, 3);
        assert_eq!(a.fresh_node(), NodeId(10));
        assert_eq!(a.fresh_node(), NodeId(13));
        assert_eq!(b.fresh_node(), NodeId(11));
        assert_eq!(b.fresh_node(), NodeId(14));
        // Witnessing a foreign-class id advances to the next in-class id.
        a.witness(NodeId(17));
        assert_eq!(a.fresh_node(), NodeId(19));
        // A counter already in class survives a stride re-apply unchanged.
        let next = b.next_node_id();
        b.set_stride(11, 3);
        assert_eq!(b.next_node_id(), next);
    }

    #[test]
    fn same_split_same_generation_reuses_id() {
        let mut t = InnovationTracker::new(5);
        let key = ConnKey::new(NodeId(0), NodeId(4));
        let a = t.node_for_split(key);
        let b = t.node_for_split(key);
        assert_eq!(a, b);
    }

    #[test]
    fn split_memo_resets_each_generation() {
        let mut t = InnovationTracker::new(5);
        let key = ConnKey::new(NodeId(1), NodeId(4));
        let a = t.node_for_split(key);
        t.begin_generation();
        let b = t.node_for_split(key);
        assert_ne!(a, b, "memo must clear at the generation boundary");
    }

    #[test]
    fn recorder_hands_out_provisional_ids_in_order() {
        let mut r = SplitRecorder::new();
        let a = r.node_for_split(ConnKey::new(NodeId(0), NodeId(3)));
        let b = r.node_for_split(ConnKey::new(NodeId(1), NodeId(3)));
        assert_eq!(a, NodeId(PROVISIONAL_NODE_BASE));
        assert_eq!(b, NodeId(PROVISIONAL_NODE_BASE + 1));
        assert_eq!(r.requests().len(), 2);
    }

    #[test]
    fn recorder_memoizes_same_key_like_the_tracker() {
        let mut r = SplitRecorder::new();
        let key = ConnKey::new(NodeId(0), NodeId(4));
        let a = r.node_for_split(key);
        let b = r.node_for_split(key);
        assert_eq!(a, b);
        assert_eq!(r.requests().len(), 1, "memo hits record nothing new");
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn witness_advances_counter() {
        let mut t = InnovationTracker::new(3);
        t.witness(NodeId(100));
        assert_eq!(t.fresh_node(), NodeId(101));
        t.witness(NodeId(50)); // lower id: no effect
        assert_eq!(t.fresh_node(), NodeId(102));
    }
}
