//! The Gene Selector: fitness sharing, thresholding and parent selection
//! (Section IV-C4), "handled by a software thread on the CPU".
//!
//! Three steps, per the paper: (1) fitness values "are read and adjusted to
//! implement fitness sharing", (2) "the threshold is calculated using the
//! adjusted fitness values", (3) "the parents for the next generation are
//! chosen and the list of parents for the children is forwarded to the
//! gene splitting logic". The selector also performs the **greedy PE
//! allocation** "such that maximum number of children can be created from
//! the parents currently in the SRAM" — the genome-level-reuse (GLR)
//! optimization Fig 11(c) quantifies.

use genesys_neat::reproduction::plan_offspring;
use genesys_neat::{ChildKind, Genome, NeatConfig, SpeciesSet, XorWow};

/// One planned mating: which parents produce which child.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatingPlan {
    /// Child index in the next generation.
    pub child_index: usize,
    /// Index of the fitter parent in the current generation.
    pub fit_parent: usize,
    /// Index of the other parent (== `fit_parent` for asexual children).
    pub other_parent: usize,
    /// Elite copies bypass the PEs.
    pub is_elite: bool,
}

impl MatingPlan {
    /// Canonical parent-pair key (order-independent), used to group
    /// children that can share multicast reads.
    pub fn pair_key(&self) -> (usize, usize) {
        if self.fit_parent <= self.other_parent {
            (self.fit_parent, self.other_parent)
        } else {
            (self.other_parent, self.fit_parent)
        }
    }
}

/// Runs the three selector steps and returns the child list forwarded to
/// Gene Split.
///
/// The selection logic itself is the **shared planning pass** of the
/// software pipeline — [`plan_offspring`] —
/// so the hardware loop and `genesys-neat` see exactly the same selection
/// pressure (speciation, fitness sharing, survival threshold, elitism,
/// rounding top-up): each planned offspring slot maps 1:1 onto a PE mating
/// plan, aligning the software path with the EvE PE round structure.
pub fn select_parents(
    genomes: &[Genome],
    species: &mut SpeciesSet,
    config: &NeatConfig,
    generation: usize,
    rng: &mut XorWow,
) -> Vec<MatingPlan> {
    species.speciate(genomes, config, generation);
    species.remove_stagnant(genomes, config, generation);
    species.share_fitness(genomes);

    // Keys/seeds are assigned by the hardware PEs themselves; the planning
    // pass's counters are discarded here.
    let mut next_key = 0u64;
    plan_offspring(genomes, species, config, rng, generation, &mut next_key, 0)
        .into_iter()
        .map(|p| MatingPlan {
            child_index: p.child_index,
            fit_parent: p.parent1,
            other_parent: p.parent2,
            is_elite: p.kind == ChildKind::Elite,
        })
        .collect()
}

/// PE assignment policy — an ablation axis (DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// The paper's policy: group children sharing parents into the same
    /// round so a multicast tree can service them with single reads.
    #[default]
    Greedy,
    /// Naive round-robin in child order (no reuse grouping).
    RoundRobin,
}

/// PE work schedule: `rounds[r]` holds the children processed concurrently
/// in round `r` ("we allocate only one PE per child genome").
#[derive(Debug, Clone, Default)]
pub struct PeSchedule {
    /// Per-round mating plans; each round's length is ≤ the PE count.
    pub rounds: Vec<Vec<MatingPlan>>,
}

impl PeSchedule {
    /// Number of non-elite children scheduled.
    pub fn num_children(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }
}

/// Schedules non-elite children onto `num_pes` PEs.
pub fn allocate_pes(plans: &[MatingPlan], num_pes: usize, policy: AllocPolicy) -> PeSchedule {
    assert!(num_pes > 0, "at least one PE required");
    let mut work: Vec<MatingPlan> = plans.iter().filter(|p| !p.is_elite).copied().collect();
    if policy == AllocPolicy::Greedy {
        // Children sharing a parent pair become adjacent, so each round
        // touches as few distinct parents as possible.
        work.sort_by_key(|p| p.pair_key());
    }
    let rounds = work.chunks(num_pes).map(<[MatingPlan]>::to_vec).collect();
    PeSchedule { rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genesys_neat::NeatConfig;

    fn evaluated_population(n: usize) -> (Vec<Genome>, NeatConfig) {
        let c = NeatConfig::builder(3, 1).pop_size(n).build().unwrap();
        let mut rng = XorWow::seed_from_u64_value(8);
        let mut genomes: Vec<Genome> = (0..n as u64)
            .map(|k| Genome::initial(k, &c, &mut rng))
            .collect();
        for (i, g) in genomes.iter_mut().enumerate() {
            g.set_fitness(i as f64);
        }
        (genomes, c)
    }

    #[test]
    fn selector_produces_pop_size_plans() {
        let (genomes, c) = evaluated_population(30);
        let mut species = SpeciesSet::new();
        let mut rng = XorWow::seed_from_u64_value(1);
        let plans = select_parents(&genomes, &mut species, &c, 0, &mut rng);
        assert_eq!(plans.len(), 30);
        assert!(plans.iter().any(|p| p.is_elite));
    }

    #[test]
    fn parents_meet_the_survival_threshold() {
        let (genomes, c) = evaluated_population(50);
        let mut species = SpeciesSet::new();
        let mut rng = XorWow::seed_from_u64_value(2);
        let plans = select_parents(&genomes, &mut species, &c, 0, &mut rng);
        // One species of 50, survival 0.2: parents come from the top 10
        // (fitness >= 40).
        for p in plans.iter().filter(|p| !p.is_elite) {
            assert!(genomes[p.fit_parent].fitness().unwrap() >= 40.0);
            assert!(genomes[p.other_parent].fitness().unwrap() >= 40.0);
        }
    }

    #[test]
    fn fit_parent_is_the_fitter_one() {
        let (genomes, c) = evaluated_population(40);
        let mut species = SpeciesSet::new();
        let mut rng = XorWow::seed_from_u64_value(3);
        let plans = select_parents(&genomes, &mut species, &c, 0, &mut rng);
        for p in plans {
            assert!(genomes[p.fit_parent].fitness() >= genomes[p.other_parent].fitness());
        }
    }

    #[test]
    fn greedy_allocation_groups_shared_parents() {
        let plans: Vec<MatingPlan> = (0..8)
            .map(|i| MatingPlan {
                child_index: i,
                fit_parent: i % 2, // alternating pairs (0,?) (1,?)
                other_parent: 5,
                is_elite: false,
            })
            .collect();
        let sched = allocate_pes(&plans, 4, AllocPolicy::Greedy);
        assert_eq!(sched.rounds.len(), 2);
        // Each greedy round touches exactly 2 distinct parents.
        for round in &sched.rounds {
            let mut parents: Vec<usize> = round
                .iter()
                .flat_map(|p| [p.fit_parent, p.other_parent])
                .collect();
            parents.sort_unstable();
            parents.dedup();
            assert_eq!(parents.len(), 2, "{round:?}");
        }
        // Round-robin rounds touch 3 (both pair-keys interleaved).
        let rr = allocate_pes(&plans, 4, AllocPolicy::RoundRobin);
        let mut parents: Vec<usize> = rr.rounds[0]
            .iter()
            .flat_map(|p| [p.fit_parent, p.other_parent])
            .collect();
        parents.sort_unstable();
        parents.dedup();
        assert_eq!(parents.len(), 3);
    }

    #[test]
    fn elites_are_not_scheduled_on_pes() {
        let plans = vec![
            MatingPlan {
                child_index: 0,
                fit_parent: 0,
                other_parent: 0,
                is_elite: true,
            },
            MatingPlan {
                child_index: 1,
                fit_parent: 0,
                other_parent: 1,
                is_elite: false,
            },
        ];
        let sched = allocate_pes(&plans, 8, AllocPolicy::Greedy);
        assert_eq!(sched.num_children(), 1);
    }

    #[test]
    fn rounds_respect_pe_count() {
        let plans: Vec<MatingPlan> = (0..100)
            .map(|i| MatingPlan {
                child_index: i,
                fit_parent: 0,
                other_parent: 1,
                is_elite: false,
            })
            .collect();
        let sched = allocate_pes(&plans, 16, AllocPolicy::Greedy);
        assert_eq!(sched.rounds.len(), 7);
        assert!(sched.rounds.iter().all(|r| r.len() <= 16));
    }

    #[test]
    fn pair_key_is_order_independent() {
        let a = MatingPlan {
            child_index: 0,
            fit_parent: 9,
            other_parent: 3,
            is_elite: false,
        };
        assert_eq!(a.pair_key(), (3, 9));
    }
}
