//! Exact-vs-pruned speciation A/B, end to end: the signature-pruned
//! two-tier scan (`speciate_exact = false`, the default) must produce
//! **bit-identical** evolution — genomes, species membership,
//! representatives, RNG streams — to the exact reference path
//! (`speciate_exact = true`), at every worker count, on both the
//! monolithic and the archipelago backend. The pruning lower bound and
//! the parent-species hints are pure accelerations; any divergence here
//! means a candidate was skipped that could have changed an assignment.
//!
//! Configs deliberately differ between the two arms (the `speciate_exact`
//! flag itself), so the comparisons cover everything *except* the config:
//! never compare exported states wholesale here.

use genesys::neat::{EvalContext, Executor, Genome, NeatConfig, Network, Population, Session};
use std::sync::Arc;

const GENERATIONS: usize = 8;

fn config(pop: usize, exact: bool) -> NeatConfig {
    NeatConfig::builder(4, 2)
        .pop_size(pop)
        .node_add_prob(0.4)
        .conn_add_prob(0.4)
        .speciate_exact(exact)
        .build()
        .expect("valid config")
}

/// Index-seeded fitness: deterministic and order-independent.
fn indexed_fitness(index: usize, net: &Network) -> f64 {
    let inputs: Vec<f64> = (0..net.num_inputs())
        .map(|i| ((index + i) % 7) as f64 * 0.3 - 0.9)
        .collect();
    net.activate(&inputs).iter().sum::<f64>() + (index % 13) as f64 * 1e-3
}

/// Per-species digest: identity, membership, shared fitness bits, and
/// the retained representative genome.
type SpeciesFingerprint = (u32, Vec<usize>, u64, Genome);

/// Per-island digest: genomes, RNG stream state, and the key counter.
type IslandFingerprint = (Vec<Genome>, ([u32; 5], u32), u64);

/// Everything speciation decides, per species: identity, membership,
/// shared fitness bits, and the retained representative genome.
fn species_fingerprint(pop: &Population) -> Vec<SpeciesFingerprint> {
    pop.species()
        .iter()
        .map(|s| {
            (
                s.id.0,
                s.members.clone(),
                s.adjusted_fitness.to_bits(),
                s.representative.clone(),
            )
        })
        .collect()
}

fn run_monolithic(exact: bool, workers: Option<usize>) -> (Vec<Genome>, Vec<SpeciesFingerprint>) {
    // Populations below the blocked-scan cutoff (128) take the scalar scan
    // in both arms; 192 keeps the pruned arm on the blocked path so the
    // A/B actually exercises the lower bound and the columnar kernel.
    let mut pop = Population::new(config(192, exact), 2024);
    if let Some(w) = workers {
        pop.set_executor(Arc::new(Executor::new(w)));
    }
    for _ in 0..GENERATIONS {
        pop.evolve_once_indexed(indexed_fitness);
    }
    (pop.genomes().to_vec(), species_fingerprint(&pop))
}

/// Monolithic backend: pruned ≡ exact at serial, 1, 4 and 8 workers.
#[test]
fn pruned_speciation_is_bit_identical_monolithic_1_4_8_workers() {
    let (ref_genomes, ref_species) = run_monolithic(true, None);
    for workers in [None, Some(1), Some(4), Some(8)] {
        for exact in [true, false] {
            let (genomes, species) = run_monolithic(exact, workers);
            assert_eq!(
                ref_genomes, genomes,
                "genomes diverged (exact={exact}, workers={workers:?})"
            );
            assert_eq!(
                ref_species, species,
                "species diverged (exact={exact}, workers={workers:?})"
            );
        }
    }
}

fn run_archipelago(exact: bool, workers: Option<usize>) -> Vec<IslandFingerprint> {
    // 3 islands × 144 genomes: each island's population stays above the
    // blocked-scan cutoff (128), so per-island speciation runs the pruned
    // path in the non-exact arm.
    let config = NeatConfig::builder(3, 1)
        .pop_size(432)
        .islands(3)
        .migration_interval(2)
        .migration_k(1)
        .node_add_prob(0.5)
        .conn_add_prob(0.5)
        .speciate_exact(exact)
        .build()
        .expect("valid config");
    let fitness = |ctx: EvalContext, net: &Network| {
        let x = (ctx.seed() % 17) as f64 / 17.0;
        net.activate(&[x, 0.5, 1.0 - x])[0]
    };
    let mut builder = Session::builder(config, 99).expect("valid session");
    if let Some(w) = workers {
        builder = builder.executor(Arc::new(Executor::new(w)));
    }
    let mut session = builder.workload(fitness).build();
    session.run(GENERATIONS);
    let state = session.export_state();
    let state = state.as_archipelago().expect("archipelago backend");
    state
        .islands
        .iter()
        .map(|island| (island.genomes.clone(), island.rng_state, island.next_key))
        .collect()
}

/// Archipelago backend (3 islands, mid-schedule ring migration): pruned
/// ≡ exact at serial, 1, 4 and 8 workers, down to each island's RNG
/// stream — migration re-speciates migrants, so a pruning divergence
/// would compound across islands.
#[test]
fn pruned_speciation_is_bit_identical_archipelago_1_4_8_workers() {
    let reference = run_archipelago(true, None);
    for workers in [None, Some(1), Some(4), Some(8)] {
        for exact in [true, false] {
            let islands = run_archipelago(exact, workers);
            assert_eq!(
                reference, islands,
                "island states diverged (exact={exact}, workers={workers:?})"
            );
        }
    }
}
