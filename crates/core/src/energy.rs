//! 15 nm area, power and energy models (Fig 8, Section V).
//!
//! Calibrated to the paper's published design points:
//!
//! * EvE PE: 59 µm × 59 µm ⇒ 256 PEs = 0.89 mm² (Fig 8(a)).
//! * ADAM MAC: 15 µm × 15 µm ⇒ 1024 MACs = 0.23 mm².
//! * GeneSys SoC @ 256 EvE PEs: 2.45 mm², 947.5 mW roofline, 200 MHz, 1 V.
//!
//! The per-op energies below divide those component powers by the clock,
//! so the roofline power curve of Fig 8(b) and the per-generation energy
//! accounting of Figs 9/11 come from one parameter set.

/// Technology/calibration constants for the GeneSys SoC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechModel {
    /// Clock frequency, Hz (paper: 200 MHz).
    pub freq_hz: f64,
    /// EvE PE footprint, µm² (59 × 59).
    pub eve_pe_area_um2: f64,
    /// MAC PE footprint, µm² (15 × 15).
    pub mac_area_um2: f64,
    /// SRAM macro area per MB, mm².
    pub sram_area_mm2_per_mb: f64,
    /// Cortex-M0 class CPU area, mm².
    pub cpu_area_mm2: f64,
    /// Interconnect area, mm².
    pub noc_area_mm2: f64,
    /// Active power per EvE PE, mW.
    pub eve_pe_power_mw: f64,
    /// ADAM array active power (all MACs), mW.
    pub adam_power_mw: f64,
    /// SRAM active power (all banks), mW.
    pub sram_power_mw: f64,
    /// CPU power, mW.
    pub cpu_power_mw: f64,
    /// NoC power, mW.
    pub noc_power_mw: f64,
    /// Energy per gene pushed through a PE pipeline stage set, pJ.
    pub e_pe_gene_pj: f64,
    /// Energy per MAC, pJ.
    pub e_mac_pj: f64,
    /// Energy per NoC flit-hop, pJ.
    pub e_noc_flit_pj: f64,
    /// Energy per CPU cycle (selector/vectorize work), pJ.
    pub e_cpu_cycle_pj: f64,
}

impl Default for TechModel {
    fn default() -> Self {
        let freq_hz = 200e6;
        let eve_pe_power_mw = 1.2;
        let adam_power_mw = 250.0;
        TechModel {
            freq_hz,
            eve_pe_area_um2: 59.0 * 59.0,
            mac_area_um2: 15.0 * 15.0,
            sram_area_mm2_per_mb: 0.78,
            cpu_area_mm2: 0.05,
            noc_area_mm2: 0.10,
            eve_pe_power_mw,
            adam_power_mw,
            sram_power_mw: 330.0,
            cpu_power_mw: 40.0,
            noc_power_mw: 20.0,
            // power / frequency: 1.2 mW / 200 MHz = 6 pJ per PE-cycle.
            e_pe_gene_pj: eve_pe_power_mw * 1e9 / freq_hz,
            // 250 mW / 200 MHz / 1024 MACs ≈ 1.22 pJ per MAC.
            e_mac_pj: adam_power_mw * 1e9 / freq_hz / 1024.0,
            e_noc_flit_pj: 0.8,
            e_cpu_cycle_pj: 200.0, // 40 mW / 200 MHz
        }
    }
}

impl TechModel {
    /// SoC area in mm² for a design with `num_eve_pes` EvE PEs,
    /// `num_macs` ADAM MACs and `sram_mb` of genome buffer — the Fig 8(c)
    /// curve.
    pub fn area_mm2(&self, num_eve_pes: usize, num_macs: usize, sram_mb: f64) -> AreaBreakdown {
        AreaBreakdown {
            eve_mm2: num_eve_pes as f64 * self.eve_pe_area_um2 / 1e6,
            adam_mm2: num_macs as f64 * self.mac_area_um2 / 1e6,
            sram_mm2: sram_mb * self.sram_area_mm2_per_mb,
            cpu_mm2: self.cpu_area_mm2,
            noc_mm2: self.noc_area_mm2,
        }
    }

    /// Roofline (always-computing) power in mW — the Fig 8(b) curve.
    pub fn roofline_power_mw(&self, num_eve_pes: usize) -> PowerBreakdown {
        PowerBreakdown {
            eve_mw: num_eve_pes as f64 * self.eve_pe_power_mw,
            adam_mw: self.adam_power_mw,
            sram_mw: self.sram_power_mw,
            cpu_mw: self.cpu_power_mw,
            noc_mw: self.noc_power_mw,
        }
    }

    /// Seconds per clock cycle.
    pub fn cycle_time_s(&self) -> f64 {
        1.0 / self.freq_hz
    }
}

/// Per-component area, mm².
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AreaBreakdown {
    /// EvE PE array.
    pub eve_mm2: f64,
    /// ADAM systolic array.
    pub adam_mm2: f64,
    /// Genome buffer SRAM.
    pub sram_mm2: f64,
    /// System CPU.
    pub cpu_mm2: f64,
    /// Interconnect.
    pub noc_mm2: f64,
}

impl AreaBreakdown {
    /// Total SoC area.
    pub fn total(&self) -> f64 {
        self.eve_mm2 + self.adam_mm2 + self.sram_mm2 + self.cpu_mm2 + self.noc_mm2
    }
}

/// Per-component power, mW.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerBreakdown {
    /// EvE PE array.
    pub eve_mw: f64,
    /// ADAM systolic array.
    pub adam_mw: f64,
    /// Genome buffer SRAM.
    pub sram_mw: f64,
    /// System CPU.
    pub cpu_mw: f64,
    /// Interconnect.
    pub noc_mw: f64,
}

impl PowerBreakdown {
    /// Total SoC power.
    pub fn total(&self) -> f64 {
        self.eve_mw + self.adam_mw + self.sram_mw + self.cpu_mw + self.noc_mw
    }
}

/// Per-generation energy accounting, microjoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// EvE PE dynamic energy.
    pub eve_uj: f64,
    /// ADAM MAC dynamic energy.
    pub adam_uj: f64,
    /// Genome buffer access energy (SRAM + DRAM spill).
    pub sram_uj: f64,
    /// Interconnect flit energy.
    pub noc_uj: f64,
    /// CPU (selector + vectorize) energy.
    pub cpu_uj: f64,
}

impl EnergyBreakdown {
    /// Total energy, µJ.
    pub fn total(&self) -> f64 {
        self.eve_uj + self.adam_uj + self.sram_uj + self.noc_uj + self.cpu_uj
    }

    /// Accumulates another breakdown.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.eve_uj += other.eve_uj;
        self.adam_uj += other.adam_uj;
        self.sram_uj += other.sram_uj;
        self.noc_uj += other.noc_uj;
        self.cpu_uj += other.cpu_uj;
    }
}

/// Clock/power gating model (Section VI-D).
///
/// "For real life workloads, the interactions will be much slower. This
/// enables us to use circuit level techniques like clock and power gating
/// to save even more power. The lower the compute window for GENESYS the
/// more time is used to interact with the environment thus saving more
/// energy." While the SoC waits on the environment, gated components burn
/// only a leakage fraction of their active power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatingModel {
    /// Fraction of active power still burned while gated (leakage +
    /// retention). 15 nm FinFET class: ~5 %.
    pub idle_power_fraction: f64,
    /// Cycles to wake a gated domain (charged once per compute window).
    pub wake_overhead_cycles: u64,
}

impl Default for GatingModel {
    fn default() -> Self {
        GatingModel {
            idle_power_fraction: 0.05,
            wake_overhead_cycles: 32,
        }
    }
}

impl GatingModel {
    /// Average power over a window with `busy_s` seconds of compute and
    /// `idle_s` seconds of environment interaction, in mW.
    pub fn average_power_mw(&self, active_mw: f64, busy_s: f64, idle_s: f64) -> f64 {
        let total = busy_s + idle_s;
        if total <= 0.0 {
            return 0.0;
        }
        (active_mw * busy_s + active_mw * self.idle_power_fraction * idle_s) / total
    }

    /// Energy over the same window, in millijoules.
    pub fn energy_mj(&self, active_mw: f64, busy_s: f64, idle_s: f64, tech: &TechModel) -> f64 {
        let wake_s = self.wake_overhead_cycles as f64 * tech.cycle_time_s();
        active_mw * (busy_s + wake_s) + active_mw * self.idle_power_fraction * idle_s
    }

    /// Duty cycle below which gating wins a ≥10× average-power reduction.
    pub fn ten_x_duty_cycle(&self) -> f64 {
        // avg = active*(d + f(1-d)); solve avg = active/10.
        (0.1 - self.idle_power_fraction) / (1.0 - self.idle_power_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gating_tracks_duty_cycle() {
        let g = GatingModel::default();
        // Fully busy: full power.
        assert!((g.average_power_mw(947.5, 1.0, 0.0) - 947.5).abs() < 1e-9);
        // Fully idle: leakage only.
        assert!((g.average_power_mw(947.5, 0.0, 1.0) - 947.5 * 0.05).abs() < 1e-9);
        // 1% duty cycle: near-leakage power.
        let low = g.average_power_mw(947.5, 0.01, 0.99);
        assert!(low < 947.5 * 0.07, "got {low}");
    }

    #[test]
    fn gating_monotone_in_idle_time() {
        let g = GatingModel::default();
        let mut prev = f64::INFINITY;
        for idle in [0.0, 0.5, 1.0, 10.0, 100.0] {
            let p = g.average_power_mw(500.0, 0.1, idle);
            assert!(p <= prev);
            prev = p;
        }
    }

    #[test]
    fn ten_x_duty_cycle_is_consistent() {
        let g = GatingModel::default();
        let d = g.ten_x_duty_cycle();
        let avg = g.average_power_mw(1000.0, d, 1.0 - d);
        assert!((avg - 100.0).abs() < 1.0, "avg at 10x duty point: {avg}");
    }

    #[test]
    fn zero_window_is_zero_power() {
        let g = GatingModel::default();
        assert_eq!(g.average_power_mw(500.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn area_matches_paper_design_point() {
        let tech = TechModel::default();
        let area = tech.area_mm2(256, 1024, 1.5);
        assert!((area.eve_mm2 - 0.891).abs() < 0.01, "EvE {}", area.eve_mm2);
        assert!(
            (area.adam_mm2 - 0.230).abs() < 0.01,
            "ADAM {}",
            area.adam_mm2
        );
        let total = area.total();
        assert!(
            (2.2..=2.7).contains(&total),
            "SoC total {total} should be ≈2.45 mm²"
        );
    }

    #[test]
    fn power_matches_paper_design_point() {
        let tech = TechModel::default();
        let p = tech.roofline_power_mw(256);
        assert!(
            (900.0..=1000.0).contains(&p.total()),
            "roofline at 256 PEs should be ≈947.5 mW, got {}",
            p.total()
        );
        assert!(p.total() < 1000.0, "\"comfortably blanket under 1W\"");
    }

    #[test]
    fn power_grows_linearly_with_pes() {
        let tech = TechModel::default();
        let p2 = tech.roofline_power_mw(2).total();
        let p512 = tech.roofline_power_mw(512).total();
        assert!(p512 > p2);
        let slope = (p512 - p2) / 510.0;
        assert!((slope - tech.eve_pe_power_mw).abs() < 1e-9);
    }

    #[test]
    fn area_scales_with_every_component() {
        let tech = TechModel::default();
        let a = tech.area_mm2(2, 1024, 1.5).total();
        let b = tech.area_mm2(512, 1024, 1.5).total();
        assert!(b > a);
        let c = tech.area_mm2(256, 1024, 3.0).total();
        assert!(c > tech.area_mm2(256, 1024, 1.5).total());
    }

    #[test]
    fn per_op_energies_are_consistent_with_powers() {
        let tech = TechModel::default();
        // One PE running flat out for 1 s: cycles = freq, energy =
        // e_pe_gene * freq ≈ pe power.
        let joules = tech.e_pe_gene_pj * 1e-12 * tech.freq_hz;
        let watts = tech.eve_pe_power_mw * 1e-3;
        assert!((joules - watts).abs() / watts < 0.01);
    }

    #[test]
    fn energy_breakdown_totals() {
        let mut e = EnergyBreakdown {
            eve_uj: 1.0,
            adam_uj: 2.0,
            sram_uj: 3.0,
            noc_uj: 4.0,
            cpu_uj: 5.0,
        };
        assert_eq!(e.total(), 15.0);
        e.merge(&e.clone());
        assert_eq!(e.total(), 30.0);
    }
}
