//! # genesys-serve — evolution as a service
//!
//! The serving layer the ROADMAP's north star asks for: a long-running
//! server that multiplexes **many concurrent evolution sessions** over
//! one shared `Executor`, so the deterministic, checkpointable runs
//! `genesys_neat::Session` made into values (PR 5) can be driven by
//! hundreds of tenants at once.
//!
//! * [`server`] — the session table and scheduler: generation-granular
//!   round-robin fairness, admission control (`max_sessions`),
//!   snapshot-backed eviction under a resident-arena cap
//!   (`max_resident`): idle sessions persist to disk as
//!   `genesys_core::snapshot` images, cost zero RAM, and rehydrate
//!   **bit-identically** on their next request.
//! * [`protocol`] — the length-prefixed binary wire format: verbs
//!   `submit / step(n) / observe / checkpoint / evict / resume / stats`,
//!   with snapshot images as the payload format for state-bearing verbs
//!   and `OwnedGenerationEvent` images as the observer push channel.
//! * [`error`] — the unified [`ServeError`] hierarchy folding
//!   `SessionError`, `SnapshotError` and the protocol errors into one
//!   typed surface with stable numeric wire codes.
//! * [`workload`] — the wire-nameable workloads ([`WorkloadSpec`]):
//!   gym episode rollouts, the drifting nonstationary workload, and a
//!   synthetic load-test fitness.
//! * [`net`] — a hand-rolled nonblocking TCP poll loop (offline
//!   constraint: no I/O registry deps) plus the blocking [`WireClient`].
//!
//! # Determinism
//!
//! The server adds **no new seed-derivation trades**: sessions share the
//! executor but never an RNG stream — each session's randomness is keyed
//! by its own `(seed, generation, index)` triples, so scheduling
//! interleave, eviction, rehydration and worker count all leave a
//! session's trajectory bit-identical to a direct
//! [`Session`](genesys_neat::Session) run. `serve_loadtest` and the CI
//! smoke job assert exactly that, byte-for-byte over checkpoint images.
//!
//! # In-process quickstart
//!
//! ```
//! use genesys_serve::{Reply, Request, Server, ServerConfig, WorkloadSpec};
//!
//! let dir = std::env::temp_dir().join("genesys-serve-doc");
//! let server = Server::start(ServerConfig::new(dir))?;
//! let client = server.client();
//!
//! let config = genesys_neat::NeatConfig::builder(2, 1).pop_size(8).build().unwrap();
//! let Reply::Submitted { session, .. } = client.call(Request::Submit {
//!     seed: 7,
//!     workload: WorkloadSpec::Synthetic,
//!     config: Box::new(config.clone()),
//! })? else { unreachable!() };
//!
//! let Reply::Stepped { generation, .. } =
//!     client.call(Request::Step { session, generations: 2 })? else { unreachable!() };
//! assert_eq!(generation, 2);
//!
//! // The server-mediated state is byte-identical to a direct run.
//! let Reply::Snapshot { image, .. } =
//!     client.call(Request::Checkpoint { session })? else { unreachable!() };
//! let mut direct = genesys_neat::Session::builder(config, 7)
//!     .unwrap()
//!     .workload(WorkloadSpec::Synthetic.build())
//!     .build();
//! direct.run(2);
//! assert_eq!(image, genesys_core::snapshot::snapshot_to_bytes(&direct.export_state())?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! For the wire form, bind a `TcpListener`, run [`net::serve`] on a
//! thread, and drive it with [`WireClient`] — `examples/evolution_service.rs`
//! walks through the full submit/step/observe/evict/resume lifecycle, and
//! `docs/serve_protocol.md` pins the byte-level frame layout, the
//! scheduling/eviction policy, and the stable error-code table.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod error;
pub mod net;
pub mod protocol;
pub mod server;
pub mod workload;

pub use error::{FrameError, ServeError};
pub use net::{serve, WireClient};
pub use protocol::{Reply, Request, ServerStats, MAX_FRAME_BYTES, PROTOCOL_VERSION};
pub use server::{Client, Server, ServerConfig};
pub use workload::{ServeWorkload, WorkloadSpec};
