//! Fig 11: design-space studies.
//!
//! (a) gene-type composition per workload,
//! (b) SRAM reads per cycle: point-to-point vs multicast tree vs #PEs,
//! (c) SRAM energy and generation runtime vs #EvE PEs (Atari average).
//!
//! Usage: `fig11_design_space [--pop N] [--generations N] [--seed N]`

use genesys_bench::{print_table, run_workload_islands, ExperimentArgs, WorkloadRun};
use genesys_core::{replay_trace, GenomeBuffer, NocKind, SocConfig};
use genesys_gym::EnvKind;

fn main() {
    let args = ExperimentArgs::parse();
    let pop = args.pop_or(64);
    let generations = args.generations_or(8);
    let seed = args.base_seed(80);
    let soc = SocConfig::default();

    // ---- Fig 11(a): gene composition --------------------------------------
    let mut rows = Vec::new();
    let mut atari_runs: Vec<WorkloadRun> = Vec::new();
    for (i, kind) in EnvKind::FIG9_SUITE.iter().enumerate() {
        eprintln!("profiling {}...", kind.label());
        let run = run_workload_islands(
            *kind,
            generations,
            seed + i as u64,
            Some(pop),
            None,
            args.islands_or(1),
            args.migration_interval_or(0),
        );
        let last = run.history.last().expect("at least one generation");
        rows.push(vec![
            kind.label().to_string(),
            format!("{}", last.total_conns),
            format!("{}", last.total_nodes),
            format!(
                "{:.2}",
                last.total_conns as f64 / last.total_genes.max(1) as f64
            ),
        ]);
        if kind.is_atari() {
            atari_runs.push(run);
        }
    }
    print_table(
        "Fig 11(a): gene-type composition (population totals)",
        &["Environment", "Num Connection", "Num Node", "Conn fraction"],
        &rows,
    );

    // ---- Fig 11(b): SRAM reads/cycle, P2P vs multicast, vs #PEs -----------
    let pe_sweep = [2usize, 4, 8, 16, 32, 64, 128, 256];
    let mut rows = Vec::new();
    for &pes in &pe_sweep {
        let mut p2p_rpc = 0.0;
        let mut mc_rpc = 0.0;
        for run in &atari_runs {
            for (noc, acc) in [
                (NocKind::PointToPoint, &mut p2p_rpc),
                (NocKind::MulticastTree, &mut mc_rpc),
            ] {
                let mut buffer = GenomeBuffer::new(soc.sram);
                buffer.set_resident(run.parent_sizes.iter().sum::<usize>() * 2);
                let rep = replay_trace(
                    &run.final_trace,
                    &run.parent_sizes,
                    &run.child_sizes,
                    pes,
                    noc,
                    &mut buffer,
                );
                *acc += rep.noc.reads_per_cycle();
            }
        }
        let n = atari_runs.len().max(1) as f64;
        rows.push(vec![
            format!("{pes}"),
            format!("{:.2}", p2p_rpc / n),
            format!("{:.2}", mc_rpc / n),
            format!("{:.1}x", (p2p_rpc / n) / (mc_rpc / n).max(1e-9)),
        ]);
    }
    print_table(
        "Fig 11(b): SRAM reads per cycle vs #EvE PEs (Atari average)",
        &["EvE PEs", "Point-to-Point", "Multicast Tree", "reduction"],
        &rows,
    );

    // ---- Fig 11(c): SRAM energy + runtime vs #PEs -------------------------
    let pe_sweep = [2usize, 4, 8, 16, 32, 64, 128, 256, 512];
    let mut rows = Vec::new();
    for &pes in &pe_sweep {
        let mut evo_cycles = 0.0;
        let mut sram_uj = 0.0;
        let mut adam_cycles = 0.0;
        for run in &atari_runs {
            let mut buffer = GenomeBuffer::new(soc.sram);
            buffer.set_resident(run.parent_sizes.iter().sum::<usize>() * 2);
            let rep = replay_trace(
                &run.final_trace,
                &run.parent_sizes,
                &run.child_sizes,
                pes,
                NocKind::MulticastTree,
                &mut buffer,
            );
            evo_cycles += rep.cycles as f64;
            sram_uj += buffer.energy_uj();
            let cost = genesys_bench::genesys_cost(run, &soc);
            adam_cycles += cost.inference_s / soc.tech.cycle_time_s();
        }
        let n = atari_runs.len().max(1) as f64;
        rows.push(vec![
            format!("{pes}"),
            format!("{:.0}", evo_cycles / n),
            format!("{:.0}", adam_cycles / n),
            format!("{:.2}", sram_uj / n),
        ]);
    }
    print_table(
        "Fig 11(c): per-generation EvE runtime, ADAM runtime (cycles) and SRAM energy (uJ) vs #EvE PEs",
        &["EvE PEs", "EvE cycles", "ADAM cycles", "SRAM uJ"],
        &rows,
    );
    println!("\nPaper trends to check: >100x read reduction with multicast;");
    println!("near-exponential fall in evolution cycles with PE count, tapering");
    println!("once PEs exceed the population (150 in the paper, {pop} here);");
    println!("evolution compute-bound at low PE counts (EvE >> ADAM cycles).");
}
