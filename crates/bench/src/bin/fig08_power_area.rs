//! Fig 8: (a) SoC parameters, (b) roofline power and (c) area as a
//! function of the number of EvE PEs (ADAM and SRAM held constant).

use genesys_bench::print_table;
use genesys_core::{SocConfig, TechModel};

fn main() {
    let tech = TechModel::default();
    let design = SocConfig::default();

    // ---- Fig 8(a): the design-point parameter table -----------------------
    let rows = vec![
        vec!["Tech node".into(), "15nm (analytical model)".into()],
        vec!["Num EvE PE".into(), format!("{}", design.num_eve_pes)],
        vec!["Num ADAM PE".into(), format!("{}", design.adam.num_macs())],
        vec![
            "EvE Area".into(),
            format!("{:.2} mm2", tech.area_mm2(256, 1024, 1.5).eve_mm2),
        ],
        vec![
            "ADAM Area".into(),
            format!("{:.2} mm2", tech.area_mm2(256, 1024, 1.5).adam_mm2),
        ],
        vec![
            "GeneSys Area".into(),
            format!("{:.2} mm2", design.area_mm2()),
        ],
        vec![
            "Power".into(),
            format!("{:.1} mW", design.roofline_power_mw()),
        ],
        vec!["Frequency".into(), "200 MHz".into()],
        vec!["SRAM banks".into(), format!("{}", design.sram.banks)],
        vec!["SRAM depth".into(), format!("{}", design.sram.depth)],
    ];
    print_table(
        "Fig 8(a): GeneSys parameters",
        &["Parameter", "Value"],
        &rows,
    );

    // ---- Fig 8(b)/(c): sweeps ---------------------------------------------
    let pes = [2usize, 4, 8, 16, 32, 64, 128, 256, 512];
    let rows: Vec<Vec<String>> = pes
        .iter()
        .map(|&n| {
            let p = tech.roofline_power_mw(n);
            let a = tech.area_mm2(n, 1024, 1.5);
            vec![
                format!("{n}"),
                format!("{:.1}", p.eve_mw),
                format!("{:.1}", p.sram_mw),
                format!("{:.1}", p.adam_mw),
                format!("{:.1}", p.cpu_mw),
                format!("{:.1}", p.total()),
                format!("{:.3}", a.eve_mm2),
                format!("{:.3}", a.sram_mm2),
                format!("{:.3}", a.adam_mm2),
                format!("{:.3}", a.total()),
            ]
        })
        .collect();
    print_table(
        "Fig 8(b)+(c): power (mW) and area (mm2) vs number of EvE PEs",
        &[
            "EvE PEs",
            "EvE mW",
            "SRAM mW",
            "ADAM mW",
            "M0 mW",
            "Net mW",
            "EvE mm2",
            "SRAM mm2",
            "ADAM mm2",
            "Total mm2",
        ],
        &rows,
    );
    let p256 = tech.roofline_power_mw(256).total();
    println!(
        "\nAt 256 PEs: {:.1} mW — paper reports 947.5 mW (\"comfortably under 1 W\").",
        p256
    );
    assert!(p256 < 1000.0);
}
