//! Property tests on the snapshot wire format: encode/decode is a fixed
//! point on real evolved states, and corrupt input of every shape —
//! truncation, bit flips, garbage — returns a typed error and never
//! panics.

use genesys::gym::{DriftingEvaluator, EnvKind, EpisodeEvaluator};
use genesys::neat::{
    EvalContext, Genome, NeatConfig, Network, NodeGene, NodeId, RunState, Session,
};
use genesys::soc::{
    decode_migrant_batch, decode_snapshot, encode_migrant_batch, encode_snapshot,
    migrant_batch_from_bytes, migrant_batch_to_bytes, snapshot_from_bytes, snapshot_to_bytes,
    MigrantBatch, SnapshotError, SNAPSHOT_MAX_NODE_ID, SNAPSHOT_VERSION,
};
use proptest::prelude::*;

/// FNV-1a over little-endian word bytes — the snapshot checksum, restated
/// here so corruption tests can re-seal a deliberately altered header.
fn fnv1a(words: &[u64]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for w in words {
        for byte in w.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

/// Builds a genuinely evolved state (species, innovations, RNG mid-stream,
/// best-ever genome) from a handful of generator-chosen knobs. Three
/// workload shapes keep it fast while exercising drift phase serialization
/// and env-step accounting.
fn evolved_state(seed: u64, generations: usize, pop: usize, workload: u8) -> RunState {
    let config = NeatConfig::builder(3, 1)
        .pop_size(pop)
        .node_add_prob(0.5)
        .conn_add_prob(0.5)
        .build()
        .unwrap();
    match workload % 3 {
        0 => {
            let fitness = |ctx: EvalContext, net: &Network| {
                let x = (ctx.seed() % 17) as f64 / 17.0;
                net.activate(&[x, 0.5, 1.0 - x])[0]
            };
            let mut s = Session::builder(config, seed)
                .unwrap()
                .workload(fitness)
                .build();
            s.run(generations);
            s.export_state()
        }
        1 => {
            let mut config = EnvKind::MountainCar.neat_config();
            config.pop_size = pop;
            let mut s = Session::builder(config, seed)
                .unwrap()
                .workload(EpisodeEvaluator::new(EnvKind::MountainCar))
                .build();
            s.run(generations.min(2));
            s.export_state()
        }
        _ => {
            let config = NeatConfig::builder(4, 1).pop_size(pop).build().unwrap();
            let mut s = Session::builder(config, seed)
                .unwrap()
                .workload(
                    DriftingEvaluator::new(seed, 10, pop as u64).with_episode_offset(seed % 977),
                )
                .build();
            s.run(generations.min(3));
            s.export_state()
        }
    }
}

/// An evolved archipelago checkpoint: `islands` islands with ring
/// migration mid-schedule, so v3 images carry real per-island state.
fn evolved_archipelago(seed: u64, generations: usize, pop: usize, islands: usize) -> RunState {
    let config = NeatConfig::builder(3, 1)
        .pop_size(pop)
        .islands(islands)
        .migration_interval(2)
        .migration_k(1)
        .node_add_prob(0.5)
        .conn_add_prob(0.5)
        .build()
        .unwrap();
    let fitness = |ctx: EvalContext, net: &Network| {
        let x = (ctx.seed() % 17) as f64 / 17.0;
        net.activate(&[x, 0.5, 1.0 - x])[0]
    };
    let mut s = Session::builder(config, seed)
        .unwrap()
        .workload(fitness)
        .build();
    s.run(generations);
    s.export_state()
}

/// A migrant batch cloned off a real evolved population, as the ring
/// exchange would emit it.
fn migrant_batch(seed: u64, k: usize) -> MigrantBatch {
    let state = evolved_state(seed, 2, 10, 0);
    let state = state.as_monolithic().expect("monolithic workload");
    MigrantBatch {
        epoch: seed % 7,
        from_island: seed % 5,
        to_island: (seed % 5 + 1) % 5,
        num_inputs: state.config.num_inputs,
        num_outputs: state.config.num_outputs,
        genomes: state.genomes[..k.min(state.genomes.len())].to_vec(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// snapshot -> words -> snapshot -> words is a fixed point, and the
    /// byte form round-trips to the identical state.
    #[test]
    fn encode_decode_is_a_fixed_point(
        seed in any::<u64>(),
        generations in 1usize..5,
        pop in 6usize..20,
        workload in any::<u8>(),
    ) {
        let state = evolved_state(seed, generations, pop, workload);
        let words = encode_snapshot(&state).expect("evolved states encode");
        let decoded = decode_snapshot(&words).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &state);
        prop_assert_eq!(encode_snapshot(&decoded).unwrap(), words.clone());

        let bytes = snapshot_to_bytes(&state).unwrap();
        prop_assert_eq!(snapshot_from_bytes(&bytes).unwrap(), state);
    }

    /// Every truncation of a valid snapshot returns a typed error.
    #[test]
    fn truncation_always_errors(
        seed in any::<u64>(),
        cut in any::<u64>(),
    ) {
        let state = evolved_state(seed, 2, 10, seed as u8);
        let words = encode_snapshot(&state).unwrap();
        let len = (cut as usize) % words.len();
        prop_assert!(decode_snapshot(&words[..len]).is_err());
        // Byte-level cuts too, including non-word-aligned ones.
        let bytes = snapshot_to_bytes(&state).unwrap();
        let blen = (cut as usize) % bytes.len();
        prop_assert!(snapshot_from_bytes(&bytes[..blen]).is_err());
    }

    /// Any single bit flip anywhere in the image is detected.
    #[test]
    fn bit_flips_always_error(
        seed in any::<u64>(),
        word in any::<u64>(),
        bit in 0u32..64,
    ) {
        let state = evolved_state(seed, 2, 10, seed as u8);
        let mut words = encode_snapshot(&state).unwrap();
        let i = (word as usize) % words.len();
        words[i] ^= 1u64 << bit;
        prop_assert!(decode_snapshot(&words).is_err(), "flip bit {} of word {}", bit, i);
    }

    /// The v2 words carry 31-bit node ids: any id past the hardware
    /// codec's 14-bit limit (which v1 could not represent) round-trips
    /// exactly, and ids past the snapshot limit are a typed error.
    #[test]
    fn wide_node_ids_roundtrip_and_overflow_is_typed(
        seed in any::<u64>(),
        id in (1u32 << 14)..SNAPSHOT_MAX_NODE_ID,
    ) {
        let state = evolved_state(seed, 1, 8, 0);
        let mut state = state.as_monolithic().expect("monolithic workload").clone();
        let forged = Genome::from_parts(
            999,
            state.config.num_inputs,
            state.config.num_outputs,
            state.genomes[0]
                .nodes()
                .copied()
                .chain(std::iter::once(NodeGene::hidden(NodeId(id)))),
            state.genomes[0].conns().copied(),
        )
        .unwrap();
        state.best_ever = Some(forged.clone());
        let wrapped = RunState::Monolithic(Box::new(state.clone()));
        let words = encode_snapshot(&wrapped).expect("31-bit ids encode");
        prop_assert_eq!(decode_snapshot(&words).unwrap(), wrapped);

        let overflowed = Genome::from_parts(
            999,
            state.config.num_inputs,
            state.config.num_outputs,
            forged
                .nodes()
                .copied()
                .map(|mut n| { if n.id.0 == id { n.id = NodeId(SNAPSHOT_MAX_NODE_ID + 1); } n }),
            forged.conns().copied(),
        )
        .unwrap();
        state.best_ever = Some(overflowed);
        prop_assert!(matches!(
            encode_snapshot(&RunState::Monolithic(Box::new(state))),
            Err(SnapshotError::NodeIdOverflow { .. })
        ));
    }

    /// Any version word other than the current one is rejected with the
    /// typed error — even when the rest of the image (checksum included)
    /// is coherent. v1 images land here rather than being mis-decoded.
    #[test]
    fn foreign_versions_never_decode(
        seed in any::<u64>(),
        version in any::<u64>(),
    ) {
        let version = if version == SNAPSHOT_VERSION { version ^ 1 } else { version };
        let state = evolved_state(seed, 1, 8, seed as u8);
        let mut words = encode_snapshot(&state).unwrap();
        words[1] = version;
        let n = words.len();
        words[n - 1] = fnv1a(&words[..n - 1]);
        prop_assert_eq!(
            decode_snapshot(&words).unwrap_err(),
            SnapshotError::UnsupportedVersion(version)
        );
    }

    /// Archipelago (v4, kind 1) images are a fixed point too: per-island
    /// state, migration bookkeeping and workload state all ride along.
    #[test]
    fn archipelago_encode_decode_is_a_fixed_point(
        seed in any::<u64>(),
        generations in 1usize..5,
        pop in 8usize..24,
        islands in 2usize..5,
    ) {
        let state = evolved_archipelago(seed, generations, pop, islands);
        prop_assert!(state.as_archipelago().is_some());
        let words = encode_snapshot(&state).expect("archipelago states encode");
        let decoded = decode_snapshot(&words).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &state);
        prop_assert_eq!(encode_snapshot(&decoded).unwrap(), words.clone());
        let bytes = snapshot_to_bytes(&state).unwrap();
        prop_assert_eq!(snapshot_from_bytes(&bytes).unwrap(), state);
    }

    /// Corrupt archipelago images — truncation or bit flips anywhere —
    /// return a typed error and never panic.
    #[test]
    fn archipelago_corruption_always_errors(
        seed in any::<u64>(),
        cut in any::<u64>(),
        bit in 0u32..64,
    ) {
        let state = evolved_archipelago(seed, 2, 12, 3);
        let words = encode_snapshot(&state).unwrap();
        let len = (cut as usize) % words.len();
        prop_assert!(decode_snapshot(&words[..len]).is_err());
        let mut flipped = words.clone();
        let i = (cut as usize) % words.len();
        flipped[i] ^= 1u64 << bit;
        prop_assert!(decode_snapshot(&flipped).is_err(), "flip bit {} of word {}", bit, i);
    }

    /// encode ∘ decode is a fixed point for migrant batches, in both the
    /// word and byte forms.
    #[test]
    fn migrant_batches_roundtrip(
        seed in any::<u64>(),
        k in 1usize..5,
    ) {
        let batch = migrant_batch(seed, k);
        let words = encode_migrant_batch(&batch).expect("batches encode");
        let decoded = decode_migrant_batch(&words).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &batch);
        prop_assert_eq!(encode_migrant_batch(&decoded).unwrap(), words);
        let bytes = migrant_batch_to_bytes(&batch).unwrap();
        prop_assert_eq!(migrant_batch_from_bytes(&bytes).unwrap(), batch);
    }

    /// Every truncation and every single-bit flip of a migrant batch is a
    /// typed [`SnapshotError`] — never a panic.
    #[test]
    fn migrant_batch_corruption_always_errors(
        seed in any::<u64>(),
        cut in any::<u64>(),
        bit in 0u32..64,
    ) {
        let batch = migrant_batch(seed, 3);
        let words = encode_migrant_batch(&batch).unwrap();
        let len = (cut as usize) % words.len();
        prop_assert!(decode_migrant_batch(&words[..len]).is_err());
        let mut flipped = words.clone();
        let i = (cut as usize) % words.len();
        flipped[i] ^= 1u64 << bit;
        prop_assert!(decode_migrant_batch(&flipped).is_err(), "flip bit {} of word {}", bit, i);
        let bytes = migrant_batch_to_bytes(&batch).unwrap();
        let blen = (cut as usize) % bytes.len();
        prop_assert!(migrant_batch_from_bytes(&bytes[..blen]).is_err());
    }

    /// Random garbage never decodes and never panics.
    #[test]
    fn garbage_never_decodes(
        seed in any::<u64>(),
        len in 0usize..256,
    ) {
        let mut rng = genesys::neat::XorWow::seed_from_u64_value(seed);
        let words: Vec<u64> = (0..len)
            .map(|_| (u64::from(rng.next_u32_value()) << 32) | u64::from(rng.next_u32_value()))
            .collect();
        prop_assert!(decode_snapshot(&words).is_err());
    }
}

#[test]
fn prior_versions_are_rejected_for_both_state_kinds() {
    // v1 predates the snapshot gene words, v2 predates the state kind
    // word and the island knobs, v3 predates the speciate_exact knob:
    // all are rejected outright, for monolithic (kind 0) and
    // archipelago (kind 1) images alike.
    for state in [evolved_state(3, 2, 10, 0), evolved_archipelago(3, 2, 12, 3)] {
        for version in [1u64, 2, 3] {
            let mut words = encode_snapshot(&state).unwrap();
            words[1] = version;
            let n = words.len();
            words[n - 1] = fnv1a(&words[..n - 1]);
            assert_eq!(
                decode_snapshot(&words).unwrap_err(),
                SnapshotError::UnsupportedVersion(version)
            );
        }
    }
}

#[test]
fn error_variants_are_typed_and_displayed() {
    assert!(matches!(
        decode_snapshot(&[]),
        Err(SnapshotError::Truncated { .. })
    ));
    let err = decode_snapshot(&[0, 0, 0, 0]).unwrap_err();
    assert_eq!(err, SnapshotError::BadMagic);
    assert!(!err.to_string().is_empty());
}
