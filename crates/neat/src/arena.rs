//! Flat population arenas: the whole population's gene streams packed
//! into two contiguous buffers with per-genome offset/length tables.
//!
//! This is the paper's genome-buffer layout — "the genes are stored in two
//! logical clusters … sorted in ascending order of IDs" (Section IV-C5) —
//! extended across the *population*: every genome's node cluster lives
//! back-to-back in one `Vec<NodeGene>`, every conn cluster in one
//! `Vec<ConnGene>`, and a span table maps genome index → `(offset, len)`
//! into each. Population-scale sweeps (the speciation distance matrix,
//! compatibility scans, batched gene statistics) then walk contiguous
//! memory instead of chasing one heap allocation per genome, which is what
//! makes `--pop 10_000..100_000` practical.
//!
//! Distances computed through [`GenomeView::distance`] share one
//! implementation with [`Genome::distance`] ([`gene_distance`]), so arena
//! and per-genome paths are bit-identical by construction.

use crate::config::NeatConfig;
use crate::gene::{ConnGene, NodeGene};
use crate::genome::{Genome, GENE_BYTES};

/// Borrowed view of one genome's two sorted gene clusters — either a slice
/// pair out of a [`PopulationArena`] or a [`Genome`]'s own buffers.
#[derive(Debug, Clone, Copy)]
pub struct GenomeView<'a> {
    /// Node genes in ascending id order.
    pub nodes: &'a [NodeGene],
    /// Connection genes in ascending key order.
    pub conns: &'a [ConnGene],
}

impl<'a> GenomeView<'a> {
    /// Views a genome's own gene buffers without copying.
    pub fn of(genome: &'a Genome) -> Self {
        GenomeView {
            nodes: genome.node_genes(),
            conns: genome.conn_genes(),
        }
    }

    /// Compatibility distance to `other`; bit-identical to
    /// [`Genome::distance`] (both delegate to [`gene_distance`]).
    pub fn distance(&self, other: GenomeView<'_>, config: &NeatConfig) -> f64 {
        gene_distance(self.nodes, self.conns, other.nodes, other.conns, config)
    }

    /// Total gene count of the viewed genome.
    pub fn num_genes(&self) -> usize {
        self.nodes.len() + self.conns.len()
    }
}

/// Per-genome offset/length record into the arena's two gene buffers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Span {
    node_offset: usize,
    node_len: usize,
    conn_offset: usize,
    conn_len: usize,
}

/// A population's gene streams packed contiguously (see module docs).
///
/// [`PopulationArena::pack`] reuses the backing buffers across calls, so a
/// generation-loop repack allocates nothing once capacity has grown to the
/// population's working-set size.
#[derive(Debug, Clone, Default)]
pub struct PopulationArena {
    nodes: Vec<NodeGene>,
    conns: Vec<ConnGene>,
    spans: Vec<Span>,
}

impl PopulationArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        PopulationArena::default()
    }

    /// Packs the gene streams of `genomes` into the arena, replacing any
    /// previous contents. Buffer capacity is retained across calls.
    pub fn pack<'a>(&mut self, genomes: impl IntoIterator<Item = &'a Genome>) {
        self.nodes.clear();
        self.conns.clear();
        self.spans.clear();
        for genome in genomes {
            let span = Span {
                node_offset: self.nodes.len(),
                node_len: genome.num_nodes(),
                conn_offset: self.conns.len(),
                conn_len: genome.num_conns(),
            };
            self.nodes.extend_from_slice(genome.node_genes());
            self.conns.extend_from_slice(genome.conn_genes());
            self.spans.push(span);
        }
    }

    /// Number of packed genomes.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no genomes are packed.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// View of the `i`-th packed genome's gene clusters.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn view(&self, i: usize) -> GenomeView<'_> {
        let span = self.spans[i];
        GenomeView {
            nodes: &self.nodes[span.node_offset..span.node_offset + span.node_len],
            conns: &self.conns[span.conn_offset..span.conn_offset + span.conn_len],
        }
    }

    /// Total genes across all packed genomes (the Fig 4(b) metric, summed).
    pub fn total_genes(&self) -> usize {
        self.nodes.len() + self.conns.len()
    }

    /// Total memory footprint in the 64-bit hardware gene encoding.
    pub fn memory_bytes(&self) -> usize {
        self.total_genes() * GENE_BYTES
    }
}

/// Compatibility distance between two sorted gene-slice pairs, following
/// the `neat-python` formulation (Section II-D): node distance plus
/// connection distance, each `(weight_coeff * Σ attribute distance of
/// matching genes + disjoint_coeff * #non-matching) / max gene count`.
///
/// This is *the* implementation — [`Genome::distance`] and
/// [`GenomeView::distance`] both call it — so every caller accumulates in
/// the same order (ascending key order of the `b` side) and produces
/// bit-identical results.
pub fn gene_distance(
    nodes_a: &[NodeGene],
    conns_a: &[ConnGene],
    nodes_b: &[NodeGene],
    conns_b: &[ConnGene],
    config: &NeatConfig,
) -> f64 {
    let cd = config.compatibility_disjoint_coefficient;
    let cw = config.compatibility_weight_coefficient;

    let mut node_dist = 0.0;
    let mut disjoint_nodes = 0usize;
    let mut matched = 0usize;
    let mut i = 0usize;
    for n2 in nodes_b {
        while i < nodes_a.len() && nodes_a[i].id < n2.id {
            i += 1;
        }
        if i < nodes_a.len() && nodes_a[i].id == n2.id {
            node_dist += nodes_a[i].attribute_distance(n2) * cw;
            matched += 1;
        } else {
            disjoint_nodes += 1;
        }
    }
    disjoint_nodes += nodes_a.len() - matched;
    let max_nodes = nodes_a.len().max(nodes_b.len()).max(1);
    node_dist = (node_dist + cd * disjoint_nodes as f64) / max_nodes as f64;

    let mut conn_dist = 0.0;
    let mut disjoint_conns = 0usize;
    let mut matched = 0usize;
    let mut i = 0usize;
    for c2 in conns_b {
        while i < conns_a.len() && conns_a[i].key < c2.key {
            i += 1;
        }
        if i < conns_a.len() && conns_a[i].key == c2.key {
            conn_dist += conns_a[i].attribute_distance(c2) * cw;
            matched += 1;
        } else {
            disjoint_conns += 1;
        }
    }
    disjoint_conns += conns_a.len() - matched;
    let max_conns = conns_a.len().max(conns_b.len()).max(1);
    conn_dist = (conn_dist + cd * disjoint_conns as f64) / max_conns as f64;

    node_dist + conn_dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::innovation::InnovationTracker;
    use crate::rng::XorWow;
    use crate::trace::OpCounters;

    fn evolved_population(n: usize) -> (Vec<Genome>, NeatConfig) {
        let c = NeatConfig::builder(3, 2).build().unwrap();
        let mut r = XorWow::seed_from_u64_value(314);
        let mut innov = InnovationTracker::new(c.first_hidden_id());
        let genomes = (0..n)
            .map(|k| {
                let mut g = Genome::initial(k as u64, &c, &mut r);
                let mut ops = OpCounters::new();
                for _ in 0..(k % 5) {
                    g.mutate_add_node(&mut innov, &mut r, &mut ops);
                    g.mutate_add_conn(&mut r, &mut ops);
                    g.mutate_attributes(&c, &mut r, &mut ops);
                }
                g
            })
            .collect();
        (genomes, c)
    }

    #[test]
    fn pack_preserves_every_gene_in_order() {
        let (genomes, _) = evolved_population(12);
        let mut arena = PopulationArena::new();
        arena.pack(&genomes);
        assert_eq!(arena.len(), genomes.len());
        for (i, g) in genomes.iter().enumerate() {
            let v = arena.view(i);
            assert_eq!(v.nodes, g.node_genes());
            assert_eq!(v.conns, g.conn_genes());
            assert_eq!(v.num_genes(), g.num_genes());
        }
        let genes: usize = genomes.iter().map(Genome::num_genes).sum();
        assert_eq!(arena.total_genes(), genes);
        assert_eq!(arena.memory_bytes(), genes * GENE_BYTES);
    }

    #[test]
    fn arena_distance_is_bit_identical_to_genome_distance() {
        let (genomes, c) = evolved_population(10);
        let mut arena = PopulationArena::new();
        arena.pack(&genomes);
        for i in 0..genomes.len() {
            for j in 0..genomes.len() {
                let direct = genomes[i].distance(&genomes[j], &c);
                let via_arena = arena.view(i).distance(arena.view(j), &c);
                let mixed = GenomeView::of(&genomes[i]).distance(arena.view(j), &c);
                assert_eq!(direct.to_bits(), via_arena.to_bits(), "{i} vs {j}");
                assert_eq!(direct.to_bits(), mixed.to_bits(), "{i} vs {j} mixed");
            }
        }
    }

    #[test]
    fn repack_reuses_capacity() {
        let (genomes, _) = evolved_population(16);
        let mut arena = PopulationArena::new();
        arena.pack(&genomes);
        let node_cap = arena.nodes.capacity();
        let conn_cap = arena.conns.capacity();
        // Repacking the same (or a smaller) population must not grow.
        arena.pack(&genomes[..8]);
        arena.pack(&genomes);
        assert_eq!(arena.nodes.capacity(), node_cap);
        assert_eq!(arena.conns.capacity(), conn_cap);
        assert_eq!(arena.len(), 16);
    }

    #[test]
    fn empty_arena_is_well_behaved() {
        let mut arena = PopulationArena::new();
        assert!(arena.is_empty());
        assert_eq!(arena.total_genes(), 0);
        arena.pack(&[]);
        assert_eq!(arena.len(), 0);
    }
}
