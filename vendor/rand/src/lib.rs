//! Offline shim for the `rand` 0.8 trait surface used by this workspace.
//!
//! `genesys_neat::rng::XorWow` implements [`RngCore`] and [`SeedableRng`] so
//! it can plug into the wider `rand` ecosystem. The container building this
//! repo has no registry access, so this crate provides just those traits
//! (signature-compatible with rand 0.8) and no generators of its own.

#![deny(missing_docs)]

use std::fmt;

/// Error type reported by fallible RNG operations (rand 0.8's `rand::Error`).
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Error").field("msg", &self.msg).finish()
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator (rand 0.8 `RngCore`).
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fills `dest` with random data, reporting failure.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator seedable from fixed entropy (rand 0.8 `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed material accepted by [`SeedableRng::from_seed`].
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, spreading it across the seed bytes.
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as rand 0.8 does.
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for Counter {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn try_fill_bytes_default_delegates() {
        let mut rng = Counter(0);
        let mut buf = [0u8; 12];
        rng.try_fill_bytes(&mut buf).unwrap();
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = Counter::seed_from_u64(7);
        let mut b = Counter::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
