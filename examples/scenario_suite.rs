//! Continual-learning scenario walkthrough: a three-environment
//! curriculum with mid-task drift, population observability, and a power
//! cycle in the middle.
//!
//! One population evolves through CartPole → Acrobot (drifting) →
//! LunarLander behind a single fixed genome interface (io-adapters map
//! each task's observation/action spaces onto it). A metrics recorder
//! probes the generation champion on *every* task at every task boundary —
//! building the per-task fitness matrix continual-learning surveys
//! derive forgetting/transfer from — and timestamps each drift event
//! with its recovery time. Mid-sequence, the run is checkpointed to a
//! binary snapshot, torn down, restored and resumed; the resumed half
//! (events, metrics, genomes) is verified bit-identical against a run
//! that never stopped.
//!
//! The per-generation table also shows the population diagnostics that
//! now ride on every `GenerationStats` (and through the serve layer's
//! observe verb): genome-buffer compressibility, unique-genome count,
//! and species entropy.
//!
//! Run with: `cargo run --release --example scenario_suite`
//! (flags: `--pop N --generations N --threads N --seed N`)

use genesys::gym::EnvKind;
use genesys::neat::{GenerationStats, InitialWeights, Session};
use genesys::scenario::{
    DriftSchedule, MetricsRecorder, RecoveryThreshold, Task, TaskPlan, TaskSequence,
};
use genesys::soc::{snapshot_from_bytes, snapshot_to_bytes};
use genesys_bench::ExperimentArgs;

fn main() {
    let args = ExperimentArgs::parse();
    let pop = args.pop_or(48);
    let generations = args.generations_or(9).max(3);
    let threads = args.threads_or(4);
    let seed = args.base_seed(21);
    let checkpoint_at = generations / 2;

    // Three environment families; budgets split the run in thirds, the
    // middle task drifts suddenly halfway through its phase.
    let phase = (generations as u64 / 3).max(1);
    let plan = TaskPlan::new(
        77,
        vec![
            Task::new(EnvKind::CartPole, phase),
            Task::new(EnvKind::Acrobot, phase).with_drift(DriftSchedule::Sudden { at: phase / 2 }),
            Task::new(EnvKind::LunarLander, phase),
        ],
    );
    let (inputs, outputs) = plan.interface();
    println!(
        "curriculum: CartPole({phase}) -> Acrobot({phase}, sudden drift) -> \
         LunarLander({phase}); genome interface {inputs} in / {outputs} out"
    );

    let mut config = plan.neat_config();
    config.pop_size = pop;
    config.initial_weights = InitialWeights::Uniform { lo: -1.0, hi: 1.0 };
    config.target_fitness = None;

    let recorder =
        MetricsRecorder::new(plan.clone(), RecoveryThreshold::WithinFraction(0.5)).probe(2, 9);
    let plan_for_print = plan.clone();
    let print_generation = move |stats: &GenerationStats| {
        let g = stats.generation as u64;
        let (task, local) = plan_for_print.task_at(g);
        let d = &stats.diagnostics;
        println!(
            "{:>3} | {:<14} | {:>6} | {:>8.1} | {:>7.3} | {:>6} | {:>7.3}",
            g,
            plan_for_print.tasks()[task].kind.label(),
            plan_for_print.regime(g),
            stats.max_fitness,
            d.high_order_entropy,
            d.unique_genomes,
            d.species_entropy,
        );
        let _ = local;
    };

    println!("gen | task           | regime | best fit | entropy | unique | species");

    // ---- Phase 1: evolve to the checkpoint -----------------------------
    let mut session = Session::builder(config.clone(), seed)
        .expect("valid config")
        .workload(TaskSequence::new(plan.clone()))
        .threads(threads)
        .observe(recorder.observer())
        .build();
    let mut history = Vec::new();
    for _ in 0..checkpoint_at {
        let stats = session.step();
        print_generation(&stats);
        history.push(stats);
    }

    // ---- Power cycle: snapshot to bytes, drop, restore -----------------
    let bytes = snapshot_to_bytes(&session.export_state()).expect("encodable state");
    println!(
        "--- power cycle: {} B checkpoint (mid-sequence) ---",
        bytes.len()
    );
    drop(session);
    let restored = snapshot_from_bytes(&bytes).expect("valid checkpoint");
    let mut resumed = Session::resume(restored)
        .expect("restorable state")
        .workload(TaskSequence::new(plan.clone()))
        .threads(threads)
        .observe(recorder.observer()) // the SAME recorder keeps accumulating
        .build();
    for _ in checkpoint_at..generations {
        let stats = resumed.step();
        print_generation(&stats);
        history.push(stats);
    }

    // ---- Proof: bit-identical to the run that never stopped ------------
    let reference_recorder =
        MetricsRecorder::new(plan.clone(), RecoveryThreshold::WithinFraction(0.5)).probe(2, 9);
    let mut uninterrupted = Session::builder(config, seed)
        .expect("valid config")
        .workload(TaskSequence::new(plan.clone()))
        .observe(reference_recorder.observer())
        .build(); // serial on purpose: worker count cannot matter either
    let reference = uninterrupted.run(generations);
    assert_eq!(
        &reference.history[..],
        &history[..],
        "checkpointed trajectory must be bit-identical to the uninterrupted run"
    );
    assert_eq!(
        uninterrupted.genomes(),
        resumed.genomes(),
        "final genomes must be byte-identical"
    );
    let metrics = recorder.snapshot();
    assert_eq!(
        metrics,
        reference_recorder.snapshot(),
        "continual metrics must survive the power cycle bit-identically"
    );

    // ---- The continual-learning record ---------------------------------
    println!("\nper-task fitness matrix (rows: probe points; cols: tasks):");
    println!(
        "{:<18} | {:>9} | {:>9} | {:>9}",
        "probe", "CartPole", "Acrobot", "Lunar"
    );
    for row in &metrics.probes {
        let label = match row.after_task {
            None => "baseline (g0)".to_string(),
            Some(i) => format!("after task {i} (g{})", row.generation),
        };
        println!(
            "{:<18} | {:>9.2} | {:>9.2} | {:>9.2}",
            label, row.fitness[0], row.fitness[1], row.fitness[2]
        );
    }
    for drift in &metrics.drift_events {
        match drift.recovery_generations {
            Some(r) => println!(
                "drift @ g{}: pre-drift best {:.1}, recovered to {:.1} in {} generation(s)",
                drift.generation, drift.pre_drift_best, drift.target, r
            ),
            None => println!(
                "drift @ g{}: pre-drift best {:.1}, not yet back to {:.1}",
                drift.generation, drift.pre_drift_best, drift.target
            ),
        }
    }
    if let Some(f) = metrics.mean_forgetting() {
        println!("mean forgetting: {f:.2}");
    }
    if let Some(b) = metrics.backward_transfer() {
        println!("backward transfer: {b:.2}");
    }
    if let Some(f) = metrics.forward_transfer() {
        println!("forward transfer: {f:.2}");
    }

    println!("\nverified: a three-family curriculum with mid-task drift survives a");
    println!("mid-sequence power cycle bit-identically — events, continual metrics");
    println!("and genome bytes — at any worker count. The fitness matrix, forgetting");
    println!("and recovery numbers above are pure functions of (plan, seeds).");
}
