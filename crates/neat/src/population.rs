//! The outer evolutionary loop (Fig 3(a) of the paper).
//!
//! A [`Population`] owns the genomes of the current generation, evaluates
//! them against a fitness function (optionally in parallel — the paper's
//! **population-level parallelism**, PLP), applies speciation and fitness
//! sharing, and reproduces the next generation, emitting the
//! [`GenerationTrace`] that drives the hardware model.

use crate::config::NeatConfig;
use crate::executor::{Executor, WorkerLocal};
use crate::genome::Genome;
use crate::innovation::InnovationTracker;
use crate::network::{Network, NetworkPlan};
use crate::reproduction::reproduce_into;
use crate::rng::XorWow;
use crate::session::{EvolutionState, SessionError};
use crate::species::{SpeciesId, SpeciesSet};
use crate::stats::GenerationStats;
use crate::trace::GenerationTrace;
use std::sync::Arc;
use std::time::Instant;

/// Why an evolution run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The target fitness was reached at the recorded generation.
    Converged {
        /// Generation index at which the target was first reached.
        generation: usize,
    },
    /// The generation budget was exhausted without convergence.
    GenerationLimit,
}

/// Result of [`Population::run`].
#[derive(Debug)]
pub struct RunResult {
    /// Per-generation statistics, one entry per evaluated generation.
    pub history: Vec<GenerationStats>,
    /// Why the run stopped.
    pub outcome: RunOutcome,
    /// Best genome observed across the whole run.
    pub best: Genome,
}

impl RunResult {
    /// Convenience: did the run reach the target fitness?
    pub fn converged(&self) -> bool {
        matches!(self.outcome, RunOutcome::Converged { .. })
    }
}

/// A NEAT population: the set of genomes of the current generation plus all
/// evolution machinery.
#[derive(Debug)]
pub struct Population {
    config: NeatConfig,
    genomes: Vec<Genome>,
    species: SpeciesSet,
    innovations: InnovationTracker,
    rng: XorWow,
    /// Construction seed; base of the per-child reproduction seeds
    /// (`crate::reproduction::child_seed`).
    seed: u64,
    generation: usize,
    next_key: u64,
    executor: Option<Arc<Executor>>,
    last_trace: Option<GenerationTrace>,
    best_ever: Option<Genome>,
    /// Champion of the most recently *evaluated* generation (contrast
    /// `best_ever`, which is monotone across the whole run). Transient
    /// observability state: not serialized — the first step after a
    /// restore repopulates it before any observer can see it.
    last_champion: Option<Genome>,
    /// Generation-scoped child arena: the *outgoing* generation's genome
    /// shells, recycled as the next generation's child buffers so
    /// reproduction reuses gene storage instead of allocating per child.
    arena: Vec<Genome>,
    /// Per-worker compiled-plan scratch: evaluation recompiles each genome
    /// through a checked-out [`NetworkPlan`] instead of building a fresh
    /// [`Network`] per genome per generation, so unchanged elites cost no
    /// heap allocation. Pure cache — never serialized, no effect on
    /// results.
    plans: WorkerLocal<NetworkPlan>,
    /// Speciation hints for the *current* genomes: each child's parent
    /// species, recorded by the reproduction step that built it (entry
    /// `i` hints genome `i`). Advisory warm-start only — speciation
    /// verifies every hint with an exact distance check, so assignments
    /// are bit-identical with or without them. Never serialized; empty
    /// after a resume or restore (an empty/misaligned vector is ignored).
    pending_hints: Vec<Option<SpeciesId>>,
}

impl Population {
    /// Creates generation 0: `pop_size` copies of the paper's minimal
    /// topology (inputs fully connected to outputs, weights per config).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation; construct configs through
    /// [`NeatConfig::builder`] to catch errors earlier.
    pub fn new(config: NeatConfig, seed: u64) -> Self {
        config.validate().expect("invalid NeatConfig");
        let mut rng = XorWow::seed_from_u64_value(seed);
        let genomes: Vec<Genome> = (0..config.pop_size as u64)
            .map(|k| Genome::initial(k, &config, &mut rng))
            .collect();
        let innovations = InnovationTracker::new(config.first_hidden_id());
        Population {
            next_key: config.pop_size as u64,
            config,
            genomes,
            species: SpeciesSet::new(),
            innovations,
            rng,
            seed,
            generation: 0,
            executor: None,
            last_trace: None,
            best_ever: None,
            last_champion: None,
            arena: Vec::new(),
            plans: WorkerLocal::new(NetworkPlan::new),
            pending_hints: Vec::new(),
        }
    }

    /// Enables population-level parallelism: fitness evaluation fans out
    /// over `threads` OS threads (the paper's CPU_b/CPU_d configuration
    /// runs 4).
    ///
    /// Compatibility shim over [`Population::set_executor`]: spawns a
    /// dedicated persistent [`Executor`] of `threads` workers (once — the
    /// pool is reused across every subsequent generation). Pass `1` (or
    /// `0`) to return to serial evaluation. To share one pool between
    /// several populations, build the [`Executor`] yourself and use
    /// [`Population::set_executor`].
    pub fn set_parallelism(&mut self, threads: usize) {
        if threads <= 1 {
            self.executor = None;
        } else if self.executor.as_deref().map(Executor::workers) != Some(threads) {
            self.executor = Some(Arc::new(Executor::new(threads)));
        }
    }

    /// Runs fitness evaluation on an existing persistent worker pool. The
    /// pool is shared (`Arc`), so several populations — or the bench
    /// harness's repeated workload runs — can reuse one set of threads.
    pub fn set_executor(&mut self, executor: Arc<Executor>) {
        self.executor = Some(executor);
    }

    /// The evaluation pool in use, if parallelism is enabled.
    pub fn executor(&self) -> Option<&Arc<Executor>> {
        self.executor.as_ref()
    }

    /// Restores a population from previously evolved genomes (e.g. a
    /// genome-buffer checkpoint decoded by
    /// `genesys_core::codec::decode_population`). The innovation counter
    /// resumes beyond every node id present; `generation` restarts at 0.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid, `genomes` is empty, or a genome's
    /// interface does not match `config`.
    pub fn from_genomes(config: NeatConfig, genomes: Vec<Genome>, seed: u64) -> Self {
        config.validate().expect("invalid NeatConfig");
        assert!(!genomes.is_empty(), "cannot restore an empty population");
        let mut innovations = InnovationTracker::new(config.first_hidden_id());
        let mut max_key = 0u64;
        for g in &genomes {
            assert_eq!(g.num_inputs(), config.num_inputs, "interface mismatch");
            assert_eq!(g.num_outputs(), config.num_outputs, "interface mismatch");
            innovations.witness(crate::gene::NodeId(g.max_node_id()));
            max_key = max_key.max(g.key());
        }
        let mut config = config;
        config.pop_size = genomes.len();
        Population {
            next_key: max_key + 1,
            config,
            genomes,
            species: SpeciesSet::new(),
            innovations,
            rng: XorWow::seed_from_u64_value(seed),
            seed,
            generation: 0,
            executor: None,
            last_trace: None,
            best_ever: None,
            last_champion: None,
            arena: Vec::new(),
            plans: WorkerLocal::new(NetworkPlan::new),
            pending_hints: Vec::new(),
        }
    }

    /// Captures the complete evolution state at the current generation
    /// boundary — the [`EvolutionState`] a [`crate::session::Session`]
    /// checkpoints. Restoring it via [`Population::from_state`] and
    /// evolving N more generations is bit-identical to never stopping
    /// (the reproduction arena, the speciation scan scratch and the
    /// speciation hints are warm-start caches with no influence on
    /// results, so they are not captured; genome signatures are
    /// recomputed from the genes on restore).
    pub fn export_state(&self) -> EvolutionState {
        EvolutionState {
            config: self.config.clone(),
            genomes: self.genomes.clone(),
            species: self.species.iter().cloned().collect(),
            species_next_id: self.species.next_species_id(),
            innovation_next_node: self.innovations.next_node_id(),
            rng_state: self.rng.state(),
            seed: self.seed,
            generation: self.generation as u64,
            next_key: self.next_key,
            best_ever: self.best_ever.clone(),
            workload_state: 0,
        }
    }

    /// Rebuilds a population from an exported state; the exact inverse of
    /// [`Population::export_state`]. (The innovation tracker's split memo
    /// is empty at every generation boundary, so its counter is its entire
    /// persistent state.)
    ///
    /// # Errors
    ///
    /// Returns a [`SessionError`] if the state fails validation.
    pub fn from_state(state: EvolutionState) -> Result<Self, SessionError> {
        state.validate()?;
        let EvolutionState {
            config,
            genomes,
            species,
            species_next_id,
            innovation_next_node,
            rng_state,
            seed,
            generation,
            next_key,
            best_ever,
            workload_state: _,
        } = state;
        Ok(Population {
            config,
            genomes,
            species: SpeciesSet::from_parts(species, species_next_id),
            innovations: InnovationTracker::new(innovation_next_node),
            rng: XorWow::from_state(rng_state.0, rng_state.1),
            seed,
            generation: generation as usize,
            next_key,
            executor: None,
            last_trace: None,
            best_ever,
            last_champion: None,
            arena: Vec::new(),
            plans: WorkerLocal::new(NetworkPlan::new),
            pending_hints: Vec::new(),
        })
    }

    /// Restricts this population's fresh hidden-node ids to island
    /// `island`'s residue class modulo `islands`, so that the id spaces of
    /// the islands in an archipelago are disjoint and migrants can never
    /// collide with locally assigned ids. Idempotent on a counter restored
    /// from a checkpoint (it is already in class).
    pub(crate) fn set_innovation_stride(&mut self, island: u32, islands: u32) {
        self.innovations
            .set_stride(self.config.first_hidden_id() + island, islands);
    }

    /// Current generation index (0 before the first [`Population::evolve_once`]).
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// The configuration in use.
    pub fn config(&self) -> &NeatConfig {
        &self.config
    }

    /// Genomes of the current generation.
    pub fn genomes(&self) -> &[Genome] {
        &self.genomes
    }

    /// Living species.
    pub fn species(&self) -> &SpeciesSet {
        &self.species
    }

    /// Trace of the most recent reproduction step, if any.
    pub fn last_trace(&self) -> Option<&GenerationTrace> {
        self.last_trace.as_ref()
    }

    /// Best genome observed so far (across all generations).
    pub fn best_genome(&self) -> Option<&Genome> {
        self.best_ever.as_ref()
    }

    /// Champion of the most recently evaluated generation: the genome
    /// whose fitness is this generation's max (first index wins ties).
    /// Unlike [`Population::best_genome`] this is *not* monotone — on a
    /// shifting workload (drift, task sequences) it tracks what the
    /// population can do *now*, not the stalest high-water mark. `None`
    /// before the first evaluated generation and right after a restore
    /// (the next step repopulates it).
    pub fn champion(&self) -> Option<&Genome> {
        self.last_champion.as_ref()
    }

    /// Evaluates every genome with `fitness_fn`, storing fitness in place.
    /// Returns the total inference MAC count (one forward pass per genome),
    /// used by the cost models.
    pub fn evaluate<F>(&mut self, fitness_fn: F) -> u64
    where
        F: Fn(&Network) -> f64 + Sync,
    {
        self.evaluate_indexed(|_, net| fitness_fn(net))
    }

    /// Like [`Population::evaluate`], but the fitness function also
    /// receives the genome's index within the generation. This is the hook
    /// for *deterministic* parallel evaluation: derive any per-genome
    /// randomness (gym episode seeds, dropout masks, …) from the index so
    /// the result is independent of which worker runs the genome — see the
    /// determinism contract in [`crate::executor`].
    pub fn evaluate_indexed<F>(&mut self, fitness_fn: F) -> u64
    where
        F: Fn(usize, &Network) -> f64 + Sync,
    {
        let n = self.genomes.len();
        let genomes = &self.genomes;
        let plans = &self.plans;
        // Compile through a checked-out per-worker NetworkPlan: recompiling
        // a same-shaped genome (an unchanged elite) through a warm plan
        // allocates nothing, versus a fresh `Network::from_genome` per
        // genome per generation.
        let job = |i: usize| -> (f64, u64) {
            plans.with(|plan| {
                Network::compile_into(plan, &genomes[i]).expect("population genomes are valid");
                let net = plan.network();
                (fitness_fn(i, net), net.num_macs())
            })
        };
        // The persistent pool pulls genome jobs from a work-stealing deque:
        // no per-generation thread spawn, and stragglers (deep genomes,
        // long gym episodes) get backfilled instead of serializing a chunk.
        let results: Vec<(f64, u64)> = match &self.executor {
            Some(pool) => pool.map(n, job),
            None => (0..n).map(job).collect(),
        };
        // Index-ordered sum: identical at any worker count.
        let macs: u64 = results.iter().map(|&(_, m)| m).sum();
        for (g, &(f, _)) in self.genomes.iter_mut().zip(results.iter()) {
            g.set_fitness(f);
        }
        // Track the best-ever genome (NaN-tolerant total order).
        if let Some(best_idx) = (0..n).max_by(|&a, &b| results[a].0.total_cmp(&results[b].0)) {
            let better = self
                .best_ever
                .as_ref()
                .and_then(Genome::fitness)
                .is_none_or(|prev| results[best_idx].0 > prev);
            if better {
                self.best_ever = Some(self.genomes[best_idx].clone());
            }
        }
        macs
    }

    /// One full generation: evaluate → speciate → fitness sharing →
    /// stagnation → reproduce. Returns the statistics of the *evaluated*
    /// generation; afterwards [`Population::genomes`] holds the next one.
    pub fn evolve_once<F>(&mut self, fitness_fn: F) -> GenerationStats
    where
        F: Fn(&Network) -> f64 + Sync,
    {
        self.evolve_once_indexed(|_, net| fitness_fn(net))
    }

    /// Index-aware variant of [`Population::evolve_once`]; see
    /// [`Population::evaluate_indexed`] for when the index matters.
    ///
    /// The whole generation — evaluation, speciation's distance matrix and
    /// child construction — runs on the persistent executor when one is
    /// set, with results bit-identical to the serial path at any worker
    /// count (see [`crate::executor`] and [`crate::reproduction`] for the
    /// determinism contracts). The outgoing generation's genomes are
    /// recycled as the next generation's child buffers, so steady-state
    /// reproduction reuses gene storage instead of cloning per child.
    pub fn evolve_once_indexed<F>(&mut self, fitness_fn: F) -> GenerationStats
    where
        F: Fn(usize, &Network) -> f64 + Sync,
    {
        let eval_start = Instant::now();
        let macs = self.evaluate_indexed(fitness_fn);
        let eval_ns = eval_start.elapsed().as_nanos() as u64;
        self.finish_generation(macs, eval_ns)
    }

    /// The post-evaluation half of a generation: speciate → stagnation →
    /// fitness sharing → reproduce → advance the generation counter.
    /// `macs` is the inference MAC count returned by
    /// [`Population::evaluate_indexed`] and `eval_ns` the wall-clock
    /// nanoseconds the caller spent evaluating, both threaded into the
    /// stats.
    ///
    /// Split out so the archipelago backend (`crate::island`) can run its
    /// deterministic migration exchange between evaluation and
    /// reproduction on migration epochs; every other caller goes through
    /// [`Population::evolve_once_indexed`].
    pub(crate) fn finish_generation(&mut self, macs: u64, eval_ns: u64) -> GenerationStats {
        let pool = self.executor.clone();
        let pool = pool.as_deref();
        let speciate_start = Instant::now();
        self.species.speciate_with_hints(
            &self.genomes,
            &self.config,
            self.generation,
            pool,
            Some(&self.pending_hints),
        );
        self.species
            .remove_stagnant(&self.genomes, &self.config, self.generation);
        self.species.share_fitness(&self.genomes);
        let speciate_ns = speciate_start.elapsed().as_nanos() as u64;

        let reproduce_start = Instant::now();
        let trace = reproduce_into(
            &self.genomes,
            &self.species,
            &self.config,
            &mut self.innovations,
            &mut self.rng,
            self.generation,
            &mut self.next_key,
            self.seed,
            pool,
            &mut self.arena,
            Some(&mut self.pending_hints),
        );
        let reproduce_ns = reproduce_start.elapsed().as_nanos() as u64;
        let mut stats = GenerationStats::collect(
            self.generation,
            &self.genomes,
            self.species.len(),
            Some(&trace),
            macs,
        );
        stats.speciate_ns = speciate_ns;
        stats.reproduce_ns = reproduce_ns;
        stats.eval_ns = eval_ns;
        stats
            .diagnostics
            .set_species_sizes(self.species.iter().map(|s| s.members.len()));
        // Keep the evaluated generation's champion for observers before
        // the arena swap discards the generation. Computed here (after
        // any migration exchange) so its fitness matches
        // `stats.max_fitness` exactly; strict `>` makes the first index
        // win ties, independent of worker count.
        let mut champ: Option<usize> = None;
        for (i, genome) in self.genomes.iter().enumerate() {
            let fitness = genome.fitness().unwrap_or(f64::NEG_INFINITY);
            let better = champ
                .is_none_or(|c| fitness > self.genomes[c].fitness().unwrap_or(f64::NEG_INFINITY));
            if better {
                champ = Some(i);
            }
        }
        if let Some(idx) = champ {
            // Buffer-reusing clone: steady-state champion tracking
            // allocates nothing once the slot exists.
            match &mut self.last_champion {
                Some(current) => current.clone_from(&self.genomes[idx]),
                None => self.last_champion = Some(self.genomes[idx].clone()),
            }
        }
        self.last_trace = Some(trace);
        // The arena now holds the new generation; the old generation's
        // shells become the next reproduction's child buffers.
        std::mem::swap(&mut self.genomes, &mut self.arena);
        self.generation += 1;
        stats
    }

    /// Clones this island's top `k` genomes — the migration emigrants —
    /// ranked by fitness (`total_cmp` descending, index ascending on
    /// ties). RNG-free and scheduling-independent, so migrant selection is
    /// bit-identical at any worker count. Call after evaluation, while
    /// every genome carries a fitness.
    pub(crate) fn select_emigrants(&self, k: usize) -> Vec<Genome> {
        let mut order: Vec<usize> = (0..self.genomes.len()).collect();
        order.sort_by(|&a, &b| {
            let fa = self.genomes[a].fitness().unwrap_or(f64::NEG_INFINITY);
            let fb = self.genomes[b].fitness().unwrap_or(f64::NEG_INFINITY);
            fb.total_cmp(&fa).then(a.cmp(&b))
        });
        order
            .into_iter()
            .take(k)
            .map(|i| self.genomes[i].clone())
            .collect()
    }

    /// Integrates immigrant genomes: each replaces one of this island's
    /// worst residents (fitness `total_cmp` ascending, index ascending on
    /// ties), keeping its evaluated fitness but re-keyed from this
    /// island's key counter so genome keys stay island-unique.
    pub(crate) fn integrate_migrants(&mut self, migrants: &[Genome]) {
        let mut order: Vec<usize> = (0..self.genomes.len()).collect();
        order.sort_by(|&a, &b| {
            let fa = self.genomes[a].fitness().unwrap_or(f64::NEG_INFINITY);
            let fb = self.genomes[b].fitness().unwrap_or(f64::NEG_INFINITY);
            fa.total_cmp(&fb).then(a.cmp(&b))
        });
        for (slot, migrant) in order.into_iter().zip(migrants.iter()) {
            // Buffer-reusing clone into the displaced resident's storage.
            self.genomes[slot].clone_from(migrant);
            self.genomes[slot].set_key(self.next_key);
            self.next_key += 1;
            // The displaced resident's speciation hint described a genome
            // that no longer sits in this slot; the immigrant's species id
            // belongs to another island's id space. Drop the hint (hints
            // are advisory, so this only costs scan order, never bits).
            if let Some(hint) = self.pending_hints.get_mut(slot) {
                *hint = None;
            }
        }
    }

    /// Runs evolution until the configured target fitness is reached or
    /// `max_generations` have been evaluated.
    pub fn run<F>(&mut self, fitness_fn: F, max_generations: usize) -> RunResult
    where
        F: Fn(&Network) -> f64 + Sync,
    {
        let mut history = Vec::new();
        for _ in 0..max_generations {
            let stats = self.evolve_once(&fitness_fn);
            let hit_target = self
                .config
                .target_fitness
                .is_some_and(|t| stats.max_fitness >= t);
            let generation = stats.generation;
            history.push(stats);
            if hit_target {
                return RunResult {
                    history,
                    outcome: RunOutcome::Converged { generation },
                    best: self.best_ever.clone().expect("evaluated at least once"),
                };
            }
        }
        RunResult {
            best: self
                .best_ever
                .clone()
                .unwrap_or_else(|| self.genomes[0].clone()),
            history,
            outcome: RunOutcome::GenerationLimit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy separable fitness: reward networks whose output tracks the
    /// first input. Solvable by weight evolution alone.
    fn proxy_fitness(net: &Network) -> f64 {
        let cases = [[0.0, 0.0], [0.25, 1.0], [0.5, 0.5], [1.0, 0.0]];
        let mut fit = 4.0;
        for c in &cases {
            let out = net.activate(c)[0];
            let want = c[0];
            fit -= (out - want) * (out - want);
        }
        fit
    }

    fn small_config() -> NeatConfig {
        NeatConfig::builder(2, 1)
            .pop_size(40)
            .target_fitness(Some(3.8))
            .build()
            .unwrap()
    }

    #[test]
    fn generation_zero_is_uniform() {
        let pop = Population::new(small_config(), 7);
        assert_eq!(pop.genomes().len(), 40);
        assert_eq!(pop.generation(), 0);
        assert!(pop.genomes().iter().all(|g| g.num_genes() == 5));
    }

    #[test]
    fn evolve_once_advances_generation_and_records_trace() {
        let mut pop = Population::new(small_config(), 7);
        let stats = pop.evolve_once(proxy_fitness);
        assert_eq!(stats.generation, 0);
        assert_eq!(pop.generation(), 1);
        assert_eq!(pop.genomes().len(), 40);
        assert!(pop.last_trace().is_some());
        assert!(stats.ops.total() > 0);
    }

    #[test]
    fn fitness_improves_over_generations() {
        let mut pop = Population::new(small_config(), 11);
        let first = pop.evolve_once(proxy_fitness).max_fitness;
        let mut best = first;
        for _ in 0..25 {
            best = best.max(pop.evolve_once(proxy_fitness).max_fitness);
        }
        assert!(
            best > first + 0.05,
            "25 generations should improve fitness: first {first}, best {best}"
        );
    }

    #[test]
    fn run_stops_at_target() {
        let mut pop = Population::new(small_config(), 3);
        let result = pop.run(proxy_fitness, 200);
        if result.converged() {
            let last = result.history.last().unwrap();
            assert!(last.max_fitness >= 3.8);
        } else {
            assert_eq!(result.history.len(), 200);
        }
        assert!(result.best.fitness().is_some());
    }

    #[test]
    fn parallel_and_serial_evaluation_agree() {
        let mut serial = Population::new(small_config(), 5);
        let macs_serial = serial.evaluate(proxy_fitness);
        for workers in [1usize, 4, 8] {
            let mut par = Population::new(small_config(), 5);
            par.set_executor(std::sync::Arc::new(Executor::new(workers)));
            let macs_par = par.evaluate(proxy_fitness);
            assert_eq!(macs_serial, macs_par, "workers={workers}");
            for (gs, gp) in serial.genomes().iter().zip(par.genomes().iter()) {
                assert_eq!(gs.fitness(), gp.fitness(), "workers={workers}");
            }
        }
    }

    #[test]
    fn set_parallelism_shim_reuses_its_pool() {
        let mut pop = Population::new(small_config(), 5);
        pop.set_parallelism(4);
        let pool = std::sync::Arc::as_ptr(pop.executor().unwrap());
        pop.set_parallelism(4); // same width: must not respawn
        assert_eq!(pool, std::sync::Arc::as_ptr(pop.executor().unwrap()));
        pop.set_parallelism(1);
        assert!(pop.executor().is_none(), "threads<=1 falls back to serial");
    }

    #[test]
    fn evaluate_indexed_passes_stable_indices() {
        let mut pop = Population::new(small_config(), 5);
        pop.set_parallelism(4);
        pop.evaluate_indexed(|i, _| i as f64);
        for (i, g) in pop.genomes().iter().enumerate() {
            assert_eq!(g.fitness(), Some(i as f64));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Population::new(small_config(), 99);
        let mut b = Population::new(small_config(), 99);
        for _ in 0..5 {
            let sa = a.evolve_once(proxy_fitness);
            let sb = b.evolve_once(proxy_fitness);
            assert_eq!(sa.max_fitness, sb.max_fitness);
            assert_eq!(sa.total_genes, sb.total_genes);
            assert_eq!(sa.ops, sb.ops);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Population::new(small_config(), 1);
        let mut b = Population::new(small_config(), 2);
        let mut any_diff = false;
        for _ in 0..5 {
            let sa = a.evolve_once(proxy_fitness);
            let sb = b.evolve_once(proxy_fitness);
            if sa.total_genes != sb.total_genes || sa.max_fitness != sb.max_fitness {
                any_diff = true;
            }
        }
        assert!(any_diff, "different seeds should explore differently");
    }

    #[test]
    fn best_ever_tracks_across_generations() {
        let mut pop = Population::new(small_config(), 21);
        let mut running_max = f64::NEG_INFINITY;
        for _ in 0..10 {
            let s = pop.evolve_once(proxy_fitness);
            running_max = running_max.max(s.max_fitness);
            let best = pop.best_genome().unwrap().fitness().unwrap();
            assert!((best - running_max).abs() < 1e-12);
        }
    }

    #[test]
    fn genome_count_stays_constant() {
        let mut pop = Population::new(small_config(), 13);
        for _ in 0..10 {
            pop.evolve_once(proxy_fitness);
            assert_eq!(pop.genomes().len(), 40);
        }
    }
}
